//! TPCx-HS — the standardized big-data sort benchmark, end to end.
//!
//! Models the TPC Express Benchmark HS (derived from TeraSort) as three
//! chained MapReduce jobs over 100-byte records, with a conformance
//! harness that can actually fail:
//!
//! 1. **HSGen** — map-only job synthesizing `sf_bytes` of seeded 100-byte
//!    records (10-byte random key + fixed payload). Per-block content
//!    checksums (an order-independent multiset digest of the record keys)
//!    are recorded in the HDFS namespace as provenance.
//! 2. **HSSort** — identity map + total-order [`RangePartitioner`] +
//!    identity reduce; the output is re-written to HDFS with replication,
//!    and per-output-block checksums are recorded the same way.
//! 3. **HSValidate** — a second MapReduce job reading the sorted output
//!    back. Each map summarizes one HDFS block (record count, sortedness,
//!    key range, checksum); the verdict checks global sort order across
//!    block boundaries, record-count preservation, and checksum
//!    provenance input-side vs output-side. Corruption anywhere in the
//!    pipeline surfaces as a precise [`HsViolation`], never a silently
//!    "valid" run.
//!
//! The figure of merit is **HSph@SF**: scale-factor gigabytes divided by
//! total elapsed hours across all three phases (higher is better). See
//! DESIGN.md §17 for the record format and the disaggregated
//! (data/compute-separated) cluster configurations the bench harness
//! sweeps.

use mapreduce::prelude::*;
use rand::Rng;
use simcore::rng::RootSeed;
use simcore::time::SimTime;
use vhdfs::hdfs::HdfsConfig;

/// Accounted bytes per HS record ([`records_size`]-exact: a 10-byte key
/// and an 82-byte payload each carry 4 bytes of framing).
pub const RECORD_BYTES: u64 = 100;
/// Key length in bytes.
pub const KEY_BYTES: usize = 10;
/// Payload length in bytes (chosen so one record accounts exactly 100
/// bytes, keeping block boundaries record-aligned).
pub const PAYLOAD_BYTES: usize = 82;

/// HDFS path of the generated input data set.
pub const HS_IN: &str = "/hs/in";
/// HDFS path prefix of the sorted output (`part-r-NNNNN` files).
pub const HS_OUT: &str = "/hs/out";

/// Default HDFS block size for HS runs: 1 MB keeps a record-aligned
/// block boundary (`% 100 == 0`) and yields multiple splits even at
/// test-scale factors.
pub const DEFAULT_BLOCK: u64 = 1_000_000;

/// Deterministic post-generation corruption, for conformance testing the
/// HSValidate oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsCorruption {
    /// Flip one key byte of the first record of input block `block`
    /// before it reaches HSSort (the stored provenance checksum still
    /// describes the pristine data).
    FlipRecord {
        /// Input block index.
        block: usize,
    },
    /// Corrupt the *stored* checksum of input block `block` (the data
    /// itself stays pristine).
    FlipChecksum {
        /// Input block index.
        block: usize,
    },
}

/// One TPCx-HS run description: scale factor, job shape, seed, and any
/// injected corruption.
#[derive(Debug, Clone)]
pub struct HsPlan {
    /// Scale factor in bytes (must be a positive multiple of 100).
    pub sf_bytes: u64,
    /// Reduce tasks for HSSort.
    pub reduces: u32,
    /// HDFS block size (must be a positive multiple of 100).
    pub block_size: u64,
    /// Root seed; record synthesis derives from it.
    pub seed: RootSeed,
    /// VM the input file registration is attributed to.
    pub writer: VmId,
    /// Deterministic corruption to inject after HSGen, if any.
    pub corrupt: Option<HsCorruption>,
}

impl HsPlan {
    /// Plan with the [`DEFAULT_BLOCK`] size and no corruption.
    pub fn new(sf_bytes: u64, reduces: u32, seed: RootSeed) -> Self {
        assert!(
            sf_bytes > 0 && sf_bytes.is_multiple_of(RECORD_BYTES),
            "scale factor must be a positive multiple of {RECORD_BYTES} bytes, got {sf_bytes}"
        );
        assert!(reduces > 0, "HSSort needs at least one reduce");
        HsPlan {
            sf_bytes,
            reduces,
            block_size: DEFAULT_BLOCK,
            seed,
            writer: VmId(1),
            corrupt: None,
        }
    }

    /// Overrides the HDFS block size (must stay a multiple of 100 so
    /// block boundaries are record-aligned).
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        assert!(
            block_size > 0 && block_size.is_multiple_of(RECORD_BYTES),
            "block size must be a positive multiple of {RECORD_BYTES} bytes, got {block_size}"
        );
        self.block_size = block_size;
        self
    }

    /// Injects one deterministic corruption after HSGen.
    pub fn with_corruption(mut self, corrupt: HsCorruption) -> Self {
        self.corrupt = Some(corrupt);
        self
    }

    /// HDFS config matching the plan's block size.
    pub fn hdfs_config(&self, replication: u32) -> HdfsConfig {
        HdfsConfig { block_size: self.block_size, replication }
    }

    /// Total records at this scale factor.
    pub fn total_records(&self) -> u64 {
        self.sf_bytes / RECORD_BYTES
    }

    /// Records in a full input split (= block).
    pub fn records_per_split(&self) -> u64 {
        self.block_size / RECORD_BYTES
    }

    /// Input split count (equals the HDFS block count of [`HS_IN`]).
    pub fn splits(&self) -> usize {
        self.total_records().div_ceil(self.records_per_split()) as usize
    }

    /// Records in split `idx` (the last split may be short).
    pub fn records_in_split(&self, idx: usize) -> u64 {
        let start = idx as u64 * self.records_per_split();
        self.records_per_split().min(self.total_records().saturating_sub(start))
    }

    fn gen_seed(&self) -> RootSeed {
        self.seed.derive("hsgen")
    }
}

/// Deterministically synthesizes the pristine records of HSGen split
/// `idx`.
pub fn hsgen_split(seed: RootSeed, idx: usize, records: u64) -> Vec<Record> {
    let mut rng = seed.stream_at("hsgen", idx as u64);
    (0..records)
        .map(|_| {
            let key: Vec<u8> = (0..KEY_BYTES).map(|_| rng.gen()).collect();
            (K::Bytes(key), V::Bytes(vec![b'~'; PAYLOAD_BYTES]))
        })
        .collect()
}

/// Order-independent content digest of a record multiset. Each record
/// contributes a mixed key hash; summation makes the digest invariant
/// under re-sorting, so the same data sorted still matches its input
/// provenance.
pub fn multiset_checksum(records: &[Record]) -> u64 {
    records.iter().fold(0u64, |acc, (k, _)| acc.wrapping_add(mix64(k.stable_hash())))
}

/// splitmix64 finalizer: decorrelates the raw key hash so adjacent keys
/// don't cancel in the multiset sum.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// HSGen: map-only, emits one split's records from the seeded stream.
struct HsGenApp {
    seed: RootSeed,
    plan: HsPlan,
}

impl MapReduceApp for HsGenApp {
    fn name(&self) -> &str {
        "hsgen"
    }
    fn map(&self, k: &K, _v: &V, out: &mut dyn FnMut(K, V)) {
        let idx = k.as_int() as usize;
        for (key, val) in hsgen_split(self.seed, idx, self.plan.records_in_split(idx)) {
            out(key, val);
        }
    }
    fn reduce(&self, _k: &K, _vs: &[V], _out: &mut dyn FnMut(K, V)) {
        unreachable!("hsgen is map-only");
    }
    fn cost(&self) -> CostProfile {
        CostProfile { map_cpu_per_byte: 10.0, map_cpu_per_record: 600.0, ..Default::default() }
    }
}

/// HSSort: identity map, total-order partitioner, identity reduce.
struct HsSortApp;

impl MapReduceApp for HsSortApp {
    fn name(&self) -> &str {
        "hssort"
    }
    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        out(k.clone(), v.clone());
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        for v in vs {
            out(k.clone(), v.clone());
        }
    }
    fn partitioner(&self) -> Box<dyn Partitioner> {
        Box::new(RangePartitioner)
    }
    fn cost(&self) -> CostProfile {
        CostProfile { map_cpu_per_byte: 15.0, map_cpu_per_record: 1_200.0, ..Default::default() }
    }
}

/// Per-block summary an HSValidate map emits (encoded into a
/// `V::Bytes`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockSummary {
    records: u64,
    sorted: bool,
    checksum: u64,
    min: Vec<u8>,
    max: Vec<u8>,
}

impl BlockSummary {
    fn of(records: &[Record]) -> Self {
        let sorted = records.windows(2).all(|w| w[0].0 <= w[1].0);
        BlockSummary {
            records: records.len() as u64,
            sorted,
            checksum: multiset_checksum(records),
            min: records.first().map(|(k, _)| k.as_bytes().to_vec()).unwrap_or_default(),
            max: records.last().map(|(k, _)| k.as_bytes().to_vec()).unwrap_or_default(),
        }
    }

    fn encode(&self) -> V {
        let mut b = Vec::with_capacity(18 + self.min.len() + self.max.len());
        b.push(u8::from(self.sorted));
        b.extend_from_slice(&self.records.to_le_bytes());
        b.extend_from_slice(&self.checksum.to_le_bytes());
        b.push(self.min.len() as u8);
        b.extend_from_slice(&self.min);
        b.extend_from_slice(&self.max);
        V::Bytes(b)
    }

    fn decode(v: &V) -> Self {
        let V::Bytes(b) = v else { panic!("summary must be bytes, got {v:?}") };
        let sorted = b[0] != 0;
        let records = u64::from_le_bytes(b[1..9].try_into().unwrap());
        let checksum = u64::from_le_bytes(b[9..17].try_into().unwrap());
        let klen = b[17] as usize;
        BlockSummary {
            records,
            sorted,
            checksum,
            min: b[18..18 + klen].to_vec(),
            max: b[18 + klen..18 + 2 * klen].to_vec(),
        }
    }
}

/// HSValidate: one map per output block summarizes the records it holds
/// (the summarized data rides in the app; the job's reads against
/// [`HS_OUT`] model the I/O); a single reduce collects the summaries in
/// block order.
struct HsValidateApp {
    blocks: Vec<Vec<Record>>,
}

impl MapReduceApp for HsValidateApp {
    fn name(&self) -> &str {
        "hsvalidate"
    }
    fn map(&self, k: &K, _v: &V, out: &mut dyn FnMut(K, V)) {
        let idx = k.as_int() as usize;
        out(K::Int(idx as i64), BlockSummary::of(&self.blocks[idx]).encode());
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        for v in vs {
            out(k.clone(), v.clone());
        }
    }
    fn cost(&self) -> CostProfile {
        CostProfile { map_cpu_per_byte: 12.0, map_cpu_per_record: 800.0, ..Default::default() }
    }
}

/// One conformance failure HSValidate can diagnose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HsViolation {
    /// Blocks with zero live replicas exist — the data set is not
    /// readable, validation fails before submitting the read job.
    LostBlocks {
        /// How many blocks have no replica left.
        count: usize,
    },
    /// The sorted output directory has no files.
    MissingOutput,
    /// Output record count differs from the generated record count.
    RecordCountMismatch {
        /// Records HSGen produced.
        expected: u64,
        /// Records found in the output.
        found: u64,
    },
    /// Keys are out of order within output block `block`, or across the
    /// boundary into it.
    OutOfOrder {
        /// Output block index (in directory order).
        block: usize,
    },
    /// A block is missing its recorded provenance checksum.
    MissingChecksum {
        /// File path owning the block.
        path: String,
        /// Block index within the file.
        block: usize,
    },
    /// An output block's stored checksum disagrees with its re-computed
    /// content digest.
    BlockChecksumMismatch {
        /// Output block index (in directory order).
        block: usize,
        /// Checksum recorded at write time.
        stored: u64,
        /// Checksum recomputed from the block's records.
        computed: u64,
    },
    /// Aggregate input provenance disagrees with the aggregate output
    /// digest — data was altered (or its recorded checksum was) between
    /// HSGen and HSSort.
    ChecksumMismatch {
        /// Sum of recorded input-block checksums.
        input_sum: u64,
        /// Sum of output-block content digests.
        output_sum: u64,
    },
}

impl std::fmt::Display for HsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HsViolation::LostBlocks { count } => write!(f, "{count} block(s) lost all replicas"),
            HsViolation::MissingOutput => write!(f, "sorted output directory is empty"),
            HsViolation::RecordCountMismatch { expected, found } => {
                write!(f, "record count changed: generated {expected}, output holds {found}")
            }
            HsViolation::OutOfOrder { block } => {
                write!(f, "keys out of order at output block {block}")
            }
            HsViolation::MissingChecksum { path, block } => {
                write!(f, "no provenance checksum for {path} block {block}")
            }
            HsViolation::BlockChecksumMismatch { block, stored, computed } => write!(
                f,
                "output block {block} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            HsViolation::ChecksumMismatch { input_sum, output_sum } => write!(
                f,
                "input/output provenance mismatch: input {input_sum:#018x}, output {output_sum:#018x}"
            ),
        }
    }
}

/// HSValidate verdict: pass/fail plus every diagnosed violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsValidateReport {
    /// True iff no violation was found.
    pub passed: bool,
    /// Every conformance failure, in detection order.
    pub violations: Vec<HsViolation>,
    /// Records the output holds (0 on fail-fast).
    pub records: u64,
    /// Output blocks examined.
    pub blocks_checked: usize,
}

impl HsValidateReport {
    fn failed(violations: Vec<HsViolation>) -> Self {
        HsValidateReport { passed: false, violations, records: 0, blocks_checked: 0 }
    }
}

/// Builds the HSGen job (spec, app, input). Run it, then call
/// [`register_hsgen`] to register the data set and its provenance.
pub fn hsgen_job(plan: &HsPlan) -> (JobSpec, Box<dyn MapReduceApp>, Box<dyn InputFormat>) {
    let splits = plan.splits();
    let input =
        GeneratorInput::new(splits, plan.block_size, |idx| vec![(K::Int(idx as i64), V::Null)]);
    let spec = JobSpec::generated("hsgen", "/hs/gen").with_config(JobConfig::map_only());
    (spec, Box::new(HsGenApp { seed: plan.gen_seed(), plan: plan.clone() }), Box::new(input))
}

/// Registers [`HS_IN`] (the generated data set) in HDFS and records one
/// provenance checksum per block — computed from the *pristine* record
/// stream. Applies the plan's [`HsCorruption::FlipChecksum`], if any.
///
/// # Panics
/// If the runtime's HDFS block size disagrees with the plan's (the block
/// count would no longer match the split count).
pub fn register_hsgen(rt: &mut MrRuntime, plan: &HsPlan) {
    rt.register_input(HS_IN, plan.sf_bytes, plan.writer);
    let blocks = rt.hdfs.stat(HS_IN).expect("just registered").blocks.len();
    assert_eq!(
        blocks,
        plan.splits(),
        "HDFS produced {blocks} blocks for {} splits; configure HDFS with plan.hdfs_config()",
        plan.splits(),
    );
    let seed = plan.gen_seed();
    let sums: Vec<u64> = (0..plan.splits())
        .map(|i| multiset_checksum(&hsgen_split(seed, i, plan.records_in_split(i))))
        .collect();
    rt.hdfs.record_checksums(HS_IN, &sums);
    if let Some(HsCorruption::FlipChecksum { block }) = plan.corrupt {
        rt.hdfs.corrupt_checksum(HS_IN, block);
    }
}

/// Builds the HSSort job. The input re-materializes the generated
/// records per split, applying the plan's
/// [`HsCorruption::FlipRecord`], if any.
pub fn hssort_job(plan: &HsPlan) -> (JobSpec, Box<dyn MapReduceApp>, Box<dyn InputFormat>) {
    let seed = plan.gen_seed();
    let p = plan.clone();
    let input = GeneratorInput::new(plan.splits(), plan.block_size, move |idx| {
        let mut recs = hsgen_split(seed, idx, p.records_in_split(idx));
        if let Some(HsCorruption::FlipRecord { block }) = p.corrupt {
            if block == idx {
                if let K::Bytes(key) = &mut recs[0].0 {
                    key[0] ^= 0x01;
                }
            }
        }
        recs
    });
    let spec = JobSpec::new("hssort", HS_IN, HS_OUT)
        .with_config(JobConfig::default().with_reduces(plan.reduces).with_combiner(false));
    (spec, Box::new(HsSortApp), Box::new(input))
}

/// The sorted output grouped into per-HDFS-block record runs, in
/// directory order (`part-r-00000` block 0, 1, …, then `part-r-00001`,
/// …). Block boundaries are exact because every record accounts exactly
/// [`RECORD_BYTES`].
fn output_block_groups(rt: &MrRuntime, sort: &JobResult) -> Vec<(String, Vec<Vec<Record>>)> {
    let mut groups = Vec::new();
    let mut offset = 0usize;
    for (r, &n) in sort.partition_sizes.iter().enumerate() {
        let path = format!("{HS_OUT}/part-r-{r:05}");
        let recs = &sort.outputs[offset..offset + n];
        offset += n;
        let locs = rt
            .hdfs
            .block_locations(&path)
            .unwrap_or_else(|| panic!("HSSort output {path} not in HDFS"));
        let mut runs = Vec::with_capacity(locs.len());
        let mut at = 0usize;
        for (_, len, _) in &locs {
            assert!(len % RECORD_BYTES == 0, "{path}: block length {len} not record-aligned");
            let cnt = (len / RECORD_BYTES) as usize;
            runs.push(recs[at..at + cnt].to_vec());
            at += cnt;
        }
        assert_eq!(at, n, "{path}: block lengths cover {at} of {n} records");
        groups.push((path, runs));
    }
    groups
}

/// Records one provenance checksum per HSSort output block (computed
/// from the records each block actually holds). Returns the number of
/// blocks checksummed.
pub fn record_sort_checksums(rt: &mut MrRuntime, sort: &JobResult) -> usize {
    let groups = output_block_groups(rt, sort);
    let mut total = 0;
    for (path, runs) in &groups {
        let sums: Vec<u64> = runs.iter().map(|r| multiset_checksum(r)).collect();
        total += sums.len();
        rt.hdfs.record_checksums(path, &sums);
    }
    total
}

/// Fail-fast integrity prescan run before HSValidate submits its read
/// job: lost blocks (zero live replicas) or a missing output directory
/// make the data set unreadable, so validation reports them instead of
/// crashing mid-read.
pub fn integrity_prescan(rt: &MrRuntime) -> Vec<HsViolation> {
    let mut violations = Vec::new();
    let lost = rt.hdfs.lost_blocks();
    if lost > 0 {
        violations.push(HsViolation::LostBlocks { count: lost });
    }
    if rt.hdfs.dir_block_locations(HS_OUT).is_none() {
        violations.push(HsViolation::MissingOutput);
    }
    violations
}

/// Builds the HSValidate job over the sorted output. One map per output
/// block; reads are modeled against the real [`HS_OUT`] blocks.
pub fn hsvalidate_job(
    rt: &MrRuntime,
    plan: &HsPlan,
    sort: &JobResult,
) -> (JobSpec, Box<dyn MapReduceApp>, Box<dyn InputFormat>) {
    let blocks: Vec<Vec<Record>> =
        output_block_groups(rt, sort).into_iter().flat_map(|(_, runs)| runs).collect();
    let n = blocks.len();
    let input = GeneratorInput::new(n, plan.block_size, |idx| vec![(K::Int(idx as i64), V::Null)]);
    let spec = JobSpec::new("hsvalidate", HS_OUT, "/hs/validate")
        .with_config(JobConfig::default().with_reduces(1).with_combiner(false));
    (spec, Box::new(HsValidateApp { blocks }), Box::new(input))
}

/// Turns the HSValidate job's output into a verdict: sort order across
/// all block boundaries, record-count preservation, per-block checksum
/// provenance, and aggregate input-vs-output content digests.
pub fn hsvalidate_verdict(
    rt: &MrRuntime,
    plan: &HsPlan,
    validate_result: &JobResult,
) -> HsValidateReport {
    let summaries: Vec<BlockSummary> =
        validate_result.outputs.iter().map(|(_, v)| BlockSummary::decode(v)).collect();
    let mut violations = Vec::new();

    // Record-count preservation.
    let found: u64 = summaries.iter().map(|s| s.records).sum();
    if found != plan.total_records() {
        violations.push(HsViolation::RecordCountMismatch { expected: plan.total_records(), found });
    }

    // Global sort order: within each block and across boundaries.
    let mut last_max: Option<&[u8]> = None;
    for (i, s) in summaries.iter().enumerate() {
        if !s.sorted {
            violations.push(HsViolation::OutOfOrder { block: i });
            continue;
        }
        if s.records == 0 {
            continue;
        }
        if let Some(prev) = last_max {
            if prev > s.min.as_slice() {
                violations.push(HsViolation::OutOfOrder { block: i });
            }
        }
        last_max = Some(&s.max);
    }

    // Per-output-block provenance: stored checksum vs recomputed digest.
    let mut stored_out = Vec::new();
    for r in 0..plan.reduces as usize {
        let path = format!("{HS_OUT}/part-r-{r:05}");
        let Some(sums) = rt.hdfs.block_checksums(&path) else { break };
        for (b, s) in sums.into_iter().enumerate() {
            stored_out.push((path.clone(), b, s));
        }
    }
    for (i, ((path, b, stored), summary)) in stored_out.iter().zip(&summaries).enumerate() {
        match stored {
            None => violations.push(HsViolation::MissingChecksum { path: path.clone(), block: *b }),
            Some(st) if *st != summary.checksum => {
                violations.push(HsViolation::BlockChecksumMismatch {
                    block: i,
                    stored: *st,
                    computed: summary.checksum,
                })
            }
            Some(_) => {}
        }
    }

    // Aggregate input provenance vs output content.
    let input_sum = match rt.hdfs.block_checksums(HS_IN) {
        Some(sums) => sums.into_iter().enumerate().fold(0u64, |acc, (b, s)| match s {
            Some(x) => acc.wrapping_add(x),
            None => {
                violations.push(HsViolation::MissingChecksum { path: HS_IN.to_string(), block: b });
                acc
            }
        }),
        None => {
            violations.push(HsViolation::MissingChecksum { path: HS_IN.to_string(), block: 0 });
            0
        }
    };
    let output_sum = summaries.iter().fold(0u64, |acc, s| acc.wrapping_add(s.checksum));
    if input_sum != output_sum {
        violations.push(HsViolation::ChecksumMismatch { input_sum, output_sum });
    }

    HsValidateReport {
        passed: violations.is_empty(),
        violations,
        records: found,
        blocks_checked: summaries.len(),
    }
}

/// One full TPCx-HS run's outcome.
#[derive(Debug, Clone)]
pub struct HsReport {
    /// Scale factor, bytes.
    pub sf_bytes: u64,
    /// HSGen wall time, seconds.
    pub gen_s: f64,
    /// HSSort wall time, seconds.
    pub sort_s: f64,
    /// HSValidate wall time, seconds (prescan + read-back job).
    pub validate_s: f64,
    /// End-to-end wall time, seconds.
    pub total_s: f64,
    /// The figure of merit: scale-factor GB per elapsed hour.
    pub hsph: f64,
    /// Records sorted.
    pub records: u64,
    /// HSValidate verdict.
    pub validate: HsValidateReport,
}

fn secs_between(a: SimTime, b: SimTime) -> f64 {
    b.saturating_since(a).as_secs_f64()
}

/// Runs HSGen → HSSort → HSValidate on `rt` and reports HSph@SF.
///
/// Drives the runtime's own event loop, so fault-plan scenarios must
/// instead compose the stage functions under a `VHadoop` driver (the
/// runtime loop does not route fault wakeups).
pub fn run_tpcxhs(rt: &mut MrRuntime, plan: &HsPlan) -> HsReport {
    let t0 = rt.now();
    let (spec, app, input) = hsgen_job(plan);
    let _ = rt.run_job(spec, app, input);
    let t1 = rt.now();

    register_hsgen(rt, plan);
    let (spec, app, input) = hssort_job(plan);
    let sort = rt.run_job(spec, app, input);
    let t2 = rt.now();

    record_sort_checksums(rt, &sort);
    let pre = integrity_prescan(rt);
    let validate = if pre.is_empty() {
        let (spec, app, input) = hsvalidate_job(rt, plan, &sort);
        let vres = rt.run_job(spec, app, input);
        hsvalidate_verdict(rt, plan, &vres)
    } else {
        HsValidateReport::failed(pre)
    };
    let t3 = rt.now();

    let total_s = secs_between(t0, t3);
    HsReport {
        sf_bytes: plan.sf_bytes,
        gen_s: secs_between(t0, t1),
        sort_s: secs_between(t1, t2),
        validate_s: secs_between(t2, t3),
        total_s,
        hsph: (plan.sf_bytes as f64 / 1e9) / (total_s / 3600.0),
        records: sort.outputs.len() as u64,
        validate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::spec::{ClusterSpec, Placement};

    fn small_plan(seed: u64) -> HsPlan {
        HsPlan::new(200_000, 2, RootSeed(seed)).with_block_size(50_000)
    }

    fn runtime(plan: &HsPlan) -> MrRuntime {
        let spec =
            ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build();
        MrRuntime::new(spec, plan.hdfs_config(2), plan.seed)
    }

    #[test]
    fn records_account_exactly_100_bytes() {
        let recs = hsgen_split(RootSeed(7), 0, 50);
        assert_eq!(records_size(&recs), 50 * RECORD_BYTES);
        assert_eq!(recs[0].0.as_bytes().len(), KEY_BYTES);
        assert_eq!(hsgen_split(RootSeed(7), 0, 50), recs, "generation is deterministic");
    }

    #[test]
    fn multiset_checksum_is_order_independent() {
        let mut recs = hsgen_split(RootSeed(9), 1, 64);
        let before = multiset_checksum(&recs);
        recs.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(multiset_checksum(&recs), before);
        recs[0].0 = K::Bytes(vec![0u8; KEY_BYTES]);
        assert_ne!(multiset_checksum(&recs), before, "content change must move the digest");
    }

    #[test]
    fn clean_run_passes_validation() {
        let plan = small_plan(11);
        let mut rt = runtime(&plan);
        let rep = run_tpcxhs(&mut rt, &plan);
        assert!(rep.validate.passed, "violations: {:?}", rep.validate.violations);
        assert_eq!(rep.records, plan.total_records());
        assert!(rep.hsph > 0.0);
        assert!(rep.sort_s > rep.gen_s, "sorting costs more than generating");
        assert!(rep.validate.blocks_checked >= plan.reduces as usize);
        assert_eq!(rt.hdfs.checksummed_blocks(), plan.splits() + rep.validate.blocks_checked);
    }

    #[test]
    fn flipped_record_fails_with_checksum_mismatch() {
        let plan = small_plan(11).with_corruption(HsCorruption::FlipRecord { block: 1 });
        let mut rt = runtime(&plan);
        let rep = run_tpcxhs(&mut rt, &plan);
        assert!(!rep.validate.passed);
        assert!(
            rep.validate
                .violations
                .iter()
                .any(|v| matches!(v, HsViolation::ChecksumMismatch { .. })),
            "got {:?}",
            rep.validate.violations
        );
    }

    #[test]
    fn flipped_stored_checksum_fails_with_checksum_mismatch() {
        let plan = small_plan(11).with_corruption(HsCorruption::FlipChecksum { block: 0 });
        let mut rt = runtime(&plan);
        let rep = run_tpcxhs(&mut rt, &plan);
        assert!(!rep.validate.passed);
        assert!(
            rep.validate
                .violations
                .iter()
                .any(|v| matches!(v, HsViolation::ChecksumMismatch { .. })),
            "got {:?}",
            rep.validate.violations
        );
    }

    #[test]
    fn disaggregated_roles_run_clean() {
        let plan = small_plan(13);
        let spec =
            ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build();
        let datanodes: Vec<VmId> = (1..=3).map(VmId).collect();
        let trackers: Vec<VmId> = (4..8).map(VmId).collect();
        let roles = NodeRoles::separated(datanodes, trackers);
        let mut rt = MrRuntime::with_roles(spec, plan.hdfs_config(2), roles, plan.seed);
        let rep = run_tpcxhs(&mut rt, &plan);
        assert!(rep.validate.passed, "violations: {:?}", rep.validate.violations);
    }
}
