//! Wordcount — "reads text files and counts how often words occur"
//! (paper Table I, Fig. 2 workload).

use crate::textgen::TextCorpus;
use mapreduce::prelude::*;
use simcore::rng::RootSeed;
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::HdfsConfig;

/// The Wordcount application: mapper splits lines into words emitting
/// `(word, 1)`, the combiner/reducer sum per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCountApp;

impl MapReduceApp for WordCountApp {
    fn name(&self) -> &str {
        "wordcount"
    }

    fn map(&self, _k: &K, value: &V, out: &mut dyn FnMut(K, V)) {
        for w in value.as_text().split_whitespace() {
            out(K::from(w), V::Int(1));
        }
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        out(key.clone(), V::Int(values.iter().map(V::as_int).sum()));
    }

    fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        out(key.clone(), V::Int(values.iter().map(V::as_int).sum()));
        true
    }

    fn cost(&self) -> CostProfile {
        // Tokenization-heavy: high per-byte cost relative to the default.
        CostProfile { map_cpu_per_byte: 120.0, map_cpu_per_record: 6_000.0, ..Default::default() }
    }
}

/// Result of one Wordcount run.
#[derive(Debug, Clone)]
pub struct WordcountReport {
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Job wall time, seconds.
    pub elapsed_s: f64,
    /// Kernel work counters of the run (reallocations, flows touched, …) —
    /// the bench harness reports these next to simulated times so solver
    /// regressions show up in the trajectory.
    pub kernel: simcore::engine::KernelStats,
    /// Full job result (counters, outputs).
    pub result: JobResult,
}

/// Runs Wordcount over `input_bytes` of generated TOEFL-like text on a
/// fresh cluster described by `cluster_spec` (default HDFS settings).
pub fn run_wordcount(
    cluster_spec: ClusterSpec,
    input_bytes: u64,
    config: JobConfig,
    seed: RootSeed,
) -> WordcountReport {
    run_wordcount_with(cluster_spec, input_bytes, config, HdfsConfig::default(), seed)
}

/// [`run_wordcount`] with explicit HDFS settings (block size controls the
/// map count: sweeps that must exercise every worker shrink the blocks).
pub fn run_wordcount_with(
    cluster_spec: ClusterSpec,
    input_bytes: u64,
    config: JobConfig,
    hdfs_cfg: HdfsConfig,
    seed: RootSeed,
) -> WordcountReport {
    run_wordcount_inner(cluster_spec, input_bytes, config, hdfs_cfg, seed, false).0
}

/// [`run_wordcount_with`] with the structured tracer enabled: also returns
/// the run's Chrome `trace_event` JSON (identical config + seed produce a
/// byte-identical trace).
pub fn run_wordcount_traced(
    cluster_spec: ClusterSpec,
    input_bytes: u64,
    config: JobConfig,
    hdfs_cfg: HdfsConfig,
    seed: RootSeed,
) -> (WordcountReport, String) {
    let (report, trace) =
        run_wordcount_inner(cluster_spec, input_bytes, config, hdfs_cfg, seed, true);
    (report, trace.expect("tracing was enabled"))
}

fn run_wordcount_inner(
    cluster_spec: ClusterSpec,
    input_bytes: u64,
    config: JobConfig,
    hdfs_cfg: HdfsConfig,
    seed: RootSeed,
    traced: bool,
) -> (WordcountReport, Option<String>) {
    let mut rt = MrRuntime::new(cluster_spec, hdfs_cfg, seed);
    rt.engine.tracer_mut().set_enabled(traced);
    rt.register_input("/wordcount/in", input_bytes, VmId(1));
    let blocks = rt.hdfs.stat("/wordcount/in").expect("registered").blocks.len();

    let corpus = TextCorpus::english_like(seed.derive("corpus"));
    let block_size = hdfs_cfg.block_size;
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let bytes = if idx == last { input_bytes - (last as u64) * block_size } else { block_size };
        corpus.split_records(idx, bytes)
    });

    let spec = JobSpec::new("wordcount", "/wordcount/in", "/wordcount/out").with_config(config);
    let result = rt.run_job(spec, Box::new(WordCountApp), Box::new(input));
    let trace = traced.then(|| rt.engine.tracer().to_chrome_json());
    let kernel = rt.engine.kernel_stats();
    (WordcountReport { input_bytes, elapsed_s: result.elapsed_secs(), kernel, result }, trace)
}

/// Registers a fresh input file and submits one Wordcount job on an
/// existing runtime without driving it — building block for
/// keep-the-cluster-busy scenarios (migration under load). `run` makes
/// paths unique across successive submissions.
pub fn submit_wordcount(
    rt: &mut MrRuntime,
    run: u32,
    input_bytes: u64,
    config: JobConfig,
    seed: RootSeed,
) -> JobId {
    let path = format!("/wc-load/in-{run:04}");
    rt.register_input(&path, input_bytes, VmId(1 + (run % 4)));
    let blocks = rt.hdfs.stat(&path).expect("registered").blocks.len();
    let block_size = rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(seed.derive("load").derive_index(u64::from(run)));
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let bytes = if idx == last { input_bytes - (last as u64) * block_size } else { block_size };
        corpus.split_records(idx, bytes)
    });
    let spec = JobSpec::new(format!("wordcount-{run}"), path, format!("/wc-load/out-{run:04}"))
        .with_config(config);
    rt.submit(spec, Box::new(WordCountApp), Box::new(input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::spec::Placement;

    const MB: u64 = 1024 * 1024;

    fn small_cluster(placement: Placement) -> ClusterSpec {
        ClusterSpec::builder().hosts(2).vms(8).placement(placement).build()
    }

    #[test]
    fn wordcount_runs_and_counts() {
        let rep = run_wordcount(
            small_cluster(Placement::SingleDomain),
            2 * MB,
            JobConfig::default(),
            RootSeed(3),
        );
        assert!(rep.elapsed_s > 1.0);
        assert!(rep.result.counters.map_input_records > 1_000);
        // Zipf head: some word counted many times.
        let max_count = rep.result.outputs.iter().map(|(_, v)| v.as_int()).max().unwrap();
        assert!(max_count > 100, "head word count {max_count}");
    }

    #[test]
    fn runtime_grows_with_input_size() {
        let t = |mb: u64| {
            run_wordcount(
                small_cluster(Placement::SingleDomain),
                mb * MB,
                JobConfig::default(),
                RootSeed(3),
            )
            .elapsed_s
        };
        let (t2, t8) = (t(2), t(8));
        assert!(t8 > t2, "8 MB ({t8:.2}s) slower than 2 MB ({t2:.2}s)");
    }

    #[test]
    fn cross_domain_no_faster_than_normal() {
        let normal = run_wordcount(
            small_cluster(Placement::SingleDomain),
            8 * MB,
            JobConfig::default(),
            RootSeed(3),
        )
        .elapsed_s;
        let cross = run_wordcount(
            small_cluster(Placement::CrossDomain),
            8 * MB,
            JobConfig::default(),
            RootSeed(3),
        )
        .elapsed_s;
        assert!(cross >= normal * 0.9, "cross {cross:.2}s vs normal {normal:.2}s");
    }
}
