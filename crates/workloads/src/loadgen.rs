//! Synthetic cluster load: a MapReduce job that burns configurable CPU
//! and moves configurable bytes without processing real text. Used where
//! a scenario needs a *busy cluster* (migration-under-load tests) and the
//! wall-clock cost of real wordcount would be wasted.

use mapreduce::prelude::*;
use vcluster::cluster::VmId;

/// The synthetic application: each map emits one opaque byte blob per
/// input record; the reducer counts them. CPU cost comes from the cost
/// profile, I/O volume from the blob size.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticLoadApp {
    /// Guest cycles charged per input record.
    pub cpu_per_record: f64,
    /// Bytes emitted per input record (spill + shuffle volume).
    pub bytes_per_record: usize,
}

impl MapReduceApp for SyntheticLoadApp {
    fn name(&self) -> &str {
        "synthetic-load"
    }
    fn map(&self, k: &K, _v: &V, out: &mut dyn FnMut(K, V)) {
        out(k.clone(), V::Bytes(vec![b'x'; self.bytes_per_record]));
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        out(k.clone(), V::Int(vs.len() as i64));
    }
    fn cost(&self) -> CostProfile {
        CostProfile { map_cpu_per_record: self.cpu_per_record, ..Default::default() }
    }
}

/// Submits one synthetic load job: `maps` map tasks, each charging
/// `cpu_secs` of guest CPU (at 2.4 GHz) and shipping `io_bytes` through
/// spill + shuffle. `run` uniquifies HDFS paths across submissions.
pub fn submit_load_job(
    rt: &mut MrRuntime,
    run: u32,
    maps: u32,
    cpu_secs: f64,
    io_bytes: u64,
) -> JobId {
    let block = rt.hdfs.config().block_size;
    let path = format!("/load/in-{run:04}");
    rt.register_input(&path, u64::from(maps) * block - 1, VmId(1));
    let records_per_map = 4u64;
    let input = GeneratorInput::new(maps as usize, block, move |idx| {
        (0..records_per_map)
            .map(|i| (K::Int((idx as u64 * records_per_map + i) as i64), V::Null))
            .collect()
    });
    let app = SyntheticLoadApp {
        cpu_per_record: cpu_secs * 2.4e9 / records_per_map as f64,
        bytes_per_record: (io_bytes / records_per_map) as usize,
    };
    let spec = JobSpec::new(format!("load-{run}"), path, format!("/load/out-{run:04}"))
        .with_config(JobConfig::default().with_combiner(false));
    rt.submit(spec, Box::new(app), Box::new(input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::prelude::{RootSeed, SimTime};
    use vcluster::spec::{ClusterSpec, Placement};
    use vhdfs::hdfs::HdfsConfig;

    #[test]
    fn load_job_burns_cpu_and_io() {
        let spec =
            ClusterSpec::builder().hosts(2).vms(5).placement(Placement::SingleDomain).build();
        let mut rt =
            MrRuntime::new(spec, HdfsConfig { block_size: 1 << 20, replication: 2 }, RootSeed(1));
        let id = submit_load_job(&mut rt, 0, 4, 2.0, 4 << 20);
        let res = rt.drive_until_done(id).expect("completes");
        assert!(res.elapsed_secs() > 2.0, "CPU load took time: {:.1}s", res.elapsed_secs());
        assert!(res.counters.shuffle_bytes > 12 << 20, "I/O volume shipped");
        assert!(rt.now() > SimTime::ZERO);
    }
}
