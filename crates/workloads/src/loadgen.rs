//! Synthetic cluster load: a MapReduce job that burns configurable CPU
//! and moves configurable bytes without processing real text. Used where
//! a scenario needs a *busy cluster* (migration-under-load tests) and the
//! wall-clock cost of real wordcount would be wasted.
//!
//! On top of the single-job builder this module provides an **open-loop
//! arrival process** ([`ArrivalProcess`]): a seeded stream of job arrivals
//! with exponential interarrival gaps and per-job size jitter, the input
//! the `vsched` control plane's admission queue consumes. All randomness
//! flows through [`simcore::rng`] streams — two processes built from the
//! same seed produce byte-identical schedules.

use mapreduce::prelude::*;
use simcore::prelude::{RootSeed, SimDuration, SimTime};
use vcluster::cluster::VmId;

/// The synthetic application: each map emits one opaque byte blob per
/// input record; the reducer counts them. CPU cost comes from the cost
/// profile, I/O volume from the blob size.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticLoadApp {
    /// Guest cycles charged per input record.
    pub cpu_per_record: f64,
    /// Bytes emitted per input record (spill + shuffle volume).
    pub bytes_per_record: usize,
}

impl MapReduceApp for SyntheticLoadApp {
    fn name(&self) -> &str {
        "synthetic-load"
    }
    fn map(&self, k: &K, _v: &V, out: &mut dyn FnMut(K, V)) {
        out(k.clone(), V::Bytes(vec![b'x'; self.bytes_per_record]));
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        out(k.clone(), V::Int(vs.len() as i64));
    }
    fn cost(&self) -> CostProfile {
        CostProfile { map_cpu_per_record: self.cpu_per_record, ..Default::default() }
    }
}

/// Describes one synthetic load job without touching a runtime: `maps` map
/// tasks, each charging `cpu_secs` of guest CPU (at 2.4 GHz) and shipping
/// `io_bytes` through spill + shuffle. `run` uniquifies HDFS paths across
/// submissions. Input registration and scheduling happen only when the
/// returned [`PendingJob`] is submitted — so the job can sit in an
/// admission queue indefinitely.
pub fn load_job(run: u32, maps: u32, cpu_secs: f64, io_bytes: u64) -> PendingJob {
    PendingJob::new(format!("load-{run}"), move |rt: &mut MrRuntime| {
        let block = rt.hdfs.config().block_size;
        let path = format!("/load/in-{run:04}");
        rt.register_input(&path, u64::from(maps) * block - 1, VmId(1));
        let records_per_map = 4u64;
        let input = GeneratorInput::new(maps as usize, block, move |idx| {
            (0..records_per_map)
                .map(|i| (K::Int((idx as u64 * records_per_map + i) as i64), V::Null))
                .collect()
        });
        let app = SyntheticLoadApp {
            cpu_per_record: cpu_secs * 2.4e9 / records_per_map as f64,
            bytes_per_record: (io_bytes / records_per_map) as usize,
        };
        let spec = JobSpec::new(format!("load-{run}"), path, format!("/load/out-{run:04}"))
            .with_config(JobConfig::default().with_combiner(false));
        rt.submit(spec, Box::new(app), Box::new(input))
    })
}

/// Submits one synthetic load job immediately (see [`load_job`]).
pub fn submit_load_job(
    rt: &mut MrRuntime,
    run: u32,
    maps: u32,
    cpu_secs: f64,
    io_bytes: u64,
) -> JobId {
    load_job(run, maps, cpu_secs, io_bytes).submit(rt)
}

/// Job-mix presets for the arrival process, chosen to sit on the two sides
/// of the paper's normal-vs-cross-domain tradeoff:
///
/// * [`JobMix::CpuBound`] — few heavy-CPU maps with a big shuffle: the
///   wave fits inside one host's cores even with concurrent jobs, so
///   packing keeps the shuffle on the fast software bridge at no CPU cost;
/// * [`JobMix::ShuffleHeavy`] — a full wave of moderately-priced maps:
///   packed onto one host the concurrent waves oversubscribe the host's
///   cores several times over (and dom0's I/O tax lands on the same
///   saturated CPU), so spreading wins despite pushing its modest shuffle
///   across the slower physical NIC;
/// * [`JobMix::Wordcount`] — Fig. 2 wordcount-like intensity: a wave that
///   just fills the cores plus a block-sized shuffle, so — like the
///   paper's normal-vs-cross-domain table — keeping it on one host wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobMix {
    /// Few heavy-CPU maps, big shuffles — pack-friendly.
    CpuBound,
    /// A wide wave of moderate maps — spread-friendly.
    ShuffleHeavy,
    /// Wordcount-like blend (the Fig. 2 workload).
    Wordcount,
}

impl JobMix {
    /// All presets, in CSV/report order.
    pub const ALL: [JobMix; 3] = [JobMix::CpuBound, JobMix::ShuffleHeavy, JobMix::Wordcount];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            JobMix::CpuBound => "cpu-bound",
            JobMix::ShuffleHeavy => "shuffle-heavy",
            JobMix::Wordcount => "wordcount",
        }
    }

    /// Baseline `(maps, cpu_secs, io_bytes)` of one job before per-job
    /// jitter.
    pub fn base(self) -> (u32, f64, u64) {
        match self {
            JobMix::CpuBound => (3, 8.0, 48 << 20),
            JobMix::ShuffleHeavy => (15, 2.5, 4 << 20),
            JobMix::Wordcount => (4, 4.0, 24 << 20),
        }
    }
}

/// One job in an open-loop arrival schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct JobArrival {
    /// Simulated arrival instant.
    pub at: SimTime,
    /// Submitting tenant (fair-share bucket).
    pub tenant: u32,
    /// Map tasks.
    pub maps: u32,
    /// Guest CPU seconds per map.
    pub cpu_secs: f64,
    /// Spill + shuffle bytes per map.
    pub io_bytes: u64,
    /// Rough solo service-time estimate in seconds (admission-queue cost
    /// hint; the slowdown denominator in SLO reports).
    pub expected_s: f64,
}

impl JobArrival {
    /// The deferred job this arrival describes; `run` uniquifies paths.
    pub fn job(&self, run: u32) -> PendingJob {
        load_job(run, self.maps, self.cpu_secs, self.io_bytes)
    }
}

/// Open-loop seeded job-arrival process: `jobs` arrivals with exponential
/// interarrival gaps of the given mean, drawn from a [`JobMix`] with ±20 %
/// per-job size jitter, attributed round-robin to `tenants` tenants.
///
/// Determinism contract: the schedule is a pure function of the fields —
/// every random draw comes from named [`RootSeed::stream`]s, no process
/// state, no OS entropy.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    /// Which kind of jobs arrive.
    pub mix: JobMix,
    /// How many jobs arrive in total (open loop: arrivals ignore progress).
    pub jobs: u32,
    /// Mean interarrival gap.
    pub mean_gap: SimDuration,
    /// Number of tenants the arrivals are attributed to (≥ 1).
    pub tenants: u32,
    seed: RootSeed,
    /// Per-job size jitter half-width: sizes scale by `1 ± jitter`.
    jitter: f64,
}

impl ArrivalProcess {
    /// New process; `seed` fixes the whole schedule. Uses the default
    /// ±20 % size jitter.
    pub fn new(
        mix: JobMix,
        jobs: u32,
        mean_gap: SimDuration,
        tenants: u32,
        seed: RootSeed,
    ) -> Self {
        assert!(tenants >= 1, "need at least one tenant");
        ArrivalProcess { mix, jobs, mean_gap, tenants, seed, jitter: 0.2 }
    }

    /// Overrides the per-job size jitter half-width. `0.0` makes every
    /// job exactly the mix's base size (useful for characterization
    /// sweeps that want the workload axis pure); values are clamped to
    /// `[0, 0.95]` so sizes stay positive.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 0.95);
        self
    }

    /// Materializes the arrival schedule, sorted by arrival time.
    pub fn schedule(&self) -> Vec<JobArrival> {
        use rand::Rng;
        let mut gaps = self.seed.stream("arrival-gaps");
        let mut sizes = self.seed.stream("arrival-sizes");
        let (maps, cpu_secs, io_bytes) = self.mix.base();
        let mean_s = self.mean_gap.as_secs_f64();
        let mut t = SimTime::ZERO;
        (0..self.jobs)
            .map(|i| {
                // Exponential gap via inverse transform; u < 1 by
                // construction so ln is finite.
                let u: f64 = gaps.gen_range(0.0..1.0);
                t += SimDuration::from_secs_f64(-(1.0 - u).ln() * mean_s);
                // `1.0 ± 0.2` rounds to exactly `0.8..1.2`, so the
                // default schedule is bit-identical to the historical
                // hard-coded range. Zero jitter skips the draw.
                let scale: f64 = if self.jitter > 0.0 {
                    sizes.gen_range((1.0 - self.jitter)..(1.0 + self.jitter))
                } else {
                    1.0
                };
                let cpu = cpu_secs * scale;
                let io = (io_bytes as f64 * scale) as u64;
                JobArrival {
                    at: t,
                    tenant: i % self.tenants,
                    maps,
                    cpu_secs: cpu,
                    io_bytes: io,
                    expected_s: cpu + f64::from(maps) * io as f64 / 125e6,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::prelude::{RootSeed, SimTime};
    use vcluster::spec::{ClusterSpec, Placement};
    use vhdfs::hdfs::HdfsConfig;

    #[test]
    fn load_job_burns_cpu_and_io() {
        let spec =
            ClusterSpec::builder().hosts(2).vms(5).placement(Placement::SingleDomain).build();
        let mut rt =
            MrRuntime::new(spec, HdfsConfig { block_size: 1 << 20, replication: 2 }, RootSeed(1));
        let id = submit_load_job(&mut rt, 0, 4, 2.0, 4 << 20);
        let res = rt.drive_until_done(id).expect("completes");
        assert!(res.elapsed_secs() > 2.0, "CPU load took time: {:.1}s", res.elapsed_secs());
        assert!(res.counters.shuffle_bytes > 12 << 20, "I/O volume shipped");
        assert!(rt.now() > SimTime::ZERO);
    }

    #[test]
    fn pending_job_defers_all_side_effects() {
        let spec =
            ClusterSpec::builder().hosts(2).vms(5).placement(Placement::SingleDomain).build();
        let mut rt =
            MrRuntime::new(spec, HdfsConfig { block_size: 1 << 20, replication: 2 }, RootSeed(1));
        let job = load_job(7, 2, 0.5, 1 << 20);
        assert_eq!(job.name(), "load-7");
        assert!(rt.hdfs.stat("/load/in-0007").is_none(), "no input registered before submit");
        let id = job.submit(&mut rt);
        assert!(rt.hdfs.stat("/load/in-0007").is_some(), "submit registers the input");
        assert!(rt.drive_until_done(id).is_some());
    }

    #[test]
    fn same_seed_arrival_streams_are_identical() {
        let mk = |seed| {
            ArrivalProcess::new(
                JobMix::ShuffleHeavy,
                24,
                SimDuration::from_secs(5),
                3,
                RootSeed(seed),
            )
            .schedule()
        };
        let (a, b) = (mk(77), mk(77));
        assert_eq!(a, b, "same seed must reproduce the schedule byte-for-byte");
        assert_eq!(a.len(), 24);
        let c = mk(78);
        assert_ne!(a, c, "a different seed must actually change the schedule");
    }

    #[test]
    fn arrival_schedule_is_ordered_and_jittered() {
        let sched =
            ArrivalProcess::new(JobMix::CpuBound, 16, SimDuration::from_secs(10), 2, RootSeed(5))
                .schedule();
        assert!(sched.windows(2).all(|w| w[0].at <= w[1].at), "arrivals sorted in time");
        assert!(sched.iter().all(|a| a.tenant < 2));
        assert!(sched.iter().all(|a| a.expected_s > 0.0));
        let (_, base_cpu, _) = JobMix::CpuBound.base();
        let distinct: std::collections::BTreeSet<u64> =
            sched.iter().map(|a| a.cpu_secs.to_bits()).collect();
        assert!(distinct.len() > 8, "per-job jitter produces distinct sizes");
        assert!(sched.iter().all(|a| (0.8 * base_cpu..=1.2 * base_cpu).contains(&a.cpu_secs)));
    }

    #[test]
    fn default_jitter_reproduces_the_historical_schedule() {
        // `with_jitter(0.2)` must be a no-op: `1.0 ± 0.2` rounds to the
        // exact doubles `0.8` / `1.2` the range was hard-coded with, so
        // old seeds keep producing bit-identical schedules.
        let mk = || {
            ArrivalProcess::new(JobMix::Wordcount, 12, SimDuration::from_secs(4), 2, RootSeed(9))
        };
        assert_eq!(mk().schedule(), mk().with_jitter(0.2).schedule());
    }

    #[test]
    fn zero_jitter_pins_every_job_to_the_base_size() {
        let (maps, base_cpu, base_io) = JobMix::ShuffleHeavy.base();
        let sched = ArrivalProcess::new(
            JobMix::ShuffleHeavy,
            10,
            SimDuration::from_secs(3),
            2,
            RootSeed(11),
        )
        .with_jitter(0.0)
        .schedule();
        assert!(sched
            .iter()
            .all(|a| { a.maps == maps && a.cpu_secs == base_cpu && a.io_bytes == base_io }));
        // Arrival *times* still vary: the gap stream is independent.
        let distinct: std::collections::BTreeSet<_> = sched.iter().map(|a| a.at).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn wider_jitter_widens_the_size_envelope() {
        let (_, base_cpu, _) = JobMix::CpuBound.base();
        let sched =
            ArrivalProcess::new(JobMix::CpuBound, 32, SimDuration::from_secs(2), 2, RootSeed(3))
                .with_jitter(0.5)
                .schedule();
        assert!(sched.iter().all(|a| (0.5 * base_cpu..=1.5 * base_cpu).contains(&a.cpu_secs)));
        assert!(
            sched.iter().any(|a| a.cpu_secs < 0.8 * base_cpu)
                || sched.iter().any(|a| a.cpu_secs > 1.2 * base_cpu),
            "a 0.5 half-width should escape the default ±20% envelope"
        );
    }
}
