//! TestDFSIO — "a read and write test for HDFS" (paper Table I, Fig. 4b
//! workload).
//!
//! N client VMs concurrently write one file each, then read them back.
//! Throughput is reported the way TestDFSIO does: total bytes moved over
//! the span from first start to last completion. Replication makes writes
//! push R× the bytes of reads, and every byte crosses the NFS server —
//! which is precisely why the paper measures read throughput above write
//! throughput and both degrading in the cross-domain configuration.

use mapreduce::prelude::VmId;
use simcore::owners;
use simcore::prelude::*;
use vcluster::cluster::VirtualCluster;
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::{Hdfs, HdfsConfig};

/// One DFSIO measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsioReport {
    /// Number of files (= concurrent clients).
    pub files: u32,
    /// Bytes per file.
    pub file_bytes: u64,
    /// Aggregate write throughput, MB/s.
    pub write_mb_s: f64,
    /// Aggregate read throughput, MB/s.
    pub read_mb_s: f64,
    /// Write phase wall time, seconds.
    pub write_time_s: f64,
    /// Read phase wall time, seconds.
    pub read_time_s: f64,
}

/// Runs TestDFSIO with `files` clients × `file_bytes` each on a fresh
/// cluster described by `cluster_spec`.
pub fn run_dfsio(
    cluster_spec: ClusterSpec,
    files: u32,
    file_bytes: u64,
    seed: RootSeed,
) -> DfsioReport {
    assert!(files > 0, "need at least one file");
    let mut engine = Engine::new();
    let cluster = VirtualCluster::new(&mut engine, cluster_spec);
    let mut hdfs = Hdfs::format(&cluster, HdfsConfig::default(), seed);

    let clients: Vec<VmId> =
        hdfs.datanodes().iter().copied().cycle().take(files as usize).collect();

    // --- write phase -----------------------------------------------------
    let w_start = engine.now();
    for (i, &vm) in clients.iter().enumerate() {
        hdfs.write_file(
            &mut engine,
            &cluster,
            &format!("/dfsio/f{i}"),
            file_bytes,
            vm,
            Tag::new(owners::WORKLOAD, i as u32, 0),
        );
    }
    let write_time_s = drain(&mut engine, &mut hdfs, files).saturating_since(w_start).as_secs_f64();

    // --- read phase ------------------------------------------------------
    let r_start = engine.now();
    for (i, &vm) in clients.iter().enumerate() {
        // Read a different client's file so reads are not all local.
        let j = (i + 1) % clients.len();
        hdfs.read_file(
            &mut engine,
            &cluster,
            &format!("/dfsio/f{j}"),
            vm,
            Tag::new(owners::WORKLOAD, i as u32, 1),
        );
    }
    let read_time_s = drain(&mut engine, &mut hdfs, files).saturating_since(r_start).as_secs_f64();

    let total_mb = (u64::from(files) * file_bytes) as f64 / 1e6;
    DfsioReport {
        files,
        file_bytes,
        write_mb_s: total_mb / write_time_s.max(1e-9),
        read_mb_s: total_mb / read_time_s.max(1e-9),
        write_time_s,
        read_time_s,
    }
}

/// Drives the engine until `n` workload-tagged HDFS ops complete; returns
/// the completion instant of the last one.
fn drain(engine: &mut Engine, hdfs: &mut Hdfs, n: u32) -> SimTime {
    let mut done = 0;
    let mut last = engine.now();
    while done < n {
        let (t, w) = engine.next_wakeup().expect("DFSIO ops must complete");
        if let Some(c) = hdfs.on_wakeup(engine, &w) {
            debug_assert_eq!(c.client_tag.owner, owners::WORKLOAD);
            done += 1;
            last = t;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::spec::Placement;

    const MB: u64 = 1024 * 1024;

    fn cluster(placement: Placement) -> ClusterSpec {
        ClusterSpec::builder().hosts(2).vms(8).placement(placement).build()
    }

    #[test]
    fn read_throughput_beats_write() {
        let rep = run_dfsio(cluster(Placement::SingleDomain), 4, 32 * MB, RootSeed(4));
        assert!(
            rep.read_mb_s > rep.write_mb_s,
            "read ({:.1} MB/s) > write ({:.1} MB/s)",
            rep.read_mb_s,
            rep.write_mb_s
        );
    }

    #[test]
    fn cross_domain_degrades_throughput() {
        let normal = run_dfsio(cluster(Placement::SingleDomain), 4, 32 * MB, RootSeed(4));
        let cross = run_dfsio(cluster(Placement::CrossDomain), 4, 32 * MB, RootSeed(4));
        assert!(
            cross.write_mb_s <= normal.write_mb_s * 1.05,
            "cross write {:.1} vs normal {:.1}",
            cross.write_mb_s,
            normal.write_mb_s
        );
    }

    #[test]
    fn more_files_more_contention() {
        let few = run_dfsio(cluster(Placement::SingleDomain), 2, 32 * MB, RootSeed(4));
        let many = run_dfsio(cluster(Placement::SingleDomain), 6, 32 * MB, RootSeed(4));
        assert!(
            many.write_time_s > few.write_time_s,
            "6 files ({:.1}s) slower than 2 ({:.1}s)",
            many.write_time_s,
            few.write_time_s
        );
    }

    #[test]
    fn report_fields_consistent() {
        let rep = run_dfsio(cluster(Placement::SingleDomain), 3, 16 * MB, RootSeed(4));
        assert_eq!(rep.files, 3);
        assert_eq!(rep.file_bytes, 16 * MB);
        assert!(rep.write_time_s > 0.0 && rep.read_time_s > 0.0);
    }
}
