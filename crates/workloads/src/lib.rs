//! # workloads — the paper's MapReduce benchmark suite (Table I)
//!
//! | Name        | Category           | Module |
//! |-------------|--------------------|--------|
//! | Wordcount   | MapReduce          | [`wordcount`] |
//! | MRBench     | MapReduce          | [`mrbench`] |
//! | TeraSort    | MapReduce & HDFS   | [`terasort`] |
//! | TestDFSIO   | HDFS               | [`dfsio`] |
//! | TPCx-HS     | MapReduce & HDFS   | [`tpcxhs`] |
//!
//! Plus [`textgen`], the TOEFL-reading-material stand-in (Zipf-distributed
//! English-like corpus). Every driver builds a fresh simulated cluster per
//! measurement so runs are independent, as in the paper's methodology of
//! averaging three fresh runs.

#![warn(missing_docs)]

pub mod dfsio;
pub mod loadgen;
pub mod mrbench;
pub mod terasort;
pub mod textgen;
pub mod tpcxhs;
pub mod wordcount;

/// Convenience imports.
pub mod prelude {
    pub use crate::dfsio::{run_dfsio, DfsioReport};
    pub use crate::loadgen::{
        load_job, submit_load_job, ArrivalProcess, JobArrival, JobMix, SyntheticLoadApp,
    };
    pub use crate::mrbench::{run_mrbench, MrBenchApp, MrBenchReport};
    pub use crate::terasort::{run_terasort, validate, TeraSortReport};
    pub use crate::textgen::TextCorpus;
    pub use crate::tpcxhs::{
        hsgen_job, hssort_job, hsvalidate_job, hsvalidate_verdict, integrity_prescan,
        record_sort_checksums, register_hsgen, run_tpcxhs, HsCorruption, HsPlan, HsReport,
        HsValidateReport, HsViolation,
    };
    pub use crate::wordcount::{run_wordcount, WordCountApp, WordcountReport};
}
