//! English-like text generation.
//!
//! The paper feeds Wordcount with TOEFL reading materials; what matters
//! statistically is a natural-language word-frequency distribution (a few
//! very frequent words, a long tail), because that is what determines
//! combiner selectivity and intermediate data volume. We synthesize a
//! vocabulary of pronounceable words and draw from a Zipf(s≈1) law over
//! it — the standard model of English word frequencies.

use mapreduce::types::{Record, K, V};
use rand::rngs::StdRng;
use rand::Rng;
use simcore::rng::RootSeed;

/// A deterministic Zipf-distributed corpus generator.
#[derive(Debug, Clone)]
pub struct TextCorpus {
    vocab: Vec<String>,
    /// Cumulative Zipf weights for sampling.
    cdf: Vec<f64>,
    seed: RootSeed,
    words_per_line: usize,
}

impl TextCorpus {
    /// A corpus over `vocab_size` words with Zipf exponent `s`.
    pub fn new(seed: RootSeed, vocab_size: usize, s: f64) -> Self {
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        let mut rng = seed.stream("vocab");
        let vocab: Vec<String> = (0..vocab_size).map(|i| synth_word(&mut rng, i)).collect();
        let mut cdf = Vec::with_capacity(vocab_size);
        let mut acc = 0.0;
        for rank in 1..=vocab_size {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        TextCorpus { vocab, cdf, seed, words_per_line: 10 }
    }

    /// Reasonable defaults: 5 000-word vocabulary, s = 1.05 (English-like).
    pub fn english_like(seed: RootSeed) -> Self {
        Self::new(seed, 5_000, 1.05)
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Samples one word index from the Zipf law.
    fn sample_index(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN")) {
            Ok(i) | Err(i) => i.min(self.vocab.len() - 1),
        }
    }

    /// Builds one line of text.
    pub fn line(&self, rng: &mut StdRng) -> String {
        let mut s = String::with_capacity(self.words_per_line * 8);
        for i in 0..self.words_per_line {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&self.vocab[self.sample_index(rng)]);
        }
        s
    }

    /// Generates records for split `idx` totalling ≈ `bytes` of text.
    /// Deterministic in `(corpus seed, idx)`.
    pub fn split_records(&self, idx: usize, bytes: u64) -> Vec<Record> {
        let mut rng = self.seed.stream_at("text-split", idx as u64);
        let mut recs: Vec<Record> = Vec::new();
        let mut produced = 0u64;
        let mut line_no = 0i64;
        while produced < bytes {
            let line = self.line(&mut rng);
            produced += line.len() as u64 + 1;
            recs.push((K::Int(line_no), V::Text(line)));
            line_no += 1;
        }
        recs
    }
}

/// Synthesizes a pronounceable pseudo-word; `salt` guarantees uniqueness.
fn synth_word(rng: &mut StdRng, salt: usize) -> String {
    const ONSETS: &[&str] =
        &["b", "c", "d", "f", "g", "l", "m", "n", "p", "r", "s", "t", "th", "st", "tr"];
    const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou"];
    const CODAS: &[&str] = &["", "n", "r", "s", "t", "nd", "st"];
    let syllables = rng.gen_range(1..=3);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
        w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
    }
    // Rare but possible collisions would merge two vocabulary entries and
    // skew frequencies; suffix a base-26 salt on a slice of the space.
    if salt.is_multiple_of(7) {
        w.push((b'a' + (salt % 26) as u8) as char);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_split() {
        let c = TextCorpus::english_like(RootSeed(9));
        assert_eq!(c.split_records(3, 4096), c.split_records(3, 4096));
        assert_ne!(c.split_records(0, 4096), c.split_records(1, 4096));
    }

    #[test]
    fn split_size_is_close_to_target() {
        let c = TextCorpus::english_like(RootSeed(9));
        let recs = c.split_records(0, 64 * 1024);
        let total: usize = recs.iter().map(|(_, v)| v.as_text().len() + 1).sum();
        let target = 64 * 1024;
        assert!(
            (total as i64 - target as i64).unsigned_abs() < 256,
            "within one line of target: {total} vs {target}"
        );
    }

    #[test]
    fn frequencies_are_skewed() {
        // Zipf: the most frequent word should dominate the median one.
        let c = TextCorpus::english_like(RootSeed(1));
        let recs = c.split_records(0, 256 * 1024);
        let mut counts: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for (_, v) in &recs {
            for w in v.as_text().split_whitespace() {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            freqs[0] > freqs[freqs.len() / 2] * 20,
            "head word ({}) ≫ median word ({})",
            freqs[0],
            freqs[freqs.len() / 2]
        );
    }

    #[test]
    fn distinct_vocabulary() {
        let c = TextCorpus::new(RootSeed(5), 1000, 1.0);
        assert_eq!(c.vocab_size(), 1000);
    }
}
