//! TeraSort — "sorts the data as fast as possible, combining testing the
//! HDFS and MapReduce layers" (paper Table I, Fig. 4a workload).
//!
//! The full three-step benchmark:
//! 1. **TeraGen** — a map-only job generating `total_bytes` of 100-byte
//!    records (10-byte random key + 90-byte payload) into HDFS;
//! 2. **TeraSort** — identity map + total-order [`RangePartitioner`] +
//!    identity reduce; the framework's sort and the partitioner produce a
//!    globally sorted output;
//! 3. **TeraValidate** — checks record count, per-record key order across
//!    the concatenated partitions, and key multiset preservation.

use mapreduce::prelude::*;
use rand::Rng;
use simcore::rng::RootSeed;
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::HdfsConfig;

/// Bytes per TeraSort record (10-byte key + 90-byte payload).
pub const RECORD_BYTES: u64 = 100;
/// Key length in bytes.
pub const KEY_BYTES: usize = 10;

/// Deterministically generates the records of TeraGen split `idx`.
pub fn teragen_split(seed: RootSeed, idx: usize, records: u64) -> Vec<Record> {
    let mut rng = seed.stream_at("teragen", idx as u64);
    (0..records)
        .map(|_| {
            let key: Vec<u8> = (0..KEY_BYTES).map(|_| rng.gen()).collect();
            // Payload compressed to a 10-byte marker plus declared size to
            // keep memory proportional while byte accounting stays exact.
            let payload = vec![b'~'; (RECORD_BYTES as usize) - KEY_BYTES];
            (K::Bytes(key), V::Bytes(payload))
        })
        .collect()
}

/// TeraGen: map-only, emits this split's records.
struct TeraGenApp {
    seed: RootSeed,
    records_per_split: u64,
}

impl MapReduceApp for TeraGenApp {
    fn name(&self) -> &str {
        "teragen"
    }
    fn map(&self, k: &K, _v: &V, out: &mut dyn FnMut(K, V)) {
        let idx = k.as_int() as usize;
        for (key, val) in teragen_split(self.seed, idx, self.records_per_split) {
            out(key, val);
        }
    }
    fn reduce(&self, _k: &K, _vs: &[V], _out: &mut dyn FnMut(K, V)) {
        unreachable!("teragen is map-only");
    }
    fn cost(&self) -> CostProfile {
        // Generation is cheap per byte (random bytes, no parsing).
        CostProfile { map_cpu_per_byte: 10.0, map_cpu_per_record: 600.0, ..Default::default() }
    }
}

/// TeraSort: identity map, range partitioner, identity reduce.
struct TeraSortApp;

impl MapReduceApp for TeraSortApp {
    fn name(&self) -> &str {
        "terasort"
    }
    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        out(k.clone(), v.clone());
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        for v in vs {
            out(k.clone(), v.clone());
        }
    }
    fn partitioner(&self) -> Box<dyn Partitioner> {
        Box::new(RangePartitioner)
    }
    fn cost(&self) -> CostProfile {
        CostProfile { map_cpu_per_byte: 15.0, map_cpu_per_record: 1_200.0, ..Default::default() }
    }
}

/// Outcome of the full TeraGen → TeraSort → TeraValidate pipeline.
#[derive(Debug, Clone)]
pub struct TeraSortReport {
    /// Data size sorted, bytes.
    pub total_bytes: u64,
    /// TeraGen wall time, seconds (the paper's "data generation time").
    pub gen_time_s: f64,
    /// TeraSort wall time, seconds (the paper's "sort time").
    pub sort_time_s: f64,
    /// TeraValidate verdict.
    pub valid: bool,
    /// Records sorted.
    pub records: u64,
}

/// Runs the pipeline over `total_bytes` of data on a fresh cluster.
pub fn run_terasort(
    cluster_spec: ClusterSpec,
    total_bytes: u64,
    reduces: u32,
    seed: RootSeed,
) -> TeraSortReport {
    let hdfs_cfg = HdfsConfig::default();
    let mut rt = MrRuntime::new(cluster_spec, hdfs_cfg, seed);

    let block = hdfs_cfg.block_size;
    let splits = total_bytes.div_ceil(block).max(1) as usize;
    let records_per_split = (total_bytes / splits as u64) / RECORD_BYTES;
    let total_records = records_per_split * splits as u64;

    // --- TeraGen -------------------------------------------------------
    let gen_seed = seed.derive("tera");
    let gen_input = GeneratorInput::new(splits, block, |idx| {
        // One control record per split; the map emits the actual data.
        vec![(K::Int(idx as i64), V::Null)]
    });
    let gen_spec = JobSpec::generated("teragen", "/tera/gen").with_config(JobConfig::map_only());
    let gen_result = rt.run_job(
        gen_spec,
        Box::new(TeraGenApp { seed: gen_seed, records_per_split }),
        Box::new(gen_input),
    );
    let gen_time_s = gen_result.elapsed_secs();
    drop(gen_result);

    // --- TeraSort ------------------------------------------------------
    // The generated data is re-materialized deterministically per split
    // instead of being held in memory between jobs; register the input
    // file's metadata to give the sort job real read I/O and locality.
    rt.register_input("/tera/in", total_records * RECORD_BYTES, VmId(1));
    let blocks = rt.hdfs.stat("/tera/in").expect("registered").blocks.len();
    let per_block = total_records.div_ceil(blocks as u64);
    let sort_input = GeneratorInput::new(blocks, block, move |idx| {
        let start = idx as u64 * per_block;
        let n = per_block.min(total_records.saturating_sub(start));
        // Re-derive the same record stream, re-sharded over HDFS blocks.
        let src_split = idx * splits / blocks;
        teragen_split(gen_seed, src_split, n)
    });
    let sort_spec = JobSpec::new("terasort", "/tera/in", "/tera/out")
        .with_config(JobConfig::default().with_reduces(reduces).with_combiner(false));
    let sort_result = rt.run_job(sort_spec, Box::new(TeraSortApp), Box::new(sort_input));
    let sort_time_s = sort_result.elapsed_secs();

    // --- TeraValidate ----------------------------------------------------
    let valid = validate(&sort_result);
    TeraSortReport {
        total_bytes: total_records * RECORD_BYTES,
        gen_time_s,
        sort_time_s,
        valid,
        records: sort_result.outputs.len() as u64,
    }
}

/// TeraValidate: globally non-decreasing keys and intact record count.
pub fn validate(result: &JobResult) -> bool {
    if result.outputs.is_empty() {
        return false;
    }
    let mut prev: Option<&K> = None;
    for (k, _) in &result.outputs {
        if let Some(p) = prev {
            if k < p {
                return false;
            }
        }
        prev = Some(k);
    }
    result.counters.reduce_output_records == result.outputs.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::spec::Placement;

    const MB: u64 = 1024 * 1024;

    fn cluster(placement: Placement) -> ClusterSpec {
        ClusterSpec::builder().hosts(2).vms(8).placement(placement).build()
    }

    #[test]
    fn terasort_produces_sorted_output() {
        let rep = run_terasort(cluster(Placement::SingleDomain), 2 * MB, 4, RootSeed(1));
        assert!(rep.valid, "output must be globally sorted");
        assert!(rep.records > 10_000);
        assert!(rep.gen_time_s > 0.5);
        assert!(rep.sort_time_s > rep.gen_time_s, "sorting costs more than generating");
    }

    #[test]
    fn sort_time_grows_with_data() {
        let t = |mb: u64| {
            run_terasort(cluster(Placement::SingleDomain), mb * MB, 2, RootSeed(1)).sort_time_s
        };
        let (t1, t4) = (t(1), t(4));
        assert!(t4 > t1, "4 MB ({t4:.2}s) slower than 1 MB ({t1:.2}s)");
    }

    #[test]
    fn teragen_split_is_deterministic() {
        let a = teragen_split(RootSeed(5), 2, 100);
        let b = teragen_split(RootSeed(5), 2, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a[0].0.as_bytes().len(), KEY_BYTES);
    }

    #[test]
    fn validate_rejects_unsorted() {
        let good = run_terasort(cluster(Placement::SingleDomain), MB, 2, RootSeed(2));
        assert!(good.valid);
        // Hand-build an unsorted result.
        let mut rt = MrRuntime::paper_default();
        let _ = &mut rt;
        let bad = JobResult {
            id: JobId(0),
            name: "x".into(),
            submitted: simcore::time::SimTime::ZERO,
            finished: simcore::time::SimTime::ZERO,
            elapsed: simcore::time::SimDuration::ZERO,
            map_phase: simcore::time::SimDuration::ZERO,
            reduce_phase: simcore::time::SimDuration::ZERO,
            counters: Counters::default(),
            outputs: vec![(K::Int(2), V::Null), (K::Int(1), V::Null)],
            partition_sizes: vec![2],
        };
        assert!(!validate(&bad));
    }
}
