//! MRBench — "checks whether small job runs are responsive and running
//! efficiently on the cluster" (paper Table I, Fig. 3 workload).
//!
//! Like Hadoop's MRBench (Kim et al., ICPADS'08), the job is intentionally
//! tiny — a handful of text lines per map — so the measured time is
//! dominated by framework overheads: task launch, tiny HDFS reads, shuffle
//! connections, and output commits. Sweeping the number of maps and
//! reduces (the paper's Fig. 3a/3b) exposes how those overheads scale with
//! concurrency — and how much worse they get when the virtual cluster
//! spans physical machines.

use crate::textgen::TextCorpus;
use mapreduce::prelude::*;
use simcore::rng::RootSeed;
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::HdfsConfig;

/// Bytes of input text per map task (MRBench's "small job" scale).
pub const BYTES_PER_MAP: u64 = 16 * 1024;

/// The MRBench application: a trivial line-echo mapper and identity-ish
/// reducer, faithful to MRBench's do-almost-nothing user code.
#[derive(Debug, Clone, Copy, Default)]
pub struct MrBenchApp;

impl MapReduceApp for MrBenchApp {
    fn name(&self) -> &str {
        "mrbench"
    }

    fn map(&self, _k: &K, value: &V, out: &mut dyn FnMut(K, V)) {
        // Emit each line keyed by its first word (enough to exercise the
        // shuffle without data-dependent skew).
        let text = value.as_text();
        let key = text.split_whitespace().next().unwrap_or("").to_string();
        out(K::Text(key), V::Text(text.to_string()));
    }

    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
        out(key.clone(), V::Int(values.len() as i64));
    }
}

/// One MRBench measurement.
#[derive(Debug, Clone)]
pub struct MrBenchReport {
    /// Number of map tasks.
    pub maps: u32,
    /// Number of reduce tasks.
    pub reduces: u32,
    /// Job wall time, seconds.
    pub elapsed_s: f64,
    /// Full job result.
    pub result: JobResult,
}

/// Runs one MRBench job with `maps` maps and `reduces` reduces on a fresh
/// cluster described by `cluster_spec`.
pub fn run_mrbench(
    cluster_spec: ClusterSpec,
    maps: u32,
    reduces: u32,
    seed: RootSeed,
) -> MrBenchReport {
    assert!(maps > 0, "MRBench needs at least one map");
    // Small HDFS blocks so the input file splits into exactly `maps` blocks.
    let hdfs_cfg = HdfsConfig { block_size: BYTES_PER_MAP, replication: 2 };
    let mut rt = MrRuntime::new(cluster_spec, hdfs_cfg, seed);
    rt.register_input("/mrbench/in", u64::from(maps) * BYTES_PER_MAP - 1, VmId(1));

    let corpus = TextCorpus::english_like(seed.derive("mrbench"));
    let input = GeneratorInput::new(maps as usize, BYTES_PER_MAP, move |idx| {
        corpus.split_records(idx, BYTES_PER_MAP)
    });
    let spec = JobSpec::new("mrbench", "/mrbench/in", "/mrbench/out")
        .with_config(JobConfig::default().with_reduces(reduces).with_combiner(false));
    let result = rt.run_job(spec, Box::new(MrBenchApp), Box::new(input));
    MrBenchReport { maps, reduces, elapsed_s: result.elapsed_secs(), result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::spec::Placement;

    fn cluster(placement: Placement) -> ClusterSpec {
        ClusterSpec::builder().hosts(2).vms(8).placement(placement).build()
    }

    #[test]
    fn small_job_is_startup_dominated() {
        let rep = run_mrbench(cluster(Placement::SingleDomain), 1, 1, RootSeed(2));
        // ~2 task startups (map + reduce) at 1.5 s plus I/O epsilon.
        assert!(rep.elapsed_s > 2.5, "got {:.2}", rep.elapsed_s);
        assert!(rep.elapsed_s < 10.0, "got {:.2}", rep.elapsed_s);
    }

    #[test]
    fn time_grows_with_map_count() {
        let t1 = run_mrbench(cluster(Placement::SingleDomain), 1, 1, RootSeed(2)).elapsed_s;
        let t6 = run_mrbench(cluster(Placement::SingleDomain), 6, 1, RootSeed(2)).elapsed_s;
        assert!(t6 >= t1, "6 maps ({t6:.2}s) ≥ 1 map ({t1:.2}s)");
    }

    #[test]
    fn time_grows_with_reduce_count() {
        let t1 = run_mrbench(cluster(Placement::SingleDomain), 8, 1, RootSeed(2)).elapsed_s;
        let t6 = run_mrbench(cluster(Placement::SingleDomain), 8, 6, RootSeed(2)).elapsed_s;
        assert!(t6 > t1, "6 reduces ({t6:.2}s) > 1 reduce ({t1:.2}s)");
    }

    #[test]
    fn launches_exactly_requested_tasks() {
        let rep = run_mrbench(cluster(Placement::CrossDomain), 4, 3, RootSeed(2));
        assert_eq!(rep.result.counters.launched_maps, 4);
        assert_eq!(rep.result.counters.launched_reduces, 3);
    }
}
