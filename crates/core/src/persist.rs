//! Whole-platform snapshot, restore, and fork.
//!
//! [`VHadoop::snapshot`] captures every piece of dynamic state — the
//! engine (timer heap, fluid solver, activities, tracer), the cluster's
//! VM→host map, the HDFS namespace and in-flight operations, the
//! JobTracker's full job table, the monitor's samples, the migration
//! manager, the dirty-page model, the fault driver, and the controller —
//! into one versioned byte string plus a small *residue* of live `Rc`
//! handles (user map/reduce code and deferred submission closures, which
//! cannot serialize but are immutable and safely shared).
//!
//! [`VHadoop::restore`] relaunches the platform from the snapshot's
//! config and overwrites all dynamic state from the bytes. Because
//! `launch` is deterministic, every launch-derived identifier (fluid
//! `ResourceId`s, interned trace `Name`s, monitor columns) comes out
//! identical to the original's, so only dynamic values need decoding —
//! and a restored platform replays **byte-identically**: same trace
//! bytes, same wakeup sequence, same outputs.
//!
//! [`VHadoop::fork`] is snapshot + restore in one step: an independent
//! platform that diverges only through what happens to it afterwards.
//! The rebalancer's what-if mode (see
//! [`RebalanceMode::WhatIf`](vsched::rebalance::RebalanceMode)) is built
//! on fork: each candidate migration is applied to a fork, driven to
//! completion, and measured, grading `estimate_makespan` against ground
//! truth while the parent stays unperturbed.

use crate::platform::{PlatformConfig, VHadoop};
use mapreduce::persist::JobResidue;
use mapreduce::runtime::PendingJob;
use simcore::persist::{validate_header, Decoder, Encoder, Persist};
use simcore::prelude::*;
use std::collections::HashMap;
use vcluster::cluster::HostId;
use vcluster::migration::ClusterMigrationReport;
use vsched::controller::{WhatIfOutcome, WhatIfRequest};

/// A point-in-time capture of a running [`VHadoop`] platform.
///
/// The byte encoding is canonical: the engine compacts timer tombstones
/// and stale completion-index entries before encoding, and every map is
/// written in sorted key order, so two byte-identical platform states
/// produce byte-identical snapshots regardless of how they got there.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The launch configuration the snapshot was taken under. Restore
    /// relaunches from this, so the snapshot is self-contained.
    pub config: PlatformConfig,
    /// Versioned canonical encoding of all dynamic state (header:
    /// [`simcore::persist::SNAPSHOT_MAGIC`] +
    /// [`simcore::persist::SNAPSHOT_VERSION`]).
    pub bytes: Vec<u8>,
    /// Live out-of-band state: user-code trait objects and deferred
    /// submission closures, shared via `Rc` between the parent and every
    /// restore/fork.
    pub(crate) residue: Residue,
}

impl Snapshot {
    /// The snapshot-format version embedded in the byte header.
    pub fn version(&self) -> u32 {
        validate_header(&self.bytes).expect("snapshot carries a valid header")
    }
}

/// The non-serializable half of a snapshot (see [`Snapshot::residue`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct Residue {
    /// Per-job user code (`app`/`input`/`partitioner`) for every job the
    /// JobTracker still holds, ascending job id.
    pub jobs: Vec<JobResidue>,
    /// Deferred submission closures for jobs queued in admission or
    /// scheduled as future arrivals, keyed by controller job id.
    pub pending: Vec<(u32, PendingJob)>,
}

impl VHadoop {
    /// Captures the full platform state. Takes `&mut self` because the
    /// engine canonicalizes first (compacting dead timers and stale
    /// completion entries — unobservable in the trace, but required so
    /// equal states encode to equal bytes).
    pub fn snapshot(&mut self) -> Snapshot {
        let mut e = Encoder::new();
        self.rt.engine.encode_state(&mut e);
        self.rt.cluster.encode_state(&mut e);
        self.rt.hdfs.encode_state(&mut e);
        self.rt.mr.encode_state(&mut e);
        match &self.monitor {
            Some(m) => {
                true.encode(&mut e);
                m.encode_state(&mut e);
            }
            None => false.encode(&mut e),
        }
        self.migration.encode_state(&mut e);
        self.dirty.encode_state(&mut e);
        self.migration_report.encode(&mut e);
        self.pending_migration_dst.encode(&mut e);
        self.faults.encode_state(&mut e);
        match &self.ctrl {
            Some(c) => {
                true.encode(&mut e);
                c.encode_state(&mut e);
            }
            None => false.encode(&mut e),
        }
        let mut residue = Residue { jobs: self.rt.mr.residue(), pending: Vec::new() };
        if let Some(c) = &self.ctrl {
            residue.pending = c.job_residue();
        }
        Snapshot { config: self.launch_config.clone(), bytes: e.finish(), residue }
    }

    /// Reconstructs a platform from `snap`: relaunches from its config,
    /// then overwrites all dynamic state. The result replays
    /// byte-identically to the platform the snapshot was taken from.
    ///
    /// # Panics
    /// If the snapshot header's version is unsupported or the byte stream
    /// does not decode cleanly (truncation, residue mismatch).
    pub fn restore(snap: &Snapshot) -> VHadoop {
        let mut p = VHadoop::launch(snap.config.clone());
        let mut d = Decoder::new(&snap.bytes);
        p.rt.engine = Engine::decode_state(&mut d);
        p.rt.cluster.restore_state(&mut d);
        p.rt.hdfs.restore_state(&mut d);
        p.rt.mr.restore_state(&mut d, &snap.residue.jobs);
        if bool::decode(&mut d) {
            p.monitor
                .as_mut()
                .expect("snapshot has a monitor but the relaunched platform does not")
                .restore_state(&mut d);
        }
        p.migration.restore_state(&mut d);
        p.dirty.restore_state(&mut d);
        p.migration_report = Option::<ClusterMigrationReport>::decode(&mut d);
        p.pending_migration_dst = Option::<HostId>::decode(&mut d);
        p.faults.restore_state(&mut d);
        if bool::decode(&mut d) {
            let pending: HashMap<u32, PendingJob> = snap.residue.pending.iter().cloned().collect();
            p.ctrl
                .as_mut()
                .expect("snapshot has a controller but the relaunched platform does not")
                .restore_state(&mut d, &pending);
        }
        assert!(d.is_exhausted(), "snapshot bytes not fully consumed — version skew?");
        p
    }

    /// An independent copy of this platform at the current instant. The
    /// fork shares the parent's user code and submission closures (both
    /// immutable) but owns all mutable state: driving the fork never
    /// perturbs the parent, and both replay byte-identically from here
    /// until their inputs diverge.
    pub fn fork(&mut self) -> VHadoop {
        VHadoop::restore(&self.snapshot())
    }

    /// Evaluates a deferred what-if request: forks the platform per
    /// candidate move set, applies the candidate in the fork, drives the
    /// fork until it drains, and commits the best-measured candidate in
    /// the parent (via the controller, which also records the
    /// estimator-vs-measured outcomes).
    pub(crate) fn evaluate_whatif(&mut self, req: WhatIfRequest) {
        let now = self.now();
        let snap = self.snapshot();
        let mut outcomes: Vec<WhatIfOutcome> = Vec::with_capacity(req.candidates.len());
        for cand in &req.candidates {
            let mut fork = VHadoop::restore(&snap);
            if let Some(c) = fork.ctrl.as_mut() {
                c.set_suppress_rebalance(true);
            }
            fork.migration.start_moves(&mut fork.rt.engine, &fork.rt.cluster, &cand.moves);
            fork.drive_until_idle();
            let measured_s = fork.now().saturating_since(now).as_secs_f64();
            outcomes.push(WhatIfOutcome {
                at: now,
                moves: cand.moves.clone(),
                estimated_s: cand.estimated_s,
                measured_s,
                chosen: false,
                model: req.model.clone(),
            });
        }
        if let Some(best) = (0..outcomes.len())
            .min_by(|&a, &b| outcomes[a].measured_s.total_cmp(&outcomes[b].measured_s))
        {
            outcomes[best].chosen = true;
        }
        let mut ctrl = self.ctrl.take().expect("a what-if request implies a controller");
        ctrl.resolve_whatif(&mut self.rt, &mut self.migration, outcomes);
        self.ctrl = Some(ctrl);
    }
}
