//! Per-run and per-job metrics snapshots distilled from the trace.
//!
//! When a platform is launched with tracing enabled
//! (`PlatformConfig::builder().tracing(true)`), every fig/ablation binary
//! gets uniform telemetry for free: [`VHadoop::metrics`] aggregates the
//! recorded spans into per-category statistics, and
//! [`VHadoop::job_metrics`] restricts them to one job via the `job` span
//! argument the MapReduce instrumentation attaches.

use crate::faults::InjectedFault;
use crate::platform::VHadoop;
use mapreduce::job::JobResult;
use simcore::engine::KernelStats;
use simcore::prelude::*;
use std::fmt::Write as _;
use vmonitor::analyser::MonitorReport;
use vsched::controller::WhatIfOutcome;

/// Aggregate view of one traced run (or one job within it).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Simulation instant the snapshot was taken.
    pub sim_time: SimTime,
    /// Total wakeups the engine has delivered.
    pub wakeups: u64,
    /// Spans included in this snapshot (after any job filter).
    pub spans: usize,
    /// Counter samples recorded by the monitor.
    pub counter_samples: usize,
    /// Per-category span statistics, sorted by category name.
    pub categories: Vec<CategoryStats>,
    /// Control-plane decisions, when the platform runs a controller.
    pub ctrl: Option<ControllerStats>,
}

/// Controller decisions distilled for `MetricsSnapshot` (printed by
/// `scalability`/`simbench` alongside kernel stats).
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerStats {
    /// Jobs admitted into the queue.
    pub jobs_admitted: u64,
    /// Jobs bounced off the full queue.
    pub jobs_rejected: u64,
    /// Jobs handed to the JobTracker.
    pub jobs_started: u64,
    /// Jobs that completed.
    pub jobs_finished: u64,
    /// Deepest the admission queue ever got.
    pub queue_depth_hwm: u64,
    /// VM moves the rebalancer handed to the migration manager.
    pub migrations_planned: u64,
    /// VM moves that completed.
    pub migrations_completed: u64,
    /// Injected aborts survived by planned migrations.
    pub migrations_aborted: u64,
    /// SLO violations so far.
    pub slo_violations: u64,
    /// Median admission-to-start wait, seconds.
    pub queue_wait_p50_s: f64,
    /// 95th-percentile admission-to-start wait, seconds.
    pub queue_wait_p95_s: f64,
    /// Candidate migrations graded by fork-and-measure what-if evaluation.
    pub whatif_evals: u64,
    /// Mean relative error of the active makespan model against measured
    /// fork makespans, `|measured − estimated| / measured`, blended over
    /// every evaluation regardless of which model priced it. Zero when no
    /// what-if evaluation ran.
    pub whatif_estimator_err_mean: f64,
    /// Worst relative estimator error across all what-if evaluations.
    pub whatif_estimator_err_max: f64,
    /// Estimator error broken out per [`MakespanModel`] implementation
    /// (each outcome records which model priced it), sorted by model
    /// name. One entry per model that produced at least one evaluation.
    ///
    /// [`MakespanModel`]: vsched::model::MakespanModel
    pub whatif_by_model: Vec<ModelErrStats>,
}

/// What-if estimator error attributed to one [`MakespanModel`] impl.
///
/// [`MakespanModel`]: vsched::model::MakespanModel
#[derive(Debug, Clone, PartialEq)]
pub struct ModelErrStats {
    /// The model's stable name (`hand-priced`, `learned`).
    pub model: String,
    /// What-if evaluations this model priced.
    pub evals: u64,
    /// Mean relative error, `|measured − estimated| / measured`.
    pub err_mean: f64,
    /// Worst relative error.
    pub err_max: f64,
}

impl MetricsSnapshot {
    /// Statistics of one category (`map`, `shuffle`, `reduce`, `hdfs`,
    /// `migration`), if any span of it was recorded.
    pub fn category(&self, name: &str) -> Option<&CategoryStats> {
        self.categories.iter().find(|c| c.name == name)
    }

    /// Human-readable summary table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "t={:.3}s wakeups={} spans={} counter_samples={}",
            self.sim_time.as_secs_f64(),
            self.wakeups,
            self.spans,
            self.counter_samples,
        );
        let _ =
            writeln!(out, "{:<12} {:>6} {:>12} {:>12}", "category", "count", "total_s", "max_s");
        for c in &self.categories {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12.3} {:>12.3}",
                c.name,
                c.count,
                c.total.as_secs_f64(),
                c.max.as_secs_f64(),
            );
        }
        if let Some(ctrl) = &self.ctrl {
            let _ = writeln!(
                out,
                "ctrl: adm={} rej={} fin={} q_hwm={} mig={}/{} viol={} wait p50={:.2}s p95={:.2}s",
                ctrl.jobs_admitted,
                ctrl.jobs_rejected,
                ctrl.jobs_finished,
                ctrl.queue_depth_hwm,
                ctrl.migrations_completed,
                ctrl.migrations_planned,
                ctrl.slo_violations,
                ctrl.queue_wait_p50_s,
                ctrl.queue_wait_p95_s,
            );
            if ctrl.whatif_evals > 0 {
                let _ = writeln!(
                    out,
                    "whatif: evals={} est_err mean={:.1}% max={:.1}%",
                    ctrl.whatif_evals,
                    ctrl.whatif_estimator_err_mean * 100.0,
                    ctrl.whatif_estimator_err_max * 100.0,
                );
                for m in &ctrl.whatif_by_model {
                    let _ = writeln!(
                        out,
                        "whatif[{}]: evals={} est_err mean={:.1}% max={:.1}%",
                        m.model,
                        m.evals,
                        m.err_mean * 100.0,
                        m.err_max * 100.0,
                    );
                }
            }
        }
        out
    }
}

/// HDFS data-integrity counters — the fail-fast inputs of the TPCx-HS
/// HSValidate oracle (DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegrityStats {
    /// Blocks carrying a recorded content checksum.
    pub checksummed_blocks: usize,
    /// Blocks below the configured replication factor (self-healing
    /// backlog).
    pub under_replicated_blocks: usize,
    /// Blocks with zero live replicas — acknowledged data lost.
    pub lost_blocks: usize,
}

/// One-call observability facade over a running platform: run metrics,
/// kernel counters, the fault log, the monitor's analysis, and any what-if
/// evaluations — everything the ablation and figure binaries previously
/// assembled from four separate accessors.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Trace-derived run (or job) metrics, including controller stats.
    pub metrics: MetricsSnapshot,
    /// Simulation-kernel work counters.
    pub kernel: KernelStats,
    /// Every fault injected so far, in injection order.
    pub faults: Vec<InjectedFault>,
    /// The nmon analyser's report, when a monitor is attached.
    pub monitor: Option<MonitorReport>,
    /// Fork-and-measure rebalance evaluations, in evaluation order.
    pub whatif: Vec<WhatIfOutcome>,
    /// HDFS data-integrity counters at observation time.
    pub integrity: IntegrityStats,
}

impl VHadoop {
    /// Metrics over every span recorded so far. Empty (zero spans) unless
    /// the platform was launched with tracing enabled.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.distill(|_| true)
    }

    /// Metrics restricted to spans of `job` (matched on the `job` span
    /// argument; hdfs/migration spans carry no job id and are excluded).
    pub fn job_metrics(&self, job: &JobResult) -> MetricsSnapshot {
        let tracer = self.rt.engine.tracer();
        let id = f64::from(job.id.0);
        self.distill(|s| tracer.span_arg(s, "job") == Some(id))
    }

    /// Everything observable about the run in one call (see
    /// [`Observation`]).
    pub fn observe(&self) -> Observation {
        Observation {
            metrics: self.metrics(),
            kernel: self.rt.engine.kernel_stats(),
            faults: self.fault_log().to_vec(),
            monitor: self.monitor_report(),
            whatif: self.controller().map(|c| c.whatif_outcomes().to_vec()).unwrap_or_default(),
            integrity: IntegrityStats {
                checksummed_blocks: self.rt.hdfs.checksummed_blocks(),
                under_replicated_blocks: self.rt.hdfs.under_replicated_blocks(),
                lost_blocks: self.rt.hdfs.lost_blocks(),
            },
        }
    }

    /// [`VHadoop::observe`] with metrics restricted to one job.
    pub fn observe_job(&self, job: &JobResult) -> Observation {
        Observation { metrics: self.job_metrics(job), ..self.observe() }
    }

    fn distill(&self, filter: impl FnMut(&Span) -> bool) -> MetricsSnapshot {
        let tracer = self.rt.engine.tracer();
        let categories = tracer.category_stats(filter);
        let ctrl = self.controller().map(|c| {
            let counters = c.counters();
            let slo = c.slo_report();
            let errs: Vec<f64> = c
                .whatif_outcomes()
                .iter()
                .filter(|o| o.measured_s > 0.0)
                .map(|o| (o.measured_s - o.estimated_s).abs() / o.measured_s)
                .collect();
            // Per-model attribution: each outcome names the model that
            // priced it, so estimator error never blends across models.
            let mut by_model: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
            for o in c.whatif_outcomes() {
                if o.measured_s > 0.0 {
                    by_model
                        .entry(o.model.as_str())
                        .or_default()
                        .push((o.measured_s - o.estimated_s).abs() / o.measured_s);
                }
            }
            let whatif_by_model: Vec<ModelErrStats> = by_model
                .into_iter()
                .map(|(model, errs)| ModelErrStats {
                    model: model.to_string(),
                    evals: errs.len() as u64,
                    err_mean: errs.iter().sum::<f64>() / errs.len() as f64,
                    err_max: errs.iter().copied().fold(0.0, f64::max),
                })
                .collect();
            ControllerStats {
                jobs_admitted: counters.jobs_admitted,
                jobs_rejected: counters.jobs_rejected,
                jobs_started: counters.jobs_started,
                jobs_finished: counters.jobs_finished,
                queue_depth_hwm: counters.queue_depth_hwm,
                migrations_planned: counters.migrations_planned,
                migrations_completed: counters.migrations_completed,
                migrations_aborted: counters.migrations_aborted,
                slo_violations: counters.slo_violations,
                queue_wait_p50_s: slo.queue_wait_p50_s,
                queue_wait_p95_s: slo.queue_wait_p95_s,
                whatif_evals: c.whatif_outcomes().len() as u64,
                whatif_estimator_err_mean: if errs.is_empty() {
                    0.0
                } else {
                    errs.iter().sum::<f64>() / errs.len() as f64
                },
                whatif_estimator_err_max: errs.iter().copied().fold(0.0, f64::max),
                whatif_by_model,
            }
        });
        MetricsSnapshot {
            sim_time: self.rt.engine.now(),
            wakeups: self.rt.engine.wakeups_delivered(),
            spans: categories.iter().map(|c| c.count).sum(),
            counter_samples: tracer.counters().len(),
            categories,
            ctrl,
        }
    }
}
