//! # vhadoop — a scalable Hadoop virtual cluster platform, in simulation
//!
//! Rust reproduction of *"vHadoop: A Scalable Hadoop Virtual Cluster
//! Platform for MapReduce-Based Parallel Machine Learning with Performance
//! Consideration"* (Ye et al., IEEE CLUSTER 2012 Workshops).
//!
//! The five modules of the paper's architecture map to the workspace:
//!
//! | Paper module | Crate |
//! |---|---|
//! | Virtualization Module (Xen, VMs, NFS, live migration) | [`vcluster`] |
//! | Hadoop Module (HDFS + MapReduce) | [`vhdfs`], [`mapreduce`] |
//! | Machine Learning Algorithm Library (Mahout) | [`mlkit`] |
//! | nmon Monitor | [`vmonitor`] |
//! | MapReduce Tuner | [`tuner`] |
//!
//! This crate is the facade: [`platform::VHadoop`] wires them together
//! behind the paper's execution flow. Everything runs on a deterministic
//! discrete-event simulator ([`simcore`]), with user MapReduce code
//! executing for real over real data.
//!
//! ```
//! use vhadoop::prelude::*;
//!
//! let mut platform = VHadoop::launch(
//!     PlatformConfig::builder()
//!         .cluster(ClusterSpec::builder().hosts(2).vms(4).build())
//!         .tracing(true)
//!         .build(),
//! );
//! let t = platform.upload_input("/in", 8 << 20, VmId(1));
//! assert!(t.as_secs_f64() > 0.0);
//! // The upload left hdfs spans in the trace.
//! assert!(platform.metrics().category("hdfs").is_some());
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod metrics;
pub mod persist;
pub mod platform;
pub mod session;

pub use mapreduce;
pub use mlkit;
pub use simcore;
pub use tuner;
pub use vcluster;
pub use vhdfs;
pub use vmonitor;
pub use vsched;
pub use workloads;

/// Convenience imports covering the whole platform surface.
pub mod prelude {
    pub use crate::faults::{InjectedFault, MIN_THROTTLE_FACTOR, TRACKER_TIMEOUT};
    pub use crate::metrics::{
        ControllerStats, IntegrityStats, MetricsSnapshot, ModelErrStats, Observation,
    };
    pub use crate::persist::Snapshot;
    pub use crate::platform::{
        FailureImpact, PlatformConfig, PlatformConfigBuilder, PlatformEvent, VHadoop,
    };
    pub use crate::session::MigrationSession;
    pub use mapreduce::prelude::*;
    pub use simcore::prelude::*;
    pub use vcluster::prelude::*;
    pub use vhdfs::prelude::{Hdfs, HdfsConfig};
    pub use vmonitor::prelude::*;
    pub use vsched::prelude::*;
}
