//! The unified migration-session API.
//!
//! [`VHadoop::migration`] opens a [`MigrationSession`] — a short-lived
//! builder that replaces the four historical entry points
//! (`migrate_cluster`, `migrate_during_job`, `migrate_cluster_under_load`,
//! manual `start_migration` + polling) with one shape:
//!
//! ```text
//! platform.migration(dst).idle()                       // idle cluster
//! platform.migration(dst).after(d).during_job(spec, app, input)
//! platform.migration(dst).under_load(|rt| ...)         // sustained load
//! platform.migration(dst).start();                     // manual driving:
//! while platform.poll().is_none() { platform.step(); }
//! ```
//!
//! Terminal methods consume the session; [`MigrationSession::after`] defers
//! the start by a simulated delay (armed as a deterministic engine timer).

use crate::platform::{PlatformEvent, VHadoop, MIGRATION_START_MARK};
use mapreduce::app::MapReduceApp;
use mapreduce::input::InputFormat;
use mapreduce::job::{JobEvent, JobResult, JobSpec};
use mapreduce::runtime::MrRuntime;
use simcore::owners;
use simcore::prelude::*;
use vcluster::cluster::HostId;
use vcluster::migration::ClusterMigrationReport;

/// A pending whole-cluster migration to one destination host. Created by
/// [`VHadoop::migration`]; finished by one of the terminal methods.
#[derive(Debug)]
pub struct MigrationSession<'a> {
    platform: &'a mut VHadoop,
    dst: HostId,
    delay: SimDuration,
}

impl<'a> MigrationSession<'a> {
    pub(crate) fn new(platform: &'a mut VHadoop, dst: HostId) -> Self {
        MigrationSession { platform, dst, delay: SimDuration::ZERO }
    }

    /// Defers the migration start by `delay` of simulated time (a
    /// deterministic engine timer; zero by default).
    pub fn after(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Arms the migration without driving the simulation: it starts now
    /// (or after the [`MigrationSession::after`] delay) while the caller
    /// keeps stepping via [`VHadoop::step`], collecting the report with
    /// [`VHadoop::poll`].
    pub fn start(self) {
        if self.delay.is_zero() {
            self.platform.begin_migration(self.dst);
        } else {
            self.platform.pending_migration_dst = Some(self.dst);
            self.platform.migration_report = None;
            self.platform
                .rt
                .engine
                .set_timer_in(self.delay, Tag::new(owners::USER, 0, MIGRATION_START_MARK));
        }
    }

    /// Migrates the idle cluster and drives the simulation to completion.
    pub fn idle(self) -> ClusterMigrationReport {
        let platform = self.platform;
        platform.begin_migration(self.dst);
        loop {
            let (_, w) = platform
                .rt
                .engine
                .next_wakeup()
                .expect("migration must finish before the simulation drains");
            platform.route(&w);
            if let Some(rep) = platform.migration_report.take() {
                return rep;
            }
        }
    }

    /// Submits `spec` and migrates the cluster while the job runs — the
    /// paper's dynamic experiment. The migration starts after the
    /// [`MigrationSession::after`] delay (immediately by default). Returns
    /// the migration report and the job result (the job survives migration
    /// thanks to Hadoop fault tolerance).
    pub fn during_job(
        self,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
    ) -> (ClusterMigrationReport, JobResult) {
        let platform = self.platform;
        let id = platform.rt.submit(spec, app, input);
        platform
            .rt
            .engine
            .set_timer_in(self.delay, Tag::new(owners::USER, 0, MIGRATION_START_MARK));
        platform.pending_migration_dst = Some(self.dst);
        platform.migration_report = None;
        let mut job_result = None;
        loop {
            let Some((_, w)) = platform.rt.engine.next_wakeup() else {
                panic!("simulation drained before job + migration completed");
            };
            for ev in platform.route(&w) {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    if res.id == id {
                        job_result = Some(*res);
                    }
                }
            }
            if platform.migration_report.is_some() && job_result.is_some() {
                return (
                    platform.migration_report.take().expect("just checked"),
                    job_result.take().expect("just checked"),
                );
            }
        }
    }

    /// Migrates the cluster while `submit_next` keeps it busy: the
    /// platform maintains a pipeline of up to two concurrent jobs (so task
    /// slots never idle between jobs), calling `submit_next` whenever the
    /// pipeline drains below that; return `false` to stop resubmitting.
    /// Returns the migration report and every job result collected along
    /// the way — the paper's wordcount-under-migration methodology.
    pub fn under_load(
        self,
        mut submit_next: impl FnMut(&mut MrRuntime) -> bool,
    ) -> (ClusterMigrationReport, Vec<JobResult>) {
        const PIPELINE: usize = 2;
        let platform = self.platform;
        let mut results = Vec::new();
        let mut more = true;
        while more && platform.rt.mr.active_jobs() < PIPELINE {
            more = submit_next(&mut platform.rt);
        }
        assert!(
            platform.rt.mr.active_jobs() > 0,
            "the load generator must submit at least one job"
        );
        MigrationSession { platform: &mut *platform, dst: self.dst, delay: self.delay }.start();
        loop {
            let Some((_, events)) = platform.step() else {
                panic!("simulation drained before cluster migration completed");
            };
            for ev in events {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    results.push(*res);
                }
            }
            let migrating = platform.migration_busy() || platform.pending_migration_dst.is_some();
            while more && migrating && platform.rt.mr.active_jobs() < PIPELINE {
                more = submit_next(&mut platform.rt);
            }
            if let Some(rep) = platform.migration_report.take() {
                return (rep, results);
            }
        }
    }
}
