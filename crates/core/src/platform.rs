//! The vHadoop platform: virtualization + Hadoop + ML library + monitor +
//! tuner behind one handle, mirroring the paper's Fig. 1 architecture and
//! execution flow.
//!
//! 1. the Machine Learning Algorithm Library (or any client) requests a
//!    hadoop virtual cluster → [`VHadoop::launch`];
//! 2. the Virtualization Module starts the VMs, 3. the Hadoop Module
//!    configures them (both inside `launch`);
//! 4. input data is uploaded to HDFS → [`VHadoop::upload_input`];
//! 5. the master assigns maps and reduces, which execute (6.–7.) inside
//!    [`VHadoop::run_job`];
//! 8. output is collected in the returned [`JobResult`];
//! 9. the nmon Monitor samples throughout, and the MapReduce Tuner turns
//!    its report into configuration advice → [`VHadoop::advise`].
//!
//! Live migration of the whole virtual cluster — idle or under load — is
//! available through [`VHadoop::migration`], which opens a
//! [`crate::session::MigrationSession`].

use crate::faults::{FaultDriver, InjectedFault};
use mapreduce::app::MapReduceApp;
use mapreduce::config::JobConfig;
use mapreduce::input::InputFormat;
use mapreduce::job::{JobEvent, JobResult, JobSpec};
use mapreduce::runtime::{MrRuntime, NodeRoles};
use mapreduce::scheduler::SchedulerPolicy;
use simcore::owners;
use simcore::prelude::*;
use vcluster::cluster::{HostId, VmId};
use vcluster::migration::{
    ClusterMigrationReport, MigrationConfig, MigrationEvent, MigrationManager,
    UtilizationDirtyModel,
};
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::HdfsConfig;
use vmonitor::analyser::MonitorReport;
use vmonitor::monitor::Monitor;
use vsched::controller::{Controller, ControllerConfig};
use vsched::placement::apply_placement;

/// Marker payload for the deferred-migration timer.
pub(crate) const MIGRATION_START_MARK: u64 = 0x4D49_4752;

/// Everything needed to launch a platform instance.
///
/// Prefer [`PlatformConfig::builder`] over struct literals: the builder
/// keeps call sites compiling as fields are added.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// The virtual cluster.
    pub cluster: ClusterSpec,
    /// HDFS parameters.
    pub hdfs: HdfsConfig,
    /// Daemon placement: which VMs run datanodes and which run
    /// TaskTrackers. Colocated by default (the paper's layout);
    /// disaggregated data/compute layouts name disjoint sets
    /// (DESIGN.md §17).
    pub roles: NodeRoles,
    /// Live-migration parameters.
    pub migration: MigrationConfig,
    /// nmon sampling interval; `None` disables monitoring.
    pub monitor_interval: Option<SimDuration>,
    /// Engine-wide task-scheduler policy the JobTracker starts with.
    /// Individual submissions may override it via
    /// [`JobConfig::with_scheduler`]. Set via
    /// [`PlatformConfigBuilder::scheduler`]; read via
    /// [`PlatformConfig::scheduler`].
    scheduler: SchedulerPolicy,
    /// Faults to inject (see [`crate::faults`]); empty by default. More
    /// plans can be added later via [`VHadoop::install_fault_plan`]. Set
    /// via [`PlatformConfigBuilder::faults`].
    faults: FaultPlan,
    /// Root seed — the whole run is a pure function of config + seed.
    pub seed: u64,
    /// Record structured trace spans and counters (see
    /// [`simcore::trace`]). Off by default: an untraced run pays nothing.
    /// Set via [`PlatformConfigBuilder::tracing`].
    tracing: bool,
    /// Closed-loop control plane (admission, placement, rebalancing).
    /// Disabled by default — a disabled controller changes nothing about
    /// the run. Set via [`PlatformConfigBuilder::controller`].
    controller: ControllerConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cluster: ClusterSpec::paper_normal(),
            hdfs: HdfsConfig::default(),
            roles: NodeRoles::colocated(),
            migration: MigrationConfig::default(),
            monitor_interval: Some(SimDuration::from_secs(1)),
            scheduler: SchedulerPolicy::default(),
            faults: FaultPlan::new(),
            seed: 42,
            tracing: false,
            controller: ControllerConfig::default(),
        }
    }
}

impl PlatformConfig {
    /// Starts a builder from the paper defaults.
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder { cfg: PlatformConfig::default() }
    }

    /// The task-scheduler policy the JobTracker starts with.
    pub fn scheduler(&self) -> SchedulerPolicy {
        self.scheduler
    }

    /// The fault plan installed at launch.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether structured tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// The control-plane configuration.
    pub fn controller(&self) -> &ControllerConfig {
        &self.controller
    }
}

/// Fluent constructor for [`PlatformConfig`]. Every setter has the paper
/// default until overridden.
#[derive(Debug, Clone)]
pub struct PlatformConfigBuilder {
    cfg: PlatformConfig,
}

impl PlatformConfigBuilder {
    /// Sets the virtual cluster shape.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cfg.cluster = cluster;
        self
    }

    /// Sets HDFS parameters.
    pub fn hdfs(mut self, hdfs: HdfsConfig) -> Self {
        self.cfg.hdfs = hdfs;
        self
    }

    /// Sets daemon placement (datanode / TaskTracker VM sets).
    pub fn roles(mut self, roles: NodeRoles) -> Self {
        self.cfg.roles = roles;
        self
    }

    /// Sets live-migration parameters.
    pub fn migration(mut self, migration: MigrationConfig) -> Self {
        self.cfg.migration = migration;
        self
    }

    /// Sets the nmon sampling interval.
    pub fn monitor_interval(mut self, interval: SimDuration) -> Self {
        self.cfg.monitor_interval = Some(interval);
        self
    }

    /// Disables monitoring entirely.
    pub fn no_monitor(mut self) -> Self {
        self.cfg.monitor_interval = None;
        self
    }

    /// Sets the initial task-scheduler policy.
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.cfg.scheduler = policy;
        self
    }

    /// Sets the fault-injection plan applied at launch.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Enables (or disables) structured tracing.
    pub fn tracing(mut self, on: bool) -> Self {
        self.cfg.tracing = on;
        self
    }

    /// Installs a closed-loop controller configuration.
    pub fn controller(mut self, cfg: ControllerConfig) -> Self {
        self.cfg.controller = cfg;
        self
    }

    /// Selects the makespan model pricing control-plane decisions
    /// (adaptive placement, what-if candidate scoring): the hand-priced
    /// baseline or a learned regression tree. Writes into the controller
    /// configuration — call after [`PlatformConfigBuilder::controller`]
    /// if both are used.
    pub fn cost_model(mut self, model: vsched::model::MakespanKind) -> Self {
        self.cfg.controller.model = model;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> PlatformConfig {
        self.cfg
    }
}

/// What a worker-VM failure cost the platform, returned by
/// [`VHadoop::fail_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureImpact {
    /// Running task attempts the JobTracker re-queued onto surviving
    /// trackers (map and reduce).
    pub remapped_tasks: usize,
    /// Under-replicated blocks HDFS started re-replicating from surviving
    /// copies.
    pub rereplicated_blocks: usize,
    /// Blocks whose only replica lived on the failed VM — unrecoverable.
    pub lost_blocks: usize,
}

/// The running platform.
#[derive(Debug)]
pub struct VHadoop {
    /// Engine + cluster + HDFS + JobTracker.
    pub rt: MrRuntime,
    pub(crate) monitor: Option<Monitor>,
    pub(crate) migration: MigrationManager,
    pub(crate) dirty: UtilizationDirtyModel,
    pub(crate) migration_report: Option<ClusterMigrationReport>,
    /// Destination of a deferred migration armed by
    /// [`crate::session::MigrationSession`]; consumed when its timer fires.
    pub(crate) pending_migration_dst: Option<HostId>,
    /// Installed fault plan, live throttles and injection log.
    pub(crate) faults: FaultDriver,
    /// Closed-loop controller; `Some` only when the config enables it.
    pub(crate) ctrl: Option<Box<Controller>>,
    /// The configuration this platform was launched from, kept so a
    /// [`crate::persist::Snapshot`] is self-contained: restore relaunches
    /// from it and re-derives every launch-time identifier.
    pub(crate) launch_config: PlatformConfig,
}

impl VHadoop {
    /// Boots the cluster, formats HDFS, starts the JobTracker and (if
    /// configured) the monitor.
    pub fn launch(config: PlatformConfig) -> Self {
        // Keep the *original* config (pre-placement): restore relaunches
        // from it and the controller re-derives the same placement.
        let launch_config = config.clone();
        let seed = RootSeed(config.seed);
        let mut cluster = config.cluster;
        let vms = cluster.vms;
        // An enabled controller may re-place VMs before the cluster boots;
        // disabled (or with the `Spec` policy) it leaves the spec alone.
        let mut ctrl =
            config.controller.enabled.then(|| Box::new(Controller::new(config.controller)));
        if let Some(c) = &ctrl {
            let map = c.placement_map(&cluster);
            apply_placement(&mut cluster, map);
        }
        let mut rt = MrRuntime::with_roles(cluster, config.hdfs, config.roles, seed);
        rt.mr.set_policy(config.scheduler);
        // Enable tracing before the monitor attaches, so the monitor's
        // column names are interned into a live tracer.
        rt.engine.tracer_mut().set_enabled(config.tracing);
        let monitor = config.monitor_interval.map(|iv| Monitor::attach(&mut rt.engine, iv));
        let mut faults = FaultDriver::default();
        faults.install(&mut rt.engine, &config.faults);
        if let Some(c) = ctrl.as_mut() {
            c.attach(&mut rt.engine, &rt.cluster);
        }
        VHadoop {
            rt,
            monitor,
            migration: MigrationManager::new(config.migration),
            dirty: UtilizationDirtyModel::new(vms, seed.derive("dirty")),
            migration_report: None,
            pending_migration_dst: None,
            faults,
            ctrl,
            launch_config,
        }
    }

    /// Platform launch with all defaults (the paper's 16-node cluster).
    pub fn paper_default() -> Self {
        Self::launch(PlatformConfig::builder().build())
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.rt.now()
    }

    /// Registers input metadata without simulating the upload.
    pub fn register_input(&mut self, path: &str, bytes: u64, writer: VmId) {
        self.rt.register_input(path, bytes, writer);
    }

    /// Uploads input data through the full HDFS pipeline (flow step 4);
    /// returns the upload duration. Unlike [`MrRuntime::upload`], monitor
    /// and migration wakeups keep flowing during the upload.
    pub fn upload_input(&mut self, path: &str, bytes: u64, writer: VmId) -> SimDuration {
        let start = self.rt.engine.now();
        let marker = Tag::new(owners::USER, u32::MAX, 0xB10C);
        self.rt.hdfs.write_file(&mut self.rt.engine, &self.rt.cluster, path, bytes, writer, marker);
        loop {
            let (t, w) = self
                .rt
                .engine
                .next_wakeup()
                .expect("upload must complete before the simulation drains");
            for ev in self.route(&w) {
                if let PlatformEvent::Hdfs(c) = &ev {
                    if c.client_tag == marker {
                        return t.saturating_since(start);
                    }
                }
            }
        }
    }

    /// Runs one job to completion (flow steps 5–8).
    pub fn run_job(
        &mut self,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
    ) -> JobResult {
        let id = self.rt.submit(spec, app, input);
        loop {
            let (_, w) =
                self.rt.engine.next_wakeup().expect("job must finish before the simulation drains");
            for ev in self.route(&w) {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    if res.id == id {
                        return *res;
                    }
                }
            }
        }
    }

    /// Opens a [`crate::session::MigrationSession`] targeting `dst` — the
    /// single entry point for whole-cluster live migration (idle, during
    /// one job, under sustained load, or manually driven via
    /// [`MigrationSession::start`](crate::session::MigrationSession::start)
    /// + [`VHadoop::step`] + [`VHadoop::poll`]).
    pub fn migration(&mut self, dst: HostId) -> crate::session::MigrationSession<'_> {
        crate::session::MigrationSession::new(self, dst)
    }

    /// The report of the last completed cluster migration, if any
    /// (consumed by the call). Pair with
    /// [`MigrationSession::start`](crate::session::MigrationSession::start)
    /// and [`VHadoop::step`] when driving the loop manually.
    pub fn poll(&mut self) -> Option<ClusterMigrationReport> {
        self.migration_report.take()
    }

    /// Kicks off the migration of every VM not already on `dst`.
    pub(crate) fn begin_migration(&mut self, dst: HostId) {
        let vms: Vec<VmId> =
            self.rt.cluster.vms().filter(|&v| self.rt.cluster.host_of(v) != dst).collect();
        assert!(!vms.is_empty(), "every VM already lives on {dst}");
        self.migration.start_cluster_migration(&mut self.rt.engine, &self.rt.cluster, &vms, dst);
        self.migration_report = None;
    }

    /// True while a migration session is in flight.
    pub fn migration_busy(&self) -> bool {
        self.migration.busy()
    }

    /// Advances the simulation by one wakeup, routing it; `None` when the
    /// event queue has drained.
    pub fn step(&mut self) -> Option<(SimTime, Vec<PlatformEvent>)> {
        let (t, w) = self.rt.engine.next_wakeup()?;
        let events = self.route(&w);
        Some((t, events))
    }

    /// The closed-loop controller, when the config enabled one.
    pub fn controller(&self) -> Option<&Controller> {
        self.ctrl.as_deref()
    }

    /// Registers a job to arrive at `at` with the controller (open-loop
    /// stream input); returns the controller job id.
    ///
    /// # Panics
    /// If the platform was launched without an enabled controller.
    pub fn schedule_job(
        &mut self,
        at: SimTime,
        tenant: u32,
        expected_s: f64,
        job: mapreduce::runtime::PendingJob,
    ) -> u32 {
        let ctrl = self.ctrl.as_mut().expect("controller not enabled in PlatformConfig");
        ctrl.schedule(&mut self.rt.engine, at, tenant, expected_s, job)
    }

    /// Offers a job to the controller's admission queue right now; returns
    /// whether it was admitted.
    ///
    /// # Panics
    /// If the platform was launched without an enabled controller.
    pub fn enqueue_job(
        &mut self,
        tenant: u32,
        expected_s: f64,
        job: mapreduce::runtime::PendingJob,
    ) -> bool {
        let mut ctrl = self.ctrl.take().expect("controller not enabled in PlatformConfig");
        let admitted = ctrl.offer(&mut self.rt, &mut self.migration, tenant, expected_s, job);
        self.ctrl = Some(ctrl);
        admitted
    }

    /// Drives the simulation until the controller has no queued, running,
    /// or future jobs (and the event queue supports no further progress);
    /// returns completed jobs in completion order.
    pub fn drive_until_idle(&mut self) -> Vec<JobResult> {
        let mut done = Vec::new();
        while let Some((_, events)) = self.step() {
            for ev in events {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    done.push(*res);
                }
            }
        }
        done
    }

    /// Simulates the crash of worker VM `vm`: its datanode replicas are
    /// dropped and re-replicated from survivors, and its running tasks are
    /// re-queued — the Hadoop fault-tolerance path the paper relies on
    /// during migration downtime. Returns the [`FailureImpact`] across
    /// both subsystems.
    ///
    /// # Panics
    /// If `vm` is the namenode or not a live worker.
    pub fn fail_node(&mut self, vm: VmId) -> FailureImpact {
        assert_ne!(vm, self.rt.hdfs.namenode(), "cannot fail the master VM");
        let (rereplicated_blocks, lost_blocks) =
            self.rt.hdfs.fail_datanode(&mut self.rt.engine, &self.rt.cluster, vm);
        let remapped_tasks = self.rt.mr.fail_tracker(&mut self.rt.engine, &self.rt.cluster, vm);
        FailureImpact { remapped_tasks, rereplicated_blocks, lost_blocks }
    }

    /// The nmon analyser's report over everything sampled so far.
    pub fn monitor_report(&self) -> Option<MonitorReport> {
        self.monitor.as_ref().map(MonitorReport::from_monitor)
    }

    /// Raw monitor access (CSV dumps, sparklines).
    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// MapReduce Tuner advice for a finished job (flow step 9).
    pub fn advise(&self, job: &JobResult, config: &JobConfig) -> tuner::Advice {
        match self.monitor_report() {
            Some(report) => tuner::analyze(&report, Some(job), Some(config)),
            None => tuner::Advice::default(),
        }
    }

    /// Routes one wakeup to its subsystem.
    pub(crate) fn route(&mut self, w: &Wakeup) -> Vec<PlatformEvent> {
        if let Some(m) = self.monitor.as_mut() {
            if m.on_wakeup(&mut self.rt.engine, w) {
                return Vec::new();
            }
        }
        if let Wakeup::Timer { tag, .. } = w {
            if tag.owner == owners::USER && tag.b == MIGRATION_START_MARK {
                // A deferred migration session's start timer fired.
                if let Some(dst) = self.pending_migration_dst.take() {
                    self.begin_migration(dst);
                }
                return Vec::new();
            }
        }
        if w.tag().owner == owners::CTRL {
            // Borrow dance: the controller needs the runtime and the
            // migration manager, both fields of self.
            if let Some(mut ctrl) = self.ctrl.take() {
                ctrl.on_wakeup(&mut self.rt, &mut self.migration, w);
                self.ctrl = Some(ctrl);
            }
            // A what-if rebalance tick defers its decision; resolve it here
            // by forking the platform per candidate (see crate::persist).
            if let Some(req) = self.ctrl.as_mut().and_then(|c| c.take_whatif_request()) {
                self.evaluate_whatif(req);
            }
            return Vec::new();
        }
        if w.tag().owner == owners::FAULT {
            if let Wakeup::Timer { tag, .. } = w {
                return self.on_fault_wakeup(*tag);
            }
            return Vec::new();
        }
        if w.tag().owner == owners::MIGRATION {
            let events = self.migration.on_wakeup(
                &mut self.rt.engine,
                &mut self.rt.cluster,
                &mut self.dirty,
                w,
            );
            if let Some(ctrl) = self.ctrl.as_mut() {
                ctrl.on_migration_events(&events);
            }
            let mut out = Vec::new();
            for ev in events {
                if let MigrationEvent::AllDone(rep) = &ev {
                    self.migration_report = Some(rep.clone());
                }
                out.push(PlatformEvent::Migration(ev));
            }
            return out;
        }
        let routed = self.rt.route_full(w);
        if let Some(mut ctrl) = self.ctrl.take() {
            for ev in &routed.job_events {
                ctrl.on_job_event(&mut self.rt, &mut self.migration, ev);
            }
            self.ctrl = Some(ctrl);
        }
        let mut out: Vec<PlatformEvent> =
            routed.job_events.into_iter().map(PlatformEvent::Job).collect();
        if let Some(c) = routed.hdfs_completion {
            out.push(PlatformEvent::Hdfs(c));
        }
        out
    }
}

/// Platform-level progress event.
#[derive(Debug)]
pub enum PlatformEvent {
    /// MapReduce progress.
    Job(JobEvent),
    /// Migration progress.
    Migration(MigrationEvent),
    /// A direct HDFS operation (upload, DFSIO) completed.
    Hdfs(vhdfs::hdfs::HdfsCompletion),
    /// A planned fault was injected (see [`VHadoop::fault_log`]).
    Fault(InjectedFault),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_applies_scheduler_policy() {
        let p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(ClusterSpec::builder().hosts(1).vms(2).build())
                .no_monitor()
                .scheduler(SchedulerPolicy::Fair)
                .build(),
        );
        assert_eq!(p.rt.mr.policy(), SchedulerPolicy::Fair);
        assert_eq!(VHadoop::paper_default().rt.mr.policy(), SchedulerPolicy::Fifo);
    }

    #[test]
    fn builder_matches_defaults_and_overrides() {
        let d = PlatformConfig::default();
        let b = PlatformConfig::builder().build();
        assert_eq!(b.seed, d.seed);
        assert_eq!(b.monitor_interval, d.monitor_interval);
        assert!(!b.tracing());
        let c = PlatformConfig::builder()
            .seed(7)
            .tracing(true)
            .monitor_interval(SimDuration::from_millis(250))
            .build();
        assert_eq!(c.seed, 7);
        assert!(c.tracing());
        assert_eq!(c.monitor_interval, Some(SimDuration::from_millis(250)));
    }

    #[test]
    fn cost_model_builder_writes_the_controller_config() {
        use vsched::model::MakespanKind;
        let c = PlatformConfig::builder().cost_model(MakespanKind::HandPriced).build();
        assert_eq!(c.controller().model, MakespanKind::HandPriced);
        assert_eq!(c.controller().model.name(), "hand-priced");
    }
}
