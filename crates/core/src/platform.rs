//! The vHadoop platform: virtualization + Hadoop + ML library + monitor +
//! tuner behind one handle, mirroring the paper's Fig. 1 architecture and
//! execution flow.
//!
//! 1. the Machine Learning Algorithm Library (or any client) requests a
//!    hadoop virtual cluster → [`VHadoop::launch`];
//! 2. the Virtualization Module starts the VMs, 3. the Hadoop Module
//!    configures them (both inside `launch`);
//! 4. input data is uploaded to HDFS → [`VHadoop::upload_input`];
//! 5. the master assigns maps and reduces, which execute (6.–7.) inside
//!    [`VHadoop::run_job`];
//! 8. output is collected in the returned [`JobResult`];
//! 9. the nmon Monitor samples throughout, and the MapReduce Tuner turns
//!    its report into configuration advice → [`VHadoop::advise`].
//!
//! Live migration of the whole virtual cluster — idle or under load — is
//! available through [`VHadoop::migrate_cluster`] and
//! [`VHadoop::migrate_during_job`].

use mapreduce::app::MapReduceApp;
use mapreduce::config::JobConfig;
use mapreduce::input::InputFormat;
use mapreduce::job::{JobEvent, JobResult, JobSpec};
use mapreduce::runtime::MrRuntime;
use mapreduce::scheduler::SchedulerPolicy;
use simcore::owners;
use simcore::prelude::*;
use vcluster::cluster::{HostId, VmId};
use vcluster::migration::{
    ClusterMigrationReport, MigrationConfig, MigrationEvent, MigrationManager,
    UtilizationDirtyModel,
};
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::HdfsConfig;
use vmonitor::analyser::MonitorReport;
use vmonitor::monitor::Monitor;

/// Marker payload for the deferred-migration timer.
const MIGRATION_START_MARK: u64 = 0x4D49_4752;

/// Everything needed to launch a platform instance.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// The virtual cluster.
    pub cluster: ClusterSpec,
    /// HDFS parameters.
    pub hdfs: HdfsConfig,
    /// Live-migration parameters.
    pub migration: MigrationConfig,
    /// nmon sampling interval; `None` disables monitoring.
    pub monitor_interval: Option<SimDuration>,
    /// Engine-wide task-scheduler policy the JobTracker starts with.
    /// Individual submissions may override it via
    /// [`JobConfig::with_scheduler`].
    pub scheduler: SchedulerPolicy,
    /// Root seed — the whole run is a pure function of config + seed.
    pub seed: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cluster: ClusterSpec::paper_normal(),
            hdfs: HdfsConfig::default(),
            migration: MigrationConfig::default(),
            monitor_interval: Some(SimDuration::from_secs(1)),
            scheduler: SchedulerPolicy::default(),
            seed: 42,
        }
    }
}

/// The running platform.
#[derive(Debug)]
pub struct VHadoop {
    /// Engine + cluster + HDFS + JobTracker.
    pub rt: MrRuntime,
    monitor: Option<Monitor>,
    migration: MigrationManager,
    dirty: UtilizationDirtyModel,
    migration_report: Option<ClusterMigrationReport>,
}

impl VHadoop {
    /// Boots the cluster, formats HDFS, starts the JobTracker and (if
    /// configured) the monitor.
    pub fn launch(config: PlatformConfig) -> Self {
        let seed = RootSeed(config.seed);
        let vms = config.cluster.vms;
        let mut rt = MrRuntime::new(config.cluster, config.hdfs, seed);
        rt.mr.set_policy(config.scheduler);
        let monitor = config.monitor_interval.map(|iv| Monitor::attach(&mut rt.engine, iv));
        VHadoop {
            rt,
            monitor,
            migration: MigrationManager::new(config.migration),
            dirty: UtilizationDirtyModel::new(vms, seed.derive("dirty")),
            migration_report: None,
        }
    }

    /// Platform launch with all defaults (the paper's 16-node cluster).
    pub fn paper_default() -> Self {
        Self::launch(PlatformConfig::default())
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.rt.now()
    }

    /// Registers input metadata without simulating the upload.
    pub fn register_input(&mut self, path: &str, bytes: u64, writer: VmId) {
        self.rt.register_input(path, bytes, writer);
    }

    /// Uploads input data through the full HDFS pipeline (flow step 4);
    /// returns the upload duration. Unlike [`MrRuntime::upload`], monitor
    /// and migration wakeups keep flowing during the upload.
    pub fn upload_input(&mut self, path: &str, bytes: u64, writer: VmId) -> SimDuration {
        let start = self.rt.engine.now();
        let marker = Tag::new(owners::USER, u32::MAX, 0xB10C);
        self.rt.hdfs.write_file(&mut self.rt.engine, &self.rt.cluster, path, bytes, writer, marker);
        loop {
            let (t, w) = self
                .rt
                .engine
                .next_wakeup()
                .expect("upload must complete before the simulation drains");
            for ev in self.route(&w) {
                if let PlatformEvent::Hdfs(c) = &ev {
                    if c.client_tag == marker {
                        return t.saturating_since(start);
                    }
                }
            }
        }
    }

    /// Runs one job to completion (flow steps 5–8).
    pub fn run_job(
        &mut self,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
    ) -> JobResult {
        let id = self.rt.submit(spec, app, input);
        loop {
            let (_, w) =
                self.rt.engine.next_wakeup().expect("job must finish before the simulation drains");
            for ev in self.route(&w) {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    if res.id == id {
                        return *res;
                    }
                }
            }
        }
    }

    /// Live-migrates every VM to `dst` with the cluster otherwise idle.
    pub fn migrate_cluster(&mut self, dst: HostId) -> ClusterMigrationReport {
        let vms: Vec<VmId> =
            self.rt.cluster.vms().filter(|&v| self.rt.cluster.host_of(v) != dst).collect();
        assert!(!vms.is_empty(), "every VM already lives on {dst}");
        self.migration.start_cluster_migration(&mut self.rt.engine, &self.rt.cluster, &vms, dst);
        self.migration_report = None;
        loop {
            let (_, w) = self
                .rt
                .engine
                .next_wakeup()
                .expect("migration must finish before the simulation drains");
            self.route(&w);
            if let Some(rep) = self.migration_report.take() {
                return rep;
            }
        }
    }

    /// Submits `spec` and, `start_after` later, live-migrates the whole
    /// cluster to `dst` while the job runs — the paper's dynamic
    /// experiment. Returns the migration report and the job result (the
    /// job survives migration thanks to Hadoop fault tolerance).
    pub fn migrate_during_job(
        &mut self,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
        dst: HostId,
        start_after: SimDuration,
    ) -> (ClusterMigrationReport, JobResult) {
        let id = self.rt.submit(spec, app, input);
        self.rt.engine.set_timer_in(start_after, Tag::new(owners::USER, 0, MIGRATION_START_MARK));
        self.migration_report = None;
        let mut job_result = None;
        let mut started = false;
        loop {
            let Some((_, w)) = self.rt.engine.next_wakeup() else {
                panic!("simulation drained before job + migration completed");
            };
            if let Wakeup::Timer { tag, .. } = &w {
                if tag.owner == owners::USER && tag.b == MIGRATION_START_MARK {
                    let vms: Vec<VmId> = self
                        .rt
                        .cluster
                        .vms()
                        .filter(|&v| self.rt.cluster.host_of(v) != dst)
                        .collect();
                    assert!(!vms.is_empty(), "every VM already lives on {dst}");
                    self.migration.start_cluster_migration(
                        &mut self.rt.engine,
                        &self.rt.cluster,
                        &vms,
                        dst,
                    );
                    started = true;
                    continue;
                }
            }
            for ev in self.route(&w) {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    if res.id == id {
                        job_result = Some(*res);
                    }
                }
            }
            if self.migration_report.is_some() && job_result.is_some() {
                debug_assert!(started, "migration completed without starting?");
                return (
                    self.migration_report.take().expect("just checked"),
                    job_result.take().expect("just checked"),
                );
            }
        }
    }

    /// Starts a whole-cluster migration to `dst` without driving the
    /// simulation — combine with [`VHadoop::step`] to interleave your own
    /// workload (e.g. back-to-back jobs keeping the cluster busy).
    pub fn start_migration(&mut self, dst: HostId) {
        let vms: Vec<VmId> =
            self.rt.cluster.vms().filter(|&v| self.rt.cluster.host_of(v) != dst).collect();
        assert!(!vms.is_empty(), "every VM already lives on {dst}");
        self.migration.start_cluster_migration(&mut self.rt.engine, &self.rt.cluster, &vms, dst);
        self.migration_report = None;
    }

    /// True while a migration session is in flight.
    pub fn migration_busy(&self) -> bool {
        self.migration.busy()
    }

    /// The report of the last completed cluster migration, if any
    /// (consumed by the call).
    pub fn take_migration_report(&mut self) -> Option<ClusterMigrationReport> {
        self.migration_report.take()
    }

    /// Advances the simulation by one wakeup, routing it; `None` when the
    /// event queue has drained.
    pub fn step(&mut self) -> Option<(SimTime, Vec<PlatformEvent>)> {
        let (t, w) = self.rt.engine.next_wakeup()?;
        let events = self.route(&w);
        Some((t, events))
    }

    /// Migrates the whole cluster to `dst` while `submit_next` keeps the
    /// cluster busy: the platform maintains a pipeline of up to two
    /// concurrent jobs (so task slots never idle between jobs), calling
    /// `submit_next` whenever the pipeline drains below that; return
    /// `false` to stop resubmitting. Returns the migration report and
    /// every job result collected along the way — the paper's
    /// wordcount-under-migration methodology.
    pub fn migrate_cluster_under_load(
        &mut self,
        dst: HostId,
        mut submit_next: impl FnMut(&mut MrRuntime) -> bool,
    ) -> (ClusterMigrationReport, Vec<JobResult>) {
        const PIPELINE: usize = 2;
        let mut results = Vec::new();
        let mut more = true;
        while more && self.rt.mr.active_jobs() < PIPELINE {
            more = submit_next(&mut self.rt);
        }
        assert!(self.rt.mr.active_jobs() > 0, "the load generator must submit at least one job");
        self.start_migration(dst);
        loop {
            let Some((_, events)) = self.step() else {
                panic!("simulation drained before cluster migration completed");
            };
            for ev in events {
                if let PlatformEvent::Job(JobEvent::JobDone(res)) = ev {
                    results.push(*res);
                }
            }
            while more && self.migration_busy() && self.rt.mr.active_jobs() < PIPELINE {
                more = submit_next(&mut self.rt);
            }
            if let Some(rep) = self.migration_report.take() {
                return (rep, results);
            }
        }
    }

    /// Simulates the crash of worker VM `vm`: its datanode replicas are
    /// dropped and re-replicated from survivors, and its running tasks are
    /// re-queued — the Hadoop fault-tolerance path the paper relies on
    /// during migration downtime. Returns `(re-replicated, lost)` block
    /// counts from the HDFS side.
    ///
    /// # Panics
    /// If `vm` is the namenode or not a live worker.
    pub fn fail_node(&mut self, vm: VmId) -> (usize, usize) {
        assert_ne!(vm, self.rt.hdfs.namenode(), "cannot fail the master VM");
        let blocks = self.rt.hdfs.fail_datanode(&mut self.rt.engine, &self.rt.cluster, vm);
        self.rt.mr.fail_tracker(&mut self.rt.engine, &self.rt.cluster, vm);
        blocks
    }

    /// The nmon analyser's report over everything sampled so far.
    pub fn monitor_report(&self) -> Option<MonitorReport> {
        self.monitor.as_ref().map(MonitorReport::from_monitor)
    }

    /// Raw monitor access (CSV dumps, sparklines).
    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// MapReduce Tuner advice for a finished job (flow step 9).
    pub fn advise(&self, job: &JobResult, config: &JobConfig) -> tuner::Advice {
        match self.monitor_report() {
            Some(report) => tuner::analyze(&report, Some(job), Some(config)),
            None => tuner::Advice::default(),
        }
    }

    /// Routes one wakeup to its subsystem.
    fn route(&mut self, w: &Wakeup) -> Vec<PlatformEvent> {
        if let Some(m) = self.monitor.as_mut() {
            if m.on_wakeup(&mut self.rt.engine, w) {
                return Vec::new();
            }
        }
        if w.tag().owner == owners::MIGRATION {
            let events = self.migration.on_wakeup(
                &mut self.rt.engine,
                &mut self.rt.cluster,
                &mut self.dirty,
                w,
            );
            let mut out = Vec::new();
            for ev in events {
                if let MigrationEvent::AllDone(rep) = &ev {
                    self.migration_report = Some(rep.clone());
                }
                out.push(PlatformEvent::Migration(ev));
            }
            return out;
        }
        let routed = self.rt.route_full(w);
        let mut out: Vec<PlatformEvent> =
            routed.job_events.into_iter().map(PlatformEvent::Job).collect();
        if let Some(c) = routed.hdfs_completion {
            out.push(PlatformEvent::Hdfs(c));
        }
        out
    }
}

/// Platform-level progress event.
#[derive(Debug)]
pub enum PlatformEvent {
    /// MapReduce progress.
    Job(JobEvent),
    /// Migration progress.
    Migration(MigrationEvent),
    /// A direct HDFS operation (upload, DFSIO) completed.
    Hdfs(vhdfs::hdfs::HdfsCompletion),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_applies_scheduler_policy() {
        let p = VHadoop::launch(PlatformConfig {
            cluster: ClusterSpec::builder().hosts(1).vms(2).build(),
            monitor_interval: None,
            scheduler: SchedulerPolicy::Fair,
            ..Default::default()
        });
        assert_eq!(p.rt.mr.policy(), SchedulerPolicy::Fair);
        assert_eq!(VHadoop::paper_default().rt.mr.policy(), SchedulerPolicy::Fifo);
    }
}
