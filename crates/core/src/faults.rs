//! Plan-driven fault injection across the whole platform.
//!
//! [`VHadoop::install_fault_plan`] arms one deterministic engine timer per
//! [`FaultEvent`] (owner [`owners::FAULT`]); when a timer fires, the
//! platform applies the fault to the owning subsystem:
//!
//! * [`FaultKind::NodeCrash`] → [`vhdfs::hdfs::Hdfs::fail_datanode`]
//!   (replica drop + re-replication) **plus**
//!   `MrEngine::lose_tracker` with [`TRACKER_TIMEOUT`] detection latency
//!   and per-task retry backoff;
//! * [`FaultKind::NodeRejoin`] → empty datanode + idle tracker re-admitted;
//! * [`FaultKind::LinkDegrade`] / [`FaultKind::SlowDisk`] /
//!   [`FaultKind::StragglerVm`] → the matching fluid resource's capacity is
//!   scaled down multiplicatively for the fault's duration (stacking
//!   faults multiply; each restore divides the same clamped factor back
//!   out), with a restore timer armed at apply time;
//! * [`FaultKind::MigrationAbort`] → `MigrationManager::abort_active`
//!   (retry with capped exponential backoff).
//!
//! Every applied event is recorded in [`VHadoop::fault_log`], surfaced as
//! a [`PlatformEvent::Fault`], and emitted as a `"fault"`-category trace
//! span, so exported artifacts show what was injected when. Because the
//! whole mechanism is ordinary timers + seedable plans, an injected run
//! replays byte-identically.

use crate::platform::{PlatformEvent, VHadoop};
use simcore::faults::{FaultEvent, FaultKind, FaultPlan};
use simcore::owners;
use simcore::prelude::*;
use std::collections::HashMap;
use vcluster::cluster::{HostId, VmId};

/// Heartbeat timeout after which the JobTracker declares a crashed VM's
/// TaskTracker dead and starts re-queueing its tasks (Hadoop's
/// `mapred.tasktracker.expiry.interval`, scaled to simulation pace).
pub const TRACKER_TIMEOUT: SimDuration = SimDuration::from_secs(2);

/// Throttle factors are clamped to at least this: a "partition" is a 100×
/// degradation, not zero capacity (a zero-capacity fluid resource would
/// stall its flows forever and break guaranteed termination).
pub const MIN_THROTTLE_FACTOR: f64 = 0.01;

/// Tag payload marking the *apply* timer of event index `tag.a`.
const FAULT_APPLY: u64 = 0;
/// Tag payload marking the *restore* timer of a throttle fault.
const FAULT_RESTORE: u64 = 1;

/// One fault as actually injected, recorded in [`VHadoop::fault_log`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// When it was applied.
    pub at: SimTime,
    /// What was applied.
    pub kind: FaultKind,
    /// Blocks whose last replica died with this fault (crashes only).
    pub lost_blocks: usize,
    /// False when the fault found nothing to act on (crashing an already
    /// dead VM, aborting with no migration in flight, an out-of-range
    /// target) and was skipped.
    pub effective: bool,
}

/// A throttle currently in force, so the restore timer can undo exactly
/// what was applied.
#[derive(Debug, Clone, Copy)]
struct ActiveScale {
    resource: ResourceId,
    factor: f64,
    since: SimTime,
    name: &'static str,
    track: u32,
}

/// Per-platform fault-injection state (see module docs).
#[derive(Debug, Default)]
pub(crate) struct FaultDriver {
    /// Installed events; a timer's `tag.a` indexes into this.
    events: Vec<FaultEvent>,
    /// Live throttles by event index.
    scales: HashMap<u32, ActiveScale>,
    /// Everything applied so far, in injection order.
    log: Vec<InjectedFault>,
}

impl FaultDriver {
    /// Arms one apply-timer per event of `plan` (already in injection
    /// order — plans sort at insertion time).
    pub(crate) fn install(&mut self, engine: &mut Engine, plan: &FaultPlan) {
        for &ev in plan.events() {
            let idx = self.events.len() as u32;
            self.events.push(ev);
            engine.set_timer_at(ev.at, Tag::new(owners::FAULT, idx, FAULT_APPLY));
        }
    }

    /// Encodes installed events, live throttles, and the injection log.
    /// The apply/restore timers themselves travel with the engine
    /// snapshot; nothing is re-armed at restore.
    pub(crate) fn encode_state(&self, e: &mut Encoder) {
        self.events.encode(e);
        let mut idxs: Vec<u32> = self.scales.keys().copied().collect();
        idxs.sort_unstable();
        idxs.len().encode(e);
        for idx in idxs {
            let s = &self.scales[&idx];
            idx.encode(e);
            s.resource.encode(e);
            s.factor.encode(e);
            s.since.encode(e);
            s.name.to_string().encode(e);
            s.track.encode(e);
        }
        self.log.len().encode(e);
        for f in &self.log {
            f.at.encode(e);
            f.kind.encode(e);
            f.lost_blocks.encode(e);
            f.effective.encode(e);
        }
    }

    /// Restores the driver wholesale (replacing whatever a fresh launch
    /// installed — the snapshot's event list already contains the launch
    /// plan plus any later [`VHadoop::install_fault_plan`] additions).
    pub(crate) fn restore_state(&mut self, d: &mut Decoder) {
        self.events = Vec::decode(d);
        let n = usize::decode(d);
        self.scales = (0..n)
            .map(|_| {
                let idx = u32::decode(d);
                let resource = ResourceId::decode(d);
                let factor = f64::decode(d);
                let since = SimTime::decode(d);
                let name = match String::decode(d).as_str() {
                    "link_degrade" => "link_degrade",
                    "slow_disk" => "slow_disk",
                    "straggler_vm" => "straggler_vm",
                    other => panic!("unknown throttle name in snapshot: {other}"),
                };
                let track = u32::decode(d);
                (idx, ActiveScale { resource, factor, since, name, track })
            })
            .collect();
        let n = usize::decode(d);
        self.log = (0..n)
            .map(|_| InjectedFault {
                at: SimTime::decode(d),
                kind: FaultKind::decode(d),
                lost_blocks: usize::decode(d),
                effective: bool::decode(d),
            })
            .collect();
    }
}

impl VHadoop {
    /// Installs `plan` on the running platform: every fault becomes a
    /// deterministic engine timer. May be called repeatedly — plans
    /// accumulate. Events whose instant is already past fire immediately
    /// on the next wakeup.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        self.faults.install(&mut self.rt.engine, plan);
    }

    /// Every fault injected so far, in injection order.
    pub fn fault_log(&self) -> &[InjectedFault] {
        &self.faults.log
    }

    /// Handles an `owners::FAULT` timer.
    pub(crate) fn on_fault_wakeup(&mut self, tag: Tag) -> Vec<PlatformEvent> {
        match tag.b {
            FAULT_APPLY => self.apply_fault(tag.a),
            FAULT_RESTORE => {
                self.restore_throttle(tag.a);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn apply_fault(&mut self, idx: u32) -> Vec<PlatformEvent> {
        let ev = self.faults.events[idx as usize];
        let now = self.rt.engine.now();
        let mut lost_blocks = 0usize;
        let effective = match ev.kind {
            FaultKind::NodeCrash { vm } => {
                let vm = VmId(vm);
                let mut any = false;
                if vm != self.rt.hdfs.namenode() && vm.0 < self.rt.cluster.spec().vms {
                    if self.rt.hdfs.datanodes().contains(&vm) && self.rt.hdfs.datanodes().len() > 1
                    {
                        let (_, lost) =
                            self.rt.hdfs.fail_datanode(&mut self.rt.engine, &self.rt.cluster, vm);
                        lost_blocks = lost;
                        any = true;
                    }
                    if self.rt.mr.trackers().contains(&vm) {
                        // lose_tracker emits its own tracker_timeout span.
                        self.rt.mr.lose_tracker(
                            &mut self.rt.engine,
                            &self.rt.cluster,
                            vm,
                            TRACKER_TIMEOUT,
                        );
                        any = true;
                    }
                }
                if any {
                    self.rt.engine.trace_span(
                        "fault",
                        "node_crash",
                        vm.0,
                        now,
                        &[("lost_blocks", lost_blocks as f64)],
                    );
                }
                any
            }
            FaultKind::NodeRejoin { vm } => {
                let vmid = VmId(vm);
                let mut any = false;
                if vmid != self.rt.hdfs.namenode() && vm < self.rt.cluster.spec().vms {
                    if !self.rt.hdfs.datanodes().contains(&vmid) {
                        self.rt.hdfs.rejoin_datanode(vmid);
                        any = true;
                    }
                    if !self.rt.mr.trackers().contains(&vmid) {
                        self.rt.mr.rejoin_tracker(vmid);
                        any = true;
                    }
                }
                if any {
                    self.rt.engine.trace_span("fault", "node_rejoin", vm, now, &[]);
                }
                any
            }
            FaultKind::LinkDegrade { host, factor, duration } => {
                if host < self.rt.cluster.spec().hosts {
                    let r = self.rt.cluster.host_nic_resource(HostId(host));
                    self.apply_throttle(idx, r, factor, duration, "link_degrade", host);
                    true
                } else {
                    false
                }
            }
            FaultKind::SlowDisk { factor, duration } => {
                let r = self.rt.cluster.nfs_disk_resource();
                self.apply_throttle(idx, r, factor, duration, "slow_disk", u32::MAX);
                true
            }
            FaultKind::StragglerVm { vm, factor, duration } => {
                if vm < self.rt.cluster.spec().vms {
                    let r = self.rt.cluster.vcpu_resource(VmId(vm));
                    self.apply_throttle(idx, r, factor, duration, "straggler_vm", vm);
                    true
                } else {
                    false
                }
            }
            FaultKind::MigrationAbort => {
                // abort_active emits a per-VM migration_abort span.
                !self.migration.abort_active(&mut self.rt.engine).is_empty()
            }
        };
        let injected = InjectedFault { at: now, kind: ev.kind, lost_blocks, effective };
        self.faults.log.push(injected);
        vec![PlatformEvent::Fault(injected)]
    }

    /// Scales `resource` down by the clamped `factor` and arms the restore
    /// timer. An instant marker span records the injection now; the
    /// matching window span is emitted at restore, covering the outage.
    fn apply_throttle(
        &mut self,
        idx: u32,
        resource: ResourceId,
        factor: f64,
        duration: SimDuration,
        name: &'static str,
        track: u32,
    ) {
        let factor = factor.clamp(MIN_THROTTLE_FACTOR, 1.0);
        let now = self.rt.engine.now();
        let cap = self.rt.engine.fluid().capacity(resource);
        self.rt.engine.set_capacity(resource, cap * factor);
        self.rt.engine.trace_span("fault", name, track, now, &[("factor", factor)]);
        self.faults.scales.insert(idx, ActiveScale { resource, factor, since: now, name, track });
        self.rt.engine.set_timer_in(
            duration.max(SimDuration::from_nanos(1)),
            Tag::new(owners::FAULT, idx, FAULT_RESTORE),
        );
    }

    fn restore_throttle(&mut self, idx: u32) {
        let Some(s) = self.faults.scales.remove(&idx) else {
            return;
        };
        let cap = self.rt.engine.fluid().capacity(s.resource);
        self.rt.engine.set_capacity(s.resource, cap / s.factor);
        self.rt.engine.trace_span("fault", s.name, s.track, s.since, &[("factor", s.factor)]);
    }
}
