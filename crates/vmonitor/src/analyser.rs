//! The nmon-analyser equivalent: summaries, bottleneck detection, and
//! terminal charts from collected samples.

use crate::monitor::Monitor;
use serde::{Deserialize, Serialize};
use simcore::fluid::ResourceKind;
use simcore::stats::Summary;

/// Per-resource utilization summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceSummary {
    /// Resource name.
    pub name: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Utilization statistics over the sampled window.
    pub util: Summary,
    /// Fraction of samples at ≥ 90 % utilization.
    pub saturated_frac: f64,
}

/// The analyser's full report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorReport {
    /// One summary per resource.
    pub resources: Vec<ResourceSummary>,
    /// Samples analysed.
    pub samples: usize,
}

impl MonitorReport {
    /// Builds the report from a monitor's samples.
    pub fn from_monitor(monitor: &Monitor) -> Self {
        let n = monitor.samples().len();
        let resources = monitor
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let xs: Vec<f64> = monitor.series(i).map(|(_, u)| u).collect();
                let saturated = xs.iter().filter(|&&u| u >= 0.9).count();
                ResourceSummary {
                    name: c.name.clone(),
                    kind: c.kind,
                    util: Summary::of(&xs),
                    saturated_frac: if xs.is_empty() {
                        0.0
                    } else {
                        saturated as f64 / xs.len() as f64
                    },
                }
            })
            .collect();
        MonitorReport { resources, samples: n }
    }

    /// The busiest resource (highest mean utilization), if any was sampled.
    pub fn bottleneck(&self) -> Option<&ResourceSummary> {
        self.resources.iter().max_by(|a, b| a.util.mean.partial_cmp(&b.util.mean).expect("no NaN"))
    }

    /// The busiest resource of a given kind.
    pub fn bottleneck_of(&self, kind: ResourceKind) -> Option<&ResourceSummary> {
        self.resources
            .iter()
            .filter(|r| r.kind == kind)
            .max_by(|a, b| a.util.mean.partial_cmp(&b.util.mean).expect("no NaN"))
    }

    /// Summary for a named resource.
    pub fn resource(&self, name: &str) -> Option<&ResourceSummary> {
        self.resources.iter().find(|r| r.name == name)
    }

    /// Aligned text table, busiest first.
    pub fn to_table(&self) -> String {
        let mut rows: Vec<&ResourceSummary> = self.resources.iter().collect();
        rows.sort_by(|a, b| b.util.mean.partial_cmp(&a.util.mean).expect("no NaN"));
        let mut out = format!(
            "{:<18} {:>8} {:>8} {:>8} {:>10}\n",
            "resource", "mean%", "p95%", "max%", "saturated%"
        );
        for r in rows {
            out.push_str(&format!(
                "{:<18} {:>8.1} {:>8.1} {:>8.1} {:>10.1}\n",
                r.name,
                r.util.mean * 100.0,
                r.util.p95 * 100.0,
                r.util.max * 100.0,
                r.saturated_frac * 100.0
            ));
        }
        out
    }
}

/// Renders one column's series as a unicode sparkline (nmon-analyser's
/// graphs, terminal edition).
pub fn sparkline(monitor: &Monitor, column: usize, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let xs: Vec<f64> = monitor.series(column).map(|(_, u)| u).collect();
    if xs.is_empty() {
        return String::new();
    }
    // Downsample to `width` buckets by averaging.
    let buckets = width.min(xs.len()).max(1);
    let per = xs.len() as f64 / buckets as f64;
    (0..buckets)
        .map(|b| {
            let lo = (b as f64 * per) as usize;
            let hi = (((b + 1) as f64 * per) as usize).max(lo + 1).min(xs.len());
            let avg = xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            BARS[((avg * 7.0).round() as usize).min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::prelude::*;
    use vcluster::prelude::*;

    fn monitored_run() -> Monitor {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        let mut m = Monitor::attach(&mut e, SimDuration::from_millis(500));
        // Saturate the NFS disk with a long read.
        e.start_chain(c.disk_read(VmId(1), 90e6 * 8.0), Tag::owner(simcore::owners::USER));
        while let Some((_, w)) = e.next_wakeup() {
            if !m.on_wakeup(&mut e, &w) && e.active_activities() == 0 {
                m.stop(&mut e);
            }
        }
        m
    }

    #[test]
    fn bottleneck_is_the_nfs_disk() {
        let m = monitored_run();
        let report = MonitorReport::from_monitor(&m);
        let b = report.bottleneck().expect("sampled something");
        assert_eq!(b.name, "nfs.disk", "NFS disk saturates, got {}", b.name);
        assert!(b.saturated_frac > 0.8);
        assert_eq!(report.bottleneck_of(ResourceKind::Disk).unwrap().name, "nfs.disk");
    }

    #[test]
    fn table_renders_sorted() {
        let m = monitored_run();
        let report = MonitorReport::from_monitor(&m);
        let table = report.to_table();
        let first_data_line = table.lines().nth(1).expect("data row");
        assert!(first_data_line.starts_with("nfs.disk"), "busiest first: {first_data_line}");
    }

    #[test]
    fn sparkline_has_requested_width() {
        let m = monitored_run();
        let col = m.column_index("nfs.disk").unwrap();
        let s = sparkline(&m, col, 10);
        assert!(s.chars().count() <= 10 && !s.is_empty());
        assert!(s.contains('█'), "saturated disk shows full bars: {s}");
    }
}
