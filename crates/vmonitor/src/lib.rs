//! # vmonitor — the vHadoop platform's nmon Monitor and nmon analyser
//!
//! [`monitor::Monitor`] samples every simulated resource's utilization on
//! a fixed interval (CPU, memory-path, disk, and network — what the paper
//! extends nmon to collect on all master and worker VMs in parallel);
//! [`analyser::MonitorReport`] turns the samples into summaries,
//! bottleneck findings, CSV, text tables, and sparkline charts.

#![warn(missing_docs)]

pub mod analyser;
pub mod monitor;

/// Convenience imports.
pub mod prelude {
    pub use crate::analyser::{sparkline, MonitorReport, ResourceSummary};
    pub use crate::monitor::{Column, Monitor, Sample};
}
