//! The nmon-style sampler.
//!
//! Attached to a running simulation, the monitor samples every resource's
//! utilization (per-VM VCPU, per-host CPU/NIC/bridge, NFS disk and NIC,
//! each rack's ToR switch and — on multi-rack fabrics — the core trunk)
//! on a fixed interval — the same columns the paper's nmon deployment
//! collects on every master and worker VM in parallel.

use serde::{Deserialize, Serialize};
use simcore::fluid::ResourceKind;
use simcore::owners;
use simcore::prelude::*;

/// One resource column of the sample table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Resource name (e.g. `pm0.nic`, `vm3.vcpu`, `nfs.disk`).
    pub name: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Fluid resource id.
    pub resource: ResourceId,
}

/// One sampling instant: utilization (0..1) per column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the sample was taken.
    pub t: SimTime,
    /// Utilization per column, aligned with [`Monitor::columns`].
    pub util: Vec<f64>,
}

/// The attached monitor.
#[derive(Debug)]
pub struct Monitor {
    interval: SimDuration,
    columns: Vec<Column>,
    samples: Vec<Sample>,
    timer: Option<TimerId>,
    /// Pre-interned trace counter name per column (so the sampling path
    /// re-emits samples into the trace without allocating).
    counter_names: Vec<Name>,
}

impl Monitor {
    /// Attaches to `engine`, sampling every `interval`. Columns cover
    /// every resource registered so far.
    pub fn attach(engine: &mut Engine, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        let columns: Vec<Column> = engine
            .fluid()
            .usage_snapshot()
            .into_iter()
            .map(|(resource, kind, _, _)| Column {
                name: engine.fluid().resource_name(resource).to_string(),
                kind,
                resource,
            })
            .collect();
        let counter_names =
            columns.iter().map(|c| engine.tracer_mut().intern_owned(c.name.clone())).collect();
        let timer = engine.set_timer_in(interval, Tag::owner(owners::MONITOR));
        Monitor { interval, columns, samples: Vec::new(), timer: Some(timer), counter_names }
    }

    /// Column metadata.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Collected samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Handles a wakeup; returns `true` if it was this monitor's timer
    /// (a sample was taken and the timer re-armed).
    pub fn on_wakeup(&mut self, engine: &mut Engine, wakeup: &Wakeup) -> bool {
        let Wakeup::Timer { id, tag } = wakeup else {
            return false;
        };
        if tag.owner != owners::MONITOR || Some(*id) != self.timer {
            return false;
        }
        let util: Vec<f64> =
            self.columns.iter().map(|c| engine.fluid().utilization(c.resource)).collect();
        for (&name, &u) in self.counter_names.iter().zip(util.iter()) {
            engine.trace_counter(name, u);
        }
        self.samples.push(Sample { t: engine.now(), util });
        self.timer = Some(engine.set_timer_in(self.interval, Tag::owner(owners::MONITOR)));
        true
    }

    /// Stops sampling (cancels the pending timer).
    pub fn stop(&mut self, engine: &mut Engine) {
        if let Some(t) = self.timer.take() {
            engine.cancel_timer(t);
        }
    }

    /// Encodes the dynamic monitor state: samples and the pending timer
    /// id. Columns, counter names, and the interval are launch-derived —
    /// a relaunch from the same config re-creates them identically.
    pub fn encode_state(&self, e: &mut simcore::persist::Encoder) {
        use simcore::persist::Persist;
        self.samples.len().encode(e);
        for s in &self.samples {
            s.t.encode(e);
            s.util.encode(e);
        }
        self.timer.encode(e);
    }

    /// Restores the dynamic monitor state. The pending timer must already
    /// live in the restored engine's heap (it travels with the engine
    /// snapshot); this only re-links its id.
    pub fn restore_state(&mut self, d: &mut simcore::persist::Decoder) {
        use simcore::persist::Persist;
        let n = usize::decode(d);
        self.samples =
            (0..n).map(|_| Sample { t: SimTime::decode(d), util: Vec::decode(d) }).collect();
        self.timer = Option::decode(d);
    }

    /// Utilization time series of one column.
    pub fn series(&self, column: usize) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().map(move |s| (s.t, s.util[column]))
    }

    /// Column index by resource name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// CSV dump (nmon's file format spirit: one row per instant).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.name);
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!("{:.3}", s.t.as_secs_f64()));
            for u in &s.util {
                out.push_str(&format!(",{u:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::prelude::*;

    fn setup() -> (Engine, VirtualCluster, Monitor) {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(4).placement(Placement::SingleDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        let m = Monitor::attach(&mut e, SimDuration::from_secs(1));
        (e, c, m)
    }

    #[test]
    fn samples_on_interval() {
        let (mut e, c, mut m) = setup();
        // A 10-second compute flow keeps the simulation alive.
        e.start_chain(c.compute(VmId(0), 2.4e9 * 10.0), Tag::owner(simcore::owners::USER));
        while let Some((t, w)) = e.next_wakeup() {
            m.on_wakeup(&mut e, &w);
            if t > SimTime::from_secs(5) {
                m.stop(&mut e);
            }
        }
        assert!(m.samples().len() >= 5, "got {} samples", m.samples().len());
        // Time strictly increases.
        for pair in m.samples().windows(2) {
            assert!(pair[1].t > pair[0].t);
        }
    }

    #[test]
    fn busy_vcpu_shows_utilization() {
        let (mut e, c, mut m) = setup();
        e.start_chain(c.compute(VmId(1), 2.4e9 * 10.0), Tag::owner(simcore::owners::USER));
        while let Some((t, w)) = e.next_wakeup() {
            m.on_wakeup(&mut e, &w);
            if t > SimTime::from_secs(4) {
                m.stop(&mut e);
            }
        }
        let vcpu_col = m.column_index("vm1.vcpu").expect("column exists");
        let idle_col = m.column_index("vm2.vcpu").expect("column exists");
        let busy_avg: f64 =
            m.series(vcpu_col).map(|(_, u)| u).sum::<f64>() / m.samples().len() as f64;
        let idle_avg: f64 =
            m.series(idle_col).map(|(_, u)| u).sum::<f64>() / m.samples().len() as f64;
        assert!(busy_avg > 0.9, "busy VCPU ~saturated, got {busy_avg:.2}");
        assert_eq!(idle_avg, 0.0, "idle VCPU silent");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (mut e, c, mut m) = setup();
        e.start_chain(c.compute(VmId(0), 2.4e9 * 3.0), Tag::owner(simcore::owners::USER));
        while let Some((_, w)) = e.next_wakeup() {
            if !m.on_wakeup(&mut e, &w) && e.active_activities() == 0 {
                m.stop(&mut e);
            }
        }
        let csv = m.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("time_s,"));
        assert!(header.contains("nfs.disk"));
        assert!(csv.lines().count() > 1);
    }
}
