//! The deterministic characterization sweep runner.
//!
//! A [`SweepSpec`] names the configuration axes; [`run_sweep`] expands
//! them to the cartesian product, partitions the points into **groups**
//! that differ only in their fault profile, and runs the groups across OS
//! threads. Each group launches one `VHadoop`, schedules its job stream,
//! snapshots the warm-up prefix, and then restores the snapshot once per
//! fault variant — the snapshot-fork prefix sharing `simcore::persist`
//! was built for.
//!
//! Determinism contract (pinned by `tests/tests/vchar.rs` and the
//! check.sh `char` stage): every run is seeded purely from its
//! configuration point, results land in a pre-sized slot vector indexed
//! by group order, and workers operate on disjoint contiguous chunks of
//! that vector — so the dataset bytes are identical at 1 and N threads,
//! and across repeated same-seed invocations.

use crate::dataset::{Dataset, Row};
use mapreduce::scheduler::SchedulerPolicy;
use simcore::faults::{FaultPlan, FaultProfile};
use simcore::prelude::{RootSeed, SimDuration};
use vcluster::spec::ClusterSpec;
use vhadoop::prelude::{PlatformConfig, VHadoop};
use vhdfs::hdfs::HdfsConfig;
use vsched::controller::ControllerConfig;
use vsched::model::decision_features;
use vsched::placement::{PlacementKind, WorkloadHint};
use workloads::loadgen::{ArrivalProcess, JobMix};

/// Fault-injection severity axis of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSeverity {
    /// No faults: the clean baseline.
    None,
    /// A short, mild plan: up to 3 events, at most 1 crash.
    Light,
    /// The full moderate profile: up to 6 events, 2 crashes.
    Heavy,
}

impl FaultSeverity {
    /// Stable display name (CSV column value).
    pub fn name(self) -> &'static str {
        match self {
            FaultSeverity::None => "none",
            FaultSeverity::Light => "light",
            FaultSeverity::Heavy => "heavy",
        }
    }

    /// The generator profile for a `vms`-VM, `hosts`-host cluster, or
    /// `None` for the clean variant.
    pub fn profile(self, vms: u32, hosts: u32) -> Option<FaultProfile> {
        match self {
            FaultSeverity::None => None,
            FaultSeverity::Light => Some(FaultProfile {
                horizon: SimDuration::from_secs(15),
                max_events: 3,
                max_crashes: 1,
                ..FaultProfile::new(vms, hosts)
            }),
            FaultSeverity::Heavy => Some(FaultProfile::new(vms, hosts)),
        }
    }
}

/// One cluster shape axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Physical hosts.
    pub hosts: u32,
    /// VMs across them.
    pub vms: u32,
    /// Racks the hosts are spread over.
    pub racks: u32,
}

/// The configuration axes of one characterization sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Workload mixes ([`JobMix`] presets).
    pub mixes: Vec<JobMix>,
    /// Placement policies under test.
    pub placements: Vec<PlacementKind>,
    /// Task-scheduler policies under test.
    pub schedulers: Vec<SchedulerPolicy>,
    /// Cluster shapes under test.
    pub shapes: Vec<Shape>,
    /// Fault severities; variants of one group share a warm-up prefix.
    pub faults: Vec<FaultSeverity>,
    /// Jobs per run (the arrival stream length).
    pub jobs: u32,
    /// Mean interarrival gap of the stream, seconds.
    pub mean_gap_s: f64,
    /// Base seed; every run derives its own seed from this and its
    /// group index.
    pub base_seed: u64,
}

impl SweepSpec {
    /// The smallest grid that still exercises every axis — debug-build
    /// test fodder (8 groups × 2 fault variants = 16 runs).
    pub fn tiny() -> Self {
        SweepSpec {
            mixes: vec![JobMix::CpuBound, JobMix::ShuffleHeavy],
            placements: vec![PlacementKind::Pack, PlacementKind::Spread],
            schedulers: vec![SchedulerPolicy::Fifo],
            shapes: vec![
                Shape { hosts: 2, vms: 6, racks: 1 },
                Shape { hosts: 4, vms: 8, racks: 2 },
            ],
            faults: vec![FaultSeverity::None, FaultSeverity::Light],
            jobs: 2,
            mean_gap_s: 2.0,
            base_seed: 1012,
        }
    }

    /// The bounded CI grid the check.sh `char` stage runs
    /// (36 groups × 2 fault variants = 72 runs).
    pub fn quick() -> Self {
        SweepSpec {
            mixes: vec![JobMix::CpuBound, JobMix::ShuffleHeavy, JobMix::Wordcount],
            placements: vec![PlacementKind::Pack, PlacementKind::Spread],
            schedulers: vec![SchedulerPolicy::Fifo, SchedulerPolicy::JobDriven],
            shapes: vec![
                Shape { hosts: 2, vms: 8, racks: 1 },
                Shape { hosts: 4, vms: 12, racks: 2 },
                Shape { hosts: 3, vms: 9, racks: 1 },
            ],
            faults: vec![FaultSeverity::None, FaultSeverity::Light],
            jobs: 3,
            mean_gap_s: 2.0,
            base_seed: 1012,
        }
    }

    /// The full characterization grid (144 groups × 3 fault variants =
    /// 432 runs) — the "hundreds of configurations" sweep behind
    /// EXPERIMENTS.md §costmodel.
    pub fn full() -> Self {
        SweepSpec {
            mixes: vec![JobMix::CpuBound, JobMix::ShuffleHeavy, JobMix::Wordcount],
            placements: vec![PlacementKind::Pack, PlacementKind::Spread],
            schedulers: vec![
                SchedulerPolicy::Fifo,
                SchedulerPolicy::Fair,
                SchedulerPolicy::JobDriven,
            ],
            shapes: vec![
                Shape { hosts: 2, vms: 8, racks: 1 },
                Shape { hosts: 3, vms: 9, racks: 1 },
                Shape { hosts: 4, vms: 12, racks: 2 },
                Shape { hosts: 6, vms: 18, racks: 3 },
                Shape { hosts: 4, vms: 16, racks: 1 },
                Shape { hosts: 8, vms: 24, racks: 2 },
                Shape { hosts: 2, vms: 12, racks: 1 },
                Shape { hosts: 6, vms: 12, racks: 2 },
            ],
            faults: vec![FaultSeverity::None, FaultSeverity::Light, FaultSeverity::Heavy],
            jobs: 4,
            mean_gap_s: 2.0,
            base_seed: 1012,
        }
    }

    /// Expands the axes into groups (every combination except the fault
    /// axis), in a fixed nesting order: mix → placement → scheduler →
    /// shape. The group's index in this order seeds its runs.
    pub fn groups(&self) -> Vec<GroupPoint> {
        let mut out = Vec::new();
        for &mix in &self.mixes {
            for placement in &self.placements {
                for &scheduler in &self.schedulers {
                    for &shape in &self.shapes {
                        let index = out.len() as u64;
                        out.push(GroupPoint {
                            mix,
                            placement: placement.clone(),
                            scheduler,
                            shape,
                            seed: self
                                .base_seed
                                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add(index),
                        });
                    }
                }
            }
        }
        out
    }

    /// Total runs the sweep will execute.
    pub fn runs(&self) -> usize {
        self.mixes.len()
            * self.placements.len()
            * self.schedulers.len()
            * self.shapes.len()
            * self.faults.len()
    }
}

/// One sweep group: a full configuration point minus the fault axis.
#[derive(Debug, Clone)]
pub struct GroupPoint {
    /// Workload mix.
    pub mix: JobMix,
    /// Placement policy.
    pub placement: PlacementKind,
    /// Task-scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Cluster shape.
    pub shape: Shape,
    /// Per-group seed (derived from the spec's base seed + group index).
    pub seed: u64,
}

/// Runs the sweep on up to `threads` OS threads and collects the dataset.
/// The result is byte-identical for every `threads >= 1` (see the module
/// docs for the argument).
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Dataset {
    let groups = spec.groups();
    let n = groups.len();
    let mut slots: Vec<Vec<Row>> = vec![Vec::new(); n];
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        for (g, slot) in groups.iter().zip(slots.iter_mut()) {
            *slot = run_group(spec, g);
        }
    } else {
        // Disjoint contiguous chunks: worker w owns groups
        // [w*chunk, (w+1)*chunk). Each slot is written exactly once, and
        // the final order is the group order regardless of scheduling.
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (gs, outs) in groups.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (g, out) in gs.iter().zip(outs.iter_mut()) {
                        *out = run_group(spec, g);
                    }
                });
            }
        });
    }
    Dataset { rows: slots.into_iter().flatten().collect() }
}

/// Runs one group: launch + schedule once, snapshot, then one restored
/// run per fault severity.
fn run_group(spec: &SweepSpec, g: &GroupPoint) -> Vec<Row> {
    let cluster =
        ClusterSpec::builder().hosts(g.shape.hosts).vms(g.shape.vms).racks(g.shape.racks).build();
    let (maps, cpu_secs, io_bytes) = g.mix.base();
    let hint =
        WorkloadHint { tasks: maps, cpu_secs_per_task: cpu_secs, shuffle_bytes_per_task: io_bytes };
    // The decision-time features describe the layout the platform will
    // actually boot with (the policy's map over the spec).
    let map = g
        .placement
        .assign(&cluster)
        .unwrap_or_else(|| (0..cluster.vms).map(|v| cluster.host_of(v)).collect());
    let features = decision_features(&cluster, &map, &hint, &[]);

    let mut platform = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster)
            .hdfs(HdfsConfig { block_size: 1 << 20, replication: 2 })
            .scheduler(g.scheduler)
            .controller(ControllerConfig {
                enabled: true,
                placement: g.placement.clone(),
                ..Default::default()
            })
            .no_monitor()
            .seed(g.seed)
            .build(),
    );
    let arrivals = ArrivalProcess::new(
        g.mix,
        spec.jobs,
        SimDuration::from_secs_f64(spec.mean_gap_s),
        2,
        RootSeed(g.seed),
    )
    .schedule();
    for (i, a) in arrivals.iter().enumerate() {
        platform.schedule_job(a.at, a.tenant, a.expected_s, a.job(i as u32));
    }
    // The shared warm-up prefix: everything up to fault divergence.
    let snap = platform.snapshot();

    spec.faults
        .iter()
        .map(|&sev| {
            let mut run = VHadoop::restore(&snap);
            if let Some(profile) = sev.profile(g.shape.vms, g.shape.hosts) {
                // Salt the fault seed by severity so light/heavy draws
                // differ even at equal event budgets.
                let salt = match sev {
                    FaultSeverity::None => 0,
                    FaultSeverity::Light => 0x11,
                    FaultSeverity::Heavy => 0x22,
                };
                run.install_fault_plan(&FaultPlan::random(&profile, RootSeed(g.seed ^ salt)));
            }
            let results = run.drive_until_idle();
            let obs = run.observe();
            let ctrl = obs.metrics.ctrl.as_ref();
            let (mut data_local, mut launched, mut shuffle_bytes) = (0u64, 0u64, 0u64);
            for r in &results {
                data_local += r.counters.data_local_maps;
                launched += r.counters.launched_maps;
                shuffle_bytes += r.counters.shuffle_bytes;
            }
            Row {
                mix: g.mix.name(),
                placement: g.placement.name(),
                scheduler: g.scheduler.name(),
                hosts: g.shape.hosts,
                vms: g.shape.vms,
                racks: g.shape.racks,
                fault: sev.name(),
                seed: g.seed,
                features: features.clone(),
                wakeups: obs.metrics.wakeups,
                reallocations: obs.kernel.reallocations,
                flows_touched: obs.kernel.flows_touched,
                jobs_finished: ctrl.map_or(0, |c| c.jobs_finished),
                migrations_completed: ctrl.map_or(0, |c| c.migrations_completed),
                data_local_maps: data_local,
                launched_maps: launched,
                shuffle_mb: shuffle_bytes as f64 / (1 << 20) as f64,
                makespan_s: run.now().as_secs_f64(),
                slo_violations: ctrl.map_or(0, |c| c.slo_violations),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_the_documented_cardinalities() {
        let tiny = SweepSpec::tiny();
        assert_eq!(tiny.groups().len(), 8);
        assert_eq!(tiny.runs(), 16);
        let quick = SweepSpec::quick();
        assert_eq!(quick.groups().len(), 36);
        assert_eq!(quick.runs(), 72);
        let full = SweepSpec::full();
        assert_eq!(full.groups().len(), 144);
        assert_eq!(full.runs(), 432);
    }

    #[test]
    fn group_seeds_are_distinct_and_index_derived() {
        let spec = SweepSpec::tiny();
        let groups = spec.groups();
        let seeds: std::collections::BTreeSet<u64> = groups.iter().map(|g| g.seed).collect();
        assert_eq!(seeds.len(), groups.len());
        // Re-expanding the same spec reproduces the same seeds.
        assert_eq!(
            spec.groups().iter().map(|g| g.seed).collect::<Vec<_>>(),
            groups.iter().map(|g| g.seed).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fault_severity_profiles_scale_with_severity() {
        assert!(FaultSeverity::None.profile(6, 2).is_none());
        let light = FaultSeverity::Light.profile(6, 2).unwrap();
        let heavy = FaultSeverity::Heavy.profile(6, 2).unwrap();
        assert!(light.max_events < heavy.max_events);
        assert!(light.max_crashes < heavy.max_crashes);
    }

    /// The core determinism contract on the smallest grid that still
    /// exercises snapshot-forked fault variants: same spec, any thread
    /// count, byte-identical serialized dataset.
    #[test]
    fn tiny_sweep_is_thread_count_invariant() {
        let spec = SweepSpec::tiny();
        let seq = run_sweep(&spec, 1);
        let par = run_sweep(&spec, 4);
        assert_eq!(seq.rows.len(), spec.runs());
        assert_eq!(seq.to_csv(), par.to_csv());
        assert_eq!(seq.to_json(), par.to_json());
        // Labels are real simulations, not zeros.
        assert!(seq.rows.iter().all(|r| r.makespan_s > 0.0));
        assert!(seq.rows.iter().any(|r| r.jobs_finished > 0));
    }
}
