//! Fitting and evaluating the learned cost model.
//!
//! Takes a characterization [`Dataset`], splits it deterministically
//! into train/held-out partitions (every 4th row by index is held out,
//! so the split is a pure function of the sweep order), fits
//! `vsched`'s CART regression tree on the training rows, and scores
//! both the fitted tree and the hand-priced baseline on the held-out
//! rows. The hand-priced estimate needs no re-computation: it is
//! feature 0 of every row (`FEATURE_NAMES[0] == "hand_estimate_s"`),
//! which is also what lets the tree *recalibrate* the baseline instead
//! of having to rediscover it.

use crate::dataset::Dataset;
use vsched::model::{RegressionTree, TreeConfig};

/// Train/held-out quality report for one fitted cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelEval {
    /// Rows in the dataset.
    pub rows_total: usize,
    /// Rows used for fitting.
    pub rows_train: usize,
    /// Rows held out for evaluation.
    pub rows_heldout: usize,
    /// Nodes in the fitted tree.
    pub tree_nodes: usize,
    /// Depth of the fitted tree.
    pub tree_depth: usize,
    /// Mean absolute error of the learned tree on held-out rows, s.
    pub learned_mae_s: f64,
    /// Mean absolute error of the hand-priced estimator on the same rows, s.
    pub hand_mae_s: f64,
    /// 90th-percentile (nearest-rank) absolute error of the tree, s.
    pub learned_p90_s: f64,
    /// 90th-percentile absolute error of the hand-priced estimator, s.
    pub hand_p90_s: f64,
}

impl CostModelEval {
    /// Renders the evaluation as a small JSON object for
    /// `results/costmodel.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"model\": \"cart\",\n  \"rows_total\": {},\n  \"rows_train\": {},\n  \
             \"rows_heldout\": {},\n  \"tree_nodes\": {},\n  \"tree_depth\": {},\n  \
             \"learned_mae_s\": {},\n  \"hand_mae_s\": {},\n  \"learned_p90_s\": {},\n  \
             \"hand_p90_s\": {}\n}}\n",
            self.rows_total,
            self.rows_train,
            self.rows_heldout,
            self.tree_nodes,
            self.tree_depth,
            self.learned_mae_s,
            self.hand_mae_s,
            self.learned_p90_s,
            self.hand_p90_s
        )
    }
}

/// True when row `i` of the dataset belongs to the held-out partition.
/// Every 4th row (by sweep order) is held out — deterministic, stratified
/// across the grid because the sweep interleaves axes in a fixed nesting.
pub fn is_heldout(i: usize) -> bool {
    i % 4 == 3
}

/// Fits the cost model on the dataset's training partition and scores
/// it against the hand-priced baseline on the held-out partition.
///
/// Returns the fitted tree (ready to wire in as
/// `MakespanKind::Learned(tree)`) and the evaluation report.
pub fn fit_cost_model(ds: &Dataset, cfg: &TreeConfig) -> (RegressionTree, CostModelEval) {
    let (feats, labels) = ds.training_pairs();
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    let mut held = Vec::new();
    for i in 0..feats.len() {
        if is_heldout(i) && feats.len() >= 4 {
            held.push(i);
        } else {
            train_x.push(feats[i].clone());
            train_y.push(labels[i]);
        }
    }
    let tree = RegressionTree::fit(&train_x, &train_y, cfg);

    let mut learned_errs = Vec::with_capacity(held.len());
    let mut hand_errs = Vec::with_capacity(held.len());
    for &i in &held {
        learned_errs.push((tree.predict(&feats[i]) - labels[i]).abs());
        hand_errs.push((feats[i][0] - labels[i]).abs());
    }
    let eval = CostModelEval {
        rows_total: feats.len(),
        rows_train: train_x.len(),
        rows_heldout: held.len(),
        tree_nodes: tree.node_count(),
        tree_depth: tree.depth(),
        learned_mae_s: mean(&learned_errs),
        hand_mae_s: mean(&hand_errs),
        learned_p90_s: nearest_rank_p90(&learned_errs),
        hand_p90_s: nearest_rank_p90(&hand_errs),
    };
    (tree, eval)
}

/// Per-held-out-row comparison CSV for `results/costmodel.csv`:
/// one line per held-out row with the label, both estimates, and both
/// absolute errors.
pub fn heldout_csv(ds: &Dataset, tree: &RegressionTree) -> String {
    let mut out = String::from(
        "row,mix,placement,scheduler,hosts,vms,racks,fault,label_makespan_s,\
         hand_estimate_s,learned_estimate_s,hand_abs_err_s,learned_abs_err_s\n",
    );
    for (i, r) in ds.rows.iter().enumerate() {
        if !is_heldout(i) || ds.rows.len() < 4 {
            continue;
        }
        let hand = r.features[0];
        let learned = tree.predict(&r.features);
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            i,
            r.mix,
            r.placement,
            r.scheduler,
            r.hosts,
            r.vms,
            r.racks,
            r.fault,
            r.makespan_s,
            hand,
            learned,
            (hand - r.makespan_s).abs(),
            (learned - r.makespan_s).abs()
        ));
    }
    out
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Nearest-rank 90th percentile (ceil(0.9·n)-th smallest), 0 when empty.
fn nearest_rank_p90(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (0.9 * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Row;
    use vsched::model::FEATURE_NAMES;

    /// Synthetic dataset: the label is a deterministic distortion of the
    /// hand estimate, so a tree that sees the estimate as feature 0 can
    /// recalibrate while the raw estimate stays biased.
    fn synthetic(n: usize) -> Dataset {
        let rows = (0..n)
            .map(|i| {
                let hand = 10.0 + (i % 7) as f64 * 3.0;
                let mut features = vec![0.0; FEATURE_NAMES.len()];
                features[0] = hand;
                features[1] = (i % 5) as f64;
                Row {
                    mix: "cpu-bound",
                    placement: "pack",
                    scheduler: "fifo",
                    hosts: 2,
                    vms: 6,
                    racks: 1,
                    fault: "none",
                    seed: i as u64,
                    features,
                    wakeups: 0,
                    reallocations: 0,
                    flows_touched: 0,
                    jobs_finished: 0,
                    migrations_completed: 0,
                    data_local_maps: 0,
                    launched_maps: 0,
                    shuffle_mb: 0.0,
                    makespan_s: hand * 1.5 + 2.0,
                    slo_violations: 0,
                }
            })
            .collect();
        Dataset { rows }
    }

    #[test]
    fn learned_recalibrates_a_biased_baseline() {
        let ds = synthetic(64);
        let (tree, eval) = fit_cost_model(&ds, &TreeConfig::default());
        assert_eq!(eval.rows_total, 64);
        assert_eq!(eval.rows_heldout, 16);
        assert_eq!(eval.rows_train, 48);
        assert!(
            eval.learned_mae_s < eval.hand_mae_s,
            "learned {} !< hand {}",
            eval.learned_mae_s,
            eval.hand_mae_s
        );
        assert!(tree.node_count() >= 3);
    }

    #[test]
    fn split_is_deterministic_and_every_fourth() {
        let held: Vec<usize> = (0..12).filter(|&i| is_heldout(i)).collect();
        assert_eq!(held, vec![3, 7, 11]);
    }

    #[test]
    fn tiny_datasets_train_on_everything() {
        let ds = synthetic(3);
        let (_, eval) = fit_cost_model(&ds, &TreeConfig::default());
        assert_eq!(eval.rows_train, 3);
        assert_eq!(eval.rows_heldout, 0);
        assert_eq!(eval.learned_mae_s, 0.0);
    }

    #[test]
    fn heldout_csv_lists_exactly_the_heldout_rows() {
        let ds = synthetic(16);
        let (tree, _) = fit_cost_model(&ds, &TreeConfig::default());
        let csv = heldout_csv(&ds, &tree);
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.lines().nth(1).unwrap().starts_with("3,"));
    }

    #[test]
    fn p90_is_nearest_rank() {
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(nearest_rank_p90(&xs), 9.0);
        assert_eq!(nearest_rank_p90(&[5.0]), 5.0);
        assert_eq!(nearest_rank_p90(&[]), 0.0);
    }
}
