//! # vchar — characterization sweeps and learned cost models
//!
//! ALOJA-style configuration characterization for the vHadoop platform
//! (DESIGN.md §19), in three layers:
//!
//! * [`sweep`] — fans out deterministic simulations over the cartesian
//!   product of (workload mix × placement × scheduler × cluster shape ×
//!   fault profile) across OS threads. Each run owns its `VHadoop` and is
//!   seeded per-configuration, so the resulting dataset is **byte
//!   identical** regardless of thread count — the same contract as the
//!   fluid kernel's solver pool. Configurations that differ only in their
//!   fault profile share a snapshot-forked warm-up prefix
//!   (`simcore::persist`): the cluster is launched and the job stream
//!   scheduled once per group, then each fault variant restores the
//!   snapshot and diverges.
//! * [`dataset`] — the versioned characterization dataset streamed to
//!   `results/characterization.{csv,json}`: configuration axes, the
//!   decision-time feature vector (`vsched::model::decision_features`),
//!   observed kernel/controller/locality counters, and the measured
//!   makespan + SLO labels.
//! * [`model`] — fits `vsched`'s in-repo CART regression tree on the
//!   dataset with a deterministic train/held-out split, and reports
//!   MAE/quantile error against the hand-priced baseline. The fitted
//!   tree plugs back into the control plane as
//!   `MakespanKind::Learned(tree)`, closing the ALOJA-ML loop.

#![warn(missing_docs)]

pub mod dataset;
pub mod model;
pub mod sweep;

/// Convenience imports.
pub mod prelude {
    pub use crate::dataset::{Dataset, Row, DATASET_VERSION};
    pub use crate::model::{fit_cost_model, heldout_csv, CostModelEval};
    pub use crate::sweep::{run_sweep, FaultSeverity, Shape, SweepSpec};
}
