//! The versioned characterization dataset.
//!
//! One [`Row`] per sweep run: the configuration axes that produced it,
//! the decision-time feature vector the cost model sees
//! (`vsched::model::FEATURE_NAMES`), the observed kernel/controller/
//! locality counters, and the measured labels. The column dictionary is
//! part of the format — [`Dataset::columns`] is written into both the
//! CSV header and the JSON envelope, and the check.sh `char` stage
//! validates it.
//!
//! Serialization uses only `Display` formatting of Rust primitives, so
//! the emitted bytes are a pure function of the rows — the determinism
//! tests compare whole files with `==`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use vsched::model::FEATURE_NAMES;

/// Bump when the row schema (columns or their meaning) changes.
pub const DATASET_VERSION: u32 = 1;

/// One characterization run: configuration, features, observations,
/// labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Workload mix name (`JobMix::name`).
    pub mix: &'static str,
    /// Placement policy name (`PlacementKind::name`).
    pub placement: &'static str,
    /// Scheduler policy name (`SchedulerPolicy::name`).
    pub scheduler: &'static str,
    /// Physical hosts in the shape.
    pub hosts: u32,
    /// VMs in the shape.
    pub vms: u32,
    /// Racks in the shape.
    pub racks: u32,
    /// Fault severity name (`FaultSeverity::name`).
    pub fault: &'static str,
    /// The group seed the run derived everything from.
    pub seed: u64,
    /// Decision-time features, ordered as `FEATURE_NAMES`.
    pub features: Vec<f64>,
    /// Engine wakeups delivered over the run.
    pub wakeups: u64,
    /// Fluid-kernel rate reallocations.
    pub reallocations: u64,
    /// Fluid-kernel flow touches.
    pub flows_touched: u64,
    /// Jobs the controller saw finish.
    pub jobs_finished: u64,
    /// VM migrations that completed.
    pub migrations_completed: u64,
    /// Map tasks launched on the host holding their split.
    pub data_local_maps: u64,
    /// Map tasks launched in total.
    pub launched_maps: u64,
    /// Shuffle volume, MiB.
    pub shuffle_mb: f64,
    /// **Label:** measured makespan of the run, seconds.
    pub makespan_s: f64,
    /// **Label:** SLO violations the controller recorded.
    pub slo_violations: u64,
}

/// An ordered collection of sweep rows plus its serializers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    /// Rows in group order (the sweep's fixed configuration order).
    pub rows: Vec<Row>,
}

impl Dataset {
    /// The column dictionary, in emission order: axes, features
    /// (`FEATURE_NAMES` under a `feat_` prefix, so names like `hosts`
    /// never collide with the axis columns), observations (`obs_*`),
    /// labels (`label_*`). Every name is unique.
    pub fn columns() -> Vec<String> {
        let mut cols: Vec<String> =
            ["mix", "placement", "scheduler", "hosts", "vms", "racks", "fault", "seed"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        cols.extend(FEATURE_NAMES.iter().map(|s| format!("feat_{s}")));
        cols.extend(
            [
                "obs_wakeups",
                "obs_reallocations",
                "obs_flows_touched",
                "obs_jobs_finished",
                "obs_migrations_completed",
                "obs_data_local_maps",
                "obs_launched_maps",
                "obs_shuffle_mb",
                "label_makespan_s",
                "label_slo_violations",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        cols
    }

    /// Renders the dataset as CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = Dataset::columns().join(",");
        out.push('\n');
        for r in &self.rows {
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{}",
                r.mix, r.placement, r.scheduler, r.hosts, r.vms, r.racks, r.fault, r.seed
            );
            for f in &r.features {
                let _ = write!(out, ",{f}");
            }
            let _ = writeln!(
                out,
                ",{},{},{},{},{},{},{},{},{},{}",
                r.wakeups,
                r.reallocations,
                r.flows_touched,
                r.jobs_finished,
                r.migrations_completed,
                r.data_local_maps,
                r.launched_maps,
                r.shuffle_mb,
                r.makespan_s,
                r.slo_violations
            );
        }
        out
    }

    /// Renders the dataset as a versioned JSON envelope:
    /// `{"dataset":"characterization","version":N,"columns":[..],"rows":[[..]]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"dataset\": \"characterization\",");
        let _ = writeln!(out, "  \"version\": {DATASET_VERSION},");
        let cols: Vec<String> = Dataset::columns().iter().map(|c| format!("\"{c}\"")).collect();
        let _ = writeln!(out, "  \"columns\": [{}],", cols.join(", "));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let mut cells: Vec<String> = vec![
                format!("\"{}\"", r.mix),
                format!("\"{}\"", r.placement),
                format!("\"{}\"", r.scheduler),
                r.hosts.to_string(),
                r.vms.to_string(),
                r.racks.to_string(),
                format!("\"{}\"", r.fault),
                r.seed.to_string(),
            ];
            cells.extend(r.features.iter().map(|f| json_f64(*f)));
            cells.extend([
                r.wakeups.to_string(),
                r.reallocations.to_string(),
                r.flows_touched.to_string(),
                r.jobs_finished.to_string(),
                r.migrations_completed.to_string(),
                r.data_local_maps.to_string(),
                r.launched_maps.to_string(),
                json_f64(r.shuffle_mb),
                json_f64(r.makespan_s),
                r.slo_violations.to_string(),
            ]);
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "    [{}]{comma}", cells.join(", "));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `characterization.csv` and `characterization.json` under
    /// `dir` (created if absent) and returns the two paths.
    pub fn write(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let csv = dir.join("characterization.csv");
        let json = dir.join("characterization.json");
        std::fs::write(&csv, self.to_csv())?;
        std::fs::write(&json, self.to_json())?;
        Ok((csv, json))
    }

    /// Flattens a row into `(features, label)` pairs for model fitting.
    /// Features are the decision-time vector only — observed counters
    /// are *outcomes*, not things the controller knows when it prices a
    /// plan, so they stay out of the model's inputs.
    pub fn training_pairs(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let feats = self.rows.iter().map(|r| r.features.clone()).collect();
        let labels = self.rows.iter().map(|r| r.makespan_s).collect();
        (feats, labels)
    }
}

/// JSON-safe float rendering: Rust's `Display` for finite values (JSON
/// numbers), `null` otherwise.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row {
            mix: "cpu-bound",
            placement: "pack",
            scheduler: "fifo",
            hosts: 2,
            vms: 6,
            racks: 1,
            fault: "none",
            seed: 7,
            features: vec![0.5; FEATURE_NAMES.len()],
            wakeups: 10,
            reallocations: 3,
            flows_touched: 4,
            jobs_finished: 2,
            migrations_completed: 0,
            data_local_maps: 5,
            launched_maps: 6,
            shuffle_mb: 1.25,
            makespan_s: 42.5,
            slo_violations: 0,
        }
    }

    #[test]
    fn csv_header_matches_the_column_dictionary() {
        let ds = Dataset { rows: vec![row()] };
        let csv = ds.to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(header, Dataset::columns().join(","));
        // Every data line has exactly as many cells as columns.
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), Dataset::columns().len());
        }
    }

    #[test]
    fn column_names_are_unique() {
        let cols = Dataset::columns();
        let set: std::collections::BTreeSet<&String> = cols.iter().collect();
        assert_eq!(set.len(), cols.len(), "duplicate column names break CSV consumers");
    }

    #[test]
    fn json_envelope_is_versioned_and_rectangular() {
        let ds = Dataset { rows: vec![row(), row()] };
        let json = ds.to_json();
        assert!(json.contains("\"dataset\": \"characterization\""));
        assert!(json.contains(&format!("\"version\": {DATASET_VERSION}")));
        assert_eq!(json.matches("    [").count(), 2);
    }

    #[test]
    fn training_pairs_use_decision_features_and_makespan() {
        let ds = Dataset { rows: vec![row()] };
        let (feats, labels) = ds.training_pairs();
        assert_eq!(feats[0].len(), FEATURE_NAMES.len());
        assert_eq!(labels, vec![42.5]);
    }
}
