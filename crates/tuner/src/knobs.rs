//! Model-driven knob search.
//!
//! The rule base in the crate root diagnoses *what is wrong*; this
//! module answers *which knob setting to pick* by pricing each
//! candidate with a [`MakespanModel`] — the hand-priced analytic
//! estimator or a fitted `vchar` regression tree
//! (`MakespanKind::Learned`). Because the model is a parameter, a
//! better-calibrated model upgrades every search site for free.
//!
//! Determinism: candidates are priced in input order, ranking sorts by
//! `(estimate, input index)` with `f64::total_cmp`, so equal estimates
//! keep the caller's preference order.

use vcluster::spec::ClusterSpec;
use vsched::model::MakespanModel;
use vsched::placement::{PlacementKind, WorkloadHint};

/// One priced knob candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobChoice {
    /// Index of the candidate in the caller's list.
    pub index: usize,
    /// The placement policy this choice represents.
    pub placement: PlacementKind,
    /// The VM→host map the policy produced for the spec.
    pub map: Vec<u32>,
    /// The model's makespan estimate for that map, seconds.
    pub estimated_s: f64,
}

/// Prices every candidate placement under `model` and returns them
/// ranked best (lowest estimate) first. Candidates whose policy cannot
/// produce a map for the spec are dropped.
pub fn rank_placements(
    spec: &ClusterSpec,
    hint: &WorkloadHint,
    host_load: &[f64],
    model: &dyn MakespanModel,
    candidates: &[PlacementKind],
) -> Vec<KnobChoice> {
    let mut out: Vec<KnobChoice> = candidates
        .iter()
        .enumerate()
        .filter_map(|(index, kind)| {
            let map = kind.assign(spec).or_else(|| {
                // `Spec` means "keep the declared layout": price that.
                matches!(kind, PlacementKind::Spec)
                    .then(|| (0..spec.vms).map(|v| spec.host_of(v)).collect())
            })?;
            let estimated_s = model.estimate(spec, &map, hint, host_load);
            Some(KnobChoice { index, placement: kind.clone(), map, estimated_s })
        })
        .collect();
    out.sort_by(|a, b| a.estimated_s.total_cmp(&b.estimated_s).then(a.index.cmp(&b.index)));
    out
}

/// The single best knob setting, or `None` when no candidate applies.
pub fn best_placement(
    spec: &ClusterSpec,
    hint: &WorkloadHint,
    host_load: &[f64],
    model: &dyn MakespanModel,
    candidates: &[PlacementKind],
) -> Option<KnobChoice> {
    rank_placements(spec, hint, host_load, model, candidates).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsched::model::{HandPriced, MakespanModel};

    fn spec() -> ClusterSpec {
        ClusterSpec::builder().hosts(4).vms(8).racks(2).build()
    }

    fn shuffle_hint() -> WorkloadHint {
        WorkloadHint { tasks: 16, cpu_secs_per_task: 1.0, shuffle_bytes_per_task: 256 << 20 }
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let spec = spec();
        let cands = vec![PlacementKind::Spec, PlacementKind::Pack, PlacementKind::Spread];
        let ranked = rank_placements(&spec, &shuffle_hint(), &[], &HandPriced, &cands);
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].estimated_s <= w[1].estimated_s));
        for c in &ranked {
            assert_eq!(c.map.len(), spec.vms as usize);
        }
    }

    #[test]
    fn best_placement_agrees_with_the_model() {
        let spec = spec();
        let hint = shuffle_hint();
        let cands = vec![PlacementKind::Pack, PlacementKind::Spread];
        let best = best_placement(&spec, &hint, &[], &HandPriced, &cands).unwrap();
        let pack = PlacementKind::Pack.assign(&spec).unwrap();
        let spread = PlacementKind::Spread.assign(&spec).unwrap();
        let t_pack = HandPriced.estimate(&spec, &pack, &hint, &[]);
        let t_spread = HandPriced.estimate(&spec, &spread, &hint, &[]);
        let want = if t_pack <= t_spread { "pack" } else { "spread" };
        assert_eq!(best.placement.name(), want);
    }

    #[test]
    fn a_disagreeing_model_flips_the_choice() {
        /// Prefers whichever map spreads the *least* — opposite of what
        /// the shuffle-heavy hand estimate usually picks.
        struct PackLover;
        impl MakespanModel for PackLover {
            fn name(&self) -> &'static str {
                "pack-lover"
            }
            fn estimate(
                &self,
                _spec: &ClusterSpec,
                map: &[u32],
                _hint: &WorkloadHint,
                _host_load: &[f64],
            ) -> f64 {
                let distinct: std::collections::BTreeSet<u32> = map.iter().copied().collect();
                distinct.len() as f64
            }
        }
        let spec = spec();
        let cands = vec![PlacementKind::Pack, PlacementKind::Spread];
        let best = best_placement(&spec, &shuffle_hint(), &[], &PackLover, &cands).unwrap();
        assert_eq!(best.placement.name(), "pack");
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert!(best_placement(&spec(), &shuffle_hint(), &[], &HandPriced, &[]).is_none());
    }
}
