//! Shared plumbing for the vHadoop bench harness: experiment records,
//! table rendering, and result files consumed by `EXPERIMENTS.md`.
//!
//! Every figure/table binary produces a [`ResultSink`] of `(series, x, y)`
//! records, prints the same rows the paper plots, and writes
//! `results/<experiment>.json` + `.csv` for archival.

#![warn(missing_docs)]

pub mod legacy;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// One measured point of an experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Series name (e.g. `normal`, `cross-domain`, `canopy`).
    pub series: String,
    /// X value (data size MB, map count, cluster size, ...).
    pub x: f64,
    /// Y value (seconds, MB/s, ms, ...).
    pub y: f64,
}

/// Collected results of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultSink {
    /// Experiment id (`fig2`, `table2`, ...).
    pub experiment: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The measurements.
    pub records: Vec<Record>,
}

impl ResultSink {
    /// Empty sink for `experiment`.
    pub fn new(experiment: &str, x_label: &str, y_label: &str) -> Self {
        ResultSink {
            experiment: experiment.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            records: Vec::new(),
        }
    }

    /// Adds one measurement.
    pub fn push(&mut self, series: &str, x: f64, y: f64) {
        self.records.push(Record { series: series.to_string(), x, y });
    }

    /// Distinct series names, in first-appearance order.
    pub fn series(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.series.as_str()) {
                out.push(&r.series);
            }
        }
        out
    }

    /// Y values of one series, ordered by x.
    pub fn series_points(&self, series: &str) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> =
            self.records.iter().filter(|r| r.series == series).map(|r| (r.x, r.y)).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        pts
    }

    /// Renders the experiment as an aligned text table: one row per x,
    /// one column per series.
    pub fn to_table(&self) -> String {
        let series = self.series();
        let mut xs: Vec<f64> = self.records.iter().map(|r| r.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        xs.dedup();
        let mut out = String::new();
        let _ = write!(out, "{:<16}", self.x_label);
        for s in &series {
            let _ = write!(out, " {s:>18}");
        }
        let _ = writeln!(out, "    ({})", self.y_label);
        for x in xs {
            let _ = write!(out, "{x:<16.1}");
            for s in &series {
                let y = self
                    .records
                    .iter()
                    .find(|r| r.series == *s && (r.x - x).abs() < 1e-9)
                    .map(|r| r.y);
                match y {
                    Some(y) => {
                        let _ = write!(out, " {y:>18.2}");
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the sink as pretty-printed JSON (hand-rolled — the offline
    /// build has no serde_json; the schema is flat enough to emit by hand).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"experiment\": \"{}\",", esc(&self.experiment));
        let _ = writeln!(out, "  \"x_label\": \"{}\",", esc(&self.x_label));
        let _ = writeln!(out, "  \"y_label\": \"{}\",", esc(&self.y_label));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"series\": \"{}\", \"x\": {}, \"y\": {} }}{comma}",
                esc(&r.series),
                r.x,
                r.y
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `results/<experiment>.json` and `.csv`; returns the paths.
    pub fn write(&self) -> std::io::Result<Vec<PathBuf>> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let json_path = dir.join(format!("{}.json", self.experiment));
        std::fs::write(&json_path, self.to_json())?;
        let csv_path = dir.join(format!("{}.csv", self.experiment));
        let mut csv = format!("series,{},{}\n", self.x_label, self.y_label);
        for r in &self.records {
            let _ = writeln!(csv, "{},{},{}", r.series, r.x, r.y);
        }
        std::fs::write(&csv_path, csv)?;
        Ok(vec![json_path, csv_path])
    }

    /// Prints the table plus a completion banner, and writes result files.
    pub fn finish(&self) {
        println!("\n=== {} ===", self.experiment);
        print!("{}", self.to_table());
        match self.write() {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("could not write results: {e}"),
        }
    }
}

/// Writes an auxiliary artifact (e.g. a Chrome trace) under `results/`,
/// creating the directory if needed; returns the written path.
pub fn write_artifact(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Parses `--scale <f>` from the process args (default 8.0): a divisor on
/// the paper's absolute data sizes so the harness runs laptop-fast while
/// preserving shapes. `--full` forces scale 1 (paper-size data).
pub fn cli_scale() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full") {
        return 1.0;
    }
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(8.0)
}

/// Parses `--case <name>` from the process args: restricts a multi-case
/// binary (e.g. `ablations`) to the one named study. `None` runs them all.
pub fn cli_case() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--case").and_then(|i| args.get(i + 1)).cloned()
}

/// Parses `--racks <n>` from the process args (default 1, the paper's
/// flat testbed): sweeps that support it spread the hosts over `n` racks
/// behind a core trunk and report per-rack ToR utilization.
pub fn cli_racks() -> u32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--racks")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Checks a series is non-decreasing in x up to `slack` relative dips
/// (shape assertions in the fig binaries' self-tests).
pub fn non_decreasing(points: &[(f64, f64)], slack: f64) -> bool {
    points.windows(2).all(|w| w[1].1 >= w[0].1 * (1.0 - slack))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_tables_and_series() {
        let mut s = ResultSink::new("figX", "size", "seconds");
        s.push("normal", 1.0, 2.0);
        s.push("cross", 1.0, 3.0);
        s.push("normal", 2.0, 4.0);
        assert_eq!(s.series(), vec!["normal", "cross"]);
        assert_eq!(s.series_points("normal"), vec![(1.0, 2.0), (2.0, 4.0)]);
        let table = s.to_table();
        assert!(table.contains("normal"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn shape_checker() {
        assert!(non_decreasing(&[(1.0, 1.0), (2.0, 2.0), (3.0, 1.99)], 0.05));
        assert!(!non_decreasing(&[(1.0, 2.0), (2.0, 1.0)], 0.05));
    }
}
