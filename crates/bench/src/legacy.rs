//! Frozen PR-4 simulation kernel, kept as the `simbench` wall-clock
//! baseline.
//!
//! This is a self-contained transcription of `simcore::fluid` +
//! `simcore::engine` exactly as they stood before the arena/SoA + parallel
//! re-solve rewrite (DESIGN.md §18): HashMap-backed timers and activities,
//! `Option<FlowState>` array-of-structs flow storage with one heap-allocated
//! demand `Vec` per flow, a single union-closure incremental re-solve, and
//! one reallocation attempt per mutation. Persistence and tracing are
//! stripped (the bench never snapshots the baseline); every piece of
//! arithmetic, iteration order, and event ordering is verbatim, so the
//! baseline produces the **exact same wakeup sequence** as the rewritten
//! kernel — `simbench` asserts that identity at every scale.
//!
//! Do not "improve" this module: its value is being frozen.

use simcore::ids::Tag;
use simcore::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

const RATE_CAP: f64 = 1e18;
const DONE_EPS: f64 = 1e-6;
const HEAP_COMPACT_MIN: usize = 64;
const HEAP_SLACK: usize = 4;
const DEAD_TIMER_COMPACT_MIN: usize = 64;

/// Work counters mirroring the PR-4 `KernelStats` fields the bench reports.
#[derive(Debug, Default, Clone, Copy)]
pub struct LegacyStats {
    /// Reallocation passes that found dirty state.
    pub reallocations: u64,
    /// Flows re-solved, summed over all reallocations.
    pub flows_touched: u64,
    /// Resources visited, summed over all reallocations.
    pub resources_touched: u64,
    /// Wakeups delivered.
    pub wakeups: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct FlowId {
    slot: u32,
    gen: u32,
}

#[derive(Debug, Clone)]
struct Resource {
    capacity: f64,
    used: f64,
    cumulative: f64,
}

#[derive(Debug, Clone)]
struct FlowState {
    demands: Vec<(u32, f64)>,
    total: f64,
    remaining: f64,
    rate: f64,
}

#[derive(Debug, Default, Clone)]
struct FlowSlot {
    gen: u32,
    stamp: u32,
    state: Option<FlowState>,
}

struct FluidNet {
    resources: Vec<Resource>,
    slots: Vec<FlowSlot>,
    free: Vec<u32>,
    active: usize,
    last_update: SimTime,
    allocation_dirty: bool,
    res_flows: Vec<Vec<u32>>,
    dirty: Vec<u32>,
    res_mark: Vec<bool>,
    flow_mark: Vec<bool>,
    near_done: usize,
    completions: BinaryHeap<Reverse<(u64, u32, u32)>>,
    scratch_residual: Vec<f64>,
    scratch_weight: Vec<f64>,
    scratch_count: Vec<u32>,
    scratch_saturated: Vec<bool>,
    stats: LegacyStats,
}

impl FluidNet {
    fn new() -> Self {
        FluidNet {
            resources: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            last_update: SimTime::ZERO,
            allocation_dirty: false,
            res_flows: Vec::new(),
            dirty: Vec::new(),
            res_mark: Vec::new(),
            flow_mark: Vec::new(),
            near_done: 0,
            completions: BinaryHeap::new(),
            scratch_residual: Vec::new(),
            scratch_weight: Vec::new(),
            scratch_count: Vec::new(),
            scratch_saturated: Vec::new(),
            stats: LegacyStats::default(),
        }
    }

    fn add_resource(&mut self, capacity: f64) -> u32 {
        let id = self.resources.len() as u32;
        self.resources.push(Resource { capacity, used: 0.0, cumulative: 0.0 });
        self.res_flows.push(Vec::new());
        self.res_mark.push(false);
        self.scratch_residual.push(0.0);
        self.scratch_weight.push(0.0);
        self.scratch_count.push(0);
        self.scratch_saturated.push(false);
        id
    }

    fn capacity(&self, r: u32) -> f64 {
        self.resources[r as usize].capacity
    }

    fn set_capacity(&mut self, r: u32, capacity: f64) {
        self.resources[r as usize].capacity = capacity;
        self.mark_dirty(r as usize);
        self.allocation_dirty = true;
    }

    fn add_flow(&mut self, demands: Vec<(u32, f64)>, work: f64) -> FlowId {
        let state = FlowState { demands, total: work, remaining: work, rate: 0.0 };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].state = Some(state);
                s
            }
            None => {
                self.slots.push(FlowSlot { gen: 0, stamp: 0, state: Some(state) });
                self.flow_mark.push(false);
                (self.slots.len() - 1) as u32
            }
        };
        let f = self.slots[slot as usize].state.as_ref().expect("just stored");
        if f.remaining <= DONE_EPS {
            self.near_done += 1;
        }
        for i in 0..self.slots[slot as usize].state.as_ref().expect("just stored").demands.len() {
            let r = self.slots[slot as usize].state.as_ref().expect("just stored").demands[i].0;
            self.res_flows[r as usize].push(slot);
            self.mark_dirty(r as usize);
        }
        self.active += 1;
        self.allocation_dirty = true;
        FlowId { slot, gen: self.slots[slot as usize].gen }
    }

    #[allow(dead_code)] // kept so the frozen kernel mirrors PR-4 verbatim
    fn remove_flow(&mut self, id: FlowId) -> Option<f64> {
        let slot = self.slots.get_mut(id.slot as usize)?;
        if slot.gen != id.gen || slot.state.is_none() {
            return None;
        }
        let state = slot.state.take().expect("checked above");
        slot.gen = slot.gen.wrapping_add(1);
        slot.stamp = slot.stamp.wrapping_add(1);
        if state.remaining <= DONE_EPS {
            self.near_done -= 1;
        }
        self.detach(id.slot, &state.demands);
        self.free.push(id.slot);
        self.active -= 1;
        self.allocation_dirty = true;
        Some(state.remaining)
    }

    fn detach(&mut self, slot: u32, demands: &[(u32, f64)]) {
        for &(r, _) in demands {
            let list = &mut self.res_flows[r as usize];
            let pos = list.iter().position(|&s| s == slot).expect("flow indexed on its resource");
            list.swap_remove(pos);
            self.mark_dirty(r as usize);
        }
    }

    fn mark_dirty(&mut self, r: usize) {
        if !self.res_mark[r] {
            self.res_mark[r] = true;
            self.dirty.push(r as u32);
        }
    }

    fn advance_to(&mut self, now: SimTime) {
        assert!(now >= self.last_update, "fluid time ran backwards");
        if now == self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        let mut crossed = 0usize;
        for slot in &mut self.slots {
            if let Some(f) = slot.state.as_mut() {
                if f.rate > 0.0 {
                    let before = f.remaining;
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                    if before > DONE_EPS && f.remaining <= DONE_EPS {
                        crossed += 1;
                    }
                    for &(r, w) in &f.demands {
                        self.resources[r as usize].cumulative += f.rate * w * dt;
                    }
                }
            }
        }
        self.near_done += crossed;
        self.last_update = now;
    }

    fn reallocate(&mut self) {
        self.allocation_dirty = false;
        if self.dirty.is_empty() {
            return;
        }
        self.stats.reallocations += 1;

        let mut aff_res = std::mem::take(&mut self.dirty);
        let mut aff_flows: Vec<u32> = Vec::new();
        let mut qi = 0;
        while qi < aff_res.len() {
            let r = aff_res[qi] as usize;
            qi += 1;
            for k in 0..self.res_flows[r].len() {
                let s = self.res_flows[r][k] as usize;
                if !self.flow_mark[s] {
                    self.flow_mark[s] = true;
                    aff_flows.push(s as u32);
                    let f = self.slots[s].state.as_ref().expect("indexed flows are live");
                    for i in 0..f.demands.len() {
                        let ri = self.slots[s].state.as_ref().expect("live").demands[i].0 as usize;
                        if !self.res_mark[ri] {
                            self.res_mark[ri] = true;
                            aff_res.push(ri as u32);
                        }
                    }
                }
            }
        }
        aff_flows.sort_unstable();
        self.stats.flows_touched += aff_flows.len() as u64;
        self.stats.resources_touched += aff_res.len() as u64;

        for &r in &aff_res {
            let ri = r as usize;
            self.res_mark[ri] = false;
            self.resources[ri].used = 0.0;
            self.scratch_residual[ri] = self.resources[ri].capacity;
            self.scratch_weight[ri] = 0.0;
            self.scratch_count[ri] = 0;
        }
        for &s in &aff_flows {
            self.flow_mark[s as usize] = false;
            let f = self.slots[s as usize].state.as_ref().expect("live");
            for &(r, w) in &f.demands {
                self.scratch_weight[r as usize] += w;
                self.scratch_count[r as usize] += 1;
            }
        }

        let mut unfrozen = aff_flows.clone();
        while !unfrozen.is_empty() {
            let mut share = f64::INFINITY;
            for &r in &aff_res {
                let ri = r as usize;
                if self.scratch_count[ri] > 0 && self.scratch_weight[ri] > 0.0 {
                    let s = self.scratch_residual[ri] / self.scratch_weight[ri];
                    if s < share {
                        share = s;
                    }
                }
            }
            let share = share.clamp(0.0, RATE_CAP);

            let tol = share * 1e-12 + 1e-30;
            let mut any_saturated = false;
            for &r in &aff_res {
                let ri = r as usize;
                self.scratch_saturated[ri] = false;
                if share < RATE_CAP
                    && self.scratch_count[ri] > 0
                    && self.scratch_weight[ri] > 0.0
                    && self.scratch_residual[ri] / self.scratch_weight[ri] <= share + tol
                {
                    self.scratch_saturated[ri] = true;
                    any_saturated = true;
                }
            }

            let mut still: Vec<u32> = Vec::new();
            for &slot_idx in &unfrozen {
                let f =
                    self.slots[slot_idx as usize].state.as_mut().expect("unfrozen flows are live");
                let frozen_now = !any_saturated
                    || f.demands.iter().any(|&(r, _)| self.scratch_saturated[r as usize]);
                if frozen_now {
                    f.rate = share;
                    for &(r, w) in &f.demands {
                        let ri = r as usize;
                        self.scratch_residual[ri] =
                            (self.scratch_residual[ri] - share * w).max(0.0);
                        self.scratch_weight[ri] -= w;
                        self.scratch_count[ri] -= 1;
                        if self.scratch_count[ri] == 0 {
                            self.scratch_weight[ri] = 0.0;
                        }
                        self.resources[ri].used += share * w;
                    }
                } else {
                    still.push(slot_idx);
                }
            }
            unfrozen = still;
        }

        for &s in &aff_flows {
            let slot = &mut self.slots[s as usize];
            slot.stamp = slot.stamp.wrapping_add(1);
            let f = slot.state.as_ref().expect("live");
            if f.rate > 0.0 {
                let d = SimDuration::from_secs_f64(f.remaining / f.rate);
                let key = self.last_update.as_nanos().saturating_add(d.as_nanos());
                self.completions.push(Reverse((key, s, slot.stamp)));
            }
        }
        self.compact_completions();

        aff_res.clear();
        self.dirty = aff_res;
    }

    fn compact_completions(&mut self) {
        if self.completions.len() <= HEAP_COMPACT_MIN
            || self.completions.len() <= HEAP_SLACK * self.active
        {
            return;
        }
        let mut entries = std::mem::take(&mut self.completions).into_vec();
        entries.retain(|&Reverse((_, s, stamp))| {
            let slot = &self.slots[s as usize];
            slot.stamp == stamp && slot.state.is_some()
        });
        self.completions = BinaryHeap::from(entries);
    }

    fn earliest_completion(&mut self) -> Option<SimTime> {
        if self.near_done > 0 {
            return Some(self.last_update);
        }
        while let Some(&Reverse((_, s, stamp))) = self.completions.peek() {
            let slot = &self.slots[s as usize];
            if slot.stamp == stamp && slot.state.as_ref().is_some_and(|f| f.rate > 0.0) {
                break;
            }
            self.completions.pop();
        }
        let &Reverse((_, s, _)) = self.completions.peek()?;
        let f = self.slots[s as usize].state.as_ref().expect("validated above");
        let secs = f.remaining / f.rate;
        let d = SimDuration::from_secs_f64(secs).saturating_add(SimDuration::from_nanos(1));
        Some(self.last_update + d)
    }

    fn take_finished(&mut self) -> Vec<FlowId> {
        let mut done = Vec::new();
        for i in 0..self.slots.len() {
            let finished = match &self.slots[i].state {
                Some(f) => f.remaining <= DONE_EPS.max(f.total * 1e-12),
                None => false,
            };
            if finished {
                let slot = &mut self.slots[i];
                let state = slot.state.take().expect("checked above");
                let id = FlowId { slot: i as u32, gen: slot.gen };
                slot.gen = slot.gen.wrapping_add(1);
                slot.stamp = slot.stamp.wrapping_add(1);
                if state.remaining <= DONE_EPS {
                    self.near_done -= 1;
                }
                self.detach(i as u32, &state.demands);
                self.free.push(i as u32);
                self.active -= 1;
                self.allocation_dirty = true;
                done.push(id);
            }
        }
        done
    }

    fn now(&self) -> SimTime {
        self.last_update
    }

    fn is_dirty(&self) -> bool {
        self.allocation_dirty
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct TimerId(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ActivityId(u64);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    FluidWake { epoch: u64 },
    Timer { id: TimerId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    ev: Ev,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
enum Current {
    Idle,
    #[allow(dead_code)] // id retained to mirror PR-4's engine shape
    Flow(FlowId),
}

#[derive(Debug)]
struct Activity {
    remaining: VecDeque<(Vec<(u32, f64)>, f64)>,
    current: Current,
    tag: Tag,
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    User { tag: Tag },
}

/// The frozen PR-4 engine: HashMap timer/activity tables over the
/// union-closure incremental fluid solver above, re-solving once per
/// mutation exactly as the pre-rewrite kernel did.
pub struct LegacyEngine {
    now: SimTime,
    fluid: FluidNet,
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    epoch: u64,
    flow_owner: HashMap<FlowId, ActivityId>,
    activities: HashMap<ActivityId, Activity>,
    next_activity: u64,
    timers: HashMap<TimerId, TimerKind>,
    next_timer: u64,
    out: VecDeque<(SimTime, Tag)>,
    wakeups_delivered: u64,
    dead_timers: usize,
}

impl Default for LegacyEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl LegacyEngine {
    /// Fresh baseline engine at t = 0.
    pub fn new() -> Self {
        LegacyEngine {
            now: SimTime::ZERO,
            fluid: FluidNet::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            epoch: 0,
            flow_owner: HashMap::new(),
            activities: HashMap::new(),
            next_activity: 0,
            timers: HashMap::new(),
            next_timer: 0,
            out: VecDeque::new(),
            wakeups_delivered: 0,
            dead_timers: 0,
        }
    }

    /// Registers a resource; returns its dense index.
    pub fn add_resource(&mut self, capacity: f64) -> u32 {
        self.fluid.add_resource(capacity)
    }

    /// Configured capacity of `r`.
    pub fn capacity(&self, r: u32) -> f64 {
        self.fluid.capacity(r)
    }

    /// Changes a resource's capacity from this instant on.
    pub fn set_capacity(&mut self, r: u32, capacity: f64) {
        self.sync_fluid_clock();
        self.fluid.set_capacity(r, capacity);
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> LegacyStats {
        LegacyStats { wakeups: self.wakeups_delivered, ..self.fluid.stats }
    }

    /// Arms a timer at the absolute instant `at`.
    pub fn set_timer_at(&mut self, at: SimTime, tag: Tag) -> u64 {
        let at = at.max(self.now);
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.timers.insert(id, TimerKind::User { tag });
        self.push_entry(at, Ev::Timer { id });
        id.0
    }

    /// Arms a timer `d` from now.
    pub fn set_timer_in(&mut self, d: SimDuration, tag: Tag) -> u64 {
        self.set_timer_at(self.now + d, tag)
    }

    /// Cancels a pending timer (tombstoned in the heap, PR-4 threshold).
    pub fn cancel_timer(&mut self, id: u64) -> bool {
        let cancelled = self.timers.remove(&TimerId(id)).is_some();
        if cancelled {
            self.note_dead_timer();
        }
        cancelled
    }

    fn note_dead_timer(&mut self) {
        self.dead_timers += 1;
        if self.dead_timers < DEAD_TIMER_COMPACT_MIN || self.dead_timers <= self.timers.len() {
            return;
        }
        let epoch = self.epoch;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|&Reverse(e)| match e.ev {
            Ev::Timer { id } => self.timers.contains_key(&id),
            Ev::FluidWake { epoch: e } => e == epoch,
        });
        self.heap = BinaryHeap::from(entries);
        self.dead_timers = 0;
    }

    /// Starts a single-flow activity (the only shape `simbench` uses).
    pub fn start_flow(&mut self, demands: Vec<(u32, f64)>, work: f64, tag: Tag) {
        let id = ActivityId(self.next_activity);
        self.next_activity += 1;
        let mut remaining = VecDeque::with_capacity(1);
        remaining.push_back((demands, work));
        self.activities.insert(id, Activity { remaining, current: Current::Idle, tag });
        self.advance_activity(id);
    }

    /// Advances to the next completion; `None` when nothing remains.
    pub fn next_wakeup(&mut self) -> Option<(SimTime, Tag)> {
        loop {
            if let Some((t, tag)) = self.out.pop_front() {
                self.wakeups_delivered += 1;
                return Some((t, tag));
            }
            self.refresh_fluid();

            let Reverse(entry) = self.heap.pop()?;
            match entry.ev {
                Ev::Timer { id } => {
                    let Some(kind) = self.timers.remove(&id) else {
                        self.dead_timers = self.dead_timers.saturating_sub(1);
                        continue;
                    };
                    self.now = entry.time;
                    match kind {
                        TimerKind::User { tag } => {
                            self.out.push_back((self.now, tag));
                        }
                    }
                }
                Ev::FluidWake { epoch } => {
                    if epoch != self.epoch {
                        continue;
                    }
                    self.now = entry.time;
                    self.fluid.advance_to(self.now);
                    let finished = self.fluid.take_finished();
                    if finished.is_empty() {
                        self.epoch += 1;
                        if let Some(t) = self.fluid.earliest_completion() {
                            let epoch = self.epoch;
                            let t = t.max(self.now + SimDuration::from_nanos(1));
                            self.push_entry(t, Ev::FluidWake { epoch });
                        }
                        continue;
                    }
                    for fin in finished {
                        let act = self
                            .flow_owner
                            .remove(&fin)
                            .expect("finished flow must belong to an activity");
                        self.step_done(act);
                    }
                    self.refresh_fluid();
                }
            }
        }
    }

    fn push_entry(&mut self, time: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, ev }));
    }

    fn sync_fluid_clock(&mut self) {
        if self.fluid.now() < self.now {
            self.fluid.advance_to(self.now);
        }
    }

    fn refresh_fluid(&mut self) {
        if !self.fluid.is_dirty() {
            return;
        }
        self.sync_fluid_clock();
        self.fluid.reallocate();
        self.epoch += 1;
        if let Some(t) = self.fluid.earliest_completion() {
            let epoch = self.epoch;
            self.push_entry(t.max(self.now), Ev::FluidWake { epoch });
        }
    }

    fn step_done(&mut self, id: ActivityId) {
        if let Some(act) = self.activities.get_mut(&id) {
            act.current = Current::Idle;
        }
        self.advance_activity(id);
    }

    fn advance_activity(&mut self, id: ActivityId) {
        let step = match self.activities.get_mut(&id) {
            Some(act) => act.remaining.pop_front(),
            None => return,
        };
        match step {
            Some((demands, work)) => {
                self.sync_fluid_clock();
                let f = self.fluid.add_flow(demands, work);
                self.activities.get_mut(&id).expect("just checked").current = Current::Flow(f);
                self.flow_owner.insert(f, id);
                self.refresh_fluid();
            }
            None => {
                let act = self.activities.remove(&id).expect("just checked");
                self.out.push_back((self.now, act.tag));
                let _ = act.current;
            }
        }
    }
}
