//! Figure 4a — TeraSort: data generation time and sort time vs. data
//! size, normal vs. cross-domain (paper: both climb steeply past the
//! machine's comfortable working size).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig4_terasort [--scale 8|--full]
//! ```

use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop_bench::{cli_scale, non_decreasing, ResultSink};
use workloads::terasort::run_terasort;

fn main() {
    let scale = cli_scale();
    // Paper x-axis: 100 MB – 1 GB.
    let sizes_mb: Vec<u64> =
        [100u64, 200, 400, 600, 800].iter().map(|&s| (s as f64 / scale).max(2.0) as u64).collect();
    println!("fig4a: terasort, 16 VMs, sizes {sizes_mb:?} MB (scale {scale})");

    let mut sink = ResultSink::new("fig4a_terasort", "data MB", "time s");
    for (series, placement) in
        [("normal", Placement::SingleDomain), ("cross-domain", Placement::CrossDomain)]
    {
        for &mb in &sizes_mb {
            let spec = ClusterSpec::builder().hosts(2).vms(16).placement(placement.clone()).build();
            let rep = run_terasort(spec, mb << 20, 4, RootSeed(44));
            assert!(rep.valid, "TeraValidate must pass");
            println!(
                "  {series:<13} {mb:>5} MB -> gen {:>7.1}s, sort {:>7.1}s",
                rep.gen_time_s, rep.sort_time_s
            );
            sink.push(&format!("{series}/gen"), mb as f64, rep.gen_time_s);
            sink.push(&format!("{series}/sort"), mb as f64, rep.sort_time_s);
        }
    }
    sink.finish();

    // Shapes: both times grow with size; sort > gen; cross ≥ normal.
    for series in ["normal/gen", "normal/sort", "cross-domain/gen", "cross-domain/sort"] {
        assert!(non_decreasing(&sink.series_points(series), 0.05), "{series} grows with size");
    }
    let last = sizes_mb.last().copied().expect("sizes") as f64;
    let at = |s: &str| {
        sink.series_points(s).iter().find(|(x, _)| (*x - last).abs() < 1e-9).expect("measured").1
    };
    assert!(at("normal/sort") > at("normal/gen"), "sorting beats generating in cost");
    assert!(at("cross-domain/sort") >= at("normal/sort") * 0.95, "cross-domain no faster");
}
