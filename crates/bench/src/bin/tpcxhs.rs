//! TPCx-HS — HSGen → HSSort → HSValidate with the HSph@SF figure of
//! merit, swept over scale factors and cluster shapes (DESIGN.md §17):
//!
//! * `colocated` — every worker VM runs datanode + TaskTracker (the
//!   paper's layout);
//! * `disaggregated` — datanode VMs and TaskTracker VMs on disjoint
//!   host sets (the Frankfurt virtualized-Hadoop "separated"
//!   configuration): every map read and output write crosses the wire;
//! * `hetero` — colocated on heterogeneous hosts (hosts 2-3 at half
//!   CPU and quarter disk speed via [`HostClass`] multipliers).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin tpcxhs [--quick]
//! ```
//!
//! Writes `results/tpcxhs.{json,csv}` plus the repo-root
//! `BENCH_tpcxhs.json` conformance record (one HSph@SF per SF ×
//! configuration, each with its HSValidate verdict).

use mapreduce::prelude::MrRuntime;
use mapreduce::runtime::NodeRoles;
use simcore::rng::RootSeed;
use vcluster::cluster::VmId;
use vcluster::spec::{ClusterSpec, HostClass, Placement};
use vhadoop_bench::{non_decreasing, ResultSink};
use workloads::tpcxhs::{run_tpcxhs, HsPlan, HsReport};

const REPLICATION: u32 = 2;
const BLOCK: u64 = 250_000;
const REDUCES: u32 = 4;

struct Config {
    name: &'static str,
    spec: ClusterSpec,
    roles: NodeRoles,
}

fn configs() -> Vec<Config> {
    // 1 master + 8 workers over 4 hosts in every shape, so the three
    // configurations differ only in daemon placement and host speed.
    let colocated =
        ClusterSpec::builder().hosts(4).vms(9).placement(Placement::CrossDomain).build();
    // Frankfurt "separated": storage VMs pinned to hosts 0-1, compute
    // VMs to hosts 2-3 (master with the data) — every read, shuffle
    // hop, and output write crosses host NICs.
    let split = ClusterSpec::builder()
        .hosts(4)
        .vms(9)
        .placement(Placement::Custom(vec![0, 0, 0, 1, 1, 2, 2, 3, 3]))
        .build();
    let hetero = ClusterSpec::builder()
        .hosts(4)
        .vms(9)
        .placement(Placement::CrossDomain)
        .host_classes(vec![
            HostClass::default(),
            HostClass::default(),
            HostClass { cpu_mult: 0.5, disk_mult: 0.25 },
            HostClass { cpu_mult: 0.5, disk_mult: 0.25 },
        ])
        .build();
    vec![
        Config { name: "colocated", spec: colocated, roles: NodeRoles::colocated() },
        Config {
            name: "disaggregated",
            spec: split,
            roles: NodeRoles::separated((1..=4).map(VmId).collect(), (5..=8).map(VmId).collect()),
        },
        Config { name: "hetero", spec: hetero, roles: NodeRoles::colocated() },
    ]
}

fn run(cfg: &Config, sf_bytes: u64, seed: u64) -> HsReport {
    let plan = HsPlan::new(sf_bytes, REDUCES, RootSeed(seed)).with_block_size(BLOCK);
    let mut rt = MrRuntime::with_roles(
        cfg.spec.clone(),
        plan.hdfs_config(REPLICATION),
        cfg.roles.clone(),
        plan.seed,
    );
    run_tpcxhs(&mut rt, &plan)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sfs: Vec<u64> =
        if quick { vec![1_000_000, 2_000_000] } else { vec![2_000_000, 4_000_000, 8_000_000] };
    println!("tpcxhs: SFs {sfs:?} bytes, {REDUCES} reduces, block {BLOCK} (quick={quick})");

    let mut sink = ResultSink::new("tpcxhs", "scale factor MB", "HSph@SF (GB/h)");
    let mut bench = String::from("{\n  \"benchmark\": \"tpcxhs\",\n  \"runs\": [\n");
    let mut rows: Vec<String> = Vec::new();
    for cfg in configs() {
        for &sf in &sfs {
            let rep = run(&cfg, sf, 4242);
            assert!(
                rep.validate.passed,
                "{}@{sf}: clean run must validate, got {:?}",
                cfg.name, rep.validate.violations
            );
            println!(
                "  {:<13} SF {:>9} B -> gen {:>7.1}s sort {:>7.1}s validate {:>7.1}s  HSph@SF {:>8.4}  [{}]",
                cfg.name,
                sf,
                rep.gen_s,
                rep.sort_s,
                rep.validate_s,
                rep.hsph,
                if rep.validate.passed { "pass" } else { "FAIL" },
            );
            let sf_mb = sf as f64 / 1e6;
            sink.push(cfg.name, sf_mb, rep.hsph);
            sink.push(&format!("{}/total_s", cfg.name), sf_mb, rep.total_s);
            rows.push(format!(
                "    {{ \"config\": \"{}\", \"sf_bytes\": {}, \"hsph\": {:.6}, \"total_s\": {:.3}, \"gen_s\": {:.3}, \"sort_s\": {:.3}, \"validate_s\": {:.3}, \"records\": {}, \"validated\": {} }}",
                cfg.name,
                sf,
                rep.hsph,
                rep.total_s,
                rep.gen_s,
                rep.sort_s,
                rep.validate_s,
                rep.records,
                rep.validate.passed,
            ));
        }
    }
    bench.push_str(&rows.join(",\n"));
    bench.push_str("\n  ]\n}\n");
    sink.finish();
    match std::fs::write("BENCH_tpcxhs.json", &bench) {
        Ok(()) => println!("wrote BENCH_tpcxhs.json"),
        Err(e) => eprintln!("could not write BENCH_tpcxhs.json: {e}"),
    }

    // Shapes. The figure of merit amortizes startup with scale, so
    // HSph@SF grows with SF for every configuration. Between layouts
    // there is a crossover: with NFS-backed shared storage (the vHadoop
    // architecture) every HDFS byte already crosses the storage path,
    // so at small SF the Frankfurt "separated" layout's smaller compute
    // tier (4 trackers vs 8) shrinks the shuffle fan-out and wins — but
    // at larger SF colocation's doubled map slots dominate.
    // Heterogeneous hosts can only drag the figure of merit down.
    let at = |series: &str, sf: u64| {
        let sf_mb = sf as f64 / 1e6;
        sink.series_points(series)
            .iter()
            .find(|(x, _)| (*x - sf_mb).abs() < 1e-9)
            .expect("measured")
            .1
    };
    for name in ["colocated", "disaggregated", "hetero"] {
        assert!(
            non_decreasing(&sink.series_points(name), 0.02),
            "{name}: HSph@SF must grow with the scale factor"
        );
    }
    for &sf in &sfs {
        assert!(
            at("hetero", sf) <= at("colocated", sf) * 1.001,
            "SF {sf}: hetero HSph must not beat homogeneous colocated"
        );
    }
    let small = sfs[0];
    assert!(
        at("disaggregated", small) >= at("colocated", small) * 0.999,
        "SF {small}: separation's smaller shuffle fan-out must win at small scale"
    );
    if !quick {
        let big = *sfs.last().expect("sfs");
        assert!(
            at("colocated", big) >= at("disaggregated", big) * 0.999,
            "SF {big}: colocation's extra map slots must win at large scale"
        );
    }
    println!("tpcxhs: all shape assertions hold");
}
