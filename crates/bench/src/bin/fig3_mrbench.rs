//! Figure 3 — MRBench runtime vs. map count (a: reduce=1, maps 1..6) and
//! vs. reduce count (b: map=15, reduces 1..6), normal vs. cross-domain.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig3_mrbench
//! ```

use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop_bench::{non_decreasing, ResultSink};
use workloads::mrbench::run_mrbench;

fn cluster(placement: Placement) -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(16).placement(placement).build()
}

fn main() {
    // --- Fig. 3a: scale maps, reduce = 1 --------------------------------
    let mut fig3a = ResultSink::new("fig3a_mrbench_maps", "maps", "running time s");
    for (series, placement) in
        [("normal", Placement::SingleDomain), ("cross-domain", Placement::CrossDomain)]
    {
        for maps in 1..=6u32 {
            let rep = run_mrbench(cluster(placement.clone()), maps, 1, RootSeed(33));
            println!("  3a {series:<13} maps={maps} -> {:>6.2}s", rep.elapsed_s);
            fig3a.push(series, f64::from(maps), rep.elapsed_s);
        }
    }
    fig3a.finish();

    // --- Fig. 3b: scale reduces, map = 15 -------------------------------
    let mut fig3b = ResultSink::new("fig3b_mrbench_reduces", "reduces", "running time s");
    for (series, placement) in
        [("normal", Placement::SingleDomain), ("cross-domain", Placement::CrossDomain)]
    {
        for reduces in 1..=6u32 {
            let rep = run_mrbench(cluster(placement.clone()), 15, reduces, RootSeed(33));
            println!("  3b {series:<13} reduces={reduces} -> {:>6.2}s", rep.elapsed_s);
            fig3b.push(series, f64::from(reduces), rep.elapsed_s);
        }
    }
    fig3b.finish();

    // Shape checks: time grows with concurrency; cross ≥ normal.
    for sink in [&fig3a, &fig3b] {
        let normal = sink.series_points("normal");
        let cross = sink.series_points("cross-domain");
        assert!(non_decreasing(&normal, 0.10), "{}: grows with concurrency", sink.experiment);
        assert!(
            cross.last().expect("pts").1 >= normal.last().expect("pts").1 * 0.95,
            "{}: cross-domain no faster at full concurrency",
            sink.experiment
        );
    }
}
