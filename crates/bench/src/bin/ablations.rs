//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * `locality`        — locality-aware map scheduling ON vs. OFF;
//! * `combiner`        — wordcount with vs. without the combiner;
//! * `dom0`            — dom0 I/O CPU-steal modelling ON vs. OFF;
//! * `migration-order` — sequential vs. fully concurrent cluster migration;
//! * `speculation`     — backup attempts for straggling maps ON vs. OFF
//!   (with one tracker VM crushed by outside load).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin ablations [--scale 8|--full]
//! ```

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::migration::MigrationConfig;
use vcluster::spec::{ClusterSpec, Placement, XenParams};
use vcluster::virtlm::{VirtLm, WorkloadProfile};
use vhadoop_bench::{cli_scale, ResultSink};
use workloads::wordcount::run_wordcount;

fn cluster(placement: Placement, xen: XenParams) -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(16).placement(placement).xen(xen).build()
}

fn main() {
    let scale = cli_scale();
    let mb = ((128.0 / scale).max(4.0)) as u64;
    let seed = RootSeed(99);
    let mut sink = ResultSink::new("ablations", "variant (0=off/seq 1=on/conc)", "seconds");

    // --- locality-aware scheduling ---------------------------------------
    // Cross-domain placement makes remote reads expensive; locality off
    // should hurt there.
    for (x, on) in [(0.0, false), (1.0, true)] {
        let cfg = JobConfig::default().with_locality(on);
        let t = run_wordcount(cluster(Placement::CrossDomain, XenParams::default()), mb << 20, cfg, seed)
            .elapsed_s;
        println!("locality={on}: {t:.1}s");
        sink.push("locality", x, t);
    }

    // --- combiner ---------------------------------------------------------
    for (x, on) in [(0.0, false), (1.0, true)] {
        let cfg = JobConfig::default().with_combiner(on);
        let t = run_wordcount(cluster(Placement::SingleDomain, XenParams::default()), mb << 20, cfg, seed)
            .elapsed_s;
        println!("combiner={on}: {t:.1}s");
        sink.push("combiner", x, t);
    }

    // --- dom0 I/O CPU steal ------------------------------------------------
    for (x, on) in [(0.0, false), (1.0, true)] {
        let xen = if on {
            XenParams::default()
        } else {
            XenParams { dom0_cycles_per_net_byte: 0.0, dom0_cycles_per_disk_byte: 0.0, ..Default::default() }
        };
        // dom0 steal matters most when I/O and CPU contend on one host.
        let t = run_wordcount(
            cluster(Placement::SingleDomain, xen),
            mb << 20,
            JobConfig::default(),
            seed,
        )
        .elapsed_s;
        println!("dom0-steal={on}: {t:.1}s");
        sink.push("dom0", x, t);
    }

    // --- migration order ----------------------------------------------------
    for (x, concurrency) in [(0.0, 1u32), (1.0, 16)] {
        let bench = VirtLm {
            n_vms: 16,
            mem_mib: vec![1024],
            migration: MigrationConfig { concurrency, ..Default::default() },
        };
        let row = bench.run_one(&WorkloadProfile::kernel_build(), 1024);
        println!(
            "migration concurrency={concurrency}: total {:.1}s, max downtime {:.0}ms",
            row.total_time_s, row.max_downtime_ms
        );
        sink.push("migration-total-s", x, row.total_time_s);
        sink.push("migration-max-downtime-ms", x, row.max_downtime_ms);
    }

    // --- speculative execution under a crushed tracker ---------------------
    for (x, on) in [(0.0, false), (1.0, true)] {
        let t = run_straggler_job(on, seed);
        println!("speculation={on}: {t:.1}s");
        sink.push("speculation", x, t);
    }

    sink.finish();

    // Shape checks.
    let pts = |s: &str| sink.series_points(s);
    assert!(pts("combiner")[1].1 < pts("combiner")[0].1, "combiner speeds wordcount up");
    assert!(pts("dom0")[1].1 >= pts("dom0")[0].1, "dom0 steal can only slow things down");
    assert!(
        pts("locality")[1].1 <= pts("locality")[0].1 * 1.05,
        "locality-aware scheduling does not hurt"
    );
    assert!(
        pts("speculation")[1].1 < pts("speculation")[0].1,
        "speculation rescues the straggler"
    );
}

/// A CPU-heavy job with one tracker VM crushed by external load; returns
/// elapsed seconds.
fn run_straggler_job(speculative: bool, seed: RootSeed) -> f64 {
    use mapreduce::prelude::*;
    use vhdfs::hdfs::HdfsConfig;

    struct HeavyApp;
    impl MapReduceApp for HeavyApp {
        fn name(&self) -> &str {
            "heavy"
        }
        fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
            out(k.clone(), v.clone());
        }
        fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
            out(k.clone(), V::Int(vs.len() as i64));
        }
        fn cost(&self) -> CostProfile {
            CostProfile { map_cpu_per_record: 1.2e8, ..Default::default() }
        }
    }

    let spec = ClusterSpec::builder().hosts(2).vms(9).placement(Placement::SingleDomain).build();
    let mut rt = mapreduce::runtime::MrRuntime::new(
        spec,
        HdfsConfig { block_size: 1 << 20, replication: 2 },
        seed,
    );
    rt.register_input("/in", (8 << 20) - 1, VmId(1));
    for i in 0..8 {
        let demands = rt.cluster.cpu_demands(VmId(1));
        rt.engine
            .start_flow(demands, 2.4e9 * 600.0, simcore::ids::Tag::new(simcore::owners::USER, i, 0));
    }
    let input = GeneratorInput::new(8, 1 << 20, |idx| {
        (0..40).map(|i| (K::Int((idx * 100 + i) as i64), V::Float(i as f64))).collect()
    });
    let config = JobConfig {
        speculative,
        locality_aware: false,
        use_combiner: false,
        ..Default::default()
    };
    let job = JobSpec::new("heavy", "/in", format!("/out-{speculative}")).with_config(config);
    rt.run_job(job, Box::new(HeavyApp), Box::new(input)).elapsed_secs()
}
