//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * `locality`        — locality-aware map scheduling ON vs. OFF;
//! * `combiner`        — wordcount with vs. without the combiner;
//! * `dom0`            — dom0 I/O CPU-steal modelling ON vs. OFF;
//! * `migration-order` — sequential vs. fully concurrent cluster migration;
//! * `speculation`     — backup attempts for straggling maps ON vs. OFF
//!   (with one tracker VM crushed by outside load);
//! * `scheduler`       — FIFO vs. fair vs. job-driven task scheduling with
//!   two wordcount jobs contending for the same slots;
//! * `faults`          — the Fig. 2 wordcount clean vs. under an injected
//!   `FaultPlan` (node crash + straggler + link degradation); the faulted
//!   run's trace is exported to `results/faults.trace.json`;
//! * `placement`       — pack vs. spread vs. adaptive VM placement under
//!   the `vsched` controller, for each `JobMix` arrival stream (cpu-bound,
//!   shuffle-heavy, wordcount) — the paper's normal-vs-cross-domain table
//!   as a closed-loop policy choice;
//! * `topology`        — the paper's normal-vs-cross-domain experiment over
//!   the rack tree: workers split within one rack vs. split across racks
//!   behind an oversubscribed core trunk vs. the same trunk congested
//!   further; writes `results/topology.{csv,json}`;
//! * `costmodel`       — the hand-priced makespan estimator vs. a `vchar`
//!   regression tree (trained on a characterization sweep) pricing the
//!   same what-if rebalance candidates, on two cluster shapes; writes
//!   `results/costmodel_ablation.{csv,json}` and asserts the learned
//!   model cuts the mean estimator error on at least one shape.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin ablations \
//!     [--scale 8|--full] [--case <name>]
//! ```

use mapreduce::config::JobConfig;
use mapreduce::scheduler::SchedulerPolicy;
use simcore::rng::RootSeed;
use vcluster::migration::MigrationConfig;
use vcluster::spec::{ClusterSpec, Placement, XenParams};
use vcluster::virtlm::{VirtLm, WorkloadProfile};
use vhadoop_bench::{cli_case, cli_scale, ResultSink};
use workloads::wordcount::{run_wordcount, submit_wordcount};

fn cluster(placement: Placement, xen: XenParams) -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(16).placement(placement).xen(xen).build()
}

const CASES: &[&str] = &[
    "locality",
    "combiner",
    "dom0",
    "migration-order",
    "speculation",
    "scheduler",
    "faults",
    "placement",
    "topology",
    "whatif",
    "costmodel",
];

fn main() {
    let scale = cli_scale();
    let case = cli_case();
    if let Some(c) = case.as_deref() {
        assert!(CASES.contains(&c), "unknown --case {c:?}; known cases: {CASES:?}");
    }
    let wanted = |name: &str| case.as_deref().is_none_or(|c| c == name);
    let mb = ((128.0 / scale).max(4.0)) as u64;
    let seed = RootSeed(99);
    let mut sink = ResultSink::new("ablations", "variant (0=off/seq 1=on/conc)", "seconds");

    // --- locality-aware scheduling ---------------------------------------
    // Cross-domain placement makes remote reads expensive; locality off
    // should hurt there.
    for (x, on) in [(0.0, false), (1.0, true)].into_iter().filter(|_| wanted("locality")) {
        let cfg = JobConfig::default().with_locality(on);
        let t = run_wordcount(
            cluster(Placement::CrossDomain, XenParams::default()),
            mb << 20,
            cfg,
            seed,
        )
        .elapsed_s;
        println!("locality={on}: {t:.1}s");
        sink.push("locality", x, t);
    }

    // --- combiner ---------------------------------------------------------
    for (x, on) in [(0.0, false), (1.0, true)].into_iter().filter(|_| wanted("combiner")) {
        let cfg = JobConfig::default().with_combiner(on);
        let t = run_wordcount(
            cluster(Placement::SingleDomain, XenParams::default()),
            mb << 20,
            cfg,
            seed,
        )
        .elapsed_s;
        println!("combiner={on}: {t:.1}s");
        sink.push("combiner", x, t);
    }

    // --- dom0 I/O CPU steal ------------------------------------------------
    for (x, on) in [(0.0, false), (1.0, true)].into_iter().filter(|_| wanted("dom0")) {
        let xen = if on {
            XenParams::default()
        } else {
            XenParams {
                dom0_cycles_per_net_byte: 0.0,
                dom0_cycles_per_disk_byte: 0.0,
                ..Default::default()
            }
        };
        // dom0 steal matters most when I/O and CPU contend on one host.
        let t = run_wordcount(
            cluster(Placement::SingleDomain, xen),
            mb << 20,
            JobConfig::default(),
            seed,
        )
        .elapsed_s;
        println!("dom0-steal={on}: {t:.1}s");
        sink.push("dom0", x, t);
    }

    // --- migration order ----------------------------------------------------
    for (x, concurrency) in
        [(0.0, 1u32), (1.0, 16)].into_iter().filter(|_| wanted("migration-order"))
    {
        let bench = VirtLm {
            n_vms: 16,
            mem_mib: vec![1024],
            migration: MigrationConfig { concurrency, ..Default::default() },
        };
        let row = bench.run_one(&WorkloadProfile::kernel_build(), 1024);
        println!(
            "migration concurrency={concurrency}: total {:.1}s, max downtime {:.0}ms",
            row.total_time_s, row.max_downtime_ms
        );
        sink.push("migration-total-s", x, row.total_time_s);
        sink.push("migration-max-downtime-ms", x, row.max_downtime_ms);
    }

    // --- speculative execution under a crushed tracker ---------------------
    for (x, on) in [(0.0, false), (1.0, true)].into_iter().filter(|_| wanted("speculation")) {
        let t = run_straggler_job(on, seed);
        println!("speculation={on}: {t:.1}s");
        sink.push("speculation", x, t);
    }

    // --- task-scheduler policy under 2-job contention -----------------------
    if wanted("scheduler") {
        for (x, policy) in SchedulerPolicy::all().iter().enumerate() {
            let (makespan, mean_job) = run_contending_jobs(*policy, mb, seed);
            println!("scheduler={policy}: makespan {makespan:.1}s, mean job {mean_job:.1}s");
            sink.push("scheduler-makespan", x as f64, makespan);
            sink.push("scheduler-mean-job", x as f64, mean_job);
        }
    }

    // --- fault injection ----------------------------------------------------
    for (x, faulted) in [(0.0, false), (1.0, true)].into_iter().filter(|_| wanted("faults")) {
        let (t, trace) = run_faulted_wordcount(faulted, mb);
        println!("faults={faulted}: {t:.1}s");
        sink.push("faults", x, t);
        if faulted {
            let path = vhadoop_bench::write_artifact("faults.trace.json", &trace)
                .expect("write faults trace");
            assert!(trace.contains("\"cat\":\"fault\""), "the faulted run must record fault spans");
            println!("faulted trace -> {}", path.display());
        }
    }

    // --- VM placement policy under a controller-driven job stream -----------
    if wanted("placement") {
        use workloads::loadgen::JobMix;
        for mix in JobMix::ALL {
            for (x, kind) in placement_kinds(mix).into_iter().enumerate() {
                let name = kind.name();
                let makespan = run_placement_stream(mix, kind);
                println!("placement mix={} policy={}: {:.1}s", mix.name(), name, makespan);
                sink.push(&format!("placement-{}", mix.name()), x as f64, makespan);
            }
        }
    }

    // --- network topology: normal vs cross-rack vs cross-core ---------------
    if wanted("topology") {
        let (normal, cross_rack, cross_core) = run_topology_cases(mb, seed);
        let mut tsink =
            ResultSink::new("topology", "case (0=normal 1=cross-rack 2=cross-core)", "seconds");
        println!(
            "topology normal={normal:.1}s cross-rack={cross_rack:.1}s cross-core={cross_core:.1}s"
        );
        tsink.push("topology", 0.0, normal);
        tsink.push("topology", 1.0, cross_rack);
        tsink.push("topology", 2.0, cross_core);
        tsink.finish();
        assert!(
            normal < cross_rack,
            "paper shape: packed workers ({normal:.1}s) beat a cross-rack split ({cross_rack:.1}s)"
        );
        assert!(
            cross_rack < cross_core,
            "a congested core ({cross_core:.1}s) must cost more than a healthy one ({cross_rack:.1}s)"
        );
    }

    // --- fork-and-measure what-if rebalancing --------------------------------
    if wanted("whatif") {
        run_whatif_case();
    }

    // --- learned vs hand-priced what-if cost model ---------------------------
    if wanted("costmodel") {
        run_costmodel_case();
    }

    sink.finish();

    // Shape checks (only for the studies that actually ran).
    let pts = |s: &str| sink.series_points(s);
    if wanted("combiner") {
        assert!(pts("combiner")[1].1 < pts("combiner")[0].1, "combiner speeds wordcount up");
    }
    if wanted("dom0") {
        assert!(pts("dom0")[1].1 >= pts("dom0")[0].1, "dom0 steal can only slow things down");
    }
    if wanted("locality") {
        assert!(
            pts("locality")[1].1 <= pts("locality")[0].1 * 1.05,
            "locality-aware scheduling does not hurt"
        );
    }
    if wanted("speculation") {
        assert!(
            pts("speculation")[1].1 < pts("speculation")[0].1,
            "speculation rescues the straggler"
        );
    }
    if wanted("scheduler") {
        let mk = pts("scheduler-makespan");
        assert_eq!(mk.len(), SchedulerPolicy::all().len(), "one makespan per policy");
        assert!(mk.iter().all(|&(_, y)| y > 0.0), "every policy finishes both jobs");
    }
    if wanted("faults") {
        let f = pts("faults");
        assert!(f.iter().all(|&(_, y)| y > 0.0), "both runs complete");
        assert!(f[1].1 >= f[0].1 * 0.95, "injected faults cannot speed the job up");
    }
    if wanted("placement") {
        // Series order is [pack, spread, adaptive] (see placement_kinds).
        let cpu = pts("placement-cpu-bound");
        let shf = pts("placement-shuffle-heavy");
        let wc = pts("placement-wordcount");
        assert!(cpu[0].1 < shf_slack(cpu[1].1), "cpu-bound mix: pack must beat spread");
        assert!(shf[1].1 < shf_slack(shf[0].1), "shuffle-heavy mix: spread must beat pack");
        assert!(wc[0].1 <= wc[1].1 * 1.05, "wordcount mix: pack (normal) no worse than spread");
        for series in [&cpu, &shf, &wc] {
            let best = series[0].1.min(series[1].1);
            assert!(
                series[2].1 <= best * 1.05,
                "adaptive must track the better static policy (got {:.1}s vs best {:.1}s)",
                series[2].1,
                best
            );
        }
    }
}

/// Strict-inequality guard with a little slack so the assertion tests a
/// real gap, not float noise.
fn shf_slack(y: f64) -> f64 {
    y * 0.99
}

/// One controller-driven CPU-bound stream on a `hosts`-host cluster
/// packed onto host 0, with the rebalancer in `mode` and its estimates
/// priced by `model`; returns the stream makespan and every what-if
/// evaluation the run recorded.
fn run_whatif_stream(
    mode: vsched::rebalance::RebalanceMode,
    hosts: u32,
    vms: u32,
    model: vsched::model::MakespanKind,
) -> (f64, Vec<vsched::controller::WhatIfOutcome>) {
    use vhadoop::prelude::*;
    use workloads::loadgen::load_job;

    let mut cfg = ControllerConfig::enabled_with(PlacementKind::Spec);
    cfg.model = model;
    cfg.rebalance = Some(RebalanceConfig {
        interval: SimDuration::from_secs(1),
        hot_cpu: 0.5,
        hot_nic: 0.9,
        cold_cpu: 0.2,
        hysteresis_ticks: 2,
        max_moves: 2,
        cooldown: SimDuration::from_secs(5),
        consolidate: false,
        mode,
        hint: WorkloadHint::default(),
    });
    // Hosts are deliberately asymmetric: all but three VMs crowd host 0
    // (hot), hosts 1 and 2 carry some load already, any further hosts are
    // empty — so the candidate destinations genuinely differ and the
    // estimator can be graded. (On 4 hosts and 16 VMs this is the
    // historical 13/2/1/0 geometry.)
    assert!(hosts >= 3 && vms >= 6, "the asymmetric geometry needs >= 3 hosts, >= 6 VMs");
    let map: Vec<u32> = (0..vms)
        .map(|v| {
            if v == vms - 1 {
                2
            } else if v >= vms - 3 {
                1
            } else {
                0
            }
        })
        .collect();
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(
                ClusterSpec::builder()
                    .hosts(hosts)
                    .vms(vms)
                    .placement(Placement::Custom(map))
                    .build(),
            )
            .hdfs(vhdfs::hdfs::HdfsConfig { block_size: 1 << 20, replication: 2 })
            .no_monitor()
            .seed(4242)
            .controller(cfg)
            .build(),
    );
    // A wide CPU-heavy wave on the packed host trips the hot detector
    // (same shape as the controller integration test).
    let n = 3;
    for run in 0..n {
        p.schedule_job(
            SimTime::from_secs(u64::from(run)),
            run,
            20.0,
            load_job(run, 12, 6.0, 4 << 20),
        );
    }
    let done = p.drive_until_idle();
    assert_eq!(done.len(), n as usize, "every arrival must complete under {mode:?}");
    if std::env::var_os("WHATIF_DEBUG").is_some() {
        let c = p.controller().expect("enabled").counters();
        eprintln!(
            "[debug {mode:?}] ticks={} planned={} completed={} makespan={:.1}s",
            c.rebalance_ticks,
            c.migrations_planned,
            c.migrations_completed,
            p.now().as_secs_f64()
        );
    }
    (p.now().as_secs_f64(), p.observe().whatif)
}

/// The `whatif` ablation: the same hot-host stream rebalanced by the
/// estimator alone vs. by fork-and-measure what-if evaluation. Writes
/// `results/whatif.{csv,json}` — one row per candidate (estimated vs.
/// measured makespan, chosen flag) plus the two end-to-end makespans.
fn run_whatif_case() {
    use vsched::model::MakespanKind;
    use vsched::rebalance::RebalanceMode;

    let (makespan_est, outcomes_est) =
        run_whatif_stream(RebalanceMode::Estimate, 4, 16, MakespanKind::HandPriced);
    assert!(outcomes_est.is_empty(), "estimate mode must not fork");
    let (makespan_wi, outcomes) =
        run_whatif_stream(RebalanceMode::WhatIf, 4, 16, MakespanKind::HandPriced);
    assert!(!outcomes.is_empty(), "the hot host must trip a what-if evaluation");

    // The first evaluation round: all outcomes sharing the earliest `at`.
    let first_at = outcomes[0].at;
    let round: Vec<_> = outcomes.iter().filter(|o| o.at == first_at).collect();
    assert!(round.len() >= 3, "need >= 3 candidate destinations, got {}", round.len());
    let chosen = round.iter().find(|o| o.chosen).expect("one candidate is committed");
    assert!(
        round.iter().all(|o| chosen.measured_s <= o.measured_s),
        "the committed candidate must have the best measured makespan"
    );
    assert!(
        makespan_wi <= makespan_est * 1.05,
        "what-if ({makespan_wi:.1}s) must be no worse than the estimator's choice ({makespan_est:.1}s)"
    );

    let mut wsink = ResultSink::new("whatif", "candidate index", "seconds");
    for (i, o) in outcomes.iter().enumerate() {
        wsink.push("estimated_s", i as f64, o.estimated_s);
        wsink.push("measured_s", i as f64, o.measured_s);
        wsink.push("chosen", i as f64, f64::from(o.chosen));
        let err = if o.measured_s > 0.0 {
            (o.measured_s - o.estimated_s).abs() / o.measured_s
        } else {
            0.0
        };
        println!(
            "whatif candidate {i}: est {:.1}s measured {:.1}s err {:.0}% {}",
            o.estimated_s,
            o.measured_s,
            err * 100.0,
            if o.chosen { "<- committed" } else { "" }
        );
    }
    wsink.push("makespan", 0.0, makespan_est);
    wsink.push("makespan", 1.0, makespan_wi);
    println!("whatif: estimator makespan {makespan_est:.1}s, what-if makespan {makespan_wi:.1}s");
    wsink.finish();
}

/// Mean relative what-if estimator error of `model` on the asymmetric
/// hot-host stream with the given shape. What-if mode commits by
/// *measured* fork makespans, so the trajectory — and therefore the
/// candidate set being priced — is identical for every model; only the
/// estimates differ. Also checks every outcome is attributed to the
/// model that priced it.
fn whatif_model_err(hosts: u32, vms: u32, model: vsched::model::MakespanKind) -> f64 {
    let expect = model.name();
    let (_, outcomes) =
        run_whatif_stream(vsched::rebalance::RebalanceMode::WhatIf, hosts, vms, model);
    assert!(!outcomes.is_empty(), "shape {hosts}x{vms} must trip a what-if evaluation");
    assert!(
        outcomes.iter().all(|o| o.model == expect),
        "every outcome must be attributed to the {expect} model"
    );
    let errs: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.measured_s > 0.0)
        .map(|o| (o.measured_s - o.estimated_s).abs() / o.measured_s)
        .collect();
    errs.iter().sum::<f64>() / errs.len() as f64
}

/// The `costmodel` ablation: characterize, fit, then re-price the same
/// what-if candidates with the hand-priced estimator vs. the fitted tree
/// on two cluster shapes. Writes `results/costmodel_ablation.{csv,json}`
/// (per-shape mean estimator error for both models) and asserts the
/// learned model wins on held-out MAE and on at least one shape's
/// what-if error.
fn run_costmodel_case() {
    use vchar::prelude::*;
    use vsched::model::{MakespanKind, TreeConfig};
    use vsched::placement::PlacementKind;
    use workloads::loadgen::JobMix;

    // Characterize the same scenario family the rebalancer prices: a
    // CPU-bound burst on shapes bracketing the what-if geometries.
    let spec = SweepSpec {
        mixes: vec![JobMix::CpuBound],
        placements: vec![PlacementKind::Pack, PlacementKind::Spread],
        schedulers: vec![SchedulerPolicy::Fifo],
        shapes: vec![
            Shape { hosts: 2, vms: 8, racks: 1 },
            Shape { hosts: 3, vms: 12, racks: 1 },
            Shape { hosts: 4, vms: 16, racks: 1 },
            Shape { hosts: 6, vms: 18, racks: 1 },
        ],
        faults: vec![FaultSeverity::None, FaultSeverity::Light],
        jobs: 3,
        mean_gap_s: 1.0,
        base_seed: 4242,
    };
    let ds = run_sweep(&spec, 4);
    let (tree, eval) = fit_cost_model(&ds, &TreeConfig::default());
    println!(
        "costmodel: {} rows ({} train / {} held out), tree {} nodes depth {}",
        eval.rows_total, eval.rows_train, eval.rows_heldout, eval.tree_nodes, eval.tree_depth
    );
    println!(
        "costmodel: held-out MAE learned {:.2}s vs hand-priced {:.2}s",
        eval.learned_mae_s, eval.hand_mae_s
    );
    assert!(
        eval.learned_mae_s <= eval.hand_mae_s,
        "the fitted tree must beat the hand-priced estimator on held-out rows \
         (learned {:.2}s vs hand {:.2}s)",
        eval.learned_mae_s,
        eval.hand_mae_s
    );

    let shapes = [(4u32, 16u32), (3u32, 12u32)];
    let mut sink =
        ResultSink::new("costmodel_ablation", "shape index", "mean relative estimator error");
    let mut learned_wins = 0;
    for (si, &(hosts, vms)) in shapes.iter().enumerate() {
        let hand = whatif_model_err(hosts, vms, MakespanKind::HandPriced);
        let learned = whatif_model_err(hosts, vms, MakespanKind::Learned(tree.clone()));
        println!(
            "costmodel shape {hosts}x{vms}: what-if err hand {:.0}% learned {:.0}%{}",
            hand * 100.0,
            learned * 100.0,
            if learned < hand { " <- learned wins" } else { "" }
        );
        sink.push("hand_err_mean", si as f64, hand);
        sink.push("learned_err_mean", si as f64, learned);
        sink.push("hosts", si as f64, f64::from(hosts));
        sink.push("vms", si as f64, f64::from(vms));
        if learned < hand {
            learned_wins += 1;
        }
    }
    sink.push("heldout_mae_hand_s", 0.0, eval.hand_mae_s);
    sink.push("heldout_mae_learned_s", 0.0, eval.learned_mae_s);
    sink.finish();
    assert!(
        learned_wins >= 1,
        "the learned model must cut mean what-if estimator error on at least one shape"
    );
}

/// The paper's normal-vs-cross-domain wordcount generalized to the rack
/// tree: 4 hosts on 2 racks (hosts 0,1 | 2,3), workers split over two
/// hosts, shuffle kept heavy (no combiner, several reduces) so the wire
/// matters. *Normal* splits within rack 0 — shuffle crosses NICs and the
/// 8 Gb/s ToR only. *Cross-rack* splits over hosts 0 and 2 behind a
/// 4:1-oversubscribed core trunk (250 Mb/s against 1 Gb/s vNICs): every
/// shuffle pair and all NFS traffic now share that single link.
/// *Cross-core* congests the same trunk a further 4x. Returns the three
/// makespans.
fn run_topology_cases(mb: u64, seed: RootSeed) -> (f64, f64, f64) {
    use vcluster::spec::GBIT_PER_SEC;
    use vcluster::topology::TopologySpec;

    let run = |second_host: u32, core_bw: f64| {
        let map: Vec<u32> = (0..16).map(|v| if v % 2 == 0 { 0 } else { second_host }).collect();
        let mut topo = TopologySpec::racks(2);
        topo.core_bw = core_bw;
        let spec = ClusterSpec::builder()
            .hosts(4)
            .vms(16)
            .placement(Placement::Custom(map))
            .topology(topo)
            .build();
        let cfg = JobConfig::default().with_combiner(false).with_reduces(4);
        run_wordcount(spec, mb << 20, cfg, seed).elapsed_s
    };
    let normal = run(1, GBIT_PER_SEC); // in-rack: the core carries NFS only
    let cross_rack = run(2, GBIT_PER_SEC * 0.25);
    let cross_core = run(2, GBIT_PER_SEC * 0.0625);
    (normal, cross_rack, cross_core)
}

/// The three policies a placement series sweeps, in CSV x-order
/// (0 = pack, 1 = spread, 2 = adaptive with the mix's own hint).
fn placement_kinds(mix: workloads::loadgen::JobMix) -> [vsched::placement::PlacementKind; 3] {
    use vsched::placement::{PlacementKind, WorkloadHint};
    let (maps, cpu_secs, io_bytes) = mix.base();
    [
        PlacementKind::Pack,
        PlacementKind::Spread,
        PlacementKind::Adaptive(WorkloadHint {
            tasks: maps,
            cpu_secs_per_task: cpu_secs,
            shuffle_bytes_per_task: io_bytes,
        }),
    ]
}

/// One controller-driven arrival stream of `mix` jobs under `kind`
/// placement on the paper's 2×16 geometry; returns the stream makespan in
/// seconds. Small HDFS blocks keep the synthetic inputs from drowning the
/// run in NFS reads.
fn run_placement_stream(
    mix: workloads::loadgen::JobMix,
    kind: vsched::placement::PlacementKind,
) -> f64 {
    use vhadoop::prelude::*;
    use workloads::loadgen::ArrivalProcess;

    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster(Placement::SingleDomain, XenParams::default()))
            .hdfs(vhdfs::hdfs::HdfsConfig { block_size: 1 << 20, replication: 2 })
            .no_monitor()
            .seed(4242)
            .controller(ControllerConfig::enabled_with(kind))
            .build(),
    );
    let arrivals =
        ArrivalProcess::new(mix, 4, SimDuration::from_secs(2), 2, RootSeed(4242)).schedule();
    for (i, a) in arrivals.iter().enumerate() {
        p.schedule_job(a.at, a.tenant, a.expected_s, a.job(i as u32));
    }
    let done = p.drive_until_idle();
    assert_eq!(done.len(), 4, "every arrival must complete");
    let rep = p.controller().expect("controller enabled").slo_report();
    assert_eq!(rep.starved, 0, "no admitted job may starve");
    p.now().as_secs_f64()
}

/// The Fig. 2 wordcount geometry through the full platform, clean or with
/// a mixed fault plan (straggler + node crash + degraded host NIC)
/// injected in the job's first seconds; returns elapsed seconds and the
/// run's trace.
fn run_faulted_wordcount(faulted: bool, mb: u64) -> (f64, String) {
    use simcore::prelude::*;
    use vhadoop::prelude::*;
    use workloads::textgen::TextCorpus;
    use workloads::wordcount::WordCountApp;

    let bytes = (mb << 20).max(4 << 20);
    let plan = if faulted {
        FaultPlan::new()
            .at(
                SimTime::from_secs(1),
                FaultKind::StragglerVm { vm: 3, factor: 0.2, duration: SimDuration::from_secs(4) },
            )
            .at(SimTime::from_secs(2), FaultKind::NodeCrash { vm: 6 })
            .at(
                SimTime::from_secs(3),
                FaultKind::LinkDegrade {
                    host: 0,
                    factor: 0.5,
                    duration: SimDuration::from_secs(2),
                },
            )
    } else {
        FaultPlan::new()
    };
    let mut p = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster(Placement::SingleDomain, XenParams::default()))
            .hdfs(vhdfs::hdfs::HdfsConfig { block_size: (bytes / 15).max(1 << 20), replication: 3 })
            .no_monitor()
            .tracing(true)
            .faults(plan)
            .seed(2012)
            .build(),
    );
    p.register_input("/faults/in", bytes, VmId(1));
    let blocks = p.rt.hdfs.stat("/faults/in").expect("registered").blocks.len();
    let block_size = p.rt.hdfs.config().block_size;
    let corpus = TextCorpus::english_like(RootSeed(2012).derive("corpus"));
    let last = blocks - 1;
    let input = GeneratorInput::new(blocks, block_size, move |idx| {
        let b = if idx == last { bytes - last as u64 * block_size } else { block_size };
        corpus.split_records(idx, b)
    });
    let spec = JobSpec::new("wordcount", "/faults/in", "/faults/out")
        .with_config(JobConfig::default().with_combiner(false).with_reduces(4));
    let result = p.run_job(spec, Box::new(WordCountApp), Box::new(input));
    while p.step().is_some() {}
    (result.elapsed_secs(), p.rt.engine.tracer().to_chrome_json())
}

/// Two identical wordcount jobs submitted back-to-back onto one cluster
/// small enough that their tasks contend for slots under `policy`;
/// returns (makespan, mean job elapsed) in seconds.
fn run_contending_jobs(policy: SchedulerPolicy, mb: u64, seed: RootSeed) -> (f64, f64) {
    use vhdfs::hdfs::HdfsConfig;
    let spec = ClusterSpec::builder().hosts(2).vms(5).placement(Placement::CrossDomain).build();
    // Small blocks → each job alone oversubscribes the map slots, so both
    // jobs have pending maps at once and the policies' ordering choices
    // actually show.
    let hdfs = HdfsConfig { block_size: 512 << 10, replication: 3 };
    let mut rt = mapreduce::runtime::MrRuntime::new(spec, hdfs, seed);
    rt.mr.set_policy(policy);
    let cfg = JobConfig::default().with_reduces(4);
    for run in 0..2 {
        submit_wordcount(&mut rt, run, (mb << 20) / 2, cfg.clone(), seed);
    }
    let results = rt.drive_all();
    assert_eq!(results.len(), 2, "both jobs must complete under {policy}");
    let makespan = rt.now().as_secs_f64();
    let mean_job =
        results.iter().map(|r| r.elapsed.as_secs_f64()).sum::<f64>() / results.len() as f64;
    (makespan, mean_job)
}

/// A CPU-heavy job with one tracker VM crushed by external load; returns
/// elapsed seconds.
fn run_straggler_job(speculative: bool, seed: RootSeed) -> f64 {
    use mapreduce::prelude::*;
    use vhdfs::hdfs::HdfsConfig;

    struct HeavyApp;
    impl MapReduceApp for HeavyApp {
        fn name(&self) -> &str {
            "heavy"
        }
        fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
            out(k.clone(), v.clone());
        }
        fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
            out(k.clone(), V::Int(vs.len() as i64));
        }
        fn cost(&self) -> CostProfile {
            CostProfile { map_cpu_per_record: 1.2e8, ..Default::default() }
        }
    }

    let spec = ClusterSpec::builder().hosts(2).vms(9).placement(Placement::SingleDomain).build();
    let mut rt = mapreduce::runtime::MrRuntime::new(
        spec,
        HdfsConfig { block_size: 1 << 20, replication: 2 },
        seed,
    );
    rt.register_input("/in", (8 << 20) - 1, VmId(1));
    for i in 0..8 {
        let demands = rt.cluster.cpu_demands(VmId(1));
        rt.engine.start_flow(
            demands,
            2.4e9 * 600.0,
            simcore::ids::Tag::new(simcore::owners::USER, i, 0),
        );
    }
    let input = GeneratorInput::new(8, 1 << 20, |idx| {
        (0..40).map(|i| (K::Int((idx * 100 + i) as i64), V::Float(i as f64))).collect()
    });
    let config =
        JobConfig { speculative, locality_aware: false, use_combiner: false, ..Default::default() };
    let job = JobSpec::new("heavy", "/in", format!("/out-{speculative}")).with_config(config);
    rt.run_job(job, Box::new(HeavyApp), Box::new(input)).elapsed_secs()
}
