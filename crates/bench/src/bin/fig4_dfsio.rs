//! Figure 4b — TestDFSIO read/write throughput, normal vs. cross-domain
//! (paper: read beats write; cross-domain degrades both).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig4_dfsio [--scale 8|--full]
//! ```

use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop_bench::{cli_scale, ResultSink};
use workloads::dfsio::run_dfsio;

fn main() {
    let scale = cli_scale();
    let file_mb = ((256.0 / scale).max(4.0)) as u64;
    let files = 8u32;
    println!("fig4b: DFSIO, 16 VMs, {files} files x {file_mb} MB (scale {scale})");

    let mut sink = ResultSink::new("fig4b_dfsio", "op (0=write 1=read)", "throughput MB/s");
    for (series, placement) in
        [("normal", Placement::SingleDomain), ("cross-domain", Placement::CrossDomain)]
    {
        let spec = ClusterSpec::builder().hosts(2).vms(16).placement(placement).build();
        let rep = run_dfsio(spec, files, file_mb << 20, RootSeed(55));
        println!(
            "  {series:<13} write {:>7.1} MB/s ({:>6.1}s), read {:>7.1} MB/s ({:>6.1}s)",
            rep.write_mb_s, rep.write_time_s, rep.read_mb_s, rep.read_time_s
        );
        sink.push(series, 0.0, rep.write_mb_s);
        sink.push(series, 1.0, rep.read_mb_s);
    }
    sink.finish();

    // Shapes: read > write on both placements; cross write ≤ normal write.
    let normal = sink.series_points("normal");
    let cross = sink.series_points("cross-domain");
    assert!(normal[1].1 > normal[0].1, "normal: read beats write");
    assert!(cross[1].1 > cross[0].1, "cross: read beats write");
    assert!(cross[0].1 <= normal[0].1 * 1.05, "cross-domain write no faster than normal");
}
