//! Figure 2 — Wordcount runtime vs. input size, normal vs. cross-domain
//! 16-node hadoop virtual cluster.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig2_wordcount [--scale 8|--full]
//! ```

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop_bench::{cli_scale, non_decreasing, write_artifact, ResultSink};
use vhdfs::hdfs::HdfsConfig;
use workloads::wordcount::{run_wordcount_traced, run_wordcount_with};

fn main() {
    let scale = cli_scale();
    // Paper x-axis: TOEFL text, tens to hundreds of MB.
    let sizes_mb: Vec<u64> = [16u64, 32, 64, 128, 256, 512]
        .iter()
        .map(|&s| (s as f64 / scale).max(1.0) as u64)
        .collect();
    println!("fig2: wordcount, 16 VMs, input sizes {sizes_mb:?} MB (scale {scale})");

    let mut sink = ResultSink::new("fig2_wordcount", "input MB", "running time s");
    for (series, placement) in
        [("normal", Placement::SingleDomain), ("cross-domain", Placement::CrossDomain)]
    {
        for &mb in &sizes_mb {
            let spec = ClusterSpec::builder().hosts(2).vms(16).placement(placement.clone()).build();
            // The paper's wordcount: mappers emit raw (word, 1) pairs and
            // reducers sum — no combiner, so the full intermediate data
            // shuffles between VMs (the traffic cross-domain placement
            // puts onto the physical wire). Blocks sized so the maps
            // spread over all 15 workers.
            let cfg = JobConfig::default().with_combiner(false).with_reduces(4);
            let hdfs = HdfsConfig { block_size: ((mb << 20) / 15).max(1 << 20), replication: 3 };
            let rep = run_wordcount_with(spec, mb << 20, cfg, hdfs, RootSeed(2012));
            println!("  {series:<13} {mb:>5} MB -> {:>8.1}s", rep.elapsed_s);
            sink.push(series, mb as f64, rep.elapsed_s);
        }
    }
    sink.finish();

    // Re-run the smallest normal point with the structured tracer on and
    // archive the Chrome trace (open in chrome://tracing / Perfetto).
    let mb = sizes_mb[0];
    let spec = ClusterSpec::builder().hosts(2).vms(16).placement(Placement::SingleDomain).build();
    let cfg = JobConfig::default().with_combiner(false).with_reduces(4);
    let hdfs = HdfsConfig { block_size: ((mb << 20) / 15).max(1 << 20), replication: 3 };
    let (_, trace) = run_wordcount_traced(spec, mb << 20, cfg, hdfs, RootSeed(2012));
    for cat in ["map", "shuffle", "reduce", "hdfs"] {
        assert!(
            trace.contains(&format!("\"cat\":\"{cat}\"")),
            "trace covers the {cat} span category"
        );
    }
    match write_artifact("fig2_wordcount.trace.json", &trace) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write trace: {e}"),
    }

    // Shape checks (the paper's qualitative claims).
    let normal = sink.series_points("normal");
    let cross = sink.series_points("cross-domain");
    assert!(non_decreasing(&normal, 0.05), "runtime grows with input size (normal)");
    assert!(non_decreasing(&cross, 0.05), "runtime grows with input size (cross)");
    let gap_small = cross[0].1 / normal[0].1;
    let gap_large = cross.last().expect("points").1 / normal.last().expect("points").1;
    println!(
        "cross/normal gap: {gap_small:.2}x at {} MB -> {gap_large:.2}x at {} MB",
        normal[0].0,
        normal.last().expect("points").0
    );
    assert!(gap_large >= 1.0, "cross-domain never beats normal at scale");
}
