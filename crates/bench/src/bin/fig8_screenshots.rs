//! Figure 8 — "screenshots" of the sample points and clustering results
//! for every algorithm: SVG files with the per-iteration cluster overlay
//! (last iteration bold red, earlier ones colored, oldest grey) plus an
//! ASCII rendition on stdout.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig8_screenshots
//! ```

use mlkit::datasets::gaussian_mixture_1000;
use mlkit::display::{render_ascii, render_svg, IterationTrail};
use mlkit::mlrt::Clustering;
use mlkit::prelude::{
    CanopyParams, Distance, FuzzyKMeansParams, KMeansParams, MeanShiftParams, MinHashParams,
};
use mlkit::vector::nearest;
use simcore::rng::RootSeed;

fn assign(points: &[Vec<f64>], centers: &[Vec<f64>]) -> Vec<usize> {
    points.iter().map(|p| nearest(p, centers, Distance::Euclidean).0).collect()
}

fn main() {
    let seed = RootSeed(2012);
    let data = gaussian_mixture_1000(seed);
    let pts = &data.points;
    std::fs::create_dir_all("results/fig8").expect("create results dir");
    let mut written = Vec::new();

    // (a) raw sample data.
    let raw = Clustering { centers: Vec::new(), assignments: Vec::new() };
    written.push(save("sample-data", pts, &raw, &IterationTrail::new()));

    // (b) canopy.
    let canopies = mlkit::canopy::build_canopies(pts, CanopyParams::display());
    let centers: Vec<Vec<f64>> = canopies.into_iter().map(|(c, _)| c).collect();
    let model = Clustering { assignments: assign(pts, &centers), centers };
    let mut trail = IterationTrail::new();
    trail.push(model.centers.clone());
    written.push(save("canopy", pts, &model, &trail));

    // (c) dirichlet.
    let (dmodel, dclust) =
        mlkit::dirichlet::reference(pts, mlkit::dirichlet::DirichletParams::default(), seed);
    let mut trail = IterationTrail::new();
    trail.push(dmodel.components.iter().map(|c| c.mean.clone()).collect());
    written.push(save("dirichlet", pts, &dclust, &trail));

    // (d) fuzzy k-means with iteration trail.
    let params = FuzzyKMeansParams { k: 3, max_iters: 10, convergence: 0.01, ..Default::default() };
    let mut centers = mlkit::kmeans::init_centers(pts, params.k, seed);
    let mut trail = IterationTrail::new();
    trail.push(centers.clone());
    for _ in 0..params.max_iters {
        let (next, moved) = mlkit::fuzzy::fuzzy_step(pts, &centers, params.m, params.distance);
        centers = next;
        trail.push(centers.clone());
        if moved < params.convergence {
            break;
        }
    }
    let model = Clustering { assignments: assign(pts, &centers), centers };
    written.push(save("fuzzy-kmeans", pts, &model, &trail));

    // (e) k-means with iteration trail.
    let params = KMeansParams { k: 3, max_iters: 10, convergence: 0.01, ..Default::default() };
    let mut centers = mlkit::kmeans::init_centers(pts, params.k, seed.derive("km"));
    let mut trail = IterationTrail::new();
    trail.push(centers.clone());
    for _ in 0..params.max_iters {
        let (next, moved) = mlkit::kmeans::lloyd_step(pts, &centers, params.distance);
        centers = next;
        trail.push(centers.clone());
        if moved < params.convergence {
            break;
        }
    }
    let kmodel = Clustering { assignments: assign(pts, &centers), centers };
    written.push(save("kmeans", pts, &kmodel, &trail));

    // (f) mean shift.
    let (msmodel, _) = mlkit::meanshift::reference(pts, MeanShiftParams::display());
    let mut trail = IterationTrail::new();
    trail.push(msmodel.centers.clone());
    written.push(save("meanshift", pts, &msmodel, &trail));

    // (g) minhash: color points by their largest cluster membership.
    let clusters = mlkit::minhash::reference(pts, MinHashParams::default(), seed.derive("mh"));
    let mut assignments = vec![0usize; pts.len()];
    for (ci, cluster) in clusters.iter().enumerate().take(9) {
        for &p in cluster {
            assignments[p] = ci + 1;
        }
    }
    let mhmodel = Clustering { centers: Vec::new(), assignments };
    written.push(save("minhash", pts, &mhmodel, &IterationTrail::new()));

    println!("\nk-means result (terminal rendition):");
    println!("{}", render_ascii(pts, &kmodel, 72, 20));
    println!("wrote:");
    for p in written {
        println!("  {p}");
    }
}

fn save(name: &str, pts: &[Vec<f64>], model: &Clustering, trail: &IterationTrail) -> String {
    let svg = render_svg(name, pts, model, trail, 640, 480);
    let path = format!("results/fig8/{name}.svg");
    std::fs::write(&path, svg).expect("write SVG");
    path
}
