//! Kernel micro-bench: the arena/SoA + batched + parallel fluid kernel vs.
//! the frozen PR-4 kernel (`vhadoop_bench::legacy`), on synthetic churn
//! shaped like the paper's worst cases — shuffle storms, migration under
//! load, fault-plan churn, and BSP-style iterative compute waves — from 16
//! up to 16384 VMs.
//!
//! Offline and criterion-free. Every case drives the *identical* scenario
//! script through up to four kernels and asserts all wakeup sequences are
//! **identical** (every optimization is output-invariant):
//!
//! - `legacy` — the frozen PR-4 engine (one re-solve per mutation,
//!   AoS flow storage, HashMap timers): the honest wall-clock baseline.
//! - `seq` — the rewritten kernel, worker pool forced to 1 thread.
//! - `par` — the rewritten kernel at `--threads N` (default:
//!   `min(8, available_parallelism)`).
//! - `full` — the rewritten kernel with [`Engine::set_full_reallocate`]
//!   (the pre-incremental global pass); only run at ≤ 256 VMs where it is
//!   affordable, preserving the PR-4-era touched-ratio trajectory.
//!
//! Wall-clock uses `std::time::Instant` (a sanctioned use under the
//! determinism lint); everything gate-worthy is pinned on the
//! machine-independent kernel counters (`reallocations`, `flows_touched`,
//! `batch_applied`, ...).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin simbench                # full sweep
//! cargo run --release -p vhadoop-bench --bin simbench -- --quick     # CI case
//! cargo run --release -p vhadoop-bench --bin simbench -- --threads 4
//! ```
//!
//! Emits `results/bench_simcore.json` (all cases) and refreshes the
//! repo-root `BENCH_simcore.json` trajectory point consumed by the
//! check.sh `perf` stage.

use rand::Rng;
use simcore::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;
use vhadoop_bench::legacy::LegacyEngine;
use vhadoop_bench::write_artifact;

/// Machine-independent work counters unified across both kernels (the
/// legacy kernel reports zero for statistics it predates).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Counters {
    reallocations: u64,
    flows_touched: u64,
    resources_touched: u64,
    batch_applied: u64,
    components_solved_parallel: u64,
    comp_size_p99: u64,
    comp_size_max: u64,
    wakeups: u64,
}

/// The minimal driving surface shared by the rewritten kernel and the
/// frozen PR-4 baseline, so one scenario script produces both wakeup
/// streams being compared. Resources are dense `u32` indices (allocation
/// order is identical on both sides by construction).
trait Kernel {
    /// Timer handle type (generation-stamped on the new kernel, a bare
    /// counter on the legacy one).
    type Timer: Copy;
    fn add_resource(&mut self, name: String, kind: ResourceKind, capacity: f64) -> u32;
    fn capacity(&self, r: u32) -> f64;
    fn set_capacity(&mut self, r: u32, capacity: f64);
    fn start_flow(&mut self, demands: &[(u32, f64)], work: f64, tag: Tag);
    fn set_timer_at(&mut self, at: SimTime, tag: Tag) -> Self::Timer;
    fn set_timer_in(&mut self, d: SimDuration, tag: Tag) -> Self::Timer;
    fn cancel_timer(&mut self, t: Self::Timer) -> bool;
    fn next_wakeup(&mut self) -> Option<(SimTime, Tag)>;
    fn counters(&self) -> Counters;
    /// Export kernel counters into the trace (new kernel only).
    fn sample_trace(&mut self) {}
}

/// The rewritten kernel under a configurable worker pool.
struct NewKernel {
    e: Engine,
}

impl NewKernel {
    fn new(threads: usize, full: bool, trace: bool) -> Self {
        let mut e = Engine::new();
        e.set_solver_threads(threads);
        e.set_full_reallocate(full);
        if trace {
            e.tracer_mut().set_enabled(true);
        }
        NewKernel { e }
    }
}

impl Kernel for NewKernel {
    type Timer = TimerId;

    fn add_resource(&mut self, name: String, kind: ResourceKind, capacity: f64) -> u32 {
        self.e.add_resource(name, kind, capacity).index() as u32
    }

    fn capacity(&self, r: u32) -> f64 {
        self.e.fluid().capacity(ResourceId::from_index(r as usize))
    }

    fn set_capacity(&mut self, r: u32, capacity: f64) {
        self.e.set_capacity(ResourceId::from_index(r as usize), capacity);
    }

    fn start_flow(&mut self, demands: &[(u32, f64)], work: f64, tag: Tag) {
        let demands = demands
            .iter()
            .map(|&(r, w)| Demand::weighted(ResourceId::from_index(r as usize), w))
            .collect();
        self.e.start_flow(demands, work, tag);
    }

    fn set_timer_at(&mut self, at: SimTime, tag: Tag) -> TimerId {
        self.e.set_timer_at(at, tag)
    }

    fn set_timer_in(&mut self, d: SimDuration, tag: Tag) -> TimerId {
        self.e.set_timer_in(d, tag)
    }

    fn cancel_timer(&mut self, t: TimerId) -> bool {
        self.e.cancel_timer(t)
    }

    fn next_wakeup(&mut self) -> Option<(SimTime, Tag)> {
        self.e.next_wakeup().map(|(t, w)| (t, w.tag()))
    }

    fn counters(&self) -> Counters {
        let s = self.e.kernel_stats();
        Counters {
            reallocations: s.reallocations,
            flows_touched: s.flows_touched,
            resources_touched: s.resources_touched,
            batch_applied: s.batch_applied,
            components_solved_parallel: s.components_solved_parallel,
            comp_size_p99: s.comp_size_p99,
            comp_size_max: s.comp_size_max,
            wakeups: s.wakeups,
        }
    }

    fn sample_trace(&mut self) {
        self.e.trace_kernel_counters();
    }
}

/// The frozen PR-4 baseline.
struct LegacyKernel {
    e: LegacyEngine,
}

impl Kernel for LegacyKernel {
    type Timer = u64;

    fn add_resource(&mut self, _name: String, _kind: ResourceKind, capacity: f64) -> u32 {
        self.e.add_resource(capacity)
    }

    fn capacity(&self, r: u32) -> f64 {
        self.e.capacity(r)
    }

    fn set_capacity(&mut self, r: u32, capacity: f64) {
        self.e.set_capacity(r, capacity);
    }

    fn start_flow(&mut self, demands: &[(u32, f64)], work: f64, tag: Tag) {
        self.e.start_flow(demands.to_vec(), work, tag);
    }

    fn set_timer_at(&mut self, at: SimTime, tag: Tag) -> u64 {
        self.e.set_timer_at(at, tag)
    }

    fn set_timer_in(&mut self, d: SimDuration, tag: Tag) -> u64 {
        self.e.set_timer_in(d, tag)
    }

    fn cancel_timer(&mut self, t: u64) -> bool {
        self.e.cancel_timer(t)
    }

    fn next_wakeup(&mut self) -> Option<(SimTime, Tag)> {
        self.e.next_wakeup()
    }

    fn counters(&self) -> Counters {
        let s = self.e.stats();
        Counters {
            reallocations: s.reallocations,
            flows_touched: s.flows_touched,
            resources_touched: s.resources_touched,
            wakeups: s.wakeups,
            ..Counters::default()
        }
    }
}

/// VMs per rack-level aggregation resource (32 hosts a rack). The wave
/// scenario joins every task to its rack aggregator, merging a rack's
/// flows into one connected component without ever binding their rates.
const RACK_VMS: u32 = 256;

/// Synthetic cluster shape: `vms` VMs packed 8 per host, one vCPU resource
/// per VM, one CPU + NIC per host, one shared switch, plus one rack-level
/// aggregation resource per [`RACK_VMS`] VMs. Compute flows stay inside
/// their host; transfers cross the switch and transiently merge
/// components — the honest adversary for the component-partitioned solver.
struct Topo {
    vcpu: Vec<u32>,
    host_cpu: Vec<u32>,
    nic: Vec<u32>,
    switch: u32,
    rack_agg: Vec<u32>,
    hosts: u32,
}

impl Topo {
    fn build<K: Kernel>(k: &mut K, vms: u32) -> Topo {
        let hosts = vms.div_ceil(8).max(1);
        let racks = vms.div_ceil(RACK_VMS).max(1);
        let host_cpu = (0..hosts)
            .map(|h| k.add_resource(format!("host{h}.cpu"), ResourceKind::Cpu, 32e9))
            .collect();
        let nic = (0..hosts)
            .map(|h| k.add_resource(format!("host{h}.nic"), ResourceKind::Net, 1.25e9))
            .collect();
        let vcpu = (0..vms)
            .map(|v| k.add_resource(format!("vm{v}.vcpu"), ResourceKind::Cpu, 4e9))
            .collect();
        let switch = k.add_resource("switch".into(), ResourceKind::Net, 10e9);
        let rack_agg = (0..racks)
            .map(|r| k.add_resource(format!("rack{r}.agg"), ResourceKind::Net, 1e12))
            .collect();
        Topo { vcpu, host_cpu, nic, switch, rack_agg, hosts }
    }

    fn host_of(&self, vm: u32) -> u32 {
        (vm / 8).min(self.hosts - 1)
    }

    fn compute(&self, vm: u32, work: f64) -> (Vec<(u32, f64)>, f64) {
        let h = self.host_of(vm) as usize;
        (vec![(self.vcpu[vm as usize], 1.0), (self.host_cpu[h], 1.0)], work)
    }

    /// One BSP wave task: host-local compute joined to the (non-binding)
    /// rack aggregation resource, so a whole rack re-solves as one
    /// component while every task still runs at its vCPU rate.
    fn wave_task(&self, vm: u32, work: f64) -> (Vec<(u32, f64)>, f64) {
        let h = self.host_of(vm) as usize;
        let rack = (vm / RACK_VMS).min(self.rack_agg.len() as u32 - 1) as usize;
        (
            vec![
                (self.vcpu[vm as usize], 1.0),
                (self.host_cpu[h], 1.0),
                (self.rack_agg[rack], 1.0),
            ],
            work,
        )
    }

    fn transfer(&self, src_vm: u32, dst_vm: u32, bytes: f64) -> (Vec<(u32, f64)>, f64) {
        let s = self.host_of(src_vm) as usize;
        let d = self.host_of(dst_vm) as usize;
        let mut demands = vec![(self.nic[s], 1.0), (self.switch, 1.0)];
        if d != s {
            demands.push((self.nic[d], 1.0));
        }
        (demands, bytes)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Every wakeup respawns mostly intra-host compute, occasionally a
    /// cross-host transfer: thousands of small independent components.
    ShuffleStorm,
    /// Steady compute churn with one long migration-style transfer per
    /// host cycling through VMs.
    MigrationUnderLoad,
    /// Compute churn plus a random [`FaultPlan`] translated into capacity
    /// degrade/restore cycles and mass timer arm/cancel churn.
    FaultChurn,
    /// BSP-style iterative ML: synchronized waves of equal-work tasks, one
    /// per VM. Every wave completes at a single instant and respawns in
    /// one burst — the showcase for batched event application (one
    /// reallocation per wave instead of one per task) and the parallel
    /// component re-solve (one component per rack).
    IterativeWaves,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::ShuffleStorm => "shuffle_storm",
            Scenario::MigrationUnderLoad => "migration_under_load",
            Scenario::FaultChurn => "fault_churn",
            Scenario::IterativeWaves => "iterative_waves",
        }
    }
}

/// Tag owners for wakeup routing inside the bench.
const OWNER_COMPUTE: u32 = 1;
const OWNER_TRANSFER: u32 = 2;
const OWNER_CHAFF: u32 = 3;
const OWNER_FAULT: u32 = 4;
const OWNER_WAVE: u32 = 5;

/// Per-wave task sizes (equal *within* a wave — exact completion ties are
/// the point — varied across waves so successive waves are distinct).
const WAVE_WORK: [f64; 4] = [4e9, 6e9, 3e9, 8e9];

struct RunOutcome {
    wall_s: f64,
    counters: Counters,
    /// Exact wakeup sequence `(t_ns, owner, a, b)` — compared across every
    /// kernel/thread configuration to prove output identity.
    wakeups: Vec<(u64, u32, u32, u64)>,
}

#[allow(clippy::too_many_lines)]
fn run<K: Kernel>(
    k: &mut K,
    scenario: Scenario,
    vms: u32,
    events: usize,
    trace: bool,
) -> RunOutcome {
    let topo = Topo::build(k, vms);
    let mut rng = RootSeed(2012).stream(scenario.name());

    let mut plan_for_faults: Option<FaultPlan> = None;
    match scenario {
        Scenario::IterativeWaves => {
            // Wave 0: one equal-work task per VM, no randomness anywhere.
            for vm in 0..vms {
                let (d, w) = topo.wave_task(vm, WAVE_WORK[0]);
                k.start_flow(&d, w, Tag::new(OWNER_WAVE, vm, 0));
            }
        }
        other => {
            // Warm pool: two compute flows per VM.
            for vm in 0..vms {
                for _ in 0..2 {
                    let (d, w) = topo.compute(vm, rng.gen_range(1e9..8e9));
                    k.start_flow(&d, w, Tag::new(OWNER_COMPUTE, vm, 0));
                }
            }
            match other {
                Scenario::MigrationUnderLoad => {
                    // One long transfer per host pair, refreshed on completion.
                    for h in 0..topo.hosts {
                        let src = h * 8;
                        let dst = ((h + 1) % topo.hosts) * 8;
                        let (d, w) = topo.transfer(src, dst, 2e9);
                        k.start_flow(&d, w, Tag::new(OWNER_TRANSFER, src, 0));
                    }
                }
                Scenario::FaultChurn => {
                    // Random fault plan (pre-sorted at insertion): throttles
                    // become capacity scalings armed as timers below.
                    let plan = FaultPlan::random(
                        &FaultProfile {
                            vms,
                            hosts: topo.hosts,
                            horizon: SimDuration::from_secs(30),
                            max_events: 24,
                            max_crashes: 0,
                            allow_migration_abort: false,
                        },
                        RootSeed(2012),
                    );
                    for (i, ev) in plan.events().iter().enumerate() {
                        k.set_timer_at(ev.at, Tag::new(OWNER_FAULT, i as u32, 0));
                    }
                    plan_for_faults = Some(plan);
                }
                _ => {}
            }
        }
    }

    let started = Instant::now();
    let mut wakeups = Vec::with_capacity(events);
    let mut chaff: Vec<K::Timer> = Vec::new();
    let mut degraded: Vec<(u32, f64)> = Vec::new();
    while wakeups.len() < events {
        let Some((t, tag)) = k.next_wakeup() else {
            break;
        };
        wakeups.push((t.as_nanos(), tag.owner, tag.a, tag.b));
        if trace && wakeups.len() % 256 == 0 {
            k.sample_trace();
        }
        match tag.owner {
            OWNER_WAVE => {
                // Task done: respawn this VM's task for the next wave.
                let wave = tag.b + 1;
                let (d, w) = topo.wave_task(tag.a, WAVE_WORK[wave as usize % WAVE_WORK.len()]);
                k.start_flow(&d, w, Tag::new(OWNER_WAVE, tag.a, wave));
            }
            OWNER_COMPUTE => {
                // Respawn on the same VM: 90% compute (intra-host
                // component), 10% cross-host shuffle transfer.
                let vm = tag.a;
                if rng.gen_bool(0.1) {
                    let dst = rng.gen_range(0..vms);
                    let (d, work) = topo.transfer(vm, dst, rng.gen_range(1e8..1e9));
                    k.start_flow(&d, work, Tag::new(OWNER_TRANSFER, vm, 0));
                } else {
                    let (d, work) = topo.compute(vm, rng.gen_range(1e9..8e9));
                    k.start_flow(&d, work, Tag::new(OWNER_COMPUTE, vm, 0));
                }
                // Fault churn also hammers the timer heap: arm a batch of
                // timeout guards and cancel most of them immediately —
                // the tombstone-compaction path under load.
                if scenario == Scenario::FaultChurn {
                    for j in 0..4u32 {
                        let id = k.set_timer_in(
                            SimDuration::from_secs(3600 + u64::from(j)),
                            Tag::new(OWNER_CHAFF, j, 0),
                        );
                        chaff.push(id);
                    }
                    while chaff.len() > 2 {
                        let id = chaff.remove(0);
                        k.cancel_timer(id);
                    }
                }
            }
            OWNER_TRANSFER => {
                // Transfer done: replace with compute on the source VM.
                let vm = tag.a;
                let (d, work) = topo.compute(vm, rng.gen_range(1e9..8e9));
                k.start_flow(&d, work, Tag::new(OWNER_COMPUTE, vm, 0));
                if scenario == Scenario::MigrationUnderLoad {
                    // Next migration leg from the following VM on the host.
                    let src = (vm + 1) % vms;
                    let dst = (src + 8) % vms;
                    let (d, work) = topo.transfer(src, dst, 2e9);
                    k.start_flow(&d, work, Tag::new(OWNER_TRANSFER, src, 0));
                }
            }
            OWNER_FAULT => {
                let plan = plan_for_faults.as_ref().expect("fault scenario");
                let ev = plan.events()[tag.a as usize];
                let (resource, factor) = match ev.kind {
                    FaultKind::LinkDegrade { host, factor, .. } => {
                        (topo.nic[host as usize], factor)
                    }
                    FaultKind::SlowDisk { factor, .. } => (topo.switch, factor),
                    FaultKind::StragglerVm { vm, factor, .. } => (topo.vcpu[vm as usize], factor),
                    _ => continue,
                };
                let factor = factor.clamp(0.01, 1.0);
                let cap = k.capacity(resource);
                k.set_capacity(resource, cap * factor);
                degraded.push((resource, factor));
                // Restore half the outstanding degradations a little later.
                if degraded.len() > 1 {
                    let (r, f) = degraded.remove(0);
                    let cap = k.capacity(r);
                    k.set_capacity(r, cap / f);
                }
            }
            _ => {}
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    RunOutcome { wall_s, counters: k.counters(), wakeups }
}

struct Case {
    scenario: Scenario,
    vms: u32,
    events: usize,
    /// Also run the global full-solve baseline (affordable ≤ 256 VMs only).
    with_full: bool,
}

struct Row {
    scenario: &'static str,
    vms: u32,
    events: usize,
    threads: usize,
    legacy: RunOutcome,
    seq: RunOutcome,
    par: RunOutcome,
    full: Option<RunOutcome>,
}

impl Row {
    fn wall_speedup(&self) -> f64 {
        self.legacy.wall_s / self.par.wall_s.max(1e-12)
    }

    fn touched_ratio_vs_legacy(&self) -> f64 {
        self.legacy.counters.flows_touched as f64 / self.seq.counters.flows_touched.max(1) as f64
    }
}

fn counters_json(o: &mut String, key: &str, out: &RunOutcome, new_kernel: bool) {
    let c = &out.counters;
    let _ = writeln!(o, "      \"{key}\": {{");
    let _ = writeln!(o, "        \"wall_s\": {:.6},", out.wall_s);
    let _ = writeln!(o, "        \"reallocations\": {},", c.reallocations);
    let _ = writeln!(o, "        \"flows_touched\": {},", c.flows_touched);
    let _ = writeln!(o, "        \"resources_touched\": {},", c.resources_touched);
    if new_kernel {
        let _ = writeln!(o, "        \"batch_applied\": {},", c.batch_applied);
        let _ = writeln!(
            o,
            "        \"components_solved_parallel\": {},",
            c.components_solved_parallel
        );
        let _ = writeln!(o, "        \"comp_size_p99\": {},", c.comp_size_p99);
        let _ = writeln!(o, "        \"comp_size_max\": {},", c.comp_size_max);
    }
    let _ = writeln!(
        o,
        "        \"flows_per_realloc\": {:.3}",
        c.flows_touched as f64 / c.reallocations.max(1) as f64
    );
    let _ = writeln!(o, "      }},");
}

fn row_json(r: &Row) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "    {{");
    let _ = writeln!(o, "      \"scenario\": \"{}\",", r.scenario);
    let _ = writeln!(o, "      \"vms\": {},", r.vms);
    let _ = writeln!(o, "      \"events\": {},", r.events);
    let _ = writeln!(o, "      \"threads\": {},", r.threads);
    counters_json(&mut o, "legacy", &r.legacy, false);
    counters_json(&mut o, "seq", &r.seq, true);
    counters_json(&mut o, "par", &r.par, true);
    if let Some(full) = &r.full {
        counters_json(&mut o, "full", full, true);
    }
    let _ = writeln!(o, "      \"wall_speedup_vs_legacy\": {:.3},", r.wall_speedup());
    let _ = writeln!(o, "      \"touched_ratio_vs_legacy\": {:.3},", r.touched_ratio_vs_legacy());
    let _ = writeln!(o, "      \"identical_wakeups\": true");
    let _ = write!(o, "    }}");
    o
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(8, |n| n.get().min(8)));

    let cases: Vec<Case> = if quick {
        // The deterministic CI case: 1024-VM iterative waves. Counter
        // ceilings on exactly this case are pinned in scripts/check.sh.
        vec![Case {
            scenario: Scenario::IterativeWaves,
            vms: 1024,
            events: 3 * 1024,
            with_full: false,
        }]
    } else {
        let mut v = Vec::new();
        for scenario in [Scenario::ShuffleStorm, Scenario::MigrationUnderLoad, Scenario::FaultChurn]
        {
            for vms in [16u32, 64, 256] {
                v.push(Case { scenario, vms, events: 2000, with_full: true });
            }
        }
        for vms in [1024u32, 4096, 16384] {
            v.push(Case { scenario: Scenario::ShuffleStorm, vms, events: 2000, with_full: false });
            v.push(Case {
                scenario: Scenario::IterativeWaves,
                vms,
                events: 3 * vms as usize,
                with_full: false,
            });
        }
        v
    };

    let mut rows = Vec::new();
    for Case { scenario, vms, events, with_full } in cases {
        let mut lk = LegacyKernel { e: LegacyEngine::new() };
        let legacy = run(&mut lk, scenario, vms, events, false);
        // The sequential run also samples the kernel trace counters
        // through the explicit export path.
        let mut sk = NewKernel::new(1, false, true);
        let seq = run(&mut sk, scenario, vms, events, true);
        let mut pk = NewKernel::new(threads, false, false);
        let par = run(&mut pk, scenario, vms, events, false);
        let full = with_full.then(|| {
            let mut fk = NewKernel::new(1, true, false);
            run(&mut fk, scenario, vms, events, false)
        });

        assert_eq!(
            legacy.wakeups,
            seq.wakeups,
            "{} @ {vms} VMs: rewritten kernel diverged from the frozen PR-4 baseline",
            scenario.name()
        );
        assert_eq!(
            seq.wakeups,
            par.wakeups,
            "{} @ {vms} VMs: threads={threads} diverged from sequential",
            scenario.name()
        );
        if let Some(full) = &full {
            assert_eq!(
                seq.wakeups,
                full.wakeups,
                "{} @ {vms} VMs: incremental solver diverged from global baseline",
                scenario.name()
            );
        }
        // Thread count must not leak into any counter except the one that
        // reports pool usage itself.
        let mut scrubbed = par.counters;
        scrubbed.components_solved_parallel = seq.counters.components_solved_parallel;
        assert_eq!(seq.counters, scrubbed, "{}: thread-dependent counters", scenario.name());

        println!(
            "{:<20} {:>5} VMs  {:>6} ev  wall {:>8.4}s (legacy) -> {:>8.4}s (seq) -> {:>8.4}s (par x{})  speedup {:>5.1}x  batch {:>7}  par_comps {:>7}",
            scenario.name(),
            vms,
            events,
            legacy.wall_s,
            seq.wall_s,
            par.wall_s,
            threads,
            legacy.wall_s / par.wall_s.max(1e-12),
            seq.counters.batch_applied,
            par.counters.components_solved_parallel,
        );
        rows.push(Row { scenario: scenario.name(), vms, events, threads, legacy, seq, par, full });
    }

    let mut json = String::from("{\n  \"bench\": \"simcore\",\n  \"seed\": 2012,\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&row_json(r));
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    match write_artifact("bench_simcore.json", &json) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    // The repo-root trajectory point tracks the full sweep only; the CI
    // quick run must not clobber it (check.sh asserts a clean tree).
    if !quick {
        if let Err(e) = std::fs::write("BENCH_simcore.json", &json) {
            eprintln!("could not write BENCH_simcore.json: {e}");
        } else {
            println!("wrote BENCH_simcore.json");
        }
    }

    // Self-checks mirrored by the check.sh perf stage.
    for r in &rows {
        assert!(
            r.legacy.counters.reallocations >= r.seq.counters.reallocations,
            "{}: batching must never *increase* reallocation passes",
            r.scenario
        );
        if r.scenario == "iterative_waves" {
            assert!(
                r.seq.counters.batch_applied > r.seq.counters.reallocations,
                "{} @ {} VMs: waves must coalesce (batch_applied {} <= reallocations {})",
                r.scenario,
                r.vms,
                r.seq.counters.batch_applied,
                r.seq.counters.reallocations
            );
            if r.threads > 1 && r.vms >= 1024 {
                assert!(
                    r.par.counters.components_solved_parallel > 0,
                    "{} @ {} VMs: wave closures must engage the worker pool",
                    r.scenario,
                    r.vms
                );
            }
            if r.vms >= 4096 {
                assert!(
                    r.wall_speedup() >= 5.0,
                    "{} @ {} VMs: wall speedup {:.2}x < 5x over the PR-4 kernel",
                    r.scenario,
                    r.vms,
                    r.wall_speedup()
                );
            }
        }
        if let Some(full) = &r.full {
            assert_eq!(
                full.counters.reallocations,
                r.full_realloc_expect(),
                "{}: full-solve reallocation count drifted",
                r.scenario
            );
            if r.vms >= 256 {
                let ratio =
                    full.counters.flows_touched as f64 / r.seq.counters.flows_touched.max(1) as f64;
                assert!(
                    ratio >= 5.0,
                    "{} @ {} VMs: touched ratio vs full solve {ratio:.2} < 5x",
                    r.scenario,
                    r.vms
                );
            }
        }
    }
    println!(
        "simbench OK: output-identical across legacy/seq/par/full, >=5x wall at 4096+ VM waves"
    );
}

impl Row {
    /// The full-solve run must make exactly as many reallocation decisions
    /// as the sequential incremental run (same dirty-check sequence).
    fn full_realloc_expect(&self) -> u64 {
        self.seq.counters.reallocations
    }
}
