//! Kernel micro-bench: incremental component-partitioned fluid solver vs.
//! the former global re-solve, on synthetic churn shaped like the paper's
//! worst cases (shuffle storms, migration under load, fault-plan churn) at
//! 16→256 VMs.
//!
//! Offline and criterion-free: each scenario runs twice — once with
//! [`Engine::set_full_reallocate`] forcing the old global pass, once
//! incrementally — asserts the two wakeup sequences are **identical**
//! (the optimization is output-invariant), and reports wall-clock
//! (`std::time::Instant`, the one sanctioned use outside the determinism
//! lint) plus the machine-independent kernel counters
//! (`reallocations`, `flows_touched`, `resources_touched`).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin simbench             # full sweep
//! cargo run --release -p vhadoop-bench --bin simbench -- --quick  # CI scenario
//! ```
//!
//! Emits `results/bench_simcore.json` (all scenarios) and refreshes the
//! repo-root `BENCH_simcore.json` trajectory point consumed by the
//! check.sh `perf` stage.

use rand::Rng;
use simcore::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;
use vhadoop_bench::write_artifact;

/// Synthetic cluster shape: `vms` VMs packed 8 per host, one vCPU resource
/// per VM, one CPU + NIC per host, one shared switch. Compute flows stay
/// inside their host (per-host components); transfers cross the switch and
/// transiently merge components — the honest adversary for the
/// component-partitioned solver.
struct Topo {
    vcpu: Vec<ResourceId>,
    host_cpu: Vec<ResourceId>,
    nic: Vec<ResourceId>,
    switch: ResourceId,
    hosts: u32,
}

impl Topo {
    fn build(e: &mut Engine, vms: u32) -> Topo {
        let hosts = vms.div_ceil(8).max(1);
        let host_cpu = (0..hosts)
            .map(|h| e.add_resource(format!("host{h}.cpu"), ResourceKind::Cpu, 32e9))
            .collect();
        let nic = (0..hosts)
            .map(|h| e.add_resource(format!("host{h}.nic"), ResourceKind::Net, 1.25e9))
            .collect();
        let vcpu = (0..vms)
            .map(|v| e.add_resource(format!("vm{v}.vcpu"), ResourceKind::Cpu, 4e9))
            .collect();
        let switch = e.add_resource("switch", ResourceKind::Net, 10e9);
        Topo { vcpu, host_cpu, nic, switch, hosts }
    }

    fn host_of(&self, vm: u32) -> u32 {
        (vm / 8).min(self.hosts - 1)
    }

    fn compute(&self, vm: u32, work: f64) -> (Vec<Demand>, f64) {
        let h = self.host_of(vm) as usize;
        (vec![Demand::unit(self.vcpu[vm as usize]), Demand::unit(self.host_cpu[h])], work)
    }

    fn transfer(&self, src_vm: u32, dst_vm: u32, bytes: f64) -> (Vec<Demand>, f64) {
        let s = self.host_of(src_vm) as usize;
        let d = self.host_of(dst_vm) as usize;
        let mut demands = vec![Demand::unit(self.nic[s]), Demand::unit(self.switch)];
        if d != s {
            demands.push(Demand::unit(self.nic[d]));
        }
        (demands, bytes)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Every wakeup respawns mostly intra-host compute, occasionally a
    /// cross-host transfer: thousands of small independent components.
    ShuffleStorm,
    /// Steady compute churn with one long migration-style transfer per
    /// host cycling through VMs.
    MigrationUnderLoad,
    /// Compute churn plus a random [`FaultPlan`] translated into capacity
    /// degrade/restore cycles and mass timer arm/cancel churn.
    FaultChurn,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::ShuffleStorm => "shuffle_storm",
            Scenario::MigrationUnderLoad => "migration_under_load",
            Scenario::FaultChurn => "fault_churn",
        }
    }
}

/// Tag owners for wakeup routing inside the bench.
const OWNER_COMPUTE: u32 = 1;
const OWNER_TRANSFER: u32 = 2;
const OWNER_CHAFF: u32 = 3;
const OWNER_FAULT: u32 = 4;

struct RunOutcome {
    wall_s: f64,
    stats: KernelStats,
    /// Exact wakeup sequence `(t_ns, owner, a)` — compared between the
    /// baseline and incremental runs to prove output identity.
    wakeups: Vec<(u64, u32, u32)>,
}

#[allow(clippy::too_many_lines)]
fn run(scenario: Scenario, vms: u32, events: usize, full: bool, trace: bool) -> RunOutcome {
    let mut e = Engine::new();
    e.set_full_reallocate(full);
    if trace {
        e.tracer_mut().set_enabled(true);
    }
    let topo = Topo::build(&mut e, vms);
    let mut rng = RootSeed(2012).stream(scenario.name());

    // Warm pool: two compute flows per VM.
    for vm in 0..vms {
        for _ in 0..2 {
            let (d, w) = topo.compute(vm, rng.gen_range(1e9..8e9));
            e.start_flow(d, w, Tag::new(OWNER_COMPUTE, vm, 0));
        }
    }

    let mut plan_for_faults: Option<FaultPlan> = None;
    match scenario {
        Scenario::ShuffleStorm => {}
        Scenario::MigrationUnderLoad => {
            // One long transfer per host pair, refreshed on completion.
            for h in 0..topo.hosts {
                let src = h * 8;
                let dst = ((h + 1) % topo.hosts) * 8;
                let (d, w) = topo.transfer(src, dst, 2e9);
                e.start_flow(d, w, Tag::new(OWNER_TRANSFER, src, 0));
            }
        }
        Scenario::FaultChurn => {
            // Random fault plan (pre-sorted at insertion): throttles become
            // capacity scalings armed as timers below.
            let plan = FaultPlan::random(
                &FaultProfile {
                    vms,
                    hosts: topo.hosts,
                    horizon: SimDuration::from_secs(30),
                    max_events: 24,
                    max_crashes: 0,
                    allow_migration_abort: false,
                },
                RootSeed(2012),
            );
            for (i, ev) in plan.events().iter().enumerate() {
                e.set_timer_at(ev.at, Tag::new(OWNER_FAULT, i as u32, 0));
            }
            plan_for_faults = Some(plan);
        }
    }

    let started = Instant::now();
    let mut wakeups = Vec::with_capacity(events);
    let mut chaff: Vec<TimerId> = Vec::new();
    let mut degraded: Vec<(ResourceId, f64)> = Vec::new();
    while wakeups.len() < events {
        let Some((t, w)) = e.next_wakeup() else {
            break;
        };
        let tag = w.tag();
        wakeups.push((t.as_nanos(), tag.owner, tag.a));
        if trace && wakeups.len() % 256 == 0 {
            e.trace_kernel_counters();
        }
        match tag.owner {
            OWNER_COMPUTE => {
                // Respawn on the same VM: 90% compute (intra-host
                // component), 10% cross-host shuffle transfer.
                let vm = tag.a;
                if rng.gen_bool(0.1) {
                    let dst = rng.gen_range(0..vms);
                    let (d, work) = topo.transfer(vm, dst, rng.gen_range(1e8..1e9));
                    e.start_flow(d, work, Tag::new(OWNER_TRANSFER, vm, 0));
                } else {
                    let (d, work) = topo.compute(vm, rng.gen_range(1e9..8e9));
                    e.start_flow(d, work, Tag::new(OWNER_COMPUTE, vm, 0));
                }
                // Fault churn also hammers the timer heap: arm a batch of
                // timeout guards and cancel most of them immediately —
                // the tombstone-compaction path under load.
                if scenario == Scenario::FaultChurn {
                    for k in 0..4u32 {
                        let id = e.set_timer_in(
                            SimDuration::from_secs(3600 + u64::from(k)),
                            Tag::new(OWNER_CHAFF, k, 0),
                        );
                        chaff.push(id);
                    }
                    while chaff.len() > 2 {
                        let id = chaff.remove(0);
                        e.cancel_timer(id);
                    }
                }
            }
            OWNER_TRANSFER => {
                // Transfer done: replace with compute on the source VM.
                let vm = tag.a;
                let (d, work) = topo.compute(vm, rng.gen_range(1e9..8e9));
                e.start_flow(d, work, Tag::new(OWNER_COMPUTE, vm, 0));
                if scenario == Scenario::MigrationUnderLoad {
                    // Next migration leg from the following VM on the host.
                    let src = (vm + 1) % vms;
                    let dst = (src + 8) % vms;
                    let (d, work) = topo.transfer(src, dst, 2e9);
                    e.start_flow(d, work, Tag::new(OWNER_TRANSFER, src, 0));
                }
            }
            OWNER_FAULT => {
                let plan = plan_for_faults.as_ref().expect("fault scenario");
                let ev = plan.events()[tag.a as usize];
                let (resource, factor) = match ev.kind {
                    FaultKind::LinkDegrade { host, factor, .. } => {
                        (topo.nic[host as usize], factor)
                    }
                    FaultKind::SlowDisk { factor, .. } => (topo.switch, factor),
                    FaultKind::StragglerVm { vm, factor, .. } => (topo.vcpu[vm as usize], factor),
                    _ => continue,
                };
                let factor = factor.clamp(0.01, 1.0);
                let cap = e.fluid().capacity(resource);
                e.set_capacity(resource, cap * factor);
                degraded.push((resource, factor));
                // Restore half the outstanding degradations a little later.
                if degraded.len() > 1 {
                    let (r, f) = degraded.remove(0);
                    let cap = e.fluid().capacity(r);
                    e.set_capacity(r, cap / f);
                }
            }
            _ => {}
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    RunOutcome { wall_s, stats: e.kernel_stats(), wakeups }
}

struct Row {
    scenario: &'static str,
    vms: u32,
    events: usize,
    base: RunOutcome,
    incr: RunOutcome,
}

impl Row {
    fn touched_ratio(&self) -> f64 {
        self.base.stats.flows_touched as f64 / self.incr.stats.flows_touched.max(1) as f64
    }
}

fn per_realloc(stats: &KernelStats) -> f64 {
    stats.flows_touched as f64 / stats.reallocations.max(1) as f64
}

fn row_json(r: &Row) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "    {{");
    let _ = writeln!(o, "      \"scenario\": \"{}\",", r.scenario);
    let _ = writeln!(o, "      \"vms\": {},", r.vms);
    let _ = writeln!(o, "      \"events\": {},", r.events);
    for (key, out) in [("baseline", &r.base), ("incremental", &r.incr)] {
        let s = &out.stats;
        let _ = writeln!(o, "      \"{key}\": {{");
        let _ = writeln!(o, "        \"wall_s\": {:.6},", out.wall_s);
        let _ = writeln!(o, "        \"reallocations\": {},", s.reallocations);
        let _ = writeln!(o, "        \"flows_touched\": {},", s.flows_touched);
        let _ = writeln!(o, "        \"resources_touched\": {},", s.resources_touched);
        let _ = writeln!(o, "        \"flows_per_realloc\": {:.3}", per_realloc(s));
        let _ = writeln!(o, "      }},");
    }
    let _ = writeln!(o, "      \"touched_ratio\": {:.3},", r.touched_ratio());
    let _ = writeln!(o, "      \"wall_speedup\": {:.3},", r.base.wall_s / r.incr.wall_s.max(1e-12));
    let _ = writeln!(o, "      \"identical_wakeups\": true");
    let _ = write!(o, "    }}");
    o
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cases: Vec<(Scenario, u32, usize)> = if quick {
        // The deterministic CI scenario: 256-VM shuffle storm. Counter
        // ceilings on exactly this case are pinned in scripts/check.sh.
        vec![(Scenario::ShuffleStorm, 256, 2000)]
    } else {
        let mut v = Vec::new();
        for scenario in [Scenario::ShuffleStorm, Scenario::MigrationUnderLoad, Scenario::FaultChurn]
        {
            for vms in [16u32, 64, 256] {
                v.push((scenario, vms, 2000));
            }
        }
        v
    };

    let mut rows = Vec::new();
    for (scenario, vms, events) in cases {
        let base = run(scenario, vms, events, true, false);
        // The incremental run also samples the kernel trace counters
        // (engine.reallocations / flows_touched / heap_len) through the
        // explicit export path.
        let incr = run(scenario, vms, events, false, true);
        assert_eq!(
            base.wakeups,
            incr.wakeups,
            "{} @ {vms} VMs: incremental solver diverged from global baseline",
            scenario.name()
        );
        println!(
            "{:<22} {:>4} VMs  {:>6} ev  wall {:>8.4}s -> {:>8.4}s  flows/realloc {:>9.1} -> {:>7.1}  ({:.1}x fewer touched)",
            scenario.name(),
            vms,
            events,
            base.wall_s,
            incr.wall_s,
            per_realloc(&base.stats),
            per_realloc(&incr.stats),
            base.stats.flows_touched as f64 / incr.stats.flows_touched.max(1) as f64,
        );
        rows.push(Row { scenario: scenario.name(), vms, events, base, incr });
    }

    let mut json = String::from("{\n  \"bench\": \"simcore\",\n  \"seed\": 2012,\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&row_json(r));
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    match write_artifact("bench_simcore.json", &json) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    // The repo-root trajectory point tracks the full sweep only; the CI
    // quick run must not clobber it (check.sh asserts a clean tree).
    if !quick {
        if let Err(e) = std::fs::write("BENCH_simcore.json", &json) {
            eprintln!("could not write BENCH_simcore.json: {e}");
        } else {
            println!("wrote BENCH_simcore.json");
        }
    }

    // Self-checks mirrored by the check.sh perf stage: the incremental
    // solver must touch ≥ 5× fewer flows on every 256-VM scenario, with
    // identical reallocation counts (same decision sequence).
    for r in &rows {
        assert_eq!(
            r.base.stats.reallocations, r.incr.stats.reallocations,
            "{}: reallocation count must not depend on solver mode",
            r.scenario
        );
        if r.vms >= 256 {
            assert!(
                r.touched_ratio() >= 5.0,
                "{} @ {} VMs: touched ratio {:.2} < 5x",
                r.scenario,
                r.vms,
                r.touched_ratio()
            );
        }
    }
    println!(
        "simbench OK: incremental solver output-identical, >=5x fewer flows touched at 256 VMs"
    );
}
