//! Table II — overall migration time and downtime of the whole 16-node
//! hadoop virtual cluster in four configurations.
//!
//! Paper ratios to reproduce: wordcount migration time ≈ 3× idle;
//! wordcount downtime ≈ 13× idle.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin table2_migration [--scale 8|--full]
//! ```

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::cluster::HostId;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop::platform::{PlatformConfig, VHadoop};
use vhadoop_bench::{cli_scale, ResultSink};
use workloads::loadgen::submit_load_job;
use workloads::wordcount::submit_wordcount;

fn run(mem_mib: u64, busy: bool, load_mb: u64) -> (f64, f64) {
    let cluster = ClusterSpec::builder()
        .hosts(2)
        .vms(16)
        .vm_mem_mib(mem_mib)
        .placement(Placement::SingleDomain)
        .build();
    // Small HDFS blocks give the load jobs enough concurrent map tasks to
    // keep every task slot busy during the migration window.
    let mut platform = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster)
            .hdfs(vhdfs::hdfs::HdfsConfig { block_size: 4 << 20, replication: 3 })
            .build(),
    );
    let rep = if busy {
        let mut runid = 0u32;
        let real = std::env::args().any(|a| a == "--real-wordcount");
        platform
            .migration(HostId(1))
            .under_load(|rt| {
                if real {
                    submit_wordcount(rt, runid, load_mb << 20, JobConfig::default(), RootSeed(77));
                } else {
                    // Wordcount-profile synthetic load; see fig5_migration.
                    let maps = rt.cluster.vm_count() - 1;
                    submit_load_job(rt, runid, maps, 2.0, 6 << 20);
                }
                runid += 1;
                true
            })
            .0
    } else {
        platform.migration(HostId(1)).idle()
    };
    (rep.total_time.as_secs_f64(), rep.total_downtime.as_millis_f64())
}

fn main() {
    let scale = cli_scale();
    let load_mb = ((768.0 / scale).max(48.0)) as u64;
    let mut sink = ResultSink::new("table2_migration", "row (see series)", "value");

    println!(
        "{:<22} {:>22} {:>22}",
        "configuration", "overall migration (s)", "overall downtime (ms)"
    );
    let mut results = std::collections::HashMap::new();
    for (i, (name, mem, busy)) in [
        ("idle.1024MB", 1024u64, false),
        ("idle.512MB", 512, false),
        ("wordcount.1024MB", 1024, true),
        ("wordcount.512MB", 512, true),
    ]
    .into_iter()
    .enumerate()
    {
        let (t, d) = run(mem, busy, load_mb);
        println!("{name:<22} {t:>22.1} {d:>22.1}");
        sink.push(&format!("{name}/time_s"), i as f64, t);
        sink.push(&format!("{name}/downtime_ms"), i as f64, d);
        results.insert(name, (t, d));
    }
    sink.finish();

    let (ti, di) = results["idle.1024MB"];
    let (tw, dw) = results["wordcount.1024MB"];
    println!(
        "\nwordcount/idle ratios: migration time {:.1}x (paper ~3x), downtime {:.1}x (paper ~13x)",
        tw / ti,
        dw / di
    );
    assert!(tw / ti > 1.5, "busy migration substantially slower");
    assert!(dw / di > 4.0, "busy downtime an order of magnitude worse");
}
