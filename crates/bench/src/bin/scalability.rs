//! Scalability of the hadoop virtual cluster (paper §III: "we mainly
//! study the performance of cross-domain hadoop virtual cluster and the
//! scalability of hadoop virtual cluster").
//!
//! Two sweeps over cluster sizes 2→16:
//! * **weak scaling** — data grows with the cluster (8 MB per worker):
//!   a scalable platform keeps runtime roughly flat;
//! * **strong scaling** — fixed 64 MB of data: more workers help until
//!   framework overheads and the shared NFS substrate dominate.
//!
//! Next to the simulated times, each run reports harness wall-clock and
//! the engine's kernel counters (reallocations / flows touched per
//! reallocation), so future solver-scale PRs show up in the trajectory.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin scalability [--scale 8|--full] [--racks N]
//! ```

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use std::time::Instant;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop::prelude::{
    ControllerConfig, GeneratorInput, JobSpec, PlacementKind, PlatformConfig, SimDuration, VHadoop,
    VmId,
};
use vhadoop_bench::{cli_racks, cli_scale, ResultSink};
use vhdfs::hdfs::HdfsConfig;
use workloads::loadgen::{ArrivalProcess, JobMix};
use workloads::textgen::TextCorpus;
use workloads::wordcount::{run_wordcount_with, WordCountApp, WordcountReport};

fn timed(f: impl FnOnce() -> WordcountReport) -> (WordcountReport, f64) {
    let t0 = Instant::now();
    let rep = f();
    (rep, t0.elapsed().as_secs_f64())
}

fn kernel_line(rep: &WordcountReport, wall_s: f64) -> String {
    let k = rep.kernel;
    let per = k.flows_touched as f64 / k.reallocations.max(1) as f64;
    format!(
        "wall {wall_s:>6.3}s  reallocs {:>6}  flows/realloc {per:>5.1}  wakeups {:>6}",
        k.reallocations, k.wakeups
    )
}

fn main() {
    let scale = cli_scale();
    let per_worker_mb = ((64.0 / scale).max(2.0)) as u64;
    let fixed_mb = ((512.0 / scale).max(16.0)) as u64;
    let sizes = [2u32, 4, 8, 12, 16];
    let mut sink = ResultSink::new("scalability", "cluster VMs", "running time s");

    for &vms in &sizes {
        let workers = u64::from(vms - 1);
        let spec =
            ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::CrossDomain).build();
        // Weak scaling: one block per worker, data ∝ workers.
        let bytes = (workers * per_worker_mb) << 20;
        let hdfs = HdfsConfig { block_size: (bytes / workers).max(1 << 20), replication: 2 };
        let (weak, wall) = timed(|| {
            run_wordcount_with(spec.clone(), bytes, JobConfig::default(), hdfs, RootSeed(7))
        });
        println!(
            "weak   {vms:>2} VMs, {:>4} MB -> {:>6.1}s   [{}]",
            bytes >> 20,
            weak.elapsed_s,
            kernel_line(&weak, wall)
        );
        sink.push("weak-scaling", f64::from(vms), weak.elapsed_s);

        // Strong scaling: fixed data, blocks sized for ~15 maps.
        let bytes = fixed_mb << 20;
        let hdfs = HdfsConfig { block_size: (bytes / 15).max(1 << 20), replication: 2 };
        let (strong, wall) =
            timed(|| run_wordcount_with(spec, bytes, JobConfig::default(), hdfs, RootSeed(7)));
        println!(
            "strong {vms:>2} VMs, {:>4} MB -> {:>6.1}s   [{}]",
            bytes >> 20,
            strong.elapsed_s,
            kernel_line(&strong, wall)
        );
        sink.push("strong-scaling", f64::from(vms), strong.elapsed_s);
    }

    // Closed-loop stream scaling: the same geometry driven by the vsched
    // control plane (admission queue + spread placement), so scheduler
    // decisions — admissions, queue depth, waits — join the kernel
    // counters in the trajectory.
    for &vms in &[8u32, 16] {
        let t0 = Instant::now();
        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(
                    ClusterSpec::builder()
                        .hosts(2)
                        .vms(vms)
                        .placement(Placement::SingleDomain)
                        .build(),
                )
                .hdfs(HdfsConfig { block_size: 1 << 20, replication: 2 })
                .no_monitor()
                .seed(7)
                .controller(ControllerConfig::enabled_with(PlacementKind::Spread))
                .build(),
        );
        let arrivals =
            ArrivalProcess::new(JobMix::Wordcount, 4, SimDuration::from_secs(2), 2, RootSeed(7))
                .schedule();
        for (i, a) in arrivals.iter().enumerate() {
            p.schedule_job(a.at, a.tenant, a.expected_s, a.job(i as u32));
        }
        let done = p.drive_until_idle();
        assert_eq!(done.len(), 4, "stream jobs all finish");
        let ctrl = p.metrics().ctrl.expect("controller stats in the snapshot");
        println!(
            "stream {vms:>2} VMs, {:>4} jobs -> {:>6.1}s   [wall {:>6.3}s  adm {} fin {} \
             q_hwm {}  wait p95 {:>4.1}s]",
            4,
            p.now().as_secs_f64(),
            t0.elapsed().as_secs_f64(),
            ctrl.jobs_admitted,
            ctrl.jobs_finished,
            ctrl.queue_depth_hwm,
            ctrl.queue_wait_p95_s
        );
        sink.push("ctrl-stream", f64::from(vms), p.now().as_secs_f64());
    }

    // Rack sweep (opt-in via --racks N): the fixed-data wordcount over a
    // racked fabric — two hosts per rack behind a shared core trunk —
    // reporting the per-rack ToR traffic and mean utilization the fluid
    // kernel accounted, so rack-level hotspots land in the trajectory next
    // to the kernel counters.
    let racks = cli_racks();
    if racks >= 2 {
        let mb = fixed_mb;
        let blocks = mb.max(1) as usize; // 1 MB blocks: `mb` of them
        let t0 = Instant::now();
        let mut p = VHadoop::launch(
            PlatformConfig::builder()
                .cluster(
                    ClusterSpec::builder()
                        .hosts(2 * racks)
                        .vms(16.max(2 * racks))
                        .placement(Placement::CrossDomain)
                        .racks(racks)
                        .build(),
                )
                .hdfs(HdfsConfig { block_size: 1 << 20, replication: 3 })
                .no_monitor()
                .seed(7)
                .build(),
        );
        p.register_input("/racked/in", mb << 20, VmId(1));
        let corpus = TextCorpus::english_like(RootSeed(7).derive("corpus"));
        let input =
            GeneratorInput::new(blocks, 1 << 20, move |idx| corpus.split_records(idx, 1 << 20));
        let spec = JobSpec::new("wc", "/racked/in", "/racked/out")
            .with_config(JobConfig::default().with_reduces(4));
        let _ = p.run_job(spec, Box::new(WordCountApp), Box::new(input));
        while p.step().is_some() {}

        let elapsed = p.now().as_secs_f64();
        println!(
            "racked {racks:>2} racks, {:>4} MB -> {:>6.1}s   [wall {:>6.3}s]",
            mb,
            elapsed,
            t0.elapsed().as_secs_f64()
        );
        let stats = p.rt.cluster.rack_switch_stats(&p.rt.engine, elapsed);
        assert_eq!(stats.len() as u32, racks, "one ToR stat per rack");
        for s in &stats {
            println!(
                "       {}: {:>7.1} MB through ToR, mean util {:>5.1}%",
                s.rack,
                s.bytes / (1 << 20) as f64,
                s.mean_util * 100.0
            );
            sink.push("racked-tor-util", f64::from(s.rack.0), s.mean_util);
        }
        sink.push("racked", f64::from(racks), elapsed);
    }
    sink.finish();

    // Shapes: weak scaling stays within a modest envelope of the smallest
    // cluster; strong scaling improves from 2 VMs to 16 VMs.
    let weak = sink.series_points("weak-scaling");
    let growth = weak.last().expect("pts").1 / weak[0].1;
    println!("weak-scaling growth 2->16 VMs: {growth:.2}x");
    assert!(growth < 4.0, "weak scaling within bounds, got {growth:.2}x");

    let strong = sink.series_points("strong-scaling");
    assert!(
        strong.last().expect("pts").1 < strong[0].1,
        "strong scaling: 16 VMs beat 2 VMs on fixed data"
    );
}
