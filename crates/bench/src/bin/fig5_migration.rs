//! Figure 5 — per-VM migration time (a) and downtime (b) of a 16-node
//! hadoop virtual cluster, idle vs. running Wordcount, with 512 MB and
//! 1024 MB guests.
//!
//! Paper observations reproduced: migration time scales with memory;
//! downtime does not; a busy cluster migrates somewhat slower but suffers
//! order-of-magnitude larger and per-VM-variable downtime.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig5_migration [--scale 8|--full]
//! ```

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::cluster::HostId;
use vcluster::migration::ClusterMigrationReport;
use vcluster::spec::{ClusterSpec, Placement};
use vhadoop::platform::{PlatformConfig, VHadoop};
use vhadoop_bench::{cli_scale, ResultSink};
use workloads::loadgen::submit_load_job;
use workloads::wordcount::submit_wordcount;

/// One configuration row of the experiment.
pub fn migrate(mem_mib: u64, busy: bool, load_mb: u64) -> ClusterMigrationReport {
    let cluster = ClusterSpec::builder()
        .hosts(2)
        .vms(16)
        .vm_mem_mib(mem_mib)
        .placement(Placement::SingleDomain)
        .build();
    // Small HDFS blocks give the load jobs enough concurrent map tasks to
    // keep every task slot busy during the migration window.
    let mut platform = VHadoop::launch(
        PlatformConfig::builder()
            .cluster(cluster)
            .hdfs(vhdfs::hdfs::HdfsConfig { block_size: 4 << 20, replication: 3 })
            .build(),
    );
    if busy {
        let mut run = 0u32;
        let real = std::env::args().any(|a| a == "--real-wordcount");
        let (rep, _) = platform.migration(HostId(1)).under_load(|rt| {
            if real {
                // Paper-faithful: actual wordcount jobs over generated text
                // (slow in wall-clock terms — the simulator tokenizes every
                // byte for real).
                submit_wordcount(rt, run, load_mb << 20, JobConfig::default(), RootSeed(66));
            } else {
                // Default: synthetic jobs with a wordcount cost profile
                // (~3 s of guest CPU and 8 MB of spill/shuffle per map),
                // identical contention and dirtying without the wall-clock
                // cost of tokenizing gigabytes of text.
                let maps = rt.cluster.vm_count() - 1;
                submit_load_job(rt, run, maps, 2.0, 6 << 20);
            }
            run += 1;
            true
        });
        rep
    } else {
        platform.migration(HostId(1)).idle()
    }
}

fn main() {
    let scale = cli_scale();
    let load_mb = ((768.0 / scale).max(48.0)) as u64;
    let configs = [
        ("idle.512MB", 512u64, false),
        ("idle.1024MB", 1024, false),
        ("wordcount.512MB", 512, true),
        ("wordcount.1024MB", 1024, true),
    ];

    let mut fig5a = ResultSink::new("fig5a_migration_time", "vm index", "migration time s");
    let mut fig5b = ResultSink::new("fig5b_downtime", "vm index", "downtime ms");
    let mut reports = Vec::new();
    for (name, mem, busy) in configs {
        println!("migrating 16-VM cluster: {name} ...");
        let rep = migrate(mem, busy, load_mb);
        for vm in &rep.per_vm {
            fig5a.push(name, f64::from(vm.vm), vm.migration_time.as_secs_f64());
            fig5b.push(name, f64::from(vm.vm), vm.downtime.as_millis_f64());
        }
        reports.push((name, rep));
    }
    fig5a.finish();
    fig5b.finish();

    // --- shape checks -----------------------------------------------------
    let mean = |name: &str, sink: &ResultSink| -> f64 {
        let pts = sink.series_points(name);
        pts.iter().map(|(_, y)| y).sum::<f64>() / pts.len() as f64
    };
    // (i) migration time ∝ memory; downtime uncorrelated with memory.
    assert!(
        mean("idle.1024MB", &fig5a) > 1.6 * mean("idle.512MB", &fig5a),
        "migration time tracks memory size"
    );
    let d512 = mean("idle.512MB", &fig5b);
    let d1024 = mean("idle.1024MB", &fig5b);
    assert!(
        (d1024 - d512).abs() < 0.6 * d512.max(50.0),
        "idle downtime uncorrelated with memory: {d512:.0} vs {d1024:.0} ms"
    );
    // (ii) busy migration slightly longer; busy downtime much longer.
    assert!(mean("wordcount.1024MB", &fig5a) > mean("idle.1024MB", &fig5a));
    assert!(
        mean("wordcount.1024MB", &fig5b) > 4.0 * mean("idle.1024MB", &fig5b),
        "busy downtime ≫ idle downtime"
    );
    // (iii) busy downtime varies widely across VMs.
    let busy_downs: Vec<f64> =
        fig5b.series_points("wordcount.1024MB").iter().map(|(_, y)| *y).collect();
    let min = busy_downs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = busy_downs.iter().cloned().fold(0.0f64, f64::max);
    println!("busy per-VM downtime spread: {min:.0}..{max:.0} ms");
    assert!(max > 2.0 * min.max(1.0), "wordcount downtime varies widely per node");
}
