//! Table I — the MapReduce-based parallel benchmark catalogue, with a
//! smoke run of each on a small virtual cluster to prove the row is live.
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin table1_benchmarks
//! ```

use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use workloads::prelude::*;

fn cluster() -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build()
}

fn main() {
    println!("{:<12} {:<18} {:<52} {:>10}", "Name", "Category", "Description", "smoke(s)");
    let rows: [(&str, &str, &str); 4] = [
        ("Wordcount", "MapReduce", "Reads text files and counts how often words occur"),
        ("MRBench", "MapReduce", "Checks whether small job runs are responsive/efficient"),
        ("TeraSort", "MapReduce & HDFS", "Sorts the data as fast as possible (HDFS + MapReduce)"),
        ("DFSIOTest", "HDFS", "A read and write test for HDFS"),
    ];
    let seed = RootSeed(1);
    let times = [
        run_wordcount(cluster(), 4 << 20, JobConfig::default(), seed).elapsed_s,
        run_mrbench(cluster(), 2, 1, seed).elapsed_s,
        {
            let r = run_terasort(cluster(), 2 << 20, 2, seed);
            assert!(r.valid, "TeraValidate must pass");
            r.gen_time_s + r.sort_time_s
        },
        {
            let r = run_dfsio(cluster(), 2, 8 << 20, seed);
            r.write_time_s + r.read_time_s
        },
    ];
    for ((name, cat, desc), t) in rows.into_iter().zip(times) {
        println!("{name:<12} {cat:<18} {desc:<52} {t:>10.1}");
    }
}
