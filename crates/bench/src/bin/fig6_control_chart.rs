//! Figure 6 — parallel clustering (Canopy, Dirichlet, MeanShift) on the
//! Synthetic Control Chart set at hadoop virtual cluster scales 2→16
//! (paper: runtime *increases* with cluster size because the data set is
//! fixed and small, so added nodes only add communication).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig6_control_chart [--scale 8|--full]
//! ```

use mlkit::datasets::control_chart;
use mlkit::suite::{run_algorithm, Algorithm, DatasetKind};
use simcore::rng::RootSeed;
use vhadoop_bench::{cli_scale, ResultSink};

fn main() {
    let _ = cli_scale(); // in-memory data set is small; always run full size
                         // Paper data set: 600 series × 60 points.
    let data = control_chart(RootSeed(2012), 100, 60);
    println!("fig6: clustering {} control-chart series at cluster scales 2..16", data.len());

    let mut sink = ResultSink::new("fig6_control_chart", "cluster VMs", "running time s");
    for alg in Algorithm::FIG6 {
        for vms in [2u32, 4, 8, 12, 16] {
            let run = run_algorithm(
                alg,
                DatasetKind::ControlChart,
                data.points.clone(),
                vms,
                RootSeed(61),
            );
            println!(
                "  {:<12} {vms:>2} VMs -> {:>7.1}s ({} clusters, {} passes)",
                alg.name(),
                run.stats.elapsed_s,
                run.clusters_found,
                run.stats.iterations
            );
            sink.push(alg.name(), f64::from(vms), run.stats.elapsed_s);
        }
    }
    sink.finish();

    // Shape: every algorithm is slower at 16 VMs than at 2.
    for alg in Algorithm::FIG6 {
        let pts = sink.series_points(alg.name());
        let (first, last) = (pts.first().expect("pts").1, pts.last().expect("pts").1);
        println!("{}: {first:.1}s @2 VMs -> {last:.1}s @16 VMs", alg.name());
        assert!(
            last > first,
            "{}: fixed data + bigger cluster must cost more ({first:.1}s -> {last:.1}s)",
            alg.name()
        );
    }
}
