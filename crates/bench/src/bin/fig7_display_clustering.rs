//! Figure 7 — parallel visualizing-sample clustering (all six algorithms)
//! on 1 000 DisplayClustering samples at cluster scales 2→16 (paper: the
//! workload is light, so runtime stays relatively smooth/flat as the
//! cluster grows).
//!
//! ```sh
//! cargo run --release -p vhadoop-bench --bin fig7_display_clustering
//! ```

use mlkit::datasets::gaussian_mixture_1000;
use mlkit::suite::{run_algorithm, Algorithm, DatasetKind};
use simcore::rng::RootSeed;
use vhadoop_bench::ResultSink;

fn main() {
    let data = gaussian_mixture_1000(RootSeed(2012));
    println!("fig7: clustering {} 2-D samples at cluster scales 2..16", data.len());

    let mut sink = ResultSink::new("fig7_display_clustering", "cluster VMs", "running time s");
    for alg in Algorithm::ALL {
        for vms in [2u32, 4, 8, 12, 16] {
            let run =
                run_algorithm(alg, DatasetKind::Display, data.points.clone(), vms, RootSeed(71));
            println!(
                "  {:<13} {vms:>2} VMs -> {:>6.1}s ({} clusters)",
                alg.name(),
                run.stats.elapsed_s,
                run.clusters_found
            );
            sink.push(alg.name(), f64::from(vms), run.stats.elapsed_s);
        }
    }
    sink.finish();

    // Shape: light workload stays comparatively smooth — the 2→16 growth
    // of each Fig. 7 series must be well below the Fig. 6 style blow-up.
    for alg in Algorithm::ALL {
        let pts = sink.series_points(alg.name());
        let (first, last) = (pts.first().expect("pts").1, pts.last().expect("pts").1);
        let growth = last / first.max(1e-9);
        println!("{}: growth 2->16 VMs = {growth:.2}x", alg.name());
        assert!(
            growth < 3.0,
            "{}: light workload should scale smoothly, grew {growth:.2}x",
            alg.name()
        );
    }
}
