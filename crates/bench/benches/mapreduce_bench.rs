//! Criterion benchmarks of whole simulated MapReduce jobs (wall-clock cost
//! of simulating one job, not simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use mapreduce::config::JobConfig;
use simcore::rng::RootSeed;
use vcluster::spec::{ClusterSpec, Placement};
use workloads::mrbench::run_mrbench;
use workloads::wordcount::run_wordcount;

fn cluster() -> ClusterSpec {
    ClusterSpec::builder().hosts(2).vms(8).placement(Placement::CrossDomain).build()
}

fn bench_wordcount_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_jobs");
    g.sample_size(10);
    g.bench_function("wordcount_4mb", |b| {
        b.iter(|| {
            std::hint::black_box(run_wordcount(
                cluster(),
                4 << 20,
                JobConfig::default(),
                RootSeed(5),
            ))
        });
    });
    g.bench_function("mrbench_4maps", |b| {
        b.iter(|| std::hint::black_box(run_mrbench(cluster(), 4, 2, RootSeed(5))));
    });
    g.finish();
}

criterion_group!(benches, bench_wordcount_sim);
criterion_main!(benches);
