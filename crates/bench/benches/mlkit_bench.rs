//! Criterion benchmarks of the in-memory clustering references.

use criterion::{criterion_group, criterion_main, Criterion};
use mlkit::prelude::*;
use simcore::rng::RootSeed;

fn bench_references(c: &mut Criterion) {
    let data = gaussian_mixture_1000(RootSeed(9));
    let chart = control_chart(RootSeed(9), 50, 60);

    let mut g = c.benchmark_group("reference_algorithms");
    g.bench_function("kmeans_1000x2", |b| {
        let params = KMeansParams { k: 3, max_iters: 10, convergence: 0.01, ..Default::default() };
        b.iter(|| std::hint::black_box(mlkit::kmeans::reference(&data.points, params, RootSeed(1))));
    });
    g.bench_function("canopy_1000x2", |b| {
        b.iter(|| std::hint::black_box(mlkit::canopy::reference(&data.points, CanopyParams::display())));
    });
    g.bench_function("fuzzy_300x60", |b| {
        let params = FuzzyKMeansParams { k: 6, max_iters: 5, convergence: 1.0, ..Default::default() };
        b.iter(|| std::hint::black_box(mlkit::fuzzy::reference(&chart.points, params, RootSeed(2))));
    });
    g.bench_function("minhash_1000x2", |b| {
        b.iter(|| {
            std::hint::black_box(mlkit::minhash::reference(
                &data.points,
                MinHashParams::default(),
                RootSeed(3),
            ))
        });
    });
    g.bench_function("dirichlet_1000x2", |b| {
        let params = DirichletParams { iterations: 3, ..Default::default() };
        b.iter(|| std::hint::black_box(mlkit::dirichlet::reference(&data.points, params, RootSeed(4))));
    });
    g.finish();
}

criterion_group!(benches, bench_references);
criterion_main!(benches);
