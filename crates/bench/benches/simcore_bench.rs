//! Criterion microbenchmarks of the simulation kernel: max-min
//! reallocation cost and end-to-end event throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcore::prelude::*;

fn bench_reallocate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_reallocate");
    for &flows in &[10usize, 100, 400] {
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, &flows| {
            let mut net = FluidNet::new();
            let resources: Vec<ResourceId> = (0..16)
                .map(|i| net.add_resource(format!("r{i}"), ResourceKind::Net, 1e9))
                .collect();
            for i in 0..flows {
                let a = resources[i % resources.len()];
                let bb = resources[(i * 7 + 3) % resources.len()];
                net.add_flow(vec![Demand::unit(a), Demand::unit(bb)], 1e9);
            }
            b.iter(|| {
                net.set_capacity(resources[0], 1e9); // dirty the allocation
                net.reallocate();
                std::hint::black_box(net.used(resources[0]))
            });
        });
    }
    g.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    c.bench_function("engine_1000_chained_flows", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            let r = e.add_resource("r", ResourceKind::Net, 1e9);
            for i in 0..1000u32 {
                e.start_chain(
                    ChainSpec::new().on(r, 1e6).delay(SimDuration::from_millis(1)).on(r, 1e6),
                    Tag::new(simcore::owners::USER, i, 0),
                );
            }
            std::hint::black_box(e.run_to_quiescence())
        });
    });
}

criterion_group!(benches, bench_reallocate, bench_engine_throughput);
criterion_main!(benches);
