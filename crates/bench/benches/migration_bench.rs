//! Criterion benchmarks of live-migration simulations (Virt-LM style).

use criterion::{criterion_group, criterion_main, Criterion};
use vcluster::migration::MigrationConfig;
use vcluster::virtlm::{VirtLm, WorkloadProfile};

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("virtlm");
    g.sample_size(20);
    g.bench_function("idle_4vm_512mb", |b| {
        let bench = VirtLm { n_vms: 4, mem_mib: vec![512], migration: MigrationConfig::default() };
        b.iter(|| std::hint::black_box(bench.run_one(&WorkloadProfile::idle(), 512)));
    });
    g.bench_function("memstress_4vm_1024mb", |b| {
        let bench = VirtLm { n_vms: 4, mem_mib: vec![1024], migration: MigrationConfig::default() };
        b.iter(|| std::hint::black_box(bench.run_one(&WorkloadProfile::mem_stress(), 1024)));
    });
    g.finish();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
