//! Pre-copy live migration of VMs and whole virtual clusters.
//!
//! Model (Clark et al., NSDI'05, as implemented by Xen):
//!
//! * round 0 pushes the whole guest memory over the wire while the guest
//!   keeps running;
//! * round *i* pushes the pages dirtied during round *i−1*, i.e.
//!   `dirty_rate × t_{i-1}` bytes, where the dirty rate is sampled from a
//!   [`DirtyRateModel`] at each round boundary (so a guest that goes busy
//!   or idle mid-migration changes convergence behaviour);
//! * pre-copy ends — and the **stop-and-copy** phase (guest paused =
//!   downtime) begins — when the next round would be smaller than the stop
//!   threshold, when the round budget is exhausted, or when cumulative
//!   traffic exceeds `max_total_factor × mem` (Xen's giving-up heuristic);
//! * downtime = stop-and-copy transfer + a fixed resume latency
//!   (device re-attach, ARP advertisement).
//!
//! Every transfer is a fluid flow over [`VirtualCluster::host_transfer_demands`],
//! so migration traffic *contends with the workload's own traffic* — that
//! contention, plus dirty-rate feedback, is exactly what produces the
//! paper's Fig. 5 / Table II shapes (busy clusters migrate ~3× slower and
//! suffer order-of-magnitude larger, highly variable downtime).
//!
//! Simplification: the guest's other activities are not actually paused
//! during stop-and-copy; Hadoop's fault tolerance masks the gap in the
//! paper too ("the MapReduce workloads can be successfully finished").

use crate::cluster::{HostId, VirtualCluster, VmId};
use crate::spec::MIB;
use serde::{Deserialize, Serialize};
use simcore::owners;
use simcore::persist::{Decoder, Encoder, Persist};
use simcore::prelude::*;
use std::collections::{HashMap, VecDeque};

/// Stop-and-copy phase marker stored in the tag's high payload bit.
const STOP_COPY_BIT: u64 = 1 << 63;

/// Marks a retry timer armed after an aborted transfer (fault injection).
const RETRY_BIT: u64 = 1 << 62;

/// Tunables of the pre-copy algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Final-round size below which the guest is paused and the residue
    /// copied (bytes).
    pub stop_threshold: u64,
    /// Maximum number of pre-copy rounds before giving up.
    pub max_rounds: u32,
    /// Give up pre-copying once cumulative traffic exceeds this multiple
    /// of guest memory.
    pub max_total_factor: f64,
    /// Fixed tail of the downtime (device re-attach, ARP), independent of
    /// the stop-and-copy transfer.
    pub resume_latency: SimDuration,
    /// How many VMs migrate concurrently during a cluster migration
    /// (Xen-era toolstacks migrate sequentially; 1 is the default).
    pub concurrency: u32,
    /// First retry delay after an aborted transfer; doubles per abort of
    /// the same VM (capped at [`MigrationConfig::retry_backoff_cap`]).
    pub retry_backoff_base: SimDuration,
    /// Upper bound on the abort-retry delay.
    pub retry_backoff_cap: SimDuration,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            stop_threshold: MIB,
            max_rounds: 30,
            max_total_factor: 3.0,
            resume_latency: SimDuration::from_millis(30),
            concurrency: 1,
            retry_backoff_base: SimDuration::from_millis(500),
            retry_backoff_cap: SimDuration::from_secs(8),
        }
    }
}

/// Supplies the memory dirty rate (bytes/s) of a VM. Called once per
/// pre-copy round boundary, so implementations may keep per-VM state to
/// compute averages over the elapsed round.
pub trait DirtyRateModel {
    /// Dirty rate of `vm` over the window since the model was last asked
    /// about it (or instantaneous, for stateless models).
    fn dirty_rate(&mut self, engine: &Engine, cluster: &VirtualCluster, vm: VmId) -> f64;
}

/// Fixed dirty rate for every VM — unit tests and idle-cluster baselines.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDirtyModel(
    /// Bytes/second.
    pub f64,
);

impl DirtyRateModel for ConstantDirtyModel {
    fn dirty_rate(&mut self, _e: &Engine, _c: &VirtualCluster, _vm: VmId) -> f64 {
        self.0
    }
}

/// Dirty rate driven by the VM's VCPU utilization **averaged over the
/// elapsed pre-copy round** (exact, via the fluid model's cumulative-work
/// counters), with a fixed per-VM jitter factor:
/// `(base + peak × avg_util) × jitter(vm)`.
///
/// A wordcount-busy guest dirties its page cache and JVM heap fast; an
/// idle guest only touches kernel housekeeping pages. The jitter models
/// working-set differences between equally-busy guests (the source of the
/// per-node downtime spread in the paper's Fig. 5b).
#[derive(Debug, Clone)]
pub struct UtilizationDirtyModel {
    /// Idle floor, bytes/s.
    pub base: f64,
    /// Saturation level of the activity-driven term, bytes/s.
    pub peak: f64,
    /// Utilization at which the activity term reaches ~63 % of `peak`.
    pub knee: f64,
    /// Fraction of the VM's I/O byte rate that dirties fresh pages
    /// (page-cache fills, shuffle buffers).
    pub io_fraction: f64,
    jitter: Vec<f64>,
    /// Per-VM `(instant, cumulative vcpu work, cumulative I/O bytes)`
    /// marks from the last query.
    marks: std::collections::HashMap<u32, (SimTime, f64, f64)>,
}

impl UtilizationDirtyModel {
    /// Paper-calibrated defaults. The activity term *saturates*: a guest
    /// hosting task JVMs dirties its whole heap and page cache through GC
    /// and buffer churn even at moderate CPU load, so dirtying ramps to
    /// ~`peak` (70 MB/s) once average utilization clears the knee (15 %).
    /// With ±40 % per-VM jitter the busiest guests brush against the
    /// contended wire bandwidth — which is what makes *some* nodes fail to
    /// converge (big, variable downtime) while others migrate cleanly,
    /// the paper's Fig. 5b picture. I/O adds 50 % of its byte rate.
    pub fn new(vms: u32, seed: RootSeed) -> Self {
        Self::with_rates(vms, seed, 0.5e6, 70e6)
    }

    /// Custom floor/peak rates.
    pub fn with_rates(vms: u32, seed: RootSeed, base: f64, peak: f64) -> Self {
        use rand::Rng;
        let mut rng = seed.stream("dirty-jitter");
        let jitter = (0..vms).map(|_| rng.gen_range(0.6..1.4)).collect();
        UtilizationDirtyModel {
            base,
            peak,
            knee: 0.15,
            io_fraction: 0.5,
            jitter,
            marks: std::collections::HashMap::new(),
        }
    }

    /// Encodes the model's dynamic state: per-VM jitter factors and the
    /// window marks (rate coefficients are configuration).
    pub fn encode_state(&self, e: &mut Encoder) {
        self.jitter.encode(e);
        self.marks.encode(e);
    }

    /// Restores the jitter and window marks from a snapshot.
    pub fn restore_state(&mut self, d: &mut Decoder) {
        self.jitter = Persist::decode(d);
        self.marks = Persist::decode(d);
    }

    /// `(average VCPU utilization, average I/O bytes/s)` of `vm` since the
    /// last query (first query averages from t = 0).
    fn window_averages(
        &mut self,
        engine: &Engine,
        cluster: &VirtualCluster,
        vm: VmId,
    ) -> (f64, f64) {
        let cpu = cluster.vcpu_resource(vm);
        let cap = engine.fluid().capacity(cpu);
        let now = engine.now();
        let cpu_cum = engine.fluid().cumulative(cpu);
        let io_cum = engine.fluid().cumulative(cluster.vio_resource(vm));
        let (t0, c0, i0) =
            self.marks.insert(vm.0, (now, cpu_cum, io_cum)).unwrap_or((SimTime::ZERO, 0.0, 0.0));
        let dt = now.saturating_since(t0).as_secs_f64();
        if dt <= 0.0 || cap <= 0.0 {
            (cluster.vcpu_utilization(engine, vm), 0.0)
        } else {
            (((cpu_cum - c0) / (cap * dt)).clamp(0.0, 1.0), ((io_cum - i0) / dt).max(0.0))
        }
    }
}

impl DirtyRateModel for UtilizationDirtyModel {
    fn dirty_rate(&mut self, engine: &Engine, cluster: &VirtualCluster, vm: VmId) -> f64 {
        let (util, io_rate) = self.window_averages(engine, cluster, vm);
        let activity = self.peak * (1.0 - (-util / self.knee).exp());
        let j = self.jitter.get(vm.0 as usize).copied().unwrap_or(1.0);
        (self.base + activity + self.io_fraction * io_rate) * j
    }
}

/// Why pre-copy ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Next round fell below the stop threshold (clean convergence).
    Converged,
    /// Round budget exhausted.
    MaxRounds,
    /// Cumulative traffic exceeded `max_total_factor × mem`.
    TrafficBudget,
}

/// Outcome of one VM's migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmMigrationReport {
    /// Which VM.
    pub vm: u32,
    /// Source host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Guest memory, bytes.
    pub mem: u64,
    /// Pre-copy rounds executed (round 0 included).
    pub rounds: u32,
    /// Total bytes pushed over the wire (all rounds + stop-and-copy).
    pub transferred: f64,
    /// Wall time from migration start to guest running on `dst`.
    pub migration_time: SimDuration,
    /// Guest pause: stop-and-copy transfer + resume latency.
    pub downtime: SimDuration,
    /// Why pre-copy stopped.
    pub stop_reason: StopReason,
    /// Injected transfer aborts this VM survived before completing
    /// (each restarts pre-copy from round 0 after exponential backoff).
    pub aborts: u32,
}

/// Outcome of a whole-cluster migration (Virt-LM style aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMigrationReport {
    /// Per-VM outcomes in completion order.
    pub per_vm: Vec<VmMigrationReport>,
    /// Start of the first VM's migration to end of the last.
    pub total_time: SimDuration,
    /// Sum of per-VM downtimes ("overall downtime" in the paper's Table II).
    pub total_downtime: SimDuration,
    /// Largest single-VM downtime.
    pub max_downtime: SimDuration,
}

/// Progress events surfaced to the platform driver.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationEvent {
    /// One VM finished migrating and now runs on its destination host.
    VmDone(VmMigrationReport),
    /// Every requested VM finished.
    AllDone(ClusterMigrationReport),
}

#[derive(Debug)]
struct VmJob {
    vm: VmId,
    src: HostId,
    dst: HostId,
    mem: u64,
    started: SimTime,
    round: u32,
    round_started: SimTime,
    transferred: f64,
    stop_started: Option<SimTime>,
    stop_reason: StopReason,
    /// The in-flight transfer, so an injected abort can cancel it.
    flow: Option<ActivityId>,
}

impl Persist for StopReason {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            StopReason::Converged => 0,
            StopReason::MaxRounds => 1,
            StopReason::TrafficBudget => 2,
        });
    }
    fn decode(d: &mut Decoder) -> Self {
        match d.u8() {
            0 => StopReason::Converged,
            1 => StopReason::MaxRounds,
            2 => StopReason::TrafficBudget,
            other => panic!("snapshot: unknown stop reason {other}"),
        }
    }
}

impl Persist for VmMigrationReport {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.vm);
        e.u32(self.src);
        e.u32(self.dst);
        e.u64(self.mem);
        e.u32(self.rounds);
        e.f64(self.transferred);
        self.migration_time.encode(e);
        self.downtime.encode(e);
        self.stop_reason.encode(e);
        e.u32(self.aborts);
    }
    fn decode(d: &mut Decoder) -> Self {
        VmMigrationReport {
            vm: d.u32(),
            src: d.u32(),
            dst: d.u32(),
            mem: d.u64(),
            rounds: d.u32(),
            transferred: d.f64(),
            migration_time: Persist::decode(d),
            downtime: Persist::decode(d),
            stop_reason: Persist::decode(d),
            aborts: d.u32(),
        }
    }
}

impl Persist for ClusterMigrationReport {
    fn encode(&self, e: &mut Encoder) {
        self.per_vm.encode(e);
        self.total_time.encode(e);
        self.total_downtime.encode(e);
        self.max_downtime.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        ClusterMigrationReport {
            per_vm: Persist::decode(d),
            total_time: Persist::decode(d),
            total_downtime: Persist::decode(d),
            max_downtime: Persist::decode(d),
        }
    }
}

impl Persist for VmJob {
    fn encode(&self, e: &mut Encoder) {
        self.vm.encode(e);
        self.src.encode(e);
        self.dst.encode(e);
        e.u64(self.mem);
        self.started.encode(e);
        e.u32(self.round);
        self.round_started.encode(e);
        e.f64(self.transferred);
        self.stop_started.encode(e);
        self.stop_reason.encode(e);
        self.flow.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        VmJob {
            vm: Persist::decode(d),
            src: Persist::decode(d),
            dst: Persist::decode(d),
            mem: d.u64(),
            started: Persist::decode(d),
            round: d.u32(),
            round_started: Persist::decode(d),
            transferred: d.f64(),
            stop_started: Persist::decode(d),
            stop_reason: Persist::decode(d),
            flow: Persist::decode(d),
        }
    }
}

/// Orchestrates pre-copy migrations; owns no engine — the platform passes
/// `&mut Engine` into each call and routes `owners::MIGRATION` wakeups here.
#[derive(Debug)]
pub struct MigrationManager {
    cfg: MigrationConfig,
    jobs: HashMap<u32, VmJob>,
    queue: VecDeque<(VmId, HostId)>,
    active: u32,
    session_started: Option<SimTime>,
    finished: Vec<VmMigrationReport>,
    expected: usize,
    /// VMs whose transfer was aborted, waiting out their backoff timer.
    retrying: HashMap<u32, HostId>,
    /// Per-VM abort count within the current session (drives the backoff).
    aborts: HashMap<u32, u32>,
}

impl MigrationManager {
    /// New manager with `cfg`.
    pub fn new(cfg: MigrationConfig) -> Self {
        MigrationManager {
            cfg,
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            active: 0,
            session_started: None,
            finished: Vec::new(),
            expected: 0,
            retrying: HashMap::new(),
            aborts: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MigrationConfig {
        &self.cfg
    }

    /// True while any migration is queued, in flight, or backing off after
    /// an injected abort.
    pub fn busy(&self) -> bool {
        self.active > 0 || !self.queue.is_empty() || !self.retrying.is_empty()
    }

    /// Starts migrating `vms` to `dst`, honouring the concurrency limit.
    ///
    /// # Panics
    /// If a migration session is already in progress, or any VM already
    /// lives on `dst`.
    pub fn start_cluster_migration(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        vms: &[VmId],
        dst: HostId,
    ) {
        let moves: Vec<(VmId, HostId)> = vms.iter().map(|&vm| (vm, dst)).collect();
        self.start_moves(engine, cluster, &moves);
    }

    /// Starts a migration session over an explicit per-VM move plan — the
    /// general form of [`MigrationManager::start_cluster_migration`], used
    /// by the rebalancing control plane where different VMs head to
    /// different hosts.
    ///
    /// # Panics
    /// If a migration session is already in progress, or any VM already
    /// lives on its requested destination.
    pub fn start_moves(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        moves: &[(VmId, HostId)],
    ) {
        assert!(!self.busy(), "migration session already in progress");
        assert!(!moves.is_empty(), "nothing to migrate");
        self.session_started = Some(engine.now());
        self.finished.clear();
        self.aborts.clear();
        self.expected = moves.len();
        for &(vm, dst) in moves {
            assert_ne!(cluster.host_of(vm), dst, "{vm} already on {dst}");
            self.queue.push_back((vm, dst));
        }
        let slots = self.cfg.concurrency.max(1);
        for _ in 0..slots {
            self.launch_next(engine, cluster);
        }
    }

    fn launch_next(&mut self, engine: &mut Engine, cluster: &VirtualCluster) {
        let Some((vm, dst)) = self.queue.pop_front() else {
            return;
        };
        let src = cluster.host_of(vm);
        let mem = cluster.vm_mem(vm);
        let now = engine.now();
        let job = VmJob {
            vm,
            src,
            dst,
            mem,
            started: now,
            round: 0,
            round_started: now,
            transferred: 0.0,
            stop_started: None,
            stop_reason: StopReason::Converged,
            flow: None,
        };
        self.jobs.insert(vm.0, job);
        self.active += 1;
        // Round 0: push the whole guest memory.
        self.start_round_flow(engine, cluster, vm, mem as f64, false);
    }

    fn start_round_flow(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        vm: VmId,
        bytes: f64,
        stop_copy: bool,
    ) {
        let job = self.jobs.get_mut(&vm.0).expect("job exists");
        job.round_started = engine.now();
        job.transferred += bytes;
        let demands = cluster.host_transfer_demands(job.src, job.dst);
        let b = u64::from(job.round) | if stop_copy { STOP_COPY_BIT } else { 0 };
        let tag = Tag::new(owners::MIGRATION, vm.0, b);
        job.flow = Some(engine.start_flow(demands, bytes.max(1.0), tag));
    }

    /// Encodes all dynamic session state (config is launch-derived and
    /// not included; maps sorted by key).
    pub fn encode_state(&self, e: &mut Encoder) {
        self.jobs.encode(e);
        let queue: Vec<(VmId, HostId)> = self.queue.iter().copied().collect();
        queue.encode(e);
        e.u32(self.active);
        self.session_started.encode(e);
        self.finished.encode(e);
        e.usize(self.expected);
        self.retrying.encode(e);
        self.aborts.encode(e);
    }

    /// Overwrites the session state from a snapshot.
    pub fn restore_state(&mut self, d: &mut Decoder) {
        self.jobs = HashMap::<u32, VmJob>::decode(d);
        self.queue = Vec::<(VmId, HostId)>::decode(d).into();
        self.active = d.u32();
        self.session_started = Persist::decode(d);
        self.finished = Persist::decode(d);
        self.expected = d.usize();
        self.retrying = Persist::decode(d);
        self.aborts = Persist::decode(d);
    }

    /// Aborts every in-flight transfer (an injected fault: source toolstack
    /// dies mid-pre-copy, TCP stream resets, ...). Each aborted VM loses
    /// its progress, waits out a capped exponential backoff
    /// (`retry_backoff_base × 2^(aborts−1)`, at most `retry_backoff_cap`)
    /// and then restarts from round 0. Queued, not-yet-started VMs are
    /// untouched. Returns the aborted VM ids; a no-op (empty) when nothing
    /// is in flight.
    pub fn abort_active(&mut self, engine: &mut Engine) -> Vec<u32> {
        let mut vms: Vec<u32> = self.jobs.keys().copied().collect();
        vms.sort_unstable();
        for &vm in &vms {
            let job = self.jobs.remove(&vm).expect("listed job exists");
            if let Some(flow) = job.flow {
                engine.cancel_activity(flow);
            }
            self.active -= 1;
            let n = self.aborts.entry(vm).or_insert(0);
            *n += 1;
            let exp = (*n - 1).min(16);
            let delay =
                (self.cfg.retry_backoff_base * (1u64 << exp)).min(self.cfg.retry_backoff_cap);
            engine.trace_span(
                "fault",
                "migration_abort",
                vm,
                job.round_started,
                &[("round", f64::from(job.round)), ("attempt", f64::from(*n))],
            );
            self.retrying.insert(vm, job.dst);
            engine.set_timer_in(delay, Tag::new(owners::MIGRATION, vm, RETRY_BIT));
        }
        vms
    }

    /// Handles an `owners::MIGRATION` wakeup; returns any completions.
    pub fn on_wakeup(
        &mut self,
        engine: &mut Engine,
        cluster: &mut VirtualCluster,
        dirty: &mut dyn DirtyRateModel,
        wakeup: &Wakeup,
    ) -> Vec<MigrationEvent> {
        match wakeup {
            Wakeup::Activity { tag, .. } => {
                debug_assert_eq!(tag.owner, owners::MIGRATION);
                let vm = VmId(tag.a);
                let stop_copy = tag.b & STOP_COPY_BIT != 0;
                if stop_copy {
                    self.finish_vm(engine, cluster, vm)
                } else {
                    self.round_done(engine, cluster, dirty, vm);
                    Vec::new()
                }
            }
            // Backoff expired after an injected abort: re-queue the VM and
            // restart it as soon as a concurrency slot is free.
            Wakeup::Timer { tag, .. } if tag.b & RETRY_BIT != 0 => {
                debug_assert_eq!(tag.owner, owners::MIGRATION);
                if let Some(dst) = self.retrying.remove(&tag.a) {
                    self.queue.push_back((VmId(tag.a), dst));
                    let slots = self.cfg.concurrency.max(1);
                    while self.active < slots && !self.queue.is_empty() {
                        self.launch_next(engine, cluster);
                    }
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn round_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        dirty: &mut dyn DirtyRateModel,
        vm: VmId,
    ) {
        // A transfer finishing at the very instant an abort removed its job
        // still delivers its queued wakeup; ignore it.
        if !self.jobs.contains_key(&vm.0) {
            return;
        }
        let now = engine.now();
        let rate = dirty.dirty_rate(engine, cluster, vm);
        let (next_bytes, decision) = {
            let job = self.jobs.get_mut(&vm.0).expect("checked above");
            let elapsed = now.saturating_since(job.round_started).as_secs_f64();
            engine.trace_span(
                "migration",
                "precopy_round",
                vm.0,
                job.round_started,
                &[("round", f64::from(job.round))],
            );
            // Pages dirtied during the round we just sent; can never exceed
            // guest memory.
            let next = (rate * elapsed).min(job.mem as f64);
            job.round += 1;
            let decision = if next <= self.cfg.stop_threshold as f64 {
                Some(StopReason::Converged)
            } else if job.round >= self.cfg.max_rounds {
                Some(StopReason::MaxRounds)
            } else if job.transferred + next > self.cfg.max_total_factor * job.mem as f64 {
                Some(StopReason::TrafficBudget)
            } else {
                None
            };
            if let Some(reason) = decision {
                job.stop_reason = reason;
                job.stop_started = Some(now);
            }
            (next, decision)
        };
        // Stop-and-copy pushes the residual dirty set with the guest paused;
        // another pre-copy round pushes it with the guest running.
        self.start_round_flow(engine, cluster, vm, next_bytes, decision.is_some());
    }

    fn finish_vm(
        &mut self,
        engine: &mut Engine,
        cluster: &mut VirtualCluster,
        vm: VmId,
    ) -> Vec<MigrationEvent> {
        let now = engine.now();
        let Some(job) = self.jobs.remove(&vm.0) else {
            // Stale stop-copy completion of an aborted job (see round_done).
            return Vec::new();
        };
        self.active -= 1;
        cluster.set_host(job.vm, job.dst);
        let stop_started = job.stop_started.expect("stop phase was entered");
        let downtime = now.saturating_since(stop_started) + self.cfg.resume_latency;
        engine.trace_span("migration", "stop_and_copy", vm.0, stop_started, &[]);
        engine.trace_span(
            "migration",
            "migrate_vm",
            vm.0,
            job.started,
            &[
                ("mem", job.mem as f64),
                ("rounds", f64::from(job.round)),
                ("downtime_ms", downtime.as_millis_f64()),
            ],
        );
        let report = VmMigrationReport {
            vm: job.vm.0,
            src: job.src.0,
            dst: job.dst.0,
            mem: job.mem,
            rounds: job.round,
            transferred: job.transferred,
            migration_time: (now + self.cfg.resume_latency).saturating_since(job.started),
            downtime,
            stop_reason: job.stop_reason,
            aborts: self.aborts.get(&vm.0).copied().unwrap_or(0),
        };
        self.finished.push(report.clone());
        let mut events = vec![MigrationEvent::VmDone(report)];

        self.launch_next(engine, cluster);
        if self.active == 0 && self.queue.is_empty() && self.finished.len() == self.expected {
            let started = self.session_started.take().expect("session was started");
            let total_time = (now + self.cfg.resume_latency).saturating_since(started);
            let total_downtime =
                self.finished.iter().fold(SimDuration::ZERO, |acc, r| acc + r.downtime);
            let max_downtime =
                self.finished.iter().map(|r| r.downtime).max().unwrap_or(SimDuration::ZERO);
            events.push(MigrationEvent::AllDone(ClusterMigrationReport {
                per_vm: std::mem::take(&mut self.finished),
                total_time,
                total_downtime,
                max_downtime,
            }));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, Placement};

    fn setup(vms: u32) -> (Engine, VirtualCluster) {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(vms).placement(Placement::SingleDomain).build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    /// Drives an already-started session to completion.
    fn drive(
        e: &mut Engine,
        c: &mut VirtualCluster,
        mgr: &mut MigrationManager,
        dirty: &mut dyn DirtyRateModel,
    ) -> ClusterMigrationReport {
        while let Some((_, w)) = e.next_wakeup() {
            if w.tag().owner == owners::MIGRATION {
                for ev in mgr.on_wakeup(e, c, dirty, &w) {
                    if let MigrationEvent::AllDone(rep) = ev {
                        return rep;
                    }
                }
            }
        }
        panic!("migration never completed");
    }

    /// Runs a migration session to completion, returning the final report.
    fn run_migration(
        e: &mut Engine,
        c: &mut VirtualCluster,
        mgr: &mut MigrationManager,
        dirty: &mut dyn DirtyRateModel,
        vms: &[VmId],
    ) -> ClusterMigrationReport {
        mgr.start_cluster_migration(e, c, vms, HostId(1));
        drive(e, c, mgr, dirty)
    }

    #[test]
    fn idle_vm_converges_in_two_rounds() {
        let (mut e, mut c) = setup(1);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        let mut dirty = ConstantDirtyModel(0.5e6);
        let rep = run_migration(&mut e, &mut c, &mut mgr, &mut dirty, &[VmId(0)]);
        let vm = &rep.per_vm[0];
        assert_eq!(vm.stop_reason, StopReason::Converged);
        assert!(vm.rounds <= 3, "idle guest converges fast, took {} rounds", vm.rounds);
        // 1 GiB at 125 MB/s ≈ 8.6 s.
        let t = vm.migration_time.as_secs_f64();
        assert!((7.0..12.0).contains(&t), "idle migration ≈ 8.6 s, got {t}");
        // Downtime ≈ resume latency.
        assert!(vm.downtime.as_millis_f64() < 100.0, "idle downtime small, got {}", vm.downtime);
        assert_eq!(c.host_of(VmId(0)), HostId(1), "VM re-homed");
    }

    #[test]
    fn busy_vm_migrates_longer_with_bigger_downtime() {
        let (mut e, mut c) = setup(2);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        let mut idle = ConstantDirtyModel(0.5e6);
        let idle_rep = run_migration(&mut e, &mut c, &mut mgr, &mut idle, &[VmId(0)]);

        let mut busy = ConstantDirtyModel(90e6); // heavy writer
        let busy_rep = run_migration(&mut e, &mut c, &mut mgr, &mut busy, &[VmId(1)]);

        let (i, b) = (&idle_rep.per_vm[0], &busy_rep.per_vm[0]);
        assert!(
            b.migration_time.as_secs_f64() > 2.0 * i.migration_time.as_secs_f64(),
            "busy migration ({}) ≫ idle ({})",
            b.migration_time,
            i.migration_time
        );
        assert!(
            b.downtime.as_secs_f64() > 5.0 * i.downtime.as_secs_f64(),
            "busy downtime ({}) ≫ idle ({})",
            b.downtime,
            i.downtime
        );
        assert_eq!(b.stop_reason, StopReason::TrafficBudget);
    }

    #[test]
    fn migration_time_scales_with_memory() {
        let run_with_mem = |mib: u64| {
            let mut e = Engine::new();
            let spec = ClusterSpec::builder()
                .hosts(2)
                .vms(1)
                .vm_mem_mib(mib)
                .placement(Placement::SingleDomain)
                .build();
            let mut c = VirtualCluster::new(&mut e, spec);
            let mut mgr = MigrationManager::new(MigrationConfig::default());
            let mut dirty = ConstantDirtyModel(0.5e6);
            run_migration(&mut e, &mut c, &mut mgr, &mut dirty, &[VmId(0)]).per_vm[0]
                .migration_time
                .as_secs_f64()
        };
        let t512 = run_with_mem(512);
        let t1024 = run_with_mem(1024);
        assert!(
            t1024 > 1.7 * t512,
            "migration time ∝ memory: 512 MB → {t512:.2}s, 1024 MB → {t1024:.2}s"
        );
    }

    #[test]
    fn cluster_migration_is_sequential_by_default() {
        let (mut e, mut c) = setup(4);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        let mut dirty = ConstantDirtyModel(0.5e6);
        let vms: Vec<VmId> = (0..4).map(VmId).collect();
        let rep = run_migration(&mut e, &mut c, &mut mgr, &mut dirty, &vms);
        assert_eq!(rep.per_vm.len(), 4);
        // Sequential: total ≈ 4 × single time.
        let single = rep.per_vm[0].migration_time.as_secs_f64();
        let total = rep.total_time.as_secs_f64();
        assert!(
            (total - 4.0 * single).abs() < single,
            "sequential total ≈ 4×single: total {total:.1}, single {single:.1}"
        );
        for vm in 0..4 {
            assert_eq!(c.host_of(VmId(vm)), HostId(1));
        }
    }

    #[test]
    fn concurrent_migration_shares_the_wire() {
        let (mut e, mut c) = setup(4);
        let cfg = MigrationConfig { concurrency: 4, ..Default::default() };
        let mut mgr = MigrationManager::new(cfg);
        let mut dirty = ConstantDirtyModel(0.5e6);
        let vms: Vec<VmId> = (0..4).map(VmId).collect();
        let rep = run_migration(&mut e, &mut c, &mut mgr, &mut dirty, &vms);
        // All four share the wire: each single migration ≈ 4 × solo time,
        // but the total is about the same as sequential.
        let per_vm = rep.per_vm[0].migration_time.as_secs_f64();
        assert!(per_vm > 25.0, "concurrent per-VM time inflated, got {per_vm:.1}");
    }

    #[test]
    fn reports_account_transferred_bytes() {
        let (mut e, mut c) = setup(1);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        let mut dirty = ConstantDirtyModel(0.5e6);
        let rep = run_migration(&mut e, &mut c, &mut mgr, &mut dirty, &[VmId(0)]);
        let vm = &rep.per_vm[0];
        assert!(vm.transferred >= vm.mem as f64, "at least one full memory pass is transferred");
        assert!(vm.transferred <= 3.5 * vm.mem as f64, "traffic budget bounds total transfer");
    }

    #[test]
    fn aborted_migration_retries_and_completes() {
        let (mut e, mut c) = setup(1);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        let mut dirty = ConstantDirtyModel(0.5e6);
        mgr.start_cluster_migration(&mut e, &c, &[VmId(0)], HostId(1));
        assert_eq!(mgr.abort_active(&mut e), vec![0], "round-0 transfer was in flight");
        assert!(mgr.busy(), "backing off still counts as busy");
        assert!(mgr.abort_active(&mut e).is_empty(), "nothing left in flight to abort");
        let rep = drive(&mut e, &mut c, &mut mgr, &mut dirty);
        let vm = &rep.per_vm[0];
        assert_eq!(vm.aborts, 1);
        assert_eq!(c.host_of(VmId(0)), HostId(1), "retry still re-homes the VM");
        // The session clock includes the lost attempt + 500 ms backoff.
        assert!(rep.total_time >= vm.migration_time + SimDuration::from_millis(500));
        assert!(!mgr.busy());
    }

    #[test]
    fn repeated_aborts_back_off_exponentially() {
        let (mut e, mut c) = setup(1);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        let mut dirty = ConstantDirtyModel(0.5e6);
        mgr.start_cluster_migration(&mut e, &c, &[VmId(0)], HostId(1));
        let mut restarted_at = Vec::new();
        for _ in 0..2 {
            let aborted_at = e.now();
            assert_eq!(mgr.abort_active(&mut e), vec![0]);
            while mgr.jobs.is_empty() {
                let (_, w) = e.next_wakeup().expect("retry timer pending");
                if w.tag().owner == owners::MIGRATION {
                    mgr.on_wakeup(&mut e, &mut c, &mut dirty, &w);
                }
            }
            restarted_at.push(e.now().saturating_since(aborted_at));
        }
        assert_eq!(restarted_at[0], SimDuration::from_millis(500));
        assert_eq!(restarted_at[1], SimDuration::from_millis(1000), "second abort waits 2× base");
        let rep = drive(&mut e, &mut c, &mut mgr, &mut dirty);
        assert_eq!(rep.per_vm[0].aborts, 2);
        assert_eq!(c.host_of(VmId(0)), HostId(1));
    }

    #[test]
    fn start_moves_honours_per_vm_destinations() {
        let mut e = Engine::new();
        let spec =
            ClusterSpec::builder().hosts(2).vms(2).placement(Placement::Custom(vec![0, 1])).build();
        let mut c = VirtualCluster::new(&mut e, spec);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        let mut dirty = ConstantDirtyModel(0.5e6);
        mgr.start_moves(&mut e, &c, &[(VmId(0), HostId(1)), (VmId(1), HostId(0))]);
        let rep = drive(&mut e, &mut c, &mut mgr, &mut dirty);
        assert_eq!(rep.per_vm.len(), 2);
        assert_eq!(c.host_of(VmId(0)), HostId(1));
        assert_eq!(c.host_of(VmId(1)), HostId(0), "each VM reached its own destination");
        assert!(!mgr.busy());
    }

    #[test]
    #[should_panic(expected = "already on")]
    fn rejects_migrating_to_current_host() {
        let (mut e, c) = setup(1);
        let mut mgr = MigrationManager::new(MigrationConfig::default());
        mgr.start_cluster_migration(&mut e, &c, &[VmId(0)], HostId(0));
    }
}
