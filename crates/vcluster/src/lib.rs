//! # vcluster — Xen-style virtual cluster on the fluid simulator
//!
//! Models the vHadoop paper's virtualization layer:
//!
//! * [`spec`] — physical hosts (Dell T710 defaults), guest VMs, placement
//!   policies (the paper's *normal* single-domain vs. *cross-domain*
//!   configurations), NFS image server, and Xen parameters;
//! * [`topology`] — the explicit network tree (VM → host bridge →
//!   rack/ToR switch → core) with per-tier bandwidth and latency; one
//!   rack degenerates to the paper's flat two-host geometry;
//! * [`cluster`] — materializes a [`spec::ClusterSpec`] onto the
//!   [`simcore`] fluid network and provides the demand paths (compute,
//!   VM↔VM transfer, NFS-backed disk I/O) that HDFS and MapReduce build
//!   their activities from, resolving every path through the topology;
//! * [`migration`] — iterative pre-copy live migration with dirty-rate
//!   feedback, per-VM and whole-cluster reports;
//! * [`energy`] — linear host power model and exact energy accounting
//!   (the consolidation argument for migration);
//! * [`virtlm`] — the Virt-LM-style standalone migration benchmark.

#![warn(missing_docs)]

pub mod cluster;
pub mod energy;
pub mod migration;
pub mod spec;
pub mod topology;
pub mod virtlm;

/// Convenience imports.
pub mod prelude {
    pub use crate::cluster::{HostId, VirtualCluster, VmId};
    pub use crate::energy::{EnergyMeter, EnergyReport, PowerModel};
    pub use crate::migration::{
        ClusterMigrationReport, ConstantDirtyModel, DirtyRateModel, MigrationConfig,
        MigrationEvent, MigrationManager, StopReason, UtilizationDirtyModel, VmMigrationReport,
    };
    pub use crate::spec::{ClusterSpec, HostSpec, NfsSpec, Placement, VmSpec, XenParams, GIB, MIB};
    pub use crate::topology::{LocalityTier, RackId, RackPlacement, Topology, TopologySpec};
    pub use crate::virtlm::{VirtLm, VirtLmRow, WorkloadProfile};
}
