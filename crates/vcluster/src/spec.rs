//! Cluster specifications: physical hosts, VMs, placement, Xen parameters.
//!
//! Defaults mirror the paper's testbed: Dell T710 servers with two
//! quad-core Xeon E5620 processors at 2.40 GHz and 32 GB DRAM, 1 Gb/s
//! Ethernet, Xen with VM images on a shared NFS server, and guests with
//! 1 VCPU and 1024 MB of memory.

use crate::topology::TopologySpec;
use serde::{Deserialize, Serialize};

/// Bytes in one mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;
/// Bytes/second of a 1 Gb/s link.
pub const GBIT_PER_SEC: f64 = 125_000_000.0;

/// A physical machine's hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Number of physical cores.
    pub cores: u32,
    /// Per-core clock rate in cycles/second.
    pub core_hz: f64,
    /// Installed DRAM in bytes.
    pub dram: u64,
    /// NIC bandwidth in bytes/second.
    pub nic_bw: f64,
    /// Intra-host software bridge bandwidth (VM-to-VM on the same host).
    pub bridge_bw: f64,
}

impl Default for HostSpec {
    fn default() -> Self {
        // Dell T710: 2 × quad-core E5620 @ 2.40 GHz, 32 GB, GigE.
        HostSpec {
            cores: 8,
            core_hz: 2.4e9,
            dram: 32 * GIB,
            nic_bw: GBIT_PER_SEC,
            bridge_bw: 8.0 * GBIT_PER_SEC,
        }
    }
}

impl HostSpec {
    /// Aggregate CPU capacity in cycles/second.
    pub fn cpu_capacity(&self) -> f64 {
        f64::from(self.cores) * self.core_hz
    }
}

/// A guest VM's virtual hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Guest memory in bytes.
    pub mem: u64,
}

impl Default for VmSpec {
    fn default() -> Self {
        // Paper guests: 1 VCPU, 1024 MB.
        VmSpec { vcpus: 1, mem: 1024 * MIB }
    }
}

/// The shared NFS server storing every VM image (and thus every guest's
/// virtual disk).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfsSpec {
    /// Server disk bandwidth in bytes/second.
    pub disk_bw: f64,
    /// Server NIC bandwidth in bytes/second.
    pub nic_bw: f64,
    /// Per-operation latency (request round trip).
    pub op_latency_ms: f64,
}

impl Default for NfsSpec {
    fn default() -> Self {
        // 2012-era SATA RAID: ~90 MB/s sequential, GigE attachment.
        NfsSpec { disk_bw: 90e6, nic_bw: GBIT_PER_SEC, op_latency_ms: 0.5 }
    }
}

/// Xen-layer modelling knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XenParams {
    /// Multiplier on guest CPU work relative to bare metal (paravirt
    /// overhead); 1.0 = no overhead.
    pub cpu_overhead: f64,
    /// Dom0 CPU cycles consumed per byte of guest network I/O (the
    /// Cherkasova/Gardner effect: packet processing in dom0 steals CPU).
    pub dom0_cycles_per_net_byte: f64,
    /// Dom0 CPU cycles consumed per byte of guest disk (NFS) I/O.
    pub dom0_cycles_per_disk_byte: f64,
    /// Page size used by the migration dirty-page model, bytes.
    pub page_size: u64,
}

impl Default for XenParams {
    fn default() -> Self {
        XenParams {
            cpu_overhead: 1.08,
            dom0_cycles_per_net_byte: 3.0,
            dom0_cycles_per_disk_byte: 1.5,
            page_size: 4096,
        }
    }
}

/// Per-host hardware class: multipliers applied on top of the shared
/// [`HostSpec`] baseline. Heterogeneous clusters (the Frankfurt
/// virtualized-Hadoop evaluation's mixed-generation hosts) assign one
/// class per host; an empty class list means every host is the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostClass {
    /// Multiplier on the host's aggregate CPU capacity (1.0 = baseline).
    pub cpu_mult: f64,
    /// Multiplier on the host's storage-lane bandwidth to the shared NFS
    /// server (1.0 = baseline; models older HBAs/NICs on old hosts).
    pub disk_mult: f64,
}

impl Default for HostClass {
    fn default() -> Self {
        HostClass { cpu_mult: 1.0, disk_mult: 1.0 }
    }
}

/// Where the VMs of a cluster land on the physical machines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Every VM on host 0 — the paper's "normal" configuration.
    SingleDomain,
    /// VMs distributed round-robin over all hosts — the paper's
    /// "cross-domain" configuration (with 2 hosts: split equally).
    CrossDomain,
    /// Explicit host index per VM.
    Custom(Vec<u32>),
}

impl Placement {
    /// Host index for VM `vm` out of `n_vms` on `n_hosts` machines.
    pub fn host_of(&self, vm: u32, n_vms: u32, n_hosts: u32) -> u32 {
        assert!(n_hosts > 0, "need at least one host");
        match self {
            Placement::SingleDomain => 0,
            Placement::CrossDomain => vm % n_hosts,
            Placement::Custom(map) => {
                assert_eq!(map.len() as u32, n_vms, "custom placement must cover all VMs");
                let h = map[vm as usize];
                assert!(h < n_hosts, "custom placement references unknown host {h}");
                h
            }
        }
    }
}

/// Complete description of a hadoop virtual cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Physical machines (identical hardware).
    pub hosts: u32,
    /// Hardware of each host.
    pub host: HostSpec,
    /// Number of guest VMs.
    pub vms: u32,
    /// Virtual hardware of each VM.
    pub vm: VmSpec,
    /// VM-to-host mapping policy.
    pub placement: Placement,
    /// Shared NFS image server.
    pub nfs: NfsSpec,
    /// Xen model parameters.
    pub xen: XenParams,
    /// Inter-host switch backplane bandwidth in bytes/second. With the
    /// default single-rack topology this *is* the one switch; with more
    /// racks it is the inherited default for ToR/core tiers whose
    /// bandwidths are left at `0.0`.
    pub switch_bw: f64,
    /// Network-tier geometry: racks, host→rack map, per-tier bandwidths
    /// and latencies. Defaults to one rack — the legacy flat wire.
    pub topology: TopologySpec,
    /// Per-host hardware classes (one entry per host when non-empty;
    /// empty = homogeneous baseline, the legacy layout byte-for-byte).
    pub host_classes: Vec<HostClass>,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            hosts: 2,
            host: HostSpec::default(),
            vms: 16,
            vm: VmSpec::default(),
            placement: Placement::SingleDomain,
            nfs: NfsSpec::default(),
            xen: XenParams::default(),
            switch_bw: 8.0 * GBIT_PER_SEC,
            topology: TopologySpec::default(),
            host_classes: Vec::new(),
        }
    }
}

impl ClusterSpec {
    /// Builder entry point.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder::default()
    }

    /// The paper's 16-node cluster (1 namenode + 15 datanodes) packed onto
    /// one physical machine.
    pub fn paper_normal() -> Self {
        ClusterSpec { placement: Placement::SingleDomain, ..Default::default() }
    }

    /// The paper's 16-node cluster split equally over two physical machines.
    pub fn paper_cross_domain() -> Self {
        ClusterSpec { placement: Placement::CrossDomain, ..Default::default() }
    }

    /// Host index of `vm`.
    pub fn host_of(&self, vm: u32) -> u32 {
        self.placement.host_of(vm, self.vms, self.hosts)
    }

    /// Rack index of physical host `host`.
    pub fn rack_of_host(&self, host: u32) -> u32 {
        self.topology.rack_of_host(host, self.hosts)
    }

    /// Rack index of the host currently assigned to `vm` by the placement
    /// policy (initial placement — migrations are tracked by the cluster).
    pub fn rack_of_vm(&self, vm: u32) -> u32 {
        self.rack_of_host(self.host_of(vm))
    }

    /// Hardware class of physical host `host` (baseline when no classes
    /// are configured).
    pub fn class_of(&self, host: u32) -> HostClass {
        self.host_classes.get(host as usize).copied().unwrap_or_default()
    }

    /// Validates internal consistency, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.hosts == 0 {
            return Err("cluster needs at least one host".into());
        }
        if self.vms == 0 {
            return Err("cluster needs at least one VM".into());
        }
        if self.vm.vcpus == 0 {
            return Err("VMs need at least one VCPU".into());
        }
        if let Placement::Custom(map) = &self.placement {
            if map.len() as u32 != self.vms {
                return Err(format!(
                    "custom placement covers {} VMs but cluster has {}",
                    map.len(),
                    self.vms
                ));
            }
            if let Some(&h) = map.iter().find(|&&h| h >= self.hosts) {
                return Err(format!("custom placement references unknown host {h}"));
            }
        }
        self.topology.validate(self.hosts)?;
        if !self.host_classes.is_empty() {
            if self.host_classes.len() as u32 != self.hosts {
                return Err(format!(
                    "host_classes covers {} hosts but cluster has {}",
                    self.host_classes.len(),
                    self.hosts
                ));
            }
            for (h, c) in self.host_classes.iter().enumerate() {
                // NaN-safe positivity: NaN compares Greater to nothing.
                let positive = |m: f64| m.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
                if !positive(c.cpu_mult) || !positive(c.disk_mult) {
                    return Err(format!(
                        "host {h} class multipliers must be positive (cpu {}, disk {})",
                        c.cpu_mult, c.disk_mult
                    ));
                }
            }
        }
        // Memory oversubscription check per host.
        for h in 0..self.hosts {
            let packed: u64 =
                (0..self.vms).filter(|&v| self.host_of(v) == h).map(|_| self.vm.mem).sum();
            if packed > self.host.dram {
                return Err(format!(
                    "host {h} oversubscribed: {} MB of VMs in {} MB of DRAM",
                    packed / MIB,
                    self.host.dram / MIB
                ));
            }
        }
        Ok(())
    }
}

/// Fluent builder for [`ClusterSpec`].
#[derive(Debug, Clone, Default)]
pub struct ClusterSpecBuilder {
    spec: ClusterSpec,
}

impl ClusterSpecBuilder {
    /// Number of physical hosts.
    pub fn hosts(mut self, n: u32) -> Self {
        self.spec.hosts = n;
        self
    }

    /// Hardware of each host.
    pub fn host(mut self, h: HostSpec) -> Self {
        self.spec.host = h;
        self
    }

    /// Number of VMs.
    pub fn vms(mut self, n: u32) -> Self {
        self.spec.vms = n;
        self
    }

    /// VM memory in MiB (paper uses 512 or 1024).
    pub fn vm_mem_mib(mut self, mib: u64) -> Self {
        self.spec.vm.mem = mib * MIB;
        self
    }

    /// VCPUs per VM.
    pub fn vm_vcpus(mut self, v: u32) -> Self {
        self.spec.vm.vcpus = v;
        self
    }

    /// Placement policy.
    pub fn placement(mut self, p: Placement) -> Self {
        self.spec.placement = p;
        self
    }

    /// NFS server spec.
    pub fn nfs(mut self, n: NfsSpec) -> Self {
        self.spec.nfs = n;
        self
    }

    /// Xen parameters.
    pub fn xen(mut self, x: XenParams) -> Self {
        self.spec.xen = x;
        self
    }

    /// Switch backplane bandwidth.
    pub fn switch_bw(mut self, bw: f64) -> Self {
        self.spec.switch_bw = bw;
        self
    }

    /// Number of racks (contiguous host blocks, inherited tier
    /// bandwidths); shorthand for the common multi-rack shape.
    pub fn racks(mut self, n: u32) -> Self {
        self.spec.topology.racks = n;
        self
    }

    /// Full network-tier geometry.
    pub fn topology(mut self, t: TopologySpec) -> Self {
        self.spec.topology = t;
        self
    }

    /// Per-host hardware classes (one per host; empty = homogeneous).
    pub fn host_classes(mut self, classes: Vec<HostClass>) -> Self {
        self.spec.host_classes = classes;
        self
    }

    /// Finalizes the spec.
    ///
    /// # Panics
    /// On an invalid configuration (see [`ClusterSpec::validate`]).
    pub fn build(self) -> ClusterSpec {
        if let Err(e) = self.spec.validate() {
            panic!("invalid ClusterSpec: {e}");
        }
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_testbed() {
        let s = ClusterSpec::default();
        assert_eq!(s.hosts, 2);
        assert_eq!(s.vms, 16);
        assert_eq!(s.host.cores, 8);
        assert_eq!(s.host.core_hz, 2.4e9);
        assert_eq!(s.host.dram, 32 * GIB);
        assert_eq!(s.vm.mem, 1024 * MIB);
        assert_eq!(s.vm.vcpus, 1);
    }

    #[test]
    fn single_domain_places_everything_on_host0() {
        let s = ClusterSpec::paper_normal();
        assert!((0..16).all(|v| s.host_of(v) == 0));
    }

    #[test]
    fn cross_domain_splits_evenly() {
        let s = ClusterSpec::paper_cross_domain();
        let on0 = (0..16).filter(|&v| s.host_of(v) == 0).count();
        let on1 = (0..16).filter(|&v| s.host_of(v) == 1).count();
        assert_eq!((on0, on1), (8, 8));
    }

    #[test]
    fn custom_placement_is_respected() {
        let s = ClusterSpec::builder()
            .hosts(2)
            .vms(3)
            .placement(Placement::Custom(vec![1, 0, 1]))
            .build();
        assert_eq!(s.host_of(0), 1);
        assert_eq!(s.host_of(1), 0);
        assert_eq!(s.host_of(2), 1);
    }

    #[test]
    fn validate_catches_oversubscription() {
        let s = ClusterSpec::builder().hosts(1).vms(16).placement(Placement::SingleDomain);
        // 16 × 4 GiB = 64 GiB > 32 GiB DRAM.
        let mut spec = s.spec.clone();
        spec.vm.mem = 4 * GIB;
        assert!(spec.validate().unwrap_err().contains("oversubscribed"));
    }

    #[test]
    #[should_panic(expected = "invalid ClusterSpec")]
    fn builder_rejects_bad_custom_placement() {
        let _ =
            ClusterSpec::builder().hosts(1).vms(2).placement(Placement::Custom(vec![0])).build();
    }

    #[test]
    fn host_cpu_capacity() {
        let h = HostSpec::default();
        assert_eq!(h.cpu_capacity(), 8.0 * 2.4e9);
    }

    #[test]
    fn host_classes_default_to_baseline() {
        let s = ClusterSpec::default();
        assert!(s.host_classes.is_empty());
        assert_eq!(s.class_of(0), HostClass::default());
        let s = ClusterSpec::builder()
            .hosts(2)
            .vms(4)
            .host_classes(vec![HostClass::default(), HostClass { cpu_mult: 0.5, disk_mult: 0.5 }])
            .build();
        assert_eq!(s.class_of(1).cpu_mult, 0.5);
    }

    #[test]
    #[should_panic(expected = "host_classes covers")]
    fn builder_rejects_mismatched_host_classes() {
        let _ =
            ClusterSpec::builder().hosts(2).vms(4).host_classes(vec![HostClass::default()]).build();
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn builder_rejects_nonpositive_class_multipliers() {
        let _ = ClusterSpec::builder()
            .hosts(1)
            .vms(4)
            .host_classes(vec![HostClass { cpu_mult: 0.0, disk_mult: 1.0 }])
            .build();
    }
}
