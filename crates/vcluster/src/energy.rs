//! Host energy accounting.
//!
//! The paper motivates live migration with load balancing and **energy
//! saving** (consolidating VMs lets idle hosts power down). This module
//! prices a simulation run in joules using the standard linear server
//! power model `P(u) = P_idle + (P_peak − P_idle) · u`, evaluated
//! *exactly* from the fluid model's cumulative CPU counters — no sampling
//! error:
//!
//! `E_host = P_idle · T + (P_peak − P_idle) · (∫ u dt)`
//! where `∫ u dt = cumulative_cpu_work / capacity`.

use crate::cluster::{HostId, VirtualCluster};
use serde::{Deserialize, Serialize};
use simcore::prelude::*;

/// Linear server power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power draw at zero utilization, watts.
    pub idle_w: f64,
    /// Power draw at full utilization, watts.
    pub peak_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Dell T710 class: ~120 W idle, ~280 W under full load.
        PowerModel { idle_w: 120.0, peak_w: 280.0 }
    }
}

impl PowerModel {
    /// Instantaneous power at utilization `u` ∈ [0, 1].
    pub fn power_at(&self, u: f64) -> f64 {
        self.idle_w + (self.peak_w - self.idle_w) * u.clamp(0.0, 1.0)
    }
}

/// Per-host energy breakdown of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// `(host, idle joules, dynamic joules)` per host.
    pub per_host: Vec<(u32, f64, f64)>,
    /// Wall span of the accounting window, seconds.
    pub span_s: f64,
}

impl EnergyReport {
    /// Total joules across all hosts.
    pub fn total_j(&self) -> f64 {
        self.per_host.iter().map(|(_, i, d)| i + d).sum()
    }

    /// Total joules of one host.
    pub fn host_j(&self, host: HostId) -> f64 {
        self.per_host.iter().find(|(h, _, _)| *h == host.0).map(|(_, i, d)| i + d).unwrap_or(0.0)
    }

    /// Joules that powering down every host whose *dynamic* energy is
    /// below `threshold_j` would have saved (its idle draw) — the
    /// consolidation argument for migration.
    pub fn consolidation_savings_j(&self, threshold_j: f64) -> f64 {
        self.per_host
            .iter()
            .filter(|(_, _, dynamic)| *dynamic < threshold_j)
            .map(|(_, idle, _)| idle)
            .sum()
    }
}

/// Energy meter over a simulation window.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: PowerModel,
    /// `(instant, cumulative cpu work per host)` at meter start.
    start: (SimTime, Vec<f64>),
}

impl EnergyMeter {
    /// Starts metering at the current instant.
    pub fn start(engine: &Engine, cluster: &VirtualCluster, model: PowerModel) -> Self {
        let marks = (0..cluster.host_count())
            .map(|h| engine.fluid().cumulative(cluster.host_cpu_resource(HostId(h))))
            .collect();
        EnergyMeter { model, start: (engine.now(), marks) }
    }

    /// Encodes the meter's window start (the model is configuration).
    pub fn encode_state(&self, e: &mut simcore::persist::Encoder) {
        use simcore::persist::Persist;
        self.start.0.encode(e);
        self.start.1.encode(e);
    }

    /// Restores the window start from a snapshot.
    pub fn restore_state(&mut self, d: &mut simcore::persist::Decoder) {
        use simcore::persist::Persist;
        let at = simcore::time::SimTime::decode(d);
        let marks = Vec::<f64>::decode(d);
        self.start = (at, marks);
    }

    /// Energy consumed since the meter started.
    pub fn report(&self, engine: &Engine, cluster: &VirtualCluster) -> EnergyReport {
        let span_s = engine.now().saturating_since(self.start.0).as_secs_f64();
        let per_host = (0..cluster.host_count())
            .map(|h| {
                let r = cluster.host_cpu_resource(HostId(h));
                let cap = engine.fluid().capacity(r);
                let work = engine.fluid().cumulative(r) - self.start.1[h as usize];
                let util_seconds = if cap > 0.0 { (work / cap).max(0.0) } else { 0.0 };
                let idle_j = self.model.idle_w * span_s;
                let dynamic_j = (self.model.peak_w - self.model.idle_w) * util_seconds;
                (h, idle_j, dynamic_j)
            })
            .collect();
        EnergyReport { per_host, span_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::VmId;
    use crate::spec::{ClusterSpec, Placement};
    use simcore::owners;

    fn setup() -> (Engine, VirtualCluster) {
        let mut e = Engine::new();
        let spec = ClusterSpec::builder()
            .hosts(2)
            .vms(4)
            .vm_vcpus(8)
            .placement(Placement::Custom(vec![0, 0, 0, 0]))
            .build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    #[test]
    fn idle_run_costs_idle_power_only() {
        let (mut e, c) = setup();
        let meter = EnergyMeter::start(&e, &c, PowerModel::default());
        e.set_timer_in(SimDuration::from_secs(100), Tag::owner(owners::USER));
        e.run_to_quiescence();
        let rep = meter.report(&e, &c);
        assert!((rep.span_s - 100.0).abs() < 1e-6);
        // 2 hosts × 120 W × 100 s = 24 kJ, zero dynamic.
        assert!((rep.total_j() - 24_000.0).abs() < 1.0, "got {}", rep.total_j());
        assert!(rep.per_host.iter().all(|(_, _, d)| *d == 0.0));
    }

    #[test]
    fn busy_host_draws_more() {
        let (mut e, c) = setup();
        let meter = EnergyMeter::start(&e, &c, PowerModel::default());
        // Saturate host 0 for ~50 s (4 VMs × 8 vcpus ≥ 8 cores).
        for vm in 0..4 {
            for i in 0..4 {
                e.start_flow(
                    c.cpu_demands(VmId(vm)),
                    2.4e9 * 8.0 / 16.0 * 50.0,
                    Tag::new(owners::USER, vm * 10 + i, 0),
                );
            }
        }
        e.run_to_quiescence();
        let rep = meter.report(&e, &c);
        let h0 = rep.host_j(HostId(0));
        let h1 = rep.host_j(HostId(1));
        assert!(h0 > h1 * 1.5, "busy host 0 ({h0:.0} J) ≫ idle host 1 ({h1:.0} J)");
        // Dynamic energy of host 0 ≈ (280-120) W × 50 s = 8 kJ.
        let dyn0 = rep.per_host[0].2;
        assert!((dyn0 - 8_000.0).abs() < 400.0, "dynamic ≈ 8 kJ, got {dyn0:.0}");
    }

    #[test]
    fn consolidation_savings_counts_idle_hosts() {
        let (mut e, c) = setup();
        let meter = EnergyMeter::start(&e, &c, PowerModel::default());
        e.start_flow(c.cpu_demands(VmId(0)), 2.4e9 * 30.0, Tag::owner(owners::USER));
        e.run_to_quiescence();
        let rep = meter.report(&e, &c);
        // Host 1 ran nothing: its entire idle draw is recoverable.
        let savings = rep.consolidation_savings_j(1.0);
        let host1_idle = rep.per_host[1].1;
        assert!((savings - host1_idle).abs() < 1e-6);
        assert!(savings > 0.0);
    }

    #[test]
    fn power_model_is_linear() {
        let m = PowerModel::default();
        assert_eq!(m.power_at(0.0), 120.0);
        assert_eq!(m.power_at(1.0), 280.0);
        assert_eq!(m.power_at(0.5), 200.0);
        assert_eq!(m.power_at(2.0), 280.0, "clamped");
    }
}
