//! The virtual cluster materialized onto the fluid network.
//!
//! [`VirtualCluster::new`] registers one resource per physical contention
//! point — host CPUs, host NICs, host software bridges, the switching
//! fabric described by the spec's [`TopologySpec`](crate::topology), the
//! NFS server's NIC and disk — plus a VCPU-cap resource per VM (the Xen
//! credit scheduler's `cap`). All higher layers (HDFS, MapReduce,
//! migration) build their activities out of the demand paths provided here,
//! so every contention effect flows through one shared model:
//!
//! * guest compute demands {vcpu, host cpu} and is inflated by the
//!   paravirtualization overhead factor;
//! * same-host VM↔VM traffic crosses the host bridge; cross-host traffic
//!   crosses sender NIC → the topology's switch path (ToR, or ToR → core
//!   → ToR across racks) → receiver NIC;
//! * *all* guest disk I/O is NFS traffic (the paper stores VM images on a
//!   shared NFS server, attached at the core), crossing host NIC → switch
//!   path → NFS NIC → NFS disk;
//! * every byte of guest I/O additionally bills dom0 CPU cycles on the
//!   host, reproducing the "I/O processing steals CPU" virtualization tax.
//!
//! With the default single-rack topology the switch path is always the one
//! legacy `switch` resource and every demand vector below is byte-for-byte
//! what the pre-topology model produced.

use crate::spec::ClusterSpec;
use crate::topology::{LocalityTier, RackId, RackSwitchStat, Topology};
use serde::{Deserialize, Serialize};
use simcore::prelude::*;

/// Index of a physical machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Index of a guest VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl simcore::persist::Persist for HostId {
    fn encode(&self, e: &mut simcore::persist::Encoder) {
        e.u32(self.0);
    }
    fn decode(d: &mut simcore::persist::Decoder) -> Self {
        HostId(d.u32())
    }
}

impl simcore::persist::Persist for VmId {
    fn encode(&self, e: &mut simcore::persist::Encoder) {
        e.u32(self.0);
    }
    fn decode(d: &mut simcore::persist::Decoder) -> Self {
        VmId(d.u32())
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pm{}", self.0)
    }
}

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// One-way latency of the intra-host bridge (the [`TopologySpec`]
/// default; kept for reference and golden-compat assertions).
///
/// [`TopologySpec`]: crate::topology::TopologySpec
pub const BRIDGE_LATENCY: SimDuration = SimDuration::from_micros(50);
/// One-way latency of the in-rack wire (NIC + ToR switch) — the
/// [`TopologySpec`](crate::topology::TopologySpec) default.
pub const WIRE_LATENCY: SimDuration = SimDuration::from_micros(200);

/// The instantiated cluster: resource handles plus the (mutable) VM→host map.
#[derive(Debug)]
pub struct VirtualCluster {
    spec: ClusterSpec,
    host_cpu: Vec<ResourceId>,
    host_nic: Vec<ResourceId>,
    host_bridge: Vec<ResourceId>,
    topology: Topology,
    nfs_nic: ResourceId,
    nfs_disk: ResourceId,
    /// Per-host storage lane to the NFS server, registered only for
    /// heterogeneous clusters (`spec.host_classes` non-empty): capacity
    /// `nfs.disk_bw × disk_mult`, so a slow host class throttles its own
    /// guests' virtual-disk I/O without touching the shared server.
    /// Empty on homogeneous clusters — the legacy resource layout (and
    /// thus golden traces) stays byte-identical.
    disklane: Vec<ResourceId>,
    vcpu: Vec<ResourceId>,
    /// Per-VM I/O accounting resource: infinite capacity (never
    /// constrains), threaded through every transfer/disk path the VM
    /// touches so its cumulative counter measures the VM's I/O bytes —
    /// monitors and the migration dirty-page model read it.
    vio: Vec<ResourceId>,
    vm_host: Vec<u32>,
}

impl VirtualCluster {
    /// Registers all resources for `spec` on `engine` and returns the
    /// cluster handle.
    ///
    /// # Panics
    /// If `spec` fails [`ClusterSpec::validate`].
    pub fn new(engine: &mut Engine, spec: ClusterSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid ClusterSpec: {e}");
        }
        let mut host_cpu = Vec::with_capacity(spec.hosts as usize);
        let mut host_nic = Vec::with_capacity(spec.hosts as usize);
        let mut host_bridge = Vec::with_capacity(spec.hosts as usize);
        for h in 0..spec.hosts {
            host_cpu.push(engine.add_resource(
                format!("pm{h}.cpu"),
                ResourceKind::Cpu,
                spec.host.cpu_capacity() * spec.class_of(h).cpu_mult,
            ));
            host_nic.push(engine.add_resource(
                format!("pm{h}.nic"),
                ResourceKind::Net,
                spec.host.nic_bw,
            ));
            host_bridge.push(engine.add_resource(
                format!("pm{h}.bridge"),
                ResourceKind::Net,
                spec.host.bridge_bw,
            ));
        }
        let topology = Topology::build(engine, &spec.topology, spec.hosts, spec.switch_bw);
        let nfs_nic = engine.add_resource("nfs.nic", ResourceKind::Net, spec.nfs.nic_bw);
        let nfs_disk = engine.add_resource("nfs.disk", ResourceKind::Disk, spec.nfs.disk_bw);
        let mut disklane = Vec::new();
        if !spec.host_classes.is_empty() {
            for h in 0..spec.hosts {
                disklane.push(engine.add_resource(
                    format!("pm{h}.disklane"),
                    ResourceKind::Disk,
                    spec.nfs.disk_bw * spec.class_of(h).disk_mult,
                ));
            }
        }

        let mut vcpu = Vec::with_capacity(spec.vms as usize);
        let mut vio = Vec::with_capacity(spec.vms as usize);
        let mut vm_host = Vec::with_capacity(spec.vms as usize);
        for v in 0..spec.vms {
            let cap = f64::from(spec.vm.vcpus) * spec.host.core_hz;
            vcpu.push(engine.add_resource(format!("vm{v}.vcpu"), ResourceKind::Cpu, cap));
            vio.push(engine.add_resource(format!("vm{v}.vio"), ResourceKind::Other, f64::INFINITY));
            vm_host.push(spec.host_of(v));
        }

        VirtualCluster {
            spec,
            host_cpu,
            host_nic,
            host_bridge,
            topology,
            nfs_nic,
            nfs_disk,
            disklane,
            vcpu,
            vio,
            vm_host,
        }
    }

    /// The configuration this cluster was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of guest VMs.
    pub fn vm_count(&self) -> u32 {
        self.spec.vms
    }

    /// Number of physical hosts.
    pub fn host_count(&self) -> u32 {
        self.spec.hosts
    }

    /// All VM ids.
    pub fn vms(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.spec.vms).map(VmId)
    }

    /// Current host of `vm` (reflects completed migrations).
    pub fn host_of(&self, vm: VmId) -> HostId {
        HostId(self.vm_host[vm.0 as usize])
    }

    /// Re-homes `vm` onto `host`; called by the migration manager at
    /// switch-over time.
    pub fn set_host(&mut self, vm: VmId, host: HostId) {
        assert!(host.0 < self.spec.hosts, "unknown host {host}");
        self.vm_host[vm.0 as usize] = host.0;
    }

    /// Guest memory of `vm`, bytes.
    pub fn vm_mem(&self, vm: VmId) -> u64 {
        let _ = vm;
        self.spec.vm.mem
    }

    /// VCPU-cap resource of `vm` (for monitors).
    pub fn vcpu_resource(&self, vm: VmId) -> ResourceId {
        self.vcpu[vm.0 as usize]
    }

    /// I/O accounting resource of `vm`: its fluid `cumulative()` counter
    /// equals the VM's total transfer + virtual-disk bytes.
    pub fn vio_resource(&self, vm: VmId) -> ResourceId {
        self.vio[vm.0 as usize]
    }

    /// Host CPU resource (for monitors).
    pub fn host_cpu_resource(&self, host: HostId) -> ResourceId {
        self.host_cpu[host.0 as usize]
    }

    /// Host NIC resource (for monitors).
    pub fn host_nic_resource(&self, host: HostId) -> ResourceId {
        self.host_nic[host.0 as usize]
    }

    /// NFS server disk resource (for monitors).
    pub fn nfs_disk_resource(&self) -> ResourceId {
        self.nfs_disk
    }

    /// NFS server NIC resource (for monitors).
    pub fn nfs_nic_resource(&self) -> ResourceId {
        self.nfs_nic
    }

    /// Inter-host switch resource (for monitors). With a multi-rack
    /// topology this is rack 0's ToR; prefer [`tor_resource`] /
    /// [`core_resource`] for per-tier access.
    ///
    /// [`tor_resource`]: VirtualCluster::tor_resource
    /// [`core_resource`]: VirtualCluster::core_resource
    pub fn switch_resource(&self) -> ResourceId {
        self.topology.tor_resource(RackId(0))
    }

    /// The network-tier geometry this cluster runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of racks in the fabric.
    pub fn rack_count(&self) -> u32 {
        self.topology.rack_count()
    }

    /// Rack of physical host `host`.
    pub fn rack_of_host(&self, host: HostId) -> RackId {
        self.topology.rack_of_host(host.0)
    }

    /// Rack currently hosting `vm` (reflects completed migrations).
    pub fn rack_of(&self, vm: VmId) -> RackId {
        self.topology.rack_of_host(self.vm_host[vm.0 as usize])
    }

    /// ToR switch resource of `rack`.
    pub fn tor_resource(&self, rack: RackId) -> ResourceId {
        self.topology.tor_resource(rack)
    }

    /// Core switch resource; `None` on the flat single-rack fabric.
    pub fn core_resource(&self) -> Option<ResourceId> {
        self.topology.core_resource()
    }

    /// Locality tier of a VM pair under the current placement.
    pub fn tier(&self, a: VmId, b: VmId) -> LocalityTier {
        if a == b {
            return LocalityTier::Node;
        }
        self.topology.tier_hosts(self.vm_host[a.0 as usize], self.vm_host[b.0 as usize])
    }

    /// Hadoop-style tree distance between two VMs (0 / 2 / 4 / 6).
    pub fn distance(&self, a: VmId, b: VmId) -> u32 {
        self.tier(a, b).distance()
    }

    /// Per-rack ToR traffic totals and mean utilization over `elapsed_s`
    /// seconds of simulated time.
    pub fn rack_switch_stats(&self, engine: &Engine, elapsed_s: f64) -> Vec<RackSwitchStat> {
        self.topology.rack_switch_stats(engine, elapsed_s)
    }

    /// Fraction of `vm`'s VCPU cap currently in use (0..1).
    pub fn vcpu_utilization(&self, engine: &Engine, vm: VmId) -> f64 {
        engine.fluid().utilization(self.vcpu[vm.0 as usize])
    }

    // ----- demand-path builders -------------------------------------------

    /// Demands for guest computation on `vm`: the VCPU cap plus the host
    /// CPU pool.
    pub fn cpu_demands(&self, vm: VmId) -> Vec<Demand> {
        let h = self.vm_host[vm.0 as usize] as usize;
        vec![Demand::unit(self.vcpu[vm.0 as usize]), Demand::unit(self.host_cpu[h])]
    }

    /// A compute step burning `cycles` guest cycles on `vm` (inflated by
    /// the Xen CPU-overhead factor).
    pub fn compute(&self, vm: VmId, cycles: f64) -> ChainSpec {
        ChainSpec::new().flow(self.cpu_demands(vm), cycles * self.spec.xen.cpu_overhead)
    }

    /// Demands for a `src` → `dst` network transfer (per byte), resolved
    /// along the topology path: bridge on one host, sender NIC → switch
    /// path (ToR, or ToR → core → ToR across racks) → receiver NIC
    /// otherwise. Same-VM transfers return an empty path (pure memory
    /// copy).
    pub fn transfer_demands(&self, src: VmId, dst: VmId) -> Vec<Demand> {
        if src == dst {
            return Vec::new();
        }
        let hs = self.vm_host[src.0 as usize];
        let hd = self.vm_host[dst.0 as usize];
        let tax = self.spec.xen.dom0_cycles_per_net_byte;
        let acct = [Demand::unit(self.vio[src.0 as usize]), Demand::unit(self.vio[dst.0 as usize])];
        if hs == hd {
            let mut d = vec![Demand::unit(self.host_bridge[hs as usize])];
            if tax > 0.0 {
                d.push(Demand::weighted(self.host_cpu[hs as usize], tax));
            }
            d.extend(acct);
            d
        } else {
            let mut d = vec![Demand::unit(self.host_nic[hs as usize])];
            d.extend(self.topology.switch_path(hs, hd).into_iter().map(Demand::unit));
            d.push(Demand::unit(self.host_nic[hd as usize]));
            if tax > 0.0 {
                d.push(Demand::weighted(self.host_cpu[hs as usize], tax));
                d.push(Demand::weighted(self.host_cpu[hd as usize], tax));
            }
            d.extend(acct);
            d
        }
    }

    /// A network transfer of `bytes` from `src` to `dst`, including
    /// per-tier propagation latency summed along the path. Same-VM
    /// transfers reduce to a tiny delay.
    pub fn transfer(&self, src: VmId, dst: VmId, bytes: f64) -> ChainSpec {
        if src == dst {
            return ChainSpec::new().delay(SimDuration::from_micros(5));
        }
        let lat =
            self.topology.latency_hosts(self.vm_host[src.0 as usize], self.vm_host[dst.0 as usize]);
        ChainSpec::new().delay(lat).flow(self.transfer_demands(src, dst), bytes)
    }

    /// Demands for `vm` reading from its NFS-backed virtual disk (per byte).
    pub fn disk_read_demands(&self, vm: VmId) -> Vec<Demand> {
        self.nfs_demands(vm)
    }

    /// Demands for `vm` writing to its NFS-backed virtual disk (per byte).
    pub fn disk_write_demands(&self, vm: VmId) -> Vec<Demand> {
        self.nfs_demands(vm)
    }

    fn nfs_demands(&self, vm: VmId) -> Vec<Demand> {
        let h = self.vm_host[vm.0 as usize];
        let mut d = vec![Demand::unit(self.host_nic[h as usize])];
        d.extend(self.topology.switch_path_to_core(h).into_iter().map(Demand::unit));
        d.push(Demand::unit(self.nfs_nic));
        d.push(Demand::unit(self.nfs_disk));
        if let Some(&lane) = self.disklane.get(h as usize) {
            d.push(Demand::unit(lane));
        }
        let tax = self.spec.xen.dom0_cycles_per_disk_byte;
        if tax > 0.0 {
            d.push(Demand::weighted(self.host_cpu[h as usize], tax));
        }
        d.push(Demand::unit(self.vio[vm.0 as usize]));
        d
    }

    /// A virtual-disk read of `bytes` on `vm` (NFS round trip).
    pub fn disk_read(&self, vm: VmId, bytes: f64) -> ChainSpec {
        ChainSpec::new()
            .delay(SimDuration::from_secs_f64(self.spec.nfs.op_latency_ms / 1e3))
            .flow(self.disk_read_demands(vm), bytes)
    }

    /// A virtual-disk write of `bytes` on `vm` (NFS round trip).
    pub fn disk_write(&self, vm: VmId, bytes: f64) -> ChainSpec {
        ChainSpec::new()
            .delay(SimDuration::from_secs_f64(self.spec.nfs.op_latency_ms / 1e3))
            .flow(self.disk_write_demands(vm), bytes)
    }

    /// Demands for a host-to-host bulk transfer (migration traffic)
    /// along the topology path, including dom0 packet-processing tax on
    /// both ends.
    pub fn host_transfer_demands(&self, src: HostId, dst: HostId) -> Vec<Demand> {
        assert_ne!(src, dst, "migration source and destination must differ");
        let tax = self.spec.xen.dom0_cycles_per_net_byte;
        let mut d = vec![Demand::unit(self.host_nic[src.0 as usize])];
        d.extend(self.topology.switch_path(src.0, dst.0).into_iter().map(Demand::unit));
        d.push(Demand::unit(self.host_nic[dst.0 as usize]));
        if tax > 0.0 {
            d.push(Demand::weighted(self.host_cpu[src.0 as usize], tax));
            d.push(Demand::weighted(self.host_cpu[dst.0 as usize], tax));
        }
        d
    }

    /// Encodes the dynamic state (the VM→host map — everything else is
    /// launch-derived) for a platform snapshot.
    pub fn encode_state(&self, e: &mut simcore::persist::Encoder) {
        use simcore::persist::Persist;
        self.vm_host.encode(e);
    }

    /// Restores the VM→host map from a snapshot taken on an identically
    /// configured cluster.
    ///
    /// # Panics
    /// If the snapshot's VM count differs from this cluster's.
    pub fn restore_state(&mut self, d: &mut simcore::persist::Decoder) {
        use simcore::persist::Persist;
        let vm_host = Vec::<u32>::decode(d);
        assert_eq!(vm_host.len(), self.vm_host.len(), "snapshot VM count mismatch");
        self.vm_host = vm_host;
    }

    /// True when the cluster spans more than one physical machine.
    pub fn is_cross_domain(&self) -> bool {
        let first = self.vm_host.first().copied();
        self.vm_host.iter().any(|&h| Some(h) != first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, Placement};

    fn build(placement: Placement) -> (Engine, VirtualCluster) {
        let mut e = Engine::new();
        let spec = ClusterSpec::builder().hosts(2).vms(4).placement(placement).build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    #[test]
    fn resources_are_registered() {
        let (e, c) = build(Placement::SingleDomain);
        // 2 hosts × (cpu+nic+bridge) + switch + nfs nic + disk + 4 vcpus
        // + 4 per-VM I/O accounting resources.
        assert_eq!(e.fluid().resource_count(), 2 * 3 + 3 + 4 + 4);
        assert_eq!(c.vm_count(), 4);
        assert!(!c.is_cross_domain());
    }

    #[test]
    fn cross_domain_detected() {
        let (_, c) = build(Placement::CrossDomain);
        assert!(c.is_cross_domain());
        assert_eq!(c.host_of(VmId(0)), HostId(0));
        assert_eq!(c.host_of(VmId(1)), HostId(1));
    }

    #[test]
    fn same_host_transfer_uses_bridge() {
        let (_, c) = build(Placement::SingleDomain);
        let d = c.transfer_demands(VmId(0), VmId(1));
        // bridge + dom0 tax + 2 I/O accounting entries.
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn cross_host_transfer_uses_nics_and_switch() {
        let (_, c) = build(Placement::CrossDomain);
        let d = c.transfer_demands(VmId(0), VmId(1));
        // 2 NICs + switch + 2 dom0 taxes + 2 I/O accounting entries.
        assert_eq!(d.len(), 7);
    }

    #[test]
    fn same_vm_transfer_is_free() {
        let (_, c) = build(Placement::SingleDomain);
        assert!(c.transfer_demands(VmId(2), VmId(2)).is_empty());
    }

    #[test]
    fn compute_applies_xen_overhead() {
        let (mut e, c) = build(Placement::SingleDomain);
        let spec = c.compute(VmId(0), 1e9);
        match &spec.steps[0] {
            simcore::engine::Step::Flow { work, .. } => {
                assert!((*work - 1.08e9).abs() < 1.0, "overhead factor applied");
            }
            other => panic!("expected flow, got {other:?}"),
        }
        e.start_chain(spec, Tag::new(simcore::owners::USER, 0, 0));
        let (t, _) = e.next_wakeup().expect("compute completes");
        // 1.08e9 cycles at 2.4e9/s VCPU cap -> 0.45 s.
        assert!((t.as_secs_f64() - 0.45).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn migration_rehomes_vm() {
        let (_, mut c) = build(Placement::SingleDomain);
        assert_eq!(c.host_of(VmId(3)), HostId(0));
        c.set_host(VmId(3), HostId(1));
        assert_eq!(c.host_of(VmId(3)), HostId(1));
        // Transfers from vm0 (host0) to vm3 now cross the wire.
        assert_eq!(c.transfer_demands(VmId(0), VmId(3)).len(), 7);
    }

    #[test]
    fn cross_domain_transfer_slower_under_contention() {
        // Two concurrent cross-host transfers share the NICs; two
        // same-host transfers share the (faster) bridge.
        let mb = 100e6;
        let elapsed = |placement: Placement| {
            let (mut e, c) = build(placement);
            for i in 0..2 {
                e.start_chain(
                    c.transfer(VmId(0), VmId(1), mb),
                    Tag::new(simcore::owners::USER, i, 0),
                );
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = e.next_wakeup() {
                last = t;
            }
            last.as_secs_f64()
        };
        let normal = elapsed(Placement::SingleDomain);
        let cross = elapsed(Placement::CrossDomain);
        assert!(
            cross > normal * 2.0,
            "cross-domain ({cross:.3}s) must be much slower than normal ({normal:.3}s)"
        );
    }

    #[test]
    fn nfs_path_contends_on_server_disk() {
        // Reads from VMs on different hosts still share the NFS disk.
        let (mut e, c) = build(Placement::CrossDomain);
        let bytes = 90e6; // 1 s at full disk bw.
        e.start_chain(c.disk_read(VmId(0), bytes), Tag::new(simcore::owners::USER, 0, 0));
        e.start_chain(c.disk_read(VmId(1), bytes), Tag::new(simcore::owners::USER, 1, 0));
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = e.next_wakeup() {
            last = t;
        }
        // Two 1-second reads sharing one disk ≈ 2 s (plus latency).
        assert!(last.as_secs_f64() > 1.9, "disk contention visible, got {last}");
    }

    fn build_racked() -> (Engine, VirtualCluster) {
        // 4 hosts on 2 racks (hosts 0,1 | 2,3), VMs round-robin.
        let mut e = Engine::new();
        let spec = ClusterSpec::builder()
            .hosts(4)
            .vms(8)
            .placement(Placement::CrossDomain)
            .racks(2)
            .build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    #[test]
    fn multi_rack_registers_tors_and_core() {
        let (e, c) = build_racked();
        // 4 hosts × 3 + (2 ToRs + core) + nfs nic + disk + 8 vcpu + 8 vio.
        assert_eq!(e.fluid().resource_count(), 4 * 3 + 3 + 2 + 16);
        assert_eq!(c.rack_count(), 2);
        assert_eq!(c.rack_of(VmId(0)), crate::topology::RackId(0)); // host 0
        assert_eq!(c.rack_of(VmId(2)), crate::topology::RackId(1)); // host 2
        assert!(c.core_resource().is_some());
    }

    #[test]
    fn cross_rack_transfer_crosses_the_core() {
        let (_, c) = build_racked();
        // vm0 on host 0 (rack 0), vm1 on host 1 (rack 0): 1 switch hop.
        assert_eq!(c.tier(VmId(0), VmId(1)), LocalityTier::Rack);
        assert_eq!(c.transfer_demands(VmId(0), VmId(1)).len(), 7);
        // vm0 → vm2 (host 2, rack 1): ToR + core + ToR.
        assert_eq!(c.tier(VmId(0), VmId(2)), LocalityTier::OffRack);
        assert_eq!(c.distance(VmId(0), VmId(2)), 6);
        let d = c.transfer_demands(VmId(0), VmId(2));
        // 2 NICs + 3 switches + 2 taxes + 2 accounting entries.
        assert_eq!(d.len(), 9);
        // Migration traffic takes the same path (minus vio accounting).
        assert_eq!(c.host_transfer_demands(HostId(0), HostId(2)).len(), 7);
        assert_eq!(c.host_transfer_demands(HostId(0), HostId(1)).len(), 5);
    }

    #[test]
    fn cross_rack_latency_exceeds_in_rack() {
        let (_, c) = build_racked();
        let first_delay = |spec: ChainSpec| match spec.steps[0] {
            simcore::engine::Step::Delay(d) => d,
            ref other => panic!("expected delay, got {other:?}"),
        };
        let in_rack = first_delay(c.transfer(VmId(0), VmId(1), 1.0));
        let cross = first_delay(c.transfer(VmId(0), VmId(2), 1.0));
        assert_eq!(in_rack, WIRE_LATENCY);
        assert!(cross > in_rack, "core hop adds latency");
    }

    #[test]
    fn nfs_path_crosses_core_from_any_rack() {
        let (_, c) = build_racked();
        // NIC + ToR + core + nfs nic + nfs disk + tax + vio = 7.
        assert_eq!(c.disk_read_demands(VmId(0)).len(), 7);
        assert_eq!(c.disk_read_demands(VmId(2)).len(), 7);
    }

    #[test]
    fn single_rack_keeps_legacy_layout() {
        let (e, c) = build(Placement::CrossDomain);
        // Resource names in registration order must match the
        // pre-topology model exactly (ids pin golden traces).
        let names: Vec<String> = e
            .fluid()
            .usage_snapshot()
            .iter()
            .map(|&(r, _, _, _)| e.fluid().resource_name(r).to_string())
            .collect();
        assert_eq!(
            &names[..9],
            &[
                "pm0.cpu",
                "pm0.nic",
                "pm0.bridge",
                "pm1.cpu",
                "pm1.nic",
                "pm1.bridge",
                "switch",
                "nfs.nic",
                "nfs.disk"
            ]
        );
        assert_eq!(c.rack_count(), 1);
        assert!(c.core_resource().is_none());
        assert_eq!(c.switch_resource(), c.tor_resource(crate::topology::RackId(0)));
        assert_eq!(c.tier(VmId(0), VmId(0)), LocalityTier::Node);
        assert_eq!(c.tier(VmId(0), VmId(1)), LocalityTier::Rack);
    }

    fn build_hetero() -> (Engine, VirtualCluster) {
        // Host 0 baseline, host 1 half CPU / half storage lane.
        let mut e = Engine::new();
        let spec = ClusterSpec::builder()
            .hosts(2)
            .vms(4)
            .placement(Placement::CrossDomain)
            .host_classes(vec![
                crate::spec::HostClass::default(),
                crate::spec::HostClass { cpu_mult: 0.5, disk_mult: 0.25 },
            ])
            .build();
        let c = VirtualCluster::new(&mut e, spec);
        (e, c)
    }

    #[test]
    fn host_classes_register_storage_lanes() {
        let (e, c) = build_hetero();
        // Legacy 9 + 2 disklanes + 4 vcpu + 4 vio.
        assert_eq!(e.fluid().resource_count(), 9 + 2 + 8);
        // NIC + switch + nfs nic + nfs disk + disklane + dom0 tax + vio.
        assert_eq!(c.disk_read_demands(VmId(0)).len(), 7);
        assert_eq!(c.disk_read_demands(VmId(1)).len(), 7);
        // Homogeneous clusters stay on the legacy lane-free path.
        let (_, legacy) = build(Placement::CrossDomain);
        assert_eq!(legacy.disk_read_demands(VmId(0)).len(), 6);
    }

    #[test]
    fn slow_class_host_reads_disk_slower() {
        let run = |vm: VmId| {
            let (mut e, c) = build_hetero();
            e.start_chain(c.disk_read(vm, 90e6), Tag::new(simcore::owners::USER, 0, 0));
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = e.next_wakeup() {
                last = t;
            }
            last.as_secs_f64()
        };
        let fast = run(VmId(0)); // host 0, baseline lane
        let slow = run(VmId(1)); // host 1, 0.25× lane
        assert!(
            slow > fast * 3.0,
            "quarter-speed lane dominates: fast {fast:.2}s vs slow {slow:.2}s"
        );
    }

    #[test]
    fn slow_class_host_computes_slower_when_contended() {
        // One VM saturates its VCPU cap on each host; the pool only binds
        // when the host is oversubscribed, so drive two VMs per host with
        // vcpus that exceed the (scaled) pool.
        let run = |host: u32| {
            let mut e = Engine::new();
            let spec = ClusterSpec::builder()
                .hosts(2)
                .vms(4)
                .vm_vcpus(8)
                .placement(Placement::Custom(vec![0, 0, 1, 1]))
                .host_classes(vec![
                    crate::spec::HostClass::default(),
                    crate::spec::HostClass { cpu_mult: 0.5, disk_mult: 1.0 },
                ])
                .build();
            let c = VirtualCluster::new(&mut e, spec);
            let vms = if host == 0 { [VmId(0), VmId(1)] } else { [VmId(2), VmId(3)] };
            for (i, vm) in vms.into_iter().enumerate() {
                e.start_chain(c.compute(vm, 2.4e10), Tag::new(simcore::owners::USER, i as u32, 0));
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = e.next_wakeup() {
                last = t;
            }
            last.as_secs_f64()
        };
        let fast = run(0);
        let slow = run(1);
        assert!(slow > fast * 1.8, "half the pool ≈ twice the time: {fast:.2}s vs {slow:.2}s");
    }

    #[test]
    fn rack_switch_stats_account_traffic() {
        let (mut e, c) = build_racked();
        // One in-rack transfer in rack 0: its ToR sees the bytes, rack 1's
        // ToR stays idle.
        let bytes = 1e6;
        e.start_chain(c.transfer(VmId(0), VmId(1), bytes), Tag::new(simcore::owners::USER, 0, 0));
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = e.next_wakeup() {
            last = t;
        }
        let stats = c.rack_switch_stats(&e, last.as_secs_f64());
        assert_eq!(stats.len(), 2);
        assert!((stats[0].bytes - bytes).abs() < 1.0, "rack 0 switched the flow");
        assert_eq!(stats[1].bytes, 0.0, "rack 1 idle");
        assert!(stats[0].mean_util > 0.0);
    }
}
