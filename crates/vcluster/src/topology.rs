//! Hierarchical network topology: VM → host bridge → rack/ToR switch → core.
//!
//! The paper's testbed is two physical hosts on one switch, and until this
//! module the whole stack hard-coded that geometry (same-host traffic on
//! the bridge, everything else across one flat wire). [`Topology`] makes
//! the tree explicit: every host belongs to a rack served by a top-of-rack
//! (ToR) switch, and racks meet at a core switch. A transfer between any
//! two endpoints resolves to a *path* of fluid resources plus a summed
//! one-way latency, so contention and distance both fall out of the tree
//! instead of an if-same-host-else-wire branch.
//!
//! **Degeneration contract:** the default [`TopologySpec`] (one rack)
//! reproduces the old flat geometry *exactly* — the single ToR switch is
//! registered under the legacy name `switch` with `ClusterSpec::switch_bw`
//! capacity, no core resource exists, and the per-tier latencies default to
//! the legacy [`BRIDGE_LATENCY`](crate::cluster::BRIDGE_LATENCY) /
//! [`WIRE_LATENCY`](crate::cluster::WIRE_LATENCY) constants. Runs on a
//! single-rack spec are byte-identical to pre-topology runs (pinned by the
//! scheduler goldens and `tests/tests/topology.rs`).

use serde::{Deserialize, Serialize};
use simcore::prelude::*;

/// Index of a rack (one ToR switch per rack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u32);

impl std::fmt::Display for RackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// How close two endpoints are in the topology tree, best tier first.
/// Ordered: `Node < Host < Rack < OffRack` (derive(PartialOrd) on the
/// declaration order), so `min` over a replica set picks the best tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LocalityTier {
    /// Same VM — a pure memory copy.
    Node,
    /// Different VMs on one host — traffic crosses the software bridge.
    Host,
    /// Different hosts in one rack — traffic crosses NICs and the ToR.
    Rack,
    /// Different racks — traffic additionally crosses the core switch.
    OffRack,
}

impl LocalityTier {
    /// Hadoop-style tree distance (0 / 2 / 4 / 6): the number of edges up
    /// to the common ancestor and back down.
    pub fn distance(self) -> u32 {
        match self {
            LocalityTier::Node => 0,
            LocalityTier::Host => 2,
            LocalityTier::Rack => 4,
            LocalityTier::OffRack => 6,
        }
    }

    /// Stable lowercase name (CSV series, trace args).
    pub fn name(self) -> &'static str {
        match self {
            LocalityTier::Node => "node",
            LocalityTier::Host => "host",
            LocalityTier::Rack => "rack",
            LocalityTier::OffRack => "off-rack",
        }
    }
}

/// Where the hosts of a cluster land on the racks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RackPlacement {
    /// Hosts fill racks in contiguous blocks of `ceil(hosts / racks)` —
    /// host 0..k-1 in rack 0, the next k in rack 1, and so on.
    Contiguous,
    /// Host *h* lands in rack *h* mod racks.
    RoundRobin,
    /// Explicit rack index per host.
    Custom(Vec<u32>),
}

impl RackPlacement {
    /// Rack index for host `host` out of `n_hosts` on `racks` racks.
    pub fn rack_of(&self, host: u32, n_hosts: u32, racks: u32) -> u32 {
        assert!(racks > 0, "need at least one rack");
        match self {
            RackPlacement::Contiguous => {
                let per_rack = n_hosts.div_ceil(racks).max(1);
                (host / per_rack).min(racks - 1)
            }
            RackPlacement::RoundRobin => host % racks,
            RackPlacement::Custom(map) => {
                assert_eq!(map.len() as u32, n_hosts, "custom rack map must cover all hosts");
                let r = map[host as usize];
                assert!(r < racks, "custom rack map references unknown rack {r}");
                r
            }
        }
    }
}

/// The network-tier parameters of a cluster: rack count, host→rack map,
/// per-tier bandwidths and one-way latencies.
///
/// Bandwidths of `0.0` inherit `ClusterSpec::switch_bw`, so a spec that
/// only sets `racks` gets uniform switching capacity at every tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of racks (≥ 1). One rack *is* the legacy flat geometry: the
    /// single ToR is the old inter-host `switch` and no core exists.
    pub racks: u32,
    /// Host→rack mapping policy.
    pub rack_placement: RackPlacement,
    /// Per-rack ToR backplane bandwidth, bytes/second; `0.0` inherits
    /// `ClusterSpec::switch_bw`. Ignored for a single rack (the legacy
    /// `switch_bw` always applies there).
    pub rack_bw: f64,
    /// Core switch backplane bandwidth, bytes/second; `0.0` inherits
    /// `ClusterSpec::switch_bw`. Unused for a single rack.
    pub core_bw: f64,
    /// One-way latency of the in-host software bridge, microseconds.
    pub bridge_latency_us: f64,
    /// One-way latency between hosts in one rack (NIC + ToR), microseconds.
    pub rack_latency_us: f64,
    /// *Additional* one-way latency when a path crosses the core switch,
    /// microseconds (cross-rack latency = `rack_latency_us` + this).
    pub core_latency_us: f64,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            racks: 1,
            rack_placement: RackPlacement::Contiguous,
            rack_bw: 0.0,
            core_bw: 0.0,
            // Legacy BRIDGE_LATENCY / WIRE_LATENCY, plus a 2012-era
            // multi-tier datacenter hop for the core.
            bridge_latency_us: 50.0,
            rack_latency_us: 200.0,
            core_latency_us: 300.0,
        }
    }
}

impl TopologySpec {
    /// A flat single-rack topology (the paper's testbed) — the default.
    pub fn flat() -> Self {
        TopologySpec::default()
    }

    /// `racks` racks with contiguous host blocks and inherited bandwidths.
    pub fn racks(racks: u32) -> Self {
        TopologySpec { racks, ..Default::default() }
    }

    /// Rack index of `host` (out of `n_hosts`).
    pub fn rack_of_host(&self, host: u32, n_hosts: u32) -> u32 {
        self.rack_placement.rack_of(host, n_hosts, self.racks)
    }

    /// Validates internal consistency against a host count.
    pub fn validate(&self, n_hosts: u32) -> Result<(), String> {
        if self.racks == 0 {
            return Err("topology needs at least one rack".into());
        }
        if self.racks > n_hosts {
            return Err(format!("{} racks but only {n_hosts} hosts", self.racks));
        }
        if let RackPlacement::Custom(map) = &self.rack_placement {
            if map.len() as u32 != n_hosts {
                return Err(format!(
                    "custom rack map covers {} hosts but cluster has {n_hosts}",
                    map.len()
                ));
            }
            if let Some(&r) = map.iter().find(|&&r| r >= self.racks) {
                return Err(format!("custom rack map references unknown rack {r}"));
            }
        }
        for (name, v) in [
            ("rack_bw", self.rack_bw),
            ("core_bw", self.core_bw),
            ("bridge_latency_us", self.bridge_latency_us),
            ("rack_latency_us", self.rack_latency_us),
            ("core_latency_us", self.core_latency_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("topology {name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

/// Per-ToR traffic accounting over a run, for benches and monitors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackSwitchStat {
    /// Which rack.
    pub rack: RackId,
    /// Total bytes switched through the rack's ToR.
    pub bytes: f64,
    /// Mean utilization over the accounted window (bytes / (bw × secs)).
    pub mean_util: f64,
}

fn micros(us: f64) -> SimDuration {
    SimDuration::from_nanos((us * 1_000.0).round() as u64)
}

/// The instantiated switching fabric: per-rack ToR resources, the core
/// resource (absent for one rack), the host→rack map and per-tier
/// latencies. Owned by `VirtualCluster`, which composes the endpoint
/// resources (bridges, NICs) with the switch path this type resolves.
#[derive(Debug)]
pub struct Topology {
    racks: u32,
    host_rack: Vec<u32>,
    tor: Vec<ResourceId>,
    tor_bw: f64,
    core: Option<ResourceId>,
    core_bw: f64,
    bridge_latency: SimDuration,
    rack_latency: SimDuration,
    core_latency: SimDuration,
}

impl Topology {
    /// Registers the switching resources for `spec` on `engine`.
    ///
    /// Single rack: one resource under the legacy name `switch` with
    /// `switch_bw` capacity (and no core) — resource ids, names, and
    /// capacities are exactly the pre-topology layout. Multiple racks:
    /// `rack{r}.tor` per rack, then `core`.
    ///
    /// # Panics
    /// If the topology spec fails [`TopologySpec::validate`].
    pub fn build(engine: &mut Engine, spec: &TopologySpec, n_hosts: u32, switch_bw: f64) -> Self {
        if let Err(e) = spec.validate(n_hosts) {
            panic!("invalid TopologySpec: {e}");
        }
        let host_rack: Vec<u32> = (0..n_hosts).map(|h| spec.rack_of_host(h, n_hosts)).collect();
        let inherit = |bw: f64| if bw > 0.0 { bw } else { switch_bw };
        let (tor, tor_bw, core, core_bw) = if spec.racks == 1 {
            let sw = engine.add_resource("switch", ResourceKind::Net, switch_bw);
            (vec![sw], switch_bw, None, switch_bw)
        } else {
            let tor_bw = inherit(spec.rack_bw);
            let tor = (0..spec.racks)
                .map(|r| engine.add_resource(format!("rack{r}.tor"), ResourceKind::Net, tor_bw))
                .collect();
            let core_bw = inherit(spec.core_bw);
            let core = engine.add_resource("core", ResourceKind::Net, core_bw);
            (tor, tor_bw, Some(core), core_bw)
        };
        Topology {
            racks: spec.racks,
            host_rack,
            tor,
            tor_bw,
            core,
            core_bw,
            bridge_latency: micros(spec.bridge_latency_us),
            rack_latency: micros(spec.rack_latency_us),
            core_latency: micros(spec.core_latency_us),
        }
    }

    /// Number of racks.
    pub fn rack_count(&self) -> u32 {
        self.racks
    }

    /// True when the fabric has more than one rack (a real core exists).
    pub fn is_multi_rack(&self) -> bool {
        self.racks > 1
    }

    /// Rack of `host`.
    pub fn rack_of_host(&self, host: u32) -> RackId {
        RackId(self.host_rack[host as usize])
    }

    /// Hosts in `rack`, ascending.
    pub fn hosts_in_rack(&self, rack: RackId) -> impl Iterator<Item = u32> + '_ {
        self.host_rack.iter().enumerate().filter(move |(_, &r)| r == rack.0).map(|(h, _)| h as u32)
    }

    /// ToR switch resource of `rack` (the legacy `switch` for one rack).
    pub fn tor_resource(&self, rack: RackId) -> ResourceId {
        self.tor[rack.0 as usize]
    }

    /// ToR backplane bandwidth, bytes/second.
    pub fn tor_bw(&self) -> f64 {
        self.tor_bw
    }

    /// Core switch resource; `None` for a single rack.
    pub fn core_resource(&self) -> Option<ResourceId> {
        self.core
    }

    /// Core backplane bandwidth, bytes/second.
    pub fn core_bw(&self) -> f64 {
        self.core_bw
    }

    /// Locality tier of a host pair (never [`LocalityTier::Node`] — that
    /// needs VM identity, which the cluster layer resolves).
    pub fn tier_hosts(&self, a: u32, b: u32) -> LocalityTier {
        if a == b {
            LocalityTier::Host
        } else if self.host_rack[a as usize] == self.host_rack[b as usize] {
            LocalityTier::Rack
        } else {
            LocalityTier::OffRack
        }
    }

    /// The switching resources a `src` → `dst` host-to-host transfer
    /// crosses, in path order, *excluding* the endpoint NICs: the ToR for
    /// a same-rack pair, `[tor, core, tor]` across racks. Empty for the
    /// same host (the bridge is an endpoint resource, not a switch).
    pub fn switch_path(&self, src: u32, dst: u32) -> Vec<ResourceId> {
        match self.tier_hosts(src, dst) {
            LocalityTier::Node | LocalityTier::Host => Vec::new(),
            LocalityTier::Rack => vec![self.tor[self.host_rack[src as usize] as usize]],
            LocalityTier::OffRack => vec![
                self.tor[self.host_rack[src as usize] as usize],
                self.core.expect("multi-rack fabric has a core"),
                self.tor[self.host_rack[dst as usize] as usize],
            ],
        }
    }

    /// The switching resources between `host` and the core-attached NFS
    /// server: the ToR for one rack (the server hangs off the legacy
    /// switch), ToR + core across racks.
    pub fn switch_path_to_core(&self, host: u32) -> Vec<ResourceId> {
        let tor = self.tor[self.host_rack[host as usize] as usize];
        match self.core {
            None => vec![tor],
            Some(core) => vec![tor, core],
        }
    }

    /// One-way propagation latency between two hosts (bridge / ToR /
    /// ToR+core by tier).
    pub fn latency_hosts(&self, src: u32, dst: u32) -> SimDuration {
        match self.tier_hosts(src, dst) {
            LocalityTier::Node | LocalityTier::Host => self.bridge_latency,
            LocalityTier::Rack => self.rack_latency,
            LocalityTier::OffRack => self.rack_latency + self.core_latency,
        }
    }

    /// One-way latency between `host` and the NFS server at the core.
    pub fn latency_to_core(&self, host: u32) -> SimDuration {
        let _ = host;
        match self.core {
            None => self.rack_latency,
            Some(_) => self.rack_latency + self.core_latency,
        }
    }

    /// Per-rack ToR traffic stats over `elapsed_s` seconds (mean
    /// utilization needs a window; pass the run's makespan).
    pub fn rack_switch_stats(&self, engine: &Engine, elapsed_s: f64) -> Vec<RackSwitchStat> {
        self.tor
            .iter()
            .enumerate()
            .map(|(r, &res)| {
                let bytes = engine.fluid().cumulative(res);
                let denom = self.tor_bw * elapsed_s;
                RackSwitchStat {
                    rack: RackId(r as u32),
                    bytes,
                    mean_util: if denom > 0.0 { bytes / denom } else { 0.0 },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(racks: u32, hosts: u32) -> (Engine, Topology) {
        let mut e = Engine::new();
        let t = Topology::build(&mut e, &TopologySpec::racks(racks), hosts, 8e9 / 8.0);
        (e, t)
    }

    #[test]
    fn single_rack_is_the_legacy_switch() {
        let (e, t) = fabric(1, 2);
        assert_eq!(t.rack_count(), 1);
        assert!(!t.is_multi_rack());
        assert!(t.core_resource().is_none());
        assert_eq!(e.fluid().resource_count(), 1);
        assert_eq!(e.fluid().resource_name(t.tor_resource(RackId(0))), "switch");
        assert_eq!(t.switch_path(0, 1), vec![t.tor_resource(RackId(0))]);
        assert_eq!(t.switch_path_to_core(1), vec![t.tor_resource(RackId(0))]);
        assert_eq!(t.latency_hosts(0, 1), SimDuration::from_micros(200));
        assert_eq!(t.latency_hosts(0, 0), SimDuration::from_micros(50));
    }

    #[test]
    fn multi_rack_registers_tors_and_core() {
        let (e, t) = fabric(2, 4);
        assert_eq!(e.fluid().resource_count(), 3); // 2 ToRs + core
        assert_eq!(e.fluid().resource_name(t.tor_resource(RackId(0))), "rack0.tor");
        assert_eq!(e.fluid().resource_name(t.tor_resource(RackId(1))), "rack1.tor");
        let core = t.core_resource().expect("core exists");
        assert_eq!(e.fluid().resource_name(core), "core");
        // Contiguous: hosts 0,1 in rack 0; hosts 2,3 in rack 1.
        assert_eq!(t.rack_of_host(1), RackId(0));
        assert_eq!(t.rack_of_host(2), RackId(1));
        assert_eq!(t.hosts_in_rack(RackId(1)).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn paths_and_latencies_follow_the_tree() {
        let (_, t) = fabric(2, 4);
        assert_eq!(t.tier_hosts(0, 0), LocalityTier::Host);
        assert_eq!(t.tier_hosts(0, 1), LocalityTier::Rack);
        assert_eq!(t.tier_hosts(0, 2), LocalityTier::OffRack);
        assert_eq!(t.switch_path(0, 1).len(), 1, "same rack: one ToR");
        let cross = t.switch_path(0, 3);
        assert_eq!(cross.len(), 3, "cross rack: ToR, core, ToR");
        assert_eq!(cross[1], t.core_resource().unwrap());
        assert_eq!(t.switch_path_to_core(3).len(), 2, "NFS across the core");
        assert_eq!(t.latency_hosts(0, 1), SimDuration::from_micros(200));
        assert_eq!(t.latency_hosts(0, 2), SimDuration::from_micros(500));
        assert!(t.latency_to_core(0) > t.latency_hosts(0, 1));
    }

    #[test]
    fn tier_ordering_and_distance() {
        assert!(LocalityTier::Node < LocalityTier::Host);
        assert!(LocalityTier::Host < LocalityTier::Rack);
        assert!(LocalityTier::Rack < LocalityTier::OffRack);
        assert_eq!(LocalityTier::Node.distance(), 0);
        assert_eq!(LocalityTier::Host.distance(), 2);
        assert_eq!(LocalityTier::Rack.distance(), 4);
        assert_eq!(LocalityTier::OffRack.distance(), 6);
    }

    #[test]
    fn rack_placement_policies() {
        let c = RackPlacement::Contiguous;
        assert_eq!((0..6).map(|h| c.rack_of(h, 6, 3)).collect::<Vec<_>>(), vec![0, 0, 1, 1, 2, 2]);
        let rr = RackPlacement::RoundRobin;
        assert_eq!((0..6).map(|h| rr.rack_of(h, 6, 3)).collect::<Vec<_>>(), vec![0, 1, 2, 0, 1, 2]);
        let cu = RackPlacement::Custom(vec![1, 0]);
        assert_eq!(cu.rack_of(0, 2, 2), 1);
        // Odd split: 5 hosts over 2 racks → 3 + 2.
        assert_eq!((0..5).map(|h| c.rack_of(h, 5, 2)).collect::<Vec<_>>(), vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(TopologySpec { racks: 0, ..Default::default() }.validate(2).is_err());
        assert!(TopologySpec::racks(4).validate(2).is_err(), "more racks than hosts");
        let bad = TopologySpec {
            racks: 2,
            rack_placement: RackPlacement::Custom(vec![0, 5]),
            ..Default::default()
        };
        assert!(bad.validate(2).is_err());
        let neg = TopologySpec { core_bw: -1.0, ..Default::default() };
        assert!(neg.validate(2).is_err());
        assert!(TopologySpec::racks(2).validate(4).is_ok());
    }

    #[test]
    fn bandwidth_inheritance() {
        let mut e = Engine::new();
        let spec = TopologySpec { racks: 2, rack_bw: 5e8, core_bw: 0.0, ..Default::default() };
        let t = Topology::build(&mut e, &spec, 2, 1e9);
        assert_eq!(t.tor_bw(), 5e8, "explicit rack bw respected");
        assert_eq!(t.core_bw(), 1e9, "zero core bw inherits switch_bw");
    }
}
