//! Virt-LM-style live-migration benchmark.
//!
//! The paper extends the authors' earlier **Virt-LM** benchmark (ICPE'11)
//! from single-VM to whole-virtual-cluster migration. This module is the
//! standalone equivalent: a set of named workload profiles with
//! characteristic dirty rates, each run as a cluster migration on a fresh
//! simulated testbed, producing the migration-time / downtime rows the
//! paper reports in Table II.
//!
//! The *real* wordcount rows of Table II are produced by the bench harness
//! with an actual MapReduce job running during migration; the profiles here
//! are synthetic stand-ins used for calibration and unit testing.

use crate::cluster::{HostId, VirtualCluster, VmId};
use crate::migration::{
    ClusterMigrationReport, ConstantDirtyModel, MigrationConfig, MigrationEvent, MigrationManager,
};
use crate::spec::{ClusterSpec, Placement};
use serde::{Deserialize, Serialize};
use simcore::owners;
use simcore::prelude::*;

/// A named workload profile with a characteristic memory dirty rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Scenario name (appears in reports).
    pub name: String,
    /// Memory dirty rate while the workload runs, bytes/s.
    pub dirty_rate: f64,
}

impl WorkloadProfile {
    /// Idle guest: kernel housekeeping only.
    pub fn idle() -> Self {
        WorkloadProfile { name: "idle".into(), dirty_rate: 0.5e6 }
    }

    /// Compile-like workload: moderate writes.
    pub fn kernel_build() -> Self {
        WorkloadProfile { name: "kernel-build".into(), dirty_rate: 25e6 }
    }

    /// Static web server: low writes, mostly reads.
    pub fn web_server() -> Self {
        WorkloadProfile { name: "web-server".into(), dirty_rate: 8e6 }
    }

    /// Memory-stress writer: near-wire-speed dirtying.
    pub fn mem_stress() -> Self {
        WorkloadProfile { name: "mem-stress".into(), dirty_rate: 110e6 }
    }

    /// The standard Virt-LM scenario set.
    pub fn standard_set() -> Vec<WorkloadProfile> {
        vec![Self::idle(), Self::web_server(), Self::kernel_build(), Self::mem_stress()]
    }
}

/// One scenario × memory-size measurement row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtLmRow {
    /// Profile name.
    pub workload: String,
    /// Guest memory, MiB.
    pub mem_mib: u64,
    /// Number of VMs migrated.
    pub vms: u32,
    /// Whole-cluster migration wall time, seconds.
    pub total_time_s: f64,
    /// Sum of per-VM downtimes, milliseconds.
    pub total_downtime_ms: f64,
    /// Largest single-VM downtime, milliseconds.
    pub max_downtime_ms: f64,
    /// Mean per-VM migration time, seconds.
    pub mean_vm_time_s: f64,
}

/// Benchmark driver: migrates an `n_vms` virtual cluster between two hosts
/// under each workload profile.
#[derive(Debug, Clone)]
pub struct VirtLm {
    /// Number of VMs in the migrated cluster.
    pub n_vms: u32,
    /// Guest memory sizes to sweep, MiB.
    pub mem_mib: Vec<u64>,
    /// Pre-copy tunables.
    pub migration: MigrationConfig,
}

impl Default for VirtLm {
    fn default() -> Self {
        // Paper setup: 16-node cluster, 512 MB and 1024 MB guests.
        VirtLm { n_vms: 16, mem_mib: vec![512, 1024], migration: MigrationConfig::default() }
    }
}

impl VirtLm {
    /// Runs one profile at one memory size on a fresh simulated testbed.
    pub fn run_one(&self, profile: &WorkloadProfile, mem_mib: u64) -> VirtLmRow {
        let report = self.migrate_cluster(profile.dirty_rate, mem_mib);
        let mean_vm_time_s =
            report.per_vm.iter().map(|r| r.migration_time.as_secs_f64()).sum::<f64>()
                / report.per_vm.len() as f64;
        VirtLmRow {
            workload: profile.name.clone(),
            mem_mib,
            vms: self.n_vms,
            total_time_s: report.total_time.as_secs_f64(),
            total_downtime_ms: report.total_downtime.as_millis_f64(),
            max_downtime_ms: report.max_downtime.as_millis_f64(),
            mean_vm_time_s,
        }
    }

    /// Runs the full scenario × memory sweep.
    pub fn run_all(&self, profiles: &[WorkloadProfile]) -> Vec<VirtLmRow> {
        let mut rows = Vec::new();
        for profile in profiles {
            for &mem in &self.mem_mib {
                rows.push(self.run_one(profile, mem));
            }
        }
        rows
    }

    /// Full per-VM report for one configuration (Fig. 5-style data).
    pub fn migrate_cluster(&self, dirty_rate: f64, mem_mib: u64) -> ClusterMigrationReport {
        let mut engine = Engine::new();
        let spec = ClusterSpec::builder()
            .hosts(2)
            .vms(self.n_vms)
            .vm_mem_mib(mem_mib)
            .placement(Placement::SingleDomain)
            .build();
        let mut cluster = VirtualCluster::new(&mut engine, spec);
        let mut mgr = MigrationManager::new(self.migration.clone());
        let mut dirty = ConstantDirtyModel(dirty_rate);
        let vms: Vec<VmId> = (0..self.n_vms).map(VmId).collect();
        mgr.start_cluster_migration(&mut engine, &cluster, &vms, HostId(1));
        while let Some((_, w)) = engine.next_wakeup() {
            if w.tag().owner == owners::MIGRATION {
                for ev in mgr.on_wakeup(&mut engine, &mut cluster, &mut dirty, &w) {
                    if let MigrationEvent::AllDone(rep) = ev {
                        return rep;
                    }
                }
            }
        }
        unreachable!("migration session never completed");
    }
}

/// Formats rows as an aligned text table (Table II analogue).
pub fn format_table(rows: &[VirtLmRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>6} {:>14} {:>18} {:>16}\n",
        "workload", "mem(MB)", "VMs", "total time(s)", "total downtime(ms)", "max downtime(ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8} {:>6} {:>14.1} {:>18.1} {:>16.1}\n",
            r.workload, r.mem_mib, r.vms, r.total_time_s, r.total_downtime_ms, r.max_downtime_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bench() -> VirtLm {
        VirtLm { n_vms: 4, mem_mib: vec![512, 1024], migration: MigrationConfig::default() }
    }

    #[test]
    fn idle_migration_time_tracks_memory() {
        let b = small_bench();
        let idle = WorkloadProfile::idle();
        let r512 = b.run_one(&idle, 512);
        let r1024 = b.run_one(&idle, 1024);
        assert!(
            r1024.total_time_s > 1.7 * r512.total_time_s,
            "1024 MB ({:.1}s) ≈ 2× 512 MB ({:.1}s)",
            r1024.total_time_s,
            r512.total_time_s
        );
        // Downtime does NOT scale with memory (paper observation i).
        assert!(
            (r1024.max_downtime_ms - r512.max_downtime_ms).abs()
                < 0.5 * r512.max_downtime_ms.max(50.0),
            "downtime uncorrelated with memory: {} vs {}",
            r512.max_downtime_ms,
            r1024.max_downtime_ms
        );
    }

    #[test]
    fn busy_workload_much_worse_downtime() {
        let b = small_bench();
        let idle = b.run_one(&WorkloadProfile::idle(), 1024);
        let busy = b.run_one(&WorkloadProfile::mem_stress(), 1024);
        assert!(busy.total_time_s > 2.0 * idle.total_time_s);
        assert!(
            busy.total_downtime_ms > 8.0 * idle.total_downtime_ms,
            "busy downtime ({:.0}ms) ≫ idle ({:.0}ms)",
            busy.total_downtime_ms,
            idle.total_downtime_ms
        );
    }

    #[test]
    fn standard_set_runs() {
        let b = VirtLm { n_vms: 2, mem_mib: vec![512], migration: MigrationConfig::default() };
        let rows = b.run_all(&WorkloadProfile::standard_set());
        assert_eq!(rows.len(), 4);
        let table = format_table(&rows);
        assert!(table.contains("mem-stress"));
        assert!(table.lines().count() >= 5);
    }
}
