//! Versioned, deterministic state capture (DESIGN.md §16).
//!
//! A snapshot is a flat byte string: a 10-byte header (magic + format
//! version) followed by fields written in a fixed order by visitor-style
//! [`Persist`] implementations. The encoding has no self-description and no
//! alignment — determinism comes from three rules every implementor follows:
//!
//! 1. **Canonicalize before encode.** Lazily-compacted structures (the
//!    engine's tombstoned timer heap, the fluid completion index) are
//!    compacted *first*, so two byte-identical simulation states always
//!    produce byte-identical snapshots regardless of how much garbage each
//!    happened to carry.
//! 2. **Sort unordered containers.** `HashMap`s are encoded in ascending
//!    key order; heaps are encoded as sorted vectors.
//! 3. **Bit-exact floats.** `f64` is encoded via `to_bits` little-endian,
//!    so rates and remaining-work amounts survive the round trip exactly —
//!    the restored fluid allocation is the *same numbers*, not close ones.
//!
//! Any change to what a component encodes must bump [`SNAPSHOT_VERSION`];
//! the check.sh `snap` stage pins a golden hash to catch silent drift.

use std::collections::{HashMap, VecDeque};

/// Leading magic of every snapshot byte string.
pub const SNAPSHOT_MAGIC: [u8; 6] = *b"VHSNAP";

/// Format version written after the magic. Bump on **any** encoding change.
/// (v2: HDFS namespace gained the block-checksum side table. v3: SoA/arena
/// fluid kernel — batch/histogram counters, generation-stamped timer arena,
/// five interned kernel counter names. v4: `WhatIfOutcome` records which
/// makespan model produced each estimate.)
pub const SNAPSHOT_VERSION: u32 = 4;

/// Checks the header of a snapshot byte string without constructing a
/// decoder; returns the embedded format version.
pub fn validate_header(bytes: &[u8]) -> Result<u32, String> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(format!("snapshot too short: {} bytes", bytes.len()));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err("bad snapshot magic (not a vHadoop snapshot)".to_string());
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 4]);
    let version = u32::from_le_bytes(v);
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {version} does not match supported version {SNAPSHOT_VERSION}"
        ));
    }
    Ok(version)
}

/// Append-only byte sink. [`Encoder::new`] writes the header; components
/// then write their fields in a fixed order.
#[derive(Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Fresh encoder with the magic + version header already written.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        Encoder { buf }
    }

    /// Consumes the encoder, returning the snapshot bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` bit-exactly (`to_bits`, little-endian).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Sequential reader over snapshot bytes. Construction validates the
/// header; reads panic on truncation (a snapshot is trusted input once the
/// header checks out — corruption is a bug, not a recoverable condition).
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder positioned after the validated header.
    ///
    /// # Panics
    /// If the magic or version does not match (see [`validate_header`]).
    pub fn new(bytes: &'a [u8]) -> Self {
        if let Err(e) = validate_header(bytes) {
            panic!("cannot decode snapshot: {e}");
        }
        Decoder { buf: bytes, pos: SNAPSHOT_MAGIC.len() + 4 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a `u32`, little-endian.
    pub fn u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4));
        u32::from_le_bytes(b)
    }

    /// Reads a `u64`, little-endian.
    pub fn u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8));
        u64::from_le_bytes(b)
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self) -> usize {
        self.u64() as usize
    }

    /// Reads a bit-exact `f64`.
    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    /// Reads a bool.
    pub fn bool(&mut self) -> bool {
        self.u8() != 0
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> String {
        let n = self.usize();
        String::from_utf8(self.take(n).to_vec()).expect("snapshot strings are UTF-8")
    }
}

/// Visitor-style encode/decode implemented by every stateful component.
///
/// `decode` must read exactly the bytes `encode` wrote, in the same order;
/// there are no field tags. Containers with nondeterministic iteration
/// order must be written in a canonical order (see the module docs).
pub trait Persist: Sized {
    /// Appends this value's state to `e`.
    fn encode(&self, e: &mut Encoder);
    /// Reads one value back, consuming exactly what `encode` wrote.
    fn decode(d: &mut Decoder) -> Self;
}

impl Persist for u8 {
    fn encode(&self, e: &mut Encoder) {
        e.u8(*self);
    }
    fn decode(d: &mut Decoder) -> Self {
        d.u8()
    }
}

impl Persist for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.u32(*self);
    }
    fn decode(d: &mut Decoder) -> Self {
        d.u32()
    }
}

impl Persist for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.u64(*self);
    }
    fn decode(d: &mut Decoder) -> Self {
        d.u64()
    }
}

impl Persist for usize {
    fn encode(&self, e: &mut Encoder) {
        e.usize(*self);
    }
    fn decode(d: &mut Decoder) -> Self {
        d.usize()
    }
}

impl Persist for f64 {
    fn encode(&self, e: &mut Encoder) {
        e.f64(*self);
    }
    fn decode(d: &mut Decoder) -> Self {
        d.f64()
    }
}

impl Persist for bool {
    fn encode(&self, e: &mut Encoder) {
        e.bool(*self);
    }
    fn decode(d: &mut Decoder) -> Self {
        d.bool()
    }
}

impl Persist for String {
    fn encode(&self, e: &mut Encoder) {
        e.str(self);
    }
    fn decode(d: &mut Decoder) -> Self {
        d.str()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        match d.u8() {
            0 => None,
            _ => Some(T::decode(d)),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        let n = d.usize();
        (0..n).map(|_| T::decode(d)).collect()
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn encode(&self, e: &mut Encoder) {
        e.usize(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        let n = d.usize();
        (0..n).map(|_| T::decode(d)).collect()
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        (A::decode(d), B::decode(d))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        (A::decode(d), B::decode(d), C::decode(d))
    }
}

/// Maps are encoded in ascending key order so two equal maps built in
/// different insertion orders still produce identical bytes.
impl<K: Persist + Ord + std::hash::Hash + Eq, V: Persist> Persist for HashMap<K, V> {
    fn encode(&self, e: &mut Encoder) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        e.usize(entries.len());
        for (k, v) in entries {
            k.encode(e);
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        let n = d.usize();
        let mut m = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::decode(d);
            let v = V::decode(d);
            m.insert(k, v);
        }
        m
    }
}

impl Persist for crate::time::SimTime {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.as_nanos());
    }
    fn decode(d: &mut Decoder) -> Self {
        crate::time::SimTime::from_nanos(d.u64())
    }
}

impl Persist for crate::time::SimDuration {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.as_nanos());
    }
    fn decode(d: &mut Decoder) -> Self {
        crate::time::SimDuration::from_nanos(d.u64())
    }
}

impl Persist for crate::ids::ResourceId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.index() as u32);
    }
    fn decode(d: &mut Decoder) -> Self {
        crate::ids::ResourceId::from_index(d.u32() as usize)
    }
}

impl Persist for crate::ids::FlowId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.slot);
        e.u32(self.gen);
    }
    fn decode(d: &mut Decoder) -> Self {
        let slot = d.u32();
        let gen = d.u32();
        crate::ids::FlowId { slot, gen }
    }
}

impl Persist for crate::ids::TimerId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.slot);
        e.u32(self.gen);
    }
    fn decode(d: &mut Decoder) -> Self {
        let slot = d.u32();
        let gen = d.u32();
        crate::ids::TimerId { slot, gen }
    }
}

impl Persist for crate::ids::ActivityId {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.0);
    }
    fn decode(d: &mut Decoder) -> Self {
        crate::ids::ActivityId(d.u64())
    }
}

impl Persist for crate::ids::BatchId {
    fn encode(&self, e: &mut Encoder) {
        e.u64(self.0);
    }
    fn decode(d: &mut Decoder) -> Self {
        crate::ids::BatchId(d.u64())
    }
}

impl Persist for crate::ids::Tag {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.owner);
        e.u32(self.a);
        e.u64(self.b);
    }
    fn decode(d: &mut Decoder) -> Self {
        let owner = d.u32();
        let a = d.u32();
        let b = d.u64();
        crate::ids::Tag { owner, a, b }
    }
}

impl Persist for crate::fluid::Demand {
    fn encode(&self, e: &mut Encoder) {
        self.resource.encode(e);
        e.f64(self.weight);
    }
    fn decode(d: &mut Decoder) -> Self {
        let resource = crate::ids::ResourceId::decode(d);
        let weight = d.f64();
        crate::fluid::Demand { resource, weight }
    }
}

impl Persist for crate::fluid::ResourceKind {
    fn encode(&self, e: &mut Encoder) {
        use crate::fluid::ResourceKind::*;
        e.u8(match self {
            Cpu => 0,
            Disk => 1,
            Net => 2,
            Other => 3,
        });
    }
    fn decode(d: &mut Decoder) -> Self {
        use crate::fluid::ResourceKind::*;
        match d.u8() {
            0 => Cpu,
            1 => Disk,
            2 => Net,
            _ => Other,
        }
    }
}

impl Persist for crate::faults::FaultKind {
    fn encode(&self, e: &mut Encoder) {
        use crate::faults::FaultKind::*;
        match *self {
            NodeCrash { vm } => {
                e.u8(0);
                e.u32(vm);
            }
            NodeRejoin { vm } => {
                e.u8(1);
                e.u32(vm);
            }
            LinkDegrade { host, factor, duration } => {
                e.u8(2);
                e.u32(host);
                e.f64(factor);
                duration.encode(e);
            }
            SlowDisk { factor, duration } => {
                e.u8(3);
                e.f64(factor);
                duration.encode(e);
            }
            StragglerVm { vm, factor, duration } => {
                e.u8(4);
                e.u32(vm);
                e.f64(factor);
                duration.encode(e);
            }
            MigrationAbort => e.u8(5),
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        use crate::faults::FaultKind::*;
        use crate::time::SimDuration;
        match d.u8() {
            0 => NodeCrash { vm: d.u32() },
            1 => NodeRejoin { vm: d.u32() },
            2 => {
                let host = d.u32();
                let factor = d.f64();
                let duration = SimDuration::decode(d);
                LinkDegrade { host, factor, duration }
            }
            3 => {
                let factor = d.f64();
                let duration = SimDuration::decode(d);
                SlowDisk { factor, duration }
            }
            4 => {
                let vm = d.u32();
                let factor = d.f64();
                let duration = SimDuration::decode(d);
                StragglerVm { vm, factor, duration }
            }
            _ => MigrationAbort,
        }
    }
}

impl Persist for crate::faults::FaultEvent {
    fn encode(&self, e: &mut Encoder) {
        self.at.encode(e);
        self.kind.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        let at = crate::time::SimTime::decode(d);
        let kind = crate::faults::FaultKind::decode(d);
        crate::faults::FaultEvent { at, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Tag;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn header_round_trips() {
        let e = Encoder::new();
        let bytes = e.finish();
        assert_eq!(validate_header(&bytes), Ok(SNAPSHOT_VERSION));
        let d = Decoder::new(&bytes);
        assert!(d.is_exhausted());
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(validate_header(b"short").is_err());
        assert!(validate_header(b"NOTSNAP\0\0\0\0\0\0").is_err());
        let mut bad = Encoder::new().finish();
        bad[6] = 0xFF; // clobber the version
        assert!(validate_header(&bad).unwrap_err().contains("version"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.f64(-0.1);
        e.f64(f64::NAN);
        e.bool(true);
        e.str("vm3.vcpu");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8(), 7);
        assert_eq!(d.u32(), 0xDEAD_BEEF);
        assert_eq!(d.u64(), u64::MAX);
        assert_eq!(d.f64(), -0.1);
        assert!(d.f64().is_nan());
        assert!(d.bool());
        assert_eq!(d.str(), "vm3.vcpu");
        assert!(d.is_exhausted());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let o: Option<String> = Some("x".to_string());
        let none: Option<u32> = None;
        let dq: VecDeque<u32> = [9, 8].into_iter().collect();
        let pair: (u32, SimTime) = (5, SimTime::from_secs(2));
        let mut e = Encoder::new();
        v.encode(&mut e);
        o.encode(&mut e);
        none.encode(&mut e);
        dq.encode(&mut e);
        pair.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(Vec::<u64>::decode(&mut d), v);
        assert_eq!(Option::<String>::decode(&mut d), o);
        assert_eq!(Option::<u32>::decode(&mut d), none);
        assert_eq!(VecDeque::<u32>::decode(&mut d), dq);
        assert_eq!(<(u32, SimTime)>::decode(&mut d), pair);
        assert!(d.is_exhausted());
    }

    #[test]
    fn hashmap_encoding_is_insertion_order_independent() {
        let mut a: HashMap<u32, u64> = HashMap::new();
        let mut b: HashMap<u32, u64> = HashMap::new();
        for i in 0..100u32 {
            a.insert(i, u64::from(i) * 3);
        }
        for i in (0..100u32).rev() {
            b.insert(i, u64::from(i) * 3);
        }
        let enc = |m: &HashMap<u32, u64>| {
            let mut e = Encoder::new();
            m.encode(&mut e);
            e.finish()
        };
        assert_eq!(enc(&a), enc(&b), "sorted-key encoding is canonical");
        let bytes = enc(&a);
        let mut d = Decoder::new(&bytes);
        assert_eq!(HashMap::<u32, u64>::decode(&mut d), a);
    }

    #[test]
    fn sim_types_round_trip() {
        let mut e = Encoder::new();
        SimTime::from_nanos(123_456_789).encode(&mut e);
        SimDuration::from_millis(5).encode(&mut e);
        Tag::new(3, 9, 0xAB).encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(SimTime::decode(&mut d), SimTime::from_nanos(123_456_789));
        assert_eq!(SimDuration::decode(&mut d), SimDuration::from_millis(5));
        assert_eq!(Tag::decode(&mut d), Tag::new(3, 9, 0xAB));
    }

    #[test]
    fn fault_kinds_round_trip() {
        use crate::faults::{FaultEvent, FaultKind};
        let kinds = [
            FaultKind::NodeCrash { vm: 3 },
            FaultKind::NodeRejoin { vm: 3 },
            FaultKind::LinkDegrade { host: 1, factor: 0.25, duration: SimDuration::from_secs(2) },
            FaultKind::SlowDisk { factor: 0.5, duration: SimDuration::from_millis(300) },
            FaultKind::StragglerVm { vm: 7, factor: 0.1, duration: SimDuration::from_secs(1) },
            FaultKind::MigrationAbort,
        ];
        let events: Vec<FaultEvent> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| FaultEvent { at: SimTime::from_secs(i as u64), kind })
            .collect();
        let mut e = Encoder::new();
        events.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(Vec::<FaultEvent>::decode(&mut d), events);
    }
}
