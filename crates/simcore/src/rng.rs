//! Deterministic random-number plumbing.
//!
//! Every stochastic model in the platform draws from a stream derived from
//! one root seed, so a whole experiment is reproducible from a single
//! integer. Streams are derived by mixing the root seed with a label
//! (subsystem name) and an index (VM id, task id, ...) through SplitMix64,
//! which keeps streams statistically independent of each other regardless
//! of creation order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step; good avalanche, standard constants.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a label into a seed, one byte at a time.
fn mix_label(mut seed: u64, label: &str) -> u64 {
    for b in label.bytes() {
        seed = splitmix64(seed ^ u64::from(b));
    }
    seed
}

/// Root seed from which all simulation randomness is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootSeed(pub u64);

impl RootSeed {
    /// Derives a named sub-seed (e.g. `"migration"`, `"textgen"`).
    pub fn derive(self, label: &str) -> RootSeed {
        RootSeed(mix_label(self.0, label))
    }

    /// Derives an indexed sub-seed (e.g. per-VM, per-task).
    pub fn derive_index(self, index: u64) -> RootSeed {
        RootSeed(splitmix64(self.0 ^ index.wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// Materializes an RNG for this seed.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }

    /// Shorthand: labelled stream RNG.
    pub fn stream(self, label: &str) -> StdRng {
        self.derive(label).rng()
    }

    /// Shorthand: labelled + indexed stream RNG.
    pub fn stream_at(self, label: &str, index: u64) -> StdRng {
        self.derive(label).derive_index(index).rng()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> =
            RootSeed(42).stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u64> =
            RootSeed(42).stream("x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let a: u64 = RootSeed(42).stream("x").gen();
        let b: u64 = RootSeed(42).stream("y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_indices_different_streams() {
        let a: u64 = RootSeed(42).stream_at("vm", 0).gen();
        let b: u64 = RootSeed(42).stream_at("vm", 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_is_order_independent_of_other_streams() {
        // Deriving "b" is unaffected by whether "a" was derived before.
        let s1 = RootSeed(7).derive("b");
        let _ = RootSeed(7).derive("a");
        let s2 = RootSeed(7).derive("b");
        assert_eq!(s1, s2);
    }
}
