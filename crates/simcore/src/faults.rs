//! Scriptable, deterministic fault injection.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — *what* goes wrong and
//! *when*, in simulated time. The plan itself is pure data: the platform
//! driver (in the `vhadoop` crate) arms one ordinary engine timer per event
//! (owner [`crate::owners::FAULT`]), so an injected run is still a pure
//! function of configuration + seed and replays byte-identically.
//!
//! Plans are either scripted by hand through the builder-style
//! [`FaultPlan::at`], or generated from a [`FaultProfile`] with
//! [`FaultPlan::random`] for chaos/property testing. Random generation never
//! crashes VM 0 (the namenode/master) and never crashes the same VM twice,
//! so a caller that keeps `max_crashes < replication` can assert that no
//! acknowledged block is ever lost.

use crate::rng::RootSeed;
use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// One kind of injected fault.
///
/// Crash/rejoin faults are permanent state changes; the throttle faults
/// (`LinkDegrade`, `SlowDisk`, `StragglerVm`) carry a `duration` after which
/// the driver restores the scaled capacity, and a multiplicative `factor`
/// in `(0, 1]` (a factor near zero models a partition / a failed device).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A VM dies: its datanode drops out of HDFS (triggering re-replication)
    /// and its tasktracker stops heartbeating (detected after a timeout).
    NodeCrash {
        /// The VM to crash (VM 0 — the master/namenode — is refused).
        vm: u32,
    },
    /// A previously crashed VM rejoins as an empty datanode + idle tracker.
    NodeRejoin {
        /// The VM to bring back.
        vm: u32,
    },
    /// One host's NIC capacity is multiplied by `factor` for `duration`
    /// (a factor near zero partitions the host from the network).
    LinkDegrade {
        /// The host whose uplink degrades.
        host: u32,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// The shared NFS disk slows by `factor` for `duration`.
    SlowDisk {
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimDuration,
    },
    /// One VM's VCPU is throttled by `factor` for `duration` — the classic
    /// straggler that speculative execution exists to absorb.
    StragglerVm {
        /// The VM to throttle.
        vm: u32,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
        /// How long the throttle lasts.
        duration: SimDuration,
    },
    /// Abort every live-migration transfer currently in flight; the
    /// migration manager retries each aborted VM with capped exponential
    /// backoff. A no-op when no migration is active.
    MigrationAbort,
}

/// A [`FaultKind`] pinned to an instant of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// Events may be added in any order; the plan keeps them sorted by instant
/// at insertion time (stable for ties, so scripted same-instant faults
/// apply in insertion order) and [`FaultPlan::events`] yields them in
/// injection order directly — no per-consumer re-sort.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Invariant: non-decreasing by `at` (maintained by [`FaultPlan::push`]).
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: schedules `kind` at `at` and returns the plan.
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Schedules `kind` at `at`, keeping the plan sorted by instant.
    /// Same-instant events stay in insertion order (the new event goes
    /// after existing ties, matching the former stable sort).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in injection order (sorted by instant;
    /// same-instant events in insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The scheduled events in injection order, as an owned vec. The plan
    /// is already sorted at insertion time, so this is just a clone;
    /// prefer borrowing [`FaultPlan::events`].
    pub fn sorted(&self) -> Vec<FaultEvent> {
        self.events.clone()
    }

    /// Generates a random plan from `profile`, deterministically from
    /// `seed`: same profile + seed, same plan, independent of call order.
    ///
    /// Guarantees, so property tests can assert invariants:
    /// * VM 0 is never crashed (it hosts the namenode/JobTracker master);
    /// * no VM is crashed twice, and at most `max_crashes` crash in total
    ///   (keep this below the HDFS replication factor to rule out block
    ///   loss);
    /// * no [`FaultKind::NodeRejoin`] is generated (rejoined nodes would
    ///   make the crash budget unsound); script rejoins explicitly;
    /// * every event lands strictly inside `(0, horizon)`, factors lie in
    ///   `[0.05, 0.6]`, and throttle durations within `horizon / 8` —
    ///   faults perturb the run rather than dominating it.
    pub fn random(profile: &FaultProfile, seed: RootSeed) -> FaultPlan {
        let mut rng = seed.stream("fault-plan");
        let mut plan = FaultPlan::new();
        if profile.vms < 2 || profile.hosts == 0 || profile.max_events == 0 {
            return plan;
        }
        let n = rng.gen_range(1..=profile.max_events);
        let mut crashed: Vec<u32> = Vec::new();
        let horizon_ns = profile.horizon.as_nanos().max(8);
        for _ in 0..n {
            let at = SimTime::ZERO + SimDuration::from_nanos(rng.gen_range(1..horizon_ns));
            let factor = rng.gen_range(0.05..0.6);
            let duration = SimDuration::from_nanos(rng.gen_range(1..=horizon_ns / 8));
            // Draw the kind, skipping exhausted or disallowed ones.
            let kind = match rng.gen_range(0u32..5) {
                0 if (crashed.len() as u32) < profile.max_crashes => {
                    // Candidate workers: every VM but 0, minus prior crashes.
                    let vm = rng.gen_range(1..profile.vms);
                    if crashed.contains(&vm) {
                        continue;
                    }
                    crashed.push(vm);
                    FaultKind::NodeCrash { vm }
                }
                1 => FaultKind::LinkDegrade {
                    host: rng.gen_range(0..profile.hosts),
                    factor,
                    duration,
                },
                2 => FaultKind::SlowDisk { factor, duration },
                3 => FaultKind::StragglerVm { vm: rng.gen_range(1..profile.vms), factor, duration },
                4 if profile.allow_migration_abort => FaultKind::MigrationAbort,
                _ => continue,
            };
            plan.push(at, kind);
        }
        plan
    }
}

/// Bounds for [`FaultPlan::random`]: the cluster shape and how hard the
/// generated chaos may hit it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Number of VMs in the target cluster (VM ids `0..vms`).
    pub vms: u32,
    /// Number of hosts (host ids `0..hosts`).
    pub hosts: u32,
    /// Events land strictly inside `(0, horizon)` of simulated time.
    pub horizon: SimDuration,
    /// Upper bound on generated events (at least 1 is always generated).
    pub max_events: u32,
    /// Upper bound on distinct crashed VMs. Keep below the HDFS
    /// replication factor to guarantee no block loses its last replica.
    pub max_crashes: u32,
    /// Whether [`FaultKind::MigrationAbort`] may be generated (pointless —
    /// a no-op — unless the scenario also migrates).
    pub allow_migration_abort: bool,
}

impl FaultProfile {
    /// A moderate default profile for a `vms`-VM, `hosts`-host cluster:
    /// 20 s horizon, at most 6 events and 2 crashes, no migration aborts.
    pub fn new(vms: u32, hosts: u32) -> Self {
        FaultProfile {
            vms,
            hosts,
            horizon: SimDuration::from_secs(20),
            max_events: 6,
            max_crashes: 2,
            allow_migration_abort: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn builder_collects_and_sorts() {
        let plan = FaultPlan::new()
            .at(secs(5), FaultKind::MigrationAbort)
            .at(secs(1), FaultKind::NodeCrash { vm: 3 })
            .at(secs(5), FaultKind::SlowDisk { factor: 0.5, duration: SimDuration::from_secs(2) });
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let sorted = plan.sorted();
        assert_eq!(sorted[0].kind, FaultKind::NodeCrash { vm: 3 });
        // Stable: same-instant events keep insertion order.
        assert_eq!(sorted[1].kind, FaultKind::MigrationAbort);
        assert_eq!(plan.events().len(), 3);
    }

    #[test]
    fn random_is_deterministic() {
        let profile = FaultProfile::new(8, 2);
        let a = FaultPlan::random(&profile, RootSeed(7));
        let b = FaultPlan::random(&profile, RootSeed(7));
        assert_eq!(a, b);
        let c = FaultPlan::random(&profile, RootSeed(8));
        assert_ne!(a, c, "different seeds should differ (overwhelmingly likely)");
    }

    #[test]
    fn random_respects_bounds() {
        for seed in 0..50 {
            let profile = FaultProfile::new(6, 2);
            let plan = FaultPlan::random(&profile, RootSeed(seed));
            assert!(plan.len() <= profile.max_events as usize);
            let mut crashes = Vec::new();
            for ev in plan.events() {
                assert!(ev.at > SimTime::ZERO);
                assert!(ev.at < SimTime::ZERO + profile.horizon);
                match ev.kind {
                    FaultKind::NodeCrash { vm } => {
                        assert!(vm >= 1 && vm < profile.vms, "crash targets a worker VM");
                        assert!(!crashes.contains(&vm), "no VM crashes twice");
                        crashes.push(vm);
                    }
                    FaultKind::NodeRejoin { .. } => panic!("random plans never rejoin"),
                    FaultKind::MigrationAbort => panic!("aborts disabled in this profile"),
                    FaultKind::LinkDegrade { host, factor, .. } => {
                        assert!(host < profile.hosts);
                        assert!((0.05..0.6).contains(&factor));
                    }
                    FaultKind::SlowDisk { factor, .. } | FaultKind::StragglerVm { factor, .. } => {
                        assert!((0.05..0.6).contains(&factor));
                    }
                }
            }
            assert!(crashes.len() as u32 <= profile.max_crashes);
        }
    }

    #[test]
    fn random_on_degenerate_profiles_is_empty() {
        let mut p = FaultProfile::new(1, 2); // no worker to target
        assert!(FaultPlan::random(&p, RootSeed(1)).is_empty());
        p = FaultProfile::new(8, 2);
        p.max_events = 0;
        assert!(FaultPlan::random(&p, RootSeed(1)).is_empty());
    }

    #[test]
    fn abort_generation_is_gated() {
        let mut profile = FaultProfile::new(8, 2);
        profile.allow_migration_abort = true;
        profile.max_events = 64;
        let found = (0..20).any(|s| {
            FaultPlan::random(&profile, RootSeed(s))
                .events()
                .iter()
                .any(|e| e.kind == FaultKind::MigrationAbort)
        });
        assert!(found, "with the gate open, aborts do get generated");
    }
}
