//! Simulated time.
//!
//! All simulation time is integer nanoseconds wrapped in [`SimTime`] (an
//! instant) and [`SimDuration`] (a span). Integer time keeps event ordering
//! exact and the simulation deterministic across platforms; floating-point
//! seconds are only used at the model boundary (rates, work amounts) and are
//! converted with explicit rounding.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Builds an instant from floating-point seconds, rounding to the
    /// nearest nanosecond and saturating at the representable range.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_nanos(s))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span; used as "forever".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Builds a span from floating-point seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_nanos(s))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span expressed in floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating sum of two spans.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        if s > 0.0 {
            u64::MAX
        } else {
            0
        }
    } else {
        let ns = s * NANOS_PER_SEC as f64;
        if ns >= u64::MAX as f64 {
            u64::MAX
        } else {
            ns.round() as u64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.0}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_millis(250);
        assert_eq!(d.as_secs_f64(), 0.25);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        let d = SimDuration::from_secs(1) - SimDuration::from_secs(2);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn elapsed_since() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(5);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(3));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
    }
}
