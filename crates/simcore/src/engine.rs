//! Discrete-event engine driving the fluid model.
//!
//! Client subsystems describe work as **activities**: chains of [`Step`]s
//! that run sequentially (a fluid flow, or a pure latency delay). Chains can
//! be AND-joined into **batches**. The engine owns the clock, runs the fluid
//! reallocation whenever the flow set changes, and surfaces completions as
//! [`Wakeup`]s carrying the client's routing [`Tag`].
//!
//! The processing loop is pull-based: callers repeatedly invoke
//! [`Engine::next_wakeup`], dispatch on the tag, and start new activities.
//! Everything is single-threaded and deterministic.

use crate::fluid::{Demand, FluidNet, FluidStats, ResourceKind};
use crate::ids::{ActivityId, BatchId, FlowId, ResourceId, Tag, TimerId};
use crate::persist::{Decoder, Encoder, Persist};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Name, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// One stage of an activity chain.
#[derive(Debug, Clone)]
pub enum Step {
    /// Drain `work` units through `demands` under max-min sharing.
    Flow {
        /// Resources consumed, with weights.
        demands: Vec<Demand>,
        /// Amount of work (bytes, cycles, ...).
        work: f64,
    },
    /// Pure latency: occupy no resource for a fixed span.
    Delay(SimDuration),
}

/// An ordered list of steps; the unit of work submission.
#[derive(Debug, Clone, Default)]
pub struct ChainSpec {
    /// Steps executed front to back.
    pub steps: Vec<Step>,
}

impl ChainSpec {
    /// Empty chain (completes immediately when started).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a flow step.
    pub fn flow(mut self, demands: Vec<Demand>, work: f64) -> Self {
        self.steps.push(Step::Flow { demands, work });
        self
    }

    /// Appends a single-resource unit-weight flow step.
    pub fn on(self, resource: ResourceId, work: f64) -> Self {
        self.flow(vec![Demand::unit(resource)], work)
    }

    /// Appends a latency step.
    pub fn delay(mut self, d: SimDuration) -> Self {
        self.steps.push(Step::Delay(d));
        self
    }

    /// Concatenates another chain's steps after this one's.
    pub fn then(mut self, mut other: ChainSpec) -> Self {
        self.steps.append(&mut other.steps);
        self
    }

    /// True when the chain has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A completion surfaced to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wakeup {
    /// A timer fired.
    Timer {
        /// Handle returned by `set_timer_*`.
        id: TimerId,
        /// Client routing tag.
        tag: Tag,
    },
    /// An activity (chain) ran all its steps.
    Activity {
        /// Handle returned by `start_chain`/`start_batch`.
        id: ActivityId,
        /// Client routing tag.
        tag: Tag,
        /// Batch this chain belonged to, if any.
        batch: Option<BatchId>,
    },
    /// Every member of a batch completed (or was cancelled).
    Batch {
        /// Handle returned by `start_batch`.
        id: BatchId,
        /// Client routing tag.
        tag: Tag,
    },
}

impl Wakeup {
    /// The routing tag regardless of variant.
    pub fn tag(&self) -> Tag {
        match self {
            Wakeup::Timer { tag, .. }
            | Wakeup::Activity { tag, .. }
            | Wakeup::Batch { tag, .. } => *tag,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    FluidWake { epoch: u64 },
    Timer { id: TimerId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    ev: Ev,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
enum Current {
    Idle,
    Flow(FlowId),
    Delay(TimerId),
}

#[derive(Debug)]
struct Activity {
    remaining: VecDeque<Step>,
    current: Current,
    tag: Tag,
    batch: Option<BatchId>,
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    User { tag: Tag },
    ChainDelay { activity: ActivityId },
}

#[derive(Debug)]
struct Batch {
    tag: Tag,
    pending: usize,
}

/// Cumulative kernel-level work counters exposed by
/// [`Engine::kernel_stats`] — the fluid solver's [`FluidStats`] plus event
/// queue health. The `simbench` harness and the check.sh perf stage pin
/// ceilings on these; they are machine-speed independent.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Fluid reallocation passes that found dirty state.
    pub reallocations: u64,
    /// Flows re-solved, summed over all reallocations.
    pub flows_touched: u64,
    /// Resources visited, summed over all reallocations.
    pub resources_touched: u64,
    /// Mutations absorbed by coalesced reallocation passes (batched event
    /// application; see [`FluidStats::batch_applied`]).
    pub batch_applied: u64,
    /// Components solved on the fluid worker pool (thread-dependent).
    pub components_solved_parallel: u64,
    /// p50 of re-solved component flow counts (lifetime histogram).
    pub comp_size_p50: u64,
    /// p99 of re-solved component flow counts.
    pub comp_size_p99: u64,
    /// Largest component ever re-solved (the parallel speedup ceiling).
    pub comp_size_max: u64,
    /// Current completion-index heap length (live + stale).
    pub completion_heap_len: usize,
    /// Current event heap length (live + tombstoned entries).
    pub event_heap_len: usize,
    /// Cancelled-timer tombstones currently in the event heap.
    pub dead_timers: usize,
    /// Flow-arena slot count (live + free — occupancy is
    /// `flows_touched`-independent arena footprint).
    pub flow_arena_slots: usize,
    /// Timer-arena slot count (live + free).
    pub timer_arena_slots: usize,
    /// Total wakeups delivered so far.
    pub wakeups: u64,
}

/// Tombstone compaction floor: never rebuild the event heap for fewer dead
/// entries than this (rebuilds are O(heap) — only worth it at scale).
/// Compaction triggers at `dead > max(MIN, live/4)`: proportional to the
/// live population, so a 16k-VM heap is not rebuilt every 64 cancellations.
const DEAD_TIMER_COMPACT_MIN: usize = 64;

/// One slot of the timer arena: the current generation plus the armed
/// timer, if any. `kind == None` means the slot is on the free list.
#[derive(Debug, Clone, Copy)]
struct TimerSlot {
    gen: u32,
    kind: Option<TimerKind>,
}

/// The simulation engine. See the module docs for the programming model.
#[derive(Debug)]
pub struct Engine {
    now: SimTime,
    fluid: FluidNet,
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
    epoch: u64,
    flow_owner: HashMap<FlowId, ActivityId>,
    activities: HashMap<ActivityId, Activity>,
    next_activity: u64,
    /// Timer arena: dense slots with generation-stamped handles and a free
    /// list, replacing the former `HashMap<TimerId, TimerKind>` + counter
    /// (no hashing on the hot arm/fire path, stable memory at scale).
    timer_slots: Vec<TimerSlot>,
    timer_free: Vec<u32>,
    timer_live: usize,
    batches: HashMap<BatchId, Batch>,
    next_batch: u64,
    out: VecDeque<(SimTime, Wakeup)>,
    /// Total wakeups delivered; useful for tests and progress telemetry.
    wakeups_delivered: u64,
    /// Cancelled timers whose heap entry has not yet popped or been
    /// compacted away.
    dead_timers: usize,
    /// Interned counter names for [`Engine::trace_kernel_counters`],
    /// created on first use.
    kernel_counter_names: Option<[Name; 5]>,
    tracer: Tracer,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Fresh engine at t = 0 with an empty fluid network.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            fluid: FluidNet::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            epoch: 0,
            flow_owner: HashMap::new(),
            activities: HashMap::new(),
            next_activity: 0,
            timer_slots: Vec::new(),
            timer_free: Vec::new(),
            timer_live: 0,
            batches: HashMap::new(),
            next_batch: 0,
            out: VecDeque::new(),
            wakeups_delivered: 0,
            dead_timers: 0,
            kernel_counter_names: None,
            tracer: Tracer::new(),
        }
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Registers a fluid resource (see [`FluidNet::add_resource`]).
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        kind: ResourceKind,
        capacity: f64,
    ) -> ResourceId {
        self.fluid.add_resource(name, kind, capacity)
    }

    /// Read access to the fluid network (utilization queries, monitors).
    pub fn fluid(&self) -> &FluidNet {
        &self.fluid
    }

    /// Changes a resource's capacity from this instant on.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        self.sync_fluid_clock();
        self.fluid.set_capacity(r, capacity);
    }

    /// Count of in-flight activities.
    pub fn active_activities(&self) -> usize {
        self.activities.len()
    }

    /// Total wakeups delivered so far.
    pub fn wakeups_delivered(&self) -> u64 {
        self.wakeups_delivered
    }

    /// Current event-heap length (live entries + not-yet-compacted
    /// tombstones); regression tests pin this after mass cancellation.
    pub fn event_heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Snapshot of the kernel work counters (see [`KernelStats`]).
    pub fn kernel_stats(&self) -> KernelStats {
        let FluidStats {
            reallocations,
            flows_touched,
            resources_touched,
            batch_applied,
            components_solved_parallel,
            comp_size_p50,
            comp_size_p99,
            comp_size_max,
            completion_heap_len,
        } = self.fluid.stats();
        KernelStats {
            reallocations,
            flows_touched,
            resources_touched,
            batch_applied,
            components_solved_parallel,
            comp_size_p50,
            comp_size_p99,
            comp_size_max,
            completion_heap_len,
            event_heap_len: self.heap.len(),
            dead_timers: self.dead_timers,
            flow_arena_slots: self.fluid.flow_arena_slots(),
            timer_arena_slots: self.timer_slots.len(),
            wakeups: self.wakeups_delivered,
        }
    }

    /// Sets the fluid solver's worker-pool width (see
    /// [`FluidNet::set_threads`]); 1 = sequential. Rates and wakeups are
    /// bit-identical at any width.
    pub fn set_solver_threads(&mut self, threads: usize) {
        self.fluid.set_threads(threads);
    }

    /// Current fluid solver worker-pool width.
    pub fn solver_threads(&self) -> usize {
        self.fluid.threads()
    }

    /// Forces every fluid reallocation to re-solve the whole network (the
    /// pre-incremental global algorithm). Output-identical either way; the
    /// bench harness uses it as the counter/wall-clock baseline.
    pub fn set_full_reallocate(&mut self, on: bool) {
        self.fluid.set_full_solve(on);
    }

    // ----- tracing --------------------------------------------------------

    /// Read access to the tracer (exports, queries).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer (enable/disable, interning).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Records a complete span ending at the current instant. No-op while
    /// tracing is disabled.
    pub fn trace_span(
        &mut self,
        cat: &'static str,
        name: &'static str,
        track: u32,
        start: SimTime,
        args: &[(&'static str, f64)],
    ) {
        self.tracer.span(cat, name, track, start, self.now, args);
    }

    /// Records a counter sample at the current instant under a pre-interned
    /// name. No-op while tracing is disabled.
    pub fn trace_counter(&mut self, name: Name, value: f64) {
        self.tracer.counter(name, self.now, value);
    }

    /// Emits the kernel work counters (`engine.reallocations`,
    /// `engine.flows_touched`, `engine.heap_len`, `engine.batch_applied`,
    /// `engine.comp_p99`) as trace counter samples at the current instant.
    /// Deliberately *not* called by the engine itself — monitored runs pin
    /// exact counter counts — so harnesses that want the kernel trajectory
    /// (e.g. `simbench`) call this explicitly at their own sampling points.
    /// No-op while tracing is disabled.
    pub fn trace_kernel_counters(&mut self) {
        let names = *self.kernel_counter_names.get_or_insert_with(|| {
            [
                self.tracer.intern("engine.reallocations"),
                self.tracer.intern("engine.flows_touched"),
                self.tracer.intern("engine.heap_len"),
                self.tracer.intern("engine.batch_applied"),
                self.tracer.intern("engine.comp_p99"),
            ]
        });
        let stats = self.kernel_stats();
        self.tracer.counter(names[0], self.now, stats.reallocations as f64);
        self.tracer.counter(names[1], self.now, stats.flows_touched as f64);
        self.tracer.counter(names[2], self.now, stats.event_heap_len as f64);
        self.tracer.counter(names[3], self.now, stats.batch_applied as f64);
        self.tracer.counter(names[4], self.now, stats.comp_size_p99 as f64);
    }

    // ----- timers ---------------------------------------------------------

    /// Fires a [`Wakeup::Timer`] at the absolute instant `at` (clamped to
    /// "now" if already past).
    pub fn set_timer_at(&mut self, at: SimTime, tag: Tag) -> TimerId {
        let at = at.max(self.now);
        let id = self.alloc_timer(TimerKind::User { tag });
        self.push_entry(at, Ev::Timer { id });
        id
    }

    /// Fires a [`Wakeup::Timer`] after `d`.
    pub fn set_timer_in(&mut self, d: SimDuration, tag: Tag) -> TimerId {
        self.set_timer_at(self.now + d, tag)
    }

    /// Cancels a pending timer. Returns `false` if it already fired or was
    /// cancelled.
    ///
    /// The heap entry becomes a tombstone; once tombstones outnumber live
    /// timers (fault/timeout churn), the heap is rebuilt without them, so
    /// mass cancellation cannot grow the event queue without bound.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        let cancelled = self.free_timer(id).is_some();
        if cancelled {
            self.note_dead_timer();
        }
        cancelled
    }

    /// Allocates a timer-arena slot holding `kind` and returns its
    /// generation-stamped handle.
    fn alloc_timer(&mut self, kind: TimerKind) -> TimerId {
        self.timer_live += 1;
        if let Some(slot) = self.timer_free.pop() {
            let s = &mut self.timer_slots[slot as usize];
            debug_assert!(s.kind.is_none(), "free list held a live slot");
            s.kind = Some(kind);
            TimerId { slot, gen: s.gen }
        } else {
            let slot = self.timer_slots.len() as u32;
            self.timer_slots.push(TimerSlot { gen: 0, kind: Some(kind) });
            TimerId { slot, gen: 0 }
        }
    }

    /// Frees the slot behind `id` if the handle is still current, returning
    /// the armed kind. The generation bump makes every outstanding copy of
    /// the handle — including the not-yet-popped heap entry — stale, so a
    /// recycled slot can never be reached through an old id (ABA safety).
    fn free_timer(&mut self, id: TimerId) -> Option<TimerKind> {
        let s = self.timer_slots.get_mut(id.slot as usize)?;
        if s.gen != id.gen || s.kind.is_none() {
            return None;
        }
        let kind = s.kind.take();
        s.gen = s.gen.wrapping_add(1);
        self.timer_free.push(id.slot);
        self.timer_live -= 1;
        kind
    }

    /// True while the timer behind `id` is still armed.
    fn timer_is_live(&self, id: TimerId) -> bool {
        self.timer_slots.get(id.slot as usize).is_some_and(|s| s.gen == id.gen && s.kind.is_some())
    }

    /// Accounts one new tombstone and compacts the event heap when dead
    /// entries outgrow `max(DEAD_TIMER_COMPACT_MIN, live/4)` — proportional
    /// to the live population so large heaps are not rebuilt constantly,
    /// floored so small ones are not rebuilt pointlessly.
    fn note_dead_timer(&mut self) {
        self.dead_timers += 1;
        if self.dead_timers <= DEAD_TIMER_COMPACT_MIN.max(self.timer_live / 4) {
            return;
        }
        let epoch = self.epoch;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|&Reverse(e)| match e.ev {
            Ev::Timer { id } => self.timer_is_live(id),
            Ev::FluidWake { epoch: e } => e == epoch,
        });
        self.heap = BinaryHeap::from(entries);
        self.dead_timers = 0;
    }

    // ----- activities -----------------------------------------------------

    /// Starts a chain. An empty chain completes at the current instant.
    pub fn start_chain(&mut self, spec: ChainSpec, tag: Tag) -> ActivityId {
        self.spawn_chain(spec, tag, None)
    }

    /// Starts a single fluid flow as a one-step chain.
    pub fn start_flow(&mut self, demands: Vec<Demand>, work: f64, tag: Tag) -> ActivityId {
        self.start_chain(ChainSpec::new().flow(demands, work), tag)
    }

    /// Starts `members` concurrently and emits a [`Wakeup::Batch`] with
    /// `batch_tag` once every member has completed (each member also emits
    /// its own [`Wakeup::Activity`]). An empty batch completes immediately.
    pub fn start_batch(&mut self, members: Vec<(ChainSpec, Tag)>, batch_tag: Tag) -> BatchId {
        let id = BatchId(self.next_batch);
        self.next_batch += 1;
        if members.is_empty() {
            self.out.push_back((self.now, Wakeup::Batch { id, tag: batch_tag }));
            return id;
        }
        self.batches.insert(id, Batch { tag: batch_tag, pending: members.len() });
        for (spec, tag) in members {
            self.spawn_chain(spec, tag, Some(id));
        }
        id
    }

    /// Cancels an in-flight activity, dropping its remaining steps. A
    /// cancelled batch member counts as completed for the join (speculative
    ///-execution semantics: killing the loser must not wedge the job).
    /// Returns `false` for unknown/finished activities.
    pub fn cancel_activity(&mut self, id: ActivityId) -> bool {
        let Some(act) = self.activities.remove(&id) else {
            return false;
        };
        match act.current {
            Current::Flow(f) => {
                // Only mark dirty: the reallocation is coalesced with any
                // other pending mutations at the next `next_wakeup` pass
                // (batched event application).
                self.sync_fluid_clock();
                self.fluid.remove_flow(f);
                self.flow_owner.remove(&f);
            }
            Current::Delay(t) => {
                if self.free_timer(t).is_some() {
                    self.note_dead_timer();
                }
            }
            Current::Idle => {}
        }
        if let Some(b) = act.batch {
            self.batch_member_done(b);
        }
        true
    }

    /// True if `id` is still running.
    pub fn is_active(&self, id: ActivityId) -> bool {
        self.activities.contains_key(&id)
    }

    // ----- main loop ------------------------------------------------------

    /// Advances the simulation to the next client-visible completion and
    /// returns it, or `None` when nothing remains scheduled.
    pub fn next_wakeup(&mut self) -> Option<(SimTime, Wakeup)> {
        loop {
            if let Some((t, w)) = self.out.pop_front() {
                self.wakeups_delivered += 1;
                return Some((t, w));
            }
            // Client calls may have dirtied the allocation since the last
            // pass; refresh before consulting the heap.
            self.refresh_fluid();

            let Reverse(entry) = self.heap.pop()?;
            debug_assert!(entry.time >= self.now, "event heap went backwards");
            match entry.ev {
                Ev::Timer { id } => {
                    let Some(kind) = self.free_timer(id) else {
                        // Tombstone of a cancelled timer drained naturally.
                        self.dead_timers = self.dead_timers.saturating_sub(1);
                        continue;
                    };
                    self.now = entry.time;
                    match kind {
                        TimerKind::User { tag } => {
                            self.out.push_back((self.now, Wakeup::Timer { id, tag }));
                        }
                        TimerKind::ChainDelay { activity } => {
                            self.step_done(activity);
                        }
                    }
                }
                Ev::FluidWake { epoch } => {
                    if epoch != self.epoch {
                        continue; // stale completion estimate
                    }
                    self.now = entry.time;
                    self.fluid.advance_to(self.now);
                    let finished = self.fluid.take_finished();
                    if finished.is_empty() {
                        // Accumulated floating-point error left a sliver of
                        // work: re-estimate and wake again (1 ns later at
                        // worst).
                        self.epoch += 1;
                        if let Some(t) = self.fluid.earliest_completion() {
                            let epoch = self.epoch;
                            let t = t.max(self.now + crate::time::SimDuration::from_nanos(1));
                            self.push_entry(t, Ev::FluidWake { epoch });
                        }
                        continue;
                    }
                    for fin in finished {
                        let act = self
                            .flow_owner
                            .remove(&fin.id)
                            .expect("finished flow must belong to an activity");
                        self.step_done(act);
                    }
                    // No refresh here: every mutation the completions above
                    // caused (chains advancing into new flows, removals) is
                    // applied in one coalesced pass at the top of the loop.
                }
            }
        }
    }

    /// Drains the simulation until no events remain; returns the number of
    /// wakeups discarded. Useful in tests and fire-and-forget phases.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut n = 0;
        while self.next_wakeup().is_some() {
            n += 1;
        }
        n
    }

    // ----- persistence (DESIGN.md §16) ------------------------------------

    /// Compacts every lazily-deferred structure: cancelled-timer tombstones
    /// in the event heap, stale fluid-wake entries of superseded epochs,
    /// and the fluid completion index. Two byte-identical simulation states
    /// then encode to byte-identical snapshots regardless of how much
    /// garbage each happened to accumulate. Observable behavior is
    /// unchanged — all removed entries would have been skipped on pop.
    pub fn canonicalize(&mut self) {
        let epoch = self.epoch;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|&Reverse(en)| match en.ev {
            Ev::Timer { id } => self.timer_is_live(id),
            Ev::FluidWake { epoch: e } => e == epoch,
        });
        self.heap = BinaryHeap::from(entries);
        self.dead_timers = 0;
        self.fluid.canonicalize();
    }

    /// Appends the complete engine state — clock, fluid network, event
    /// heap, activities, timers, batches, pending wakeups, and tracer — to
    /// `e`, canonicalizing first. Heaps are written as sorted vectors and
    /// maps in ascending key order, so equal states produce equal bytes.
    pub fn encode_state(&mut self, e: &mut Encoder) {
        self.canonicalize();
        self.now.encode(e);
        self.fluid.encode_state(e);

        let mut entries: Vec<Entry> = self.heap.iter().map(|&Reverse(en)| en).collect();
        entries.sort_unstable();
        e.usize(entries.len());
        for en in entries {
            en.time.encode(e);
            e.u64(en.seq);
            match en.ev {
                Ev::FluidWake { epoch } => {
                    e.u8(0);
                    e.u64(epoch);
                }
                Ev::Timer { id } => {
                    e.u8(1);
                    id.encode(e);
                }
            }
        }
        e.u64(self.seq);
        e.u64(self.epoch);
        self.flow_owner.encode(e);

        let mut acts: Vec<(&ActivityId, &Activity)> = self.activities.iter().collect();
        acts.sort_by_key(|(id, _)| **id);
        e.usize(acts.len());
        for (id, a) in acts {
            id.encode(e);
            e.usize(a.remaining.len());
            for s in &a.remaining {
                match s {
                    Step::Flow { demands, work } => {
                        e.u8(0);
                        demands.encode(e);
                        e.f64(*work);
                    }
                    Step::Delay(dur) => {
                        e.u8(1);
                        dur.encode(e);
                    }
                }
            }
            match a.current {
                Current::Idle => e.u8(0),
                Current::Flow(f) => {
                    e.u8(1);
                    f.encode(e);
                }
                Current::Delay(t) => {
                    e.u8(2);
                    t.encode(e);
                }
            }
            a.tag.encode(e);
            a.batch.encode(e);
        }
        e.u64(self.next_activity);

        e.usize(self.timer_slots.len());
        for s in &self.timer_slots {
            e.u32(s.gen);
            match s.kind {
                None => e.u8(0),
                Some(TimerKind::User { tag }) => {
                    e.u8(1);
                    tag.encode(e);
                }
                Some(TimerKind::ChainDelay { activity }) => {
                    e.u8(2);
                    activity.encode(e);
                }
            }
        }
        e.usize(self.timer_free.len());
        for &f in &self.timer_free {
            e.u32(f);
        }

        let mut bs: Vec<(&BatchId, &Batch)> = self.batches.iter().collect();
        bs.sort_by_key(|(id, _)| **id);
        e.usize(bs.len());
        for (id, b) in bs {
            id.encode(e);
            b.tag.encode(e);
            e.usize(b.pending);
        }
        e.u64(self.next_batch);

        e.usize(self.out.len());
        for (t, w) in &self.out {
            t.encode(e);
            match *w {
                Wakeup::Timer { id, tag } => {
                    e.u8(0);
                    id.encode(e);
                    tag.encode(e);
                }
                Wakeup::Activity { id, tag, batch } => {
                    e.u8(1);
                    id.encode(e);
                    tag.encode(e);
                    batch.encode(e);
                }
                Wakeup::Batch { id, tag } => {
                    e.u8(2);
                    id.encode(e);
                    tag.encode(e);
                }
            }
        }
        e.u64(self.wakeups_delivered);
        match self.kernel_counter_names {
            None => e.u8(0),
            Some(names) => {
                e.u8(1);
                for n in names {
                    n.encode(e);
                }
            }
        }
        self.tracer.encode_state(e);
    }

    /// Rebuilds an engine from bytes written by [`Engine::encode_state`].
    /// The rebuilt engine delivers the exact same wakeup sequence as the
    /// original: heap entries keep their `(time, seq)` total order, so pop
    /// order is independent of the heap's internal array layout.
    pub fn decode_state(d: &mut Decoder) -> Engine {
        let now = SimTime::decode(d);
        let fluid = FluidNet::decode_state(d);

        let n_entries = d.usize();
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let time = SimTime::decode(d);
            let seq = d.u64();
            let ev = match d.u8() {
                0 => Ev::FluidWake { epoch: d.u64() },
                _ => Ev::Timer { id: TimerId::decode(d) },
            };
            entries.push(Reverse(Entry { time, seq, ev }));
        }
        let heap = BinaryHeap::from(entries);
        let seq = d.u64();
        let epoch = d.u64();
        let flow_owner = HashMap::<FlowId, ActivityId>::decode(d);

        let n_acts = d.usize();
        let mut activities = HashMap::with_capacity(n_acts);
        for _ in 0..n_acts {
            let id = ActivityId::decode(d);
            let n_steps = d.usize();
            let mut remaining = VecDeque::with_capacity(n_steps);
            for _ in 0..n_steps {
                remaining.push_back(match d.u8() {
                    0 => {
                        let demands = Vec::<Demand>::decode(d);
                        let work = d.f64();
                        Step::Flow { demands, work }
                    }
                    _ => Step::Delay(SimDuration::decode(d)),
                });
            }
            let current = match d.u8() {
                0 => Current::Idle,
                1 => Current::Flow(FlowId::decode(d)),
                _ => Current::Delay(TimerId::decode(d)),
            };
            let tag = Tag::decode(d);
            let batch = Option::<BatchId>::decode(d);
            activities.insert(id, Activity { remaining, current, tag, batch });
        }
        let next_activity = d.u64();

        let n_slots = d.usize();
        let mut timer_slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let gen = d.u32();
            let kind = match d.u8() {
                0 => None,
                1 => Some(TimerKind::User { tag: Tag::decode(d) }),
                _ => Some(TimerKind::ChainDelay { activity: ActivityId::decode(d) }),
            };
            timer_slots.push(TimerSlot { gen, kind });
        }
        let n_free = d.usize();
        let mut timer_free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            timer_free.push(d.u32());
        }
        let timer_live = timer_slots.iter().filter(|s| s.kind.is_some()).count();

        let n_batches = d.usize();
        let mut batches = HashMap::with_capacity(n_batches);
        for _ in 0..n_batches {
            let id = BatchId::decode(d);
            let tag = Tag::decode(d);
            let pending = d.usize();
            batches.insert(id, Batch { tag, pending });
        }
        let next_batch = d.u64();

        let n_out = d.usize();
        let mut out = VecDeque::with_capacity(n_out);
        for _ in 0..n_out {
            let t = SimTime::decode(d);
            let w = match d.u8() {
                0 => {
                    let id = TimerId::decode(d);
                    let tag = Tag::decode(d);
                    Wakeup::Timer { id, tag }
                }
                1 => {
                    let id = ActivityId::decode(d);
                    let tag = Tag::decode(d);
                    let batch = Option::<BatchId>::decode(d);
                    Wakeup::Activity { id, tag, batch }
                }
                _ => {
                    let id = BatchId::decode(d);
                    let tag = Tag::decode(d);
                    Wakeup::Batch { id, tag }
                }
            };
            out.push_back((t, w));
        }
        let wakeups_delivered = d.u64();
        let kernel_counter_names = match d.u8() {
            0 => None,
            _ => Some([
                Name::decode(d),
                Name::decode(d),
                Name::decode(d),
                Name::decode(d),
                Name::decode(d),
            ]),
        };
        let tracer = Tracer::decode_state(d);

        Engine {
            now,
            fluid,
            heap,
            seq,
            epoch,
            flow_owner,
            activities,
            next_activity,
            timer_slots,
            timer_free,
            timer_live,
            batches,
            next_batch,
            out,
            wakeups_delivered,
            dead_timers: 0,
            kernel_counter_names,
            tracer,
        }
    }

    // ----- internals ------------------------------------------------------

    fn push_entry(&mut self, time: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, ev }));
    }

    /// Brings the fluid clock up to "now" so mutations integrate correctly.
    fn sync_fluid_clock(&mut self) {
        if self.fluid.now() < self.now {
            self.fluid.advance_to(self.now);
        }
    }

    /// If the allocation is dirty, recompute it and schedule the next
    /// completion estimate under a fresh epoch.
    fn refresh_fluid(&mut self) {
        if !self.fluid.is_dirty() {
            return;
        }
        self.sync_fluid_clock();
        self.fluid.reallocate();
        self.epoch += 1;
        if let Some(t) = self.fluid.earliest_completion() {
            let epoch = self.epoch;
            self.push_entry(t.max(self.now), Ev::FluidWake { epoch });
        }
    }

    fn spawn_chain(&mut self, spec: ChainSpec, tag: Tag, batch: Option<BatchId>) -> ActivityId {
        let id = ActivityId(self.next_activity);
        self.next_activity += 1;
        self.activities.insert(
            id,
            Activity { remaining: spec.steps.into(), current: Current::Idle, tag, batch },
        );
        self.advance_activity(id);
        id
    }

    /// Current step completed: start the next one or finish the chain.
    fn step_done(&mut self, id: ActivityId) {
        if let Some(act) = self.activities.get_mut(&id) {
            act.current = Current::Idle;
        }
        self.advance_activity(id);
    }

    fn advance_activity(&mut self, id: ActivityId) {
        let step = match self.activities.get_mut(&id) {
            Some(act) => {
                debug_assert!(matches!(act.current, Current::Idle));
                act.remaining.pop_front()
            }
            None => return,
        };
        match step {
            Some(Step::Flow { demands, work }) => {
                // Dirty-mark only; the solve is coalesced into the next
                // `next_wakeup` refresh with any sibling mutations.
                self.sync_fluid_clock();
                let f = self.fluid.add_flow(demands, work);
                self.activities.get_mut(&id).expect("just checked").current = Current::Flow(f);
                self.flow_owner.insert(f, id);
            }
            Some(Step::Delay(d)) => {
                let tid = self.alloc_timer(TimerKind::ChainDelay { activity: id });
                self.activities.get_mut(&id).expect("just checked").current = Current::Delay(tid);
                let at = self.now + d;
                self.push_entry(at, Ev::Timer { id: tid });
            }
            None => {
                let act = self.activities.remove(&id).expect("just checked");
                self.out
                    .push_back((self.now, Wakeup::Activity { id, tag: act.tag, batch: act.batch }));
                if let Some(b) = act.batch {
                    self.batch_member_done(b);
                }
            }
        }
    }

    fn batch_member_done(&mut self, b: BatchId) {
        let done = {
            let batch = self.batches.get_mut(&b).expect("member of unknown batch");
            batch.pending -= 1;
            batch.pending == 0
        };
        if done {
            let batch = self.batches.remove(&b).expect("present");
            self.out.push_back((self.now, Wakeup::Batch { id: b, tag: batch.tag }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u32 = 7;

    fn engine1() -> (Engine, ResourceId) {
        let mut e = Engine::new();
        let r = e.add_resource("link", ResourceKind::Net, 100.0);
        (e, r)
    }

    #[test]
    fn single_flow_completes_on_time() {
        let (mut e, r) = engine1();
        let a = e.start_flow(vec![Demand::unit(r)], 500.0, Tag::new(T, 1, 0));
        let (t, w) = e.next_wakeup().expect("completion");
        assert_eq!(t.as_secs_f64().round() as u64, 5);
        match w {
            Wakeup::Activity { id, tag, batch } => {
                assert_eq!(id, a);
                assert_eq!(tag, Tag::new(T, 1, 0));
                assert!(batch.is_none());
            }
            other => panic!("unexpected wakeup {other:?}"),
        }
        assert!(e.next_wakeup().is_none());
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Two equal flows of 100 work on a 100-cap link: both finish at 2s
        // (each runs at 50). With unequal work, the shorter finishes, the
        // longer speeds up.
        let (mut e, r) = engine1();
        e.start_flow(vec![Demand::unit(r)], 100.0, Tag::new(T, 1, 0));
        e.start_flow(vec![Demand::unit(r)], 300.0, Tag::new(T, 2, 0));
        let (t1, w1) = e.next_wakeup().unwrap();
        assert_eq!(w1.tag().a, 1);
        assert!((t1.as_secs_f64() - 2.0).abs() < 1e-6, "short flow at 2s, got {t1}");
        // Long flow: 2s at 50 (100 done) + remaining 200 at 100 = 2 more s.
        let (t2, w2) = e.next_wakeup().unwrap();
        assert_eq!(w2.tag().a, 2);
        assert!((t2.as_secs_f64() - 4.0).abs() < 1e-6, "long flow at 4s, got {t2}");
    }

    #[test]
    fn chain_runs_steps_sequentially() {
        let (mut e, r) = engine1();
        let spec = ChainSpec::new()
            .on(r, 100.0) // 1s
            .delay(SimDuration::from_millis(500))
            .on(r, 200.0); // 2s
        e.start_chain(spec, Tag::new(T, 9, 0));
        let (t, _) = e.next_wakeup().unwrap();
        assert!((t.as_secs_f64() - 3.5).abs() < 1e-6, "chain end at 3.5s, got {t}");
    }

    #[test]
    fn empty_chain_completes_immediately() {
        let (mut e, _r) = engine1();
        e.start_chain(ChainSpec::new(), Tag::new(T, 1, 0));
        let (t, w) = e.next_wakeup().unwrap();
        assert_eq!(t, SimTime::ZERO);
        assert!(matches!(w, Wakeup::Activity { .. }));
    }

    #[test]
    fn batch_joins_members() {
        let (mut e, r) = engine1();
        let members = vec![
            (ChainSpec::new().on(r, 100.0), Tag::new(T, 1, 0)),
            (ChainSpec::new().on(r, 100.0), Tag::new(T, 2, 0)),
            (ChainSpec::new().on(r, 400.0), Tag::new(T, 3, 0)),
        ];
        let b = e.start_batch(members, Tag::new(T, 99, 0));
        let mut member_tags = Vec::new();
        let mut batch_at = None;
        while let Some((t, w)) = e.next_wakeup() {
            match w {
                Wakeup::Activity { tag, batch, .. } => {
                    assert_eq!(batch, Some(b));
                    member_tags.push(tag.a);
                }
                Wakeup::Batch { id, tag } => {
                    assert_eq!(id, b);
                    assert_eq!(tag.a, 99);
                    batch_at = Some(t);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(member_tags.len(), 3);
        // Batch completes when the largest member does: 3 flows at ~33.3
        // until 100-work ones finish at 3s, then 400-work has 300 left at
        // 100/s -> 6s total.
        let t = batch_at.expect("batch completed").as_secs_f64();
        assert!((t - 6.0).abs() < 1e-6, "batch at 6s, got {t}");
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let (mut e, _r) = engine1();
        let b = e.start_batch(vec![], Tag::new(T, 1, 0));
        let (t, w) = e.next_wakeup().unwrap();
        assert_eq!(t, SimTime::ZERO);
        assert_eq!(w, Wakeup::Batch { id: b, tag: Tag::new(T, 1, 0) });
    }

    #[test]
    fn timer_fires_and_cancels() {
        let (mut e, _r) = engine1();
        let t1 = e.set_timer_in(SimDuration::from_secs(1), Tag::new(T, 1, 0));
        let t2 = e.set_timer_in(SimDuration::from_secs(2), Tag::new(T, 2, 0));
        assert!(e.cancel_timer(t2));
        assert!(!e.cancel_timer(t2), "double cancel rejected");
        let (at, w) = e.next_wakeup().unwrap();
        assert_eq!(at, SimTime::from_secs(1));
        assert_eq!(w, Wakeup::Timer { id: t1, tag: Tag::new(T, 1, 0) });
        assert!(e.next_wakeup().is_none());
    }

    #[test]
    fn cancel_activity_frees_capacity() {
        let (mut e, r) = engine1();
        let victim = e.start_flow(vec![Demand::unit(r)], 1_000.0, Tag::new(T, 1, 0));
        e.start_flow(vec![Demand::unit(r)], 100.0, Tag::new(T, 2, 0));
        assert!(e.cancel_activity(victim));
        assert!(!e.is_active(victim));
        // Survivor now gets the whole link: 100 work at 100/s = 1s.
        let (t, w) = e.next_wakeup().unwrap();
        assert_eq!(w.tag().a, 2);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cancelled_batch_member_still_joins() {
        let (mut e, r) = engine1();
        let b = e.start_batch(
            vec![
                (ChainSpec::new().on(r, 100.0), Tag::new(T, 1, 0)),
                (ChainSpec::new().on(r, 10_000.0), Tag::new(T, 2, 0)),
            ],
            Tag::new(T, 9, 0),
        );
        // Cancel the slow member: batch must complete when the fast one does.
        // Find its ActivityId by cancelling the second spawned activity.
        // Activities are numbered in spawn order: 0 and 1.
        assert!(e.cancel_activity(ActivityId(1)));
        let mut saw_batch = false;
        while let Some((t, w)) = e.next_wakeup() {
            if let Wakeup::Batch { id, .. } = w {
                assert_eq!(id, b);
                assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
                saw_batch = true;
            }
        }
        assert!(saw_batch);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let (mut e, r) = engine1();
            for i in 0..20u32 {
                e.start_flow(vec![Demand::unit(r)], 50.0 + f64::from(i) * 13.0, Tag::new(T, i, 0));
            }
            let mut trace = Vec::new();
            while let Some((t, w)) = e.next_wakeup() {
                trace.push((t.as_nanos(), w.tag().a));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn delay_only_chain() {
        let (mut e, _r) = engine1();
        e.start_chain(
            ChainSpec::new().delay(SimDuration::from_secs(1)).delay(SimDuration::from_secs(2)),
            Tag::new(T, 5, 0),
        );
        let (t, _) = e.next_wakeup().unwrap();
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn mass_timer_cancellation_compacts_heap() {
        let (mut e, _r) = engine1();
        // Arm a large far-future timer population, then cancel all of it:
        // the tombstoned heap must shrink instead of holding every entry
        // until its (never-delivered) pop time.
        let ids: Vec<_> = (0..10_000u64)
            .map(|i| e.set_timer_in(SimDuration::from_secs(1_000 + i), Tag::new(T, i as u32, 0)))
            .collect();
        let full = e.event_heap_len();
        assert_eq!(full, 10_000);
        for id in ids {
            assert!(e.cancel_timer(id));
        }
        let after = e.event_heap_len();
        assert!(after < full / 10, "heap compacted: {after} entries left of {full}");
        assert_eq!(e.kernel_stats().dead_timers, after);
        assert!(e.next_wakeup().is_none(), "no cancelled timer ever fires");
    }

    #[test]
    fn timer_compaction_threshold_scales_with_live_population() {
        let (mut e, _r) = engine1();
        let ids: Vec<_> = (0..10_000u64)
            .map(|i| e.set_timer_in(SimDuration::from_secs(1_000 + i), Tag::new(T, i as u32, 0)))
            .collect();
        // Below the proportional threshold (live/4) nothing is rebuilt even
        // though the absolute floor (64) is long past.
        for id in &ids[..2_000] {
            assert!(e.cancel_timer(*id));
        }
        assert_eq!(e.event_heap_len(), 10_000, "dead=2000 <= live/4=2000: no rebuild");
        assert_eq!(e.kernel_stats().dead_timers, 2_000);
        // One more cancellation tips dead over live/4 and compacts.
        assert!(e.cancel_timer(ids[2_000]));
        assert_eq!(e.event_heap_len(), 7_999);
        assert_eq!(e.kernel_stats().dead_timers, 0);
    }

    #[test]
    fn timer_arena_reuse_rejects_stale_handles() {
        let (mut e, _r) = engine1();
        let a = e.set_timer_in(SimDuration::from_secs(1), Tag::new(T, 1, 0));
        assert!(e.cancel_timer(a));
        // The slot is recycled under a bumped generation: the stale handle
        // must not be able to cancel the newborn timer (ABA).
        let b = e.set_timer_in(SimDuration::from_secs(2), Tag::new(T, 2, 0));
        assert_eq!(a.slot, b.slot, "slot recycled through the free list");
        assert_ne!(a.gen, b.gen, "generation advanced on free");
        assert!(!e.cancel_timer(a), "stale handle rejected");
        let (at, w) = e.next_wakeup().unwrap();
        assert_eq!(at, SimTime::from_secs(2));
        assert_eq!(w, Wakeup::Timer { id: b, tag: Tag::new(T, 2, 0) });
        assert!(e.next_wakeup().is_none());
        assert_eq!(e.kernel_stats().timer_arena_slots, 1, "one slot serves both timers");
    }

    #[test]
    fn full_reallocate_mode_is_wakeup_identical() {
        let run = |full: bool| {
            let (mut e, r) = engine1();
            e.set_full_reallocate(full);
            let r2 = e.add_resource("link2", ResourceKind::Net, 40.0);
            for i in 0..8u32 {
                let res = if i % 2 == 0 { r } else { r2 };
                e.start_flow(
                    vec![Demand::unit(res)],
                    50.0 + f64::from(i) * 13.0,
                    Tag::new(T, i, 0),
                );
            }
            let mut trace = Vec::new();
            while let Some((t, w)) = e.next_wakeup() {
                trace.push((t.as_nanos(), w.tag().a));
            }
            trace
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn snapshot_mid_run_replays_identically() {
        // Drive a mixed workload halfway, snapshot, and check the restored
        // engine delivers the exact remaining wakeup sequence.
        let build = || {
            let (mut e, r) = engine1();
            let r2 = e.add_resource("link2", ResourceKind::Net, 40.0);
            e.tracer_mut().set_enabled(true);
            for i in 0..10u32 {
                let res = if i % 2 == 0 { r } else { r2 };
                let spec = ChainSpec::new()
                    .on(res, 50.0 + f64::from(i) * 13.0)
                    .delay(SimDuration::from_millis(u64::from(i) * 7))
                    .on(res, 25.0);
                e.start_chain(spec, Tag::new(T, i, 0));
            }
            e.set_timer_in(SimDuration::from_secs(2), Tag::new(T, 100, 0));
            let dead = e.set_timer_in(SimDuration::from_secs(3), Tag::new(T, 101, 0));
            e.cancel_timer(dead);
            e
        };
        let mut control = build();
        let mut original = build();
        for _ in 0..5 {
            control.next_wakeup();
            original.next_wakeup();
        }
        let mut enc = Encoder::new();
        original.encode_state(&mut enc);
        let bytes = enc.finish();
        let mut restored = Engine::decode_state(&mut Decoder::new(&bytes));
        let drain = |e: &mut Engine| {
            let mut tail = Vec::new();
            while let Some((t, w)) = e.next_wakeup() {
                tail.push((t.as_nanos(), w.tag()));
            }
            tail
        };
        assert_eq!(drain(&mut restored), drain(&mut control));
        assert_eq!(restored.now(), control.now());
        assert_eq!(restored.wakeups_delivered(), control.wakeups_delivered());
        assert_eq!(restored.tracer().to_chrome_json(), control.tracer().to_chrome_json());
    }

    #[test]
    fn canonicalized_snapshots_of_equal_states_are_byte_identical() {
        // One engine accumulates timer tombstones, the other never had
        // them; after cancellation both describe the same state and must
        // encode to the same bytes.
        let (mut clean, _r) = engine1();
        let (mut dirty, _r2) = engine1();
        for i in 0..10u64 {
            // Keep id allocation identical: both engines arm every timer,
            // but `dirty` cancels the odd ones while `clean` never arms
            // odd entries... ids would diverge, so instead both arm and
            // both cancel — `dirty` simply carries extra *stale fluid*
            // churn that canonicalization must erase.
            let id = clean.set_timer_in(SimDuration::from_secs(100 + i), Tag::new(T, i as u32, 0));
            let id2 = dirty.set_timer_in(SimDuration::from_secs(100 + i), Tag::new(T, i as u32, 0));
            if i % 2 == 1 {
                clean.cancel_timer(id);
                dirty.cancel_timer(id2);
            }
        }
        // Extra dead churn on `dirty` only: arm + cancel leaves a tombstone
        // and bumps next_timer — so mirror the arms on `clean` too, but
        // only `dirty` is left holding uncompacted garbage via a manual
        // compaction on `clean`.
        let a = clean.set_timer_in(SimDuration::from_secs(999), Tag::new(T, 77, 0));
        let b = dirty.set_timer_in(SimDuration::from_secs(999), Tag::new(T, 77, 0));
        clean.cancel_timer(a);
        dirty.cancel_timer(b);
        clean.canonicalize(); // clean pre-compacts; dirty still has tombstones
        let enc = |e: &mut Engine| {
            let mut enc = Encoder::new();
            e.encode_state(&mut enc);
            enc.finish()
        };
        assert_eq!(enc(&mut clean), enc(&mut dirty), "tombstones must not leak into bytes");
    }

    #[test]
    fn run_to_quiescence_counts() {
        let (mut e, r) = engine1();
        for i in 0..5 {
            e.start_flow(vec![Demand::unit(r)], 10.0, Tag::new(T, i, 0));
        }
        assert_eq!(e.run_to_quiescence(), 5);
        assert_eq!(e.wakeups_delivered(), 5);
    }
}
