//! Structured tracing: spans and counters recorded against [`SimTime`].
//!
//! The [`Tracer`] is the platform's observability core. Subsystems record
//! **complete spans** retroactively — at the completion event they already
//! know the start instant from their own bookkeeping, so no span handle is
//! ever threaded through the simulation and instrumentation can never
//! perturb event order or timing. Names (categories, span names, arg keys)
//! are interned once into a small table; the hot recording path is a
//! branch (disabled → return) plus an amortized `Vec` push — no per-event
//! heap allocation and no formatting until export.
//!
//! Because every recorded instant comes from the deterministic simulation
//! clock, two runs with identical config + seed produce **byte-identical**
//! exports; trace files are usable as golden regression artifacts.
//!
//! Exporters:
//! * [`Tracer::to_chrome_json`] — Chrome `trace_event` JSON (load in
//!   `chrome://tracing` or <https://ui.perfetto.dev>): spans as `"X"`
//!   complete events (µs timestamps), counters as `"C"` events;
//! * [`Tracer::to_csv`] — flat CSV for ad-hoc analysis.

use crate::persist::{Decoder, Encoder, Persist};
use crate::time::{SimDuration, SimTime};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Maximum number of numeric args attached to one span.
pub const MAX_SPAN_ARGS: usize = 4;

/// Handle to an interned name. Obtained from [`Tracer::intern`] /
/// [`Tracer::intern_owned`]; resolved back with [`Tracer::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(u32);

impl Persist for Name {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.0);
    }
    fn decode(d: &mut Decoder) -> Self {
        Name(d.u32())
    }
}

/// A completed span: a named interval on a `track` (by convention the VM
/// id the work ran on), with up to [`MAX_SPAN_ARGS`] numeric arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Category (`map`, `shuffle`, `reduce`, `hdfs`, `migration`, ...).
    pub cat: Name,
    /// Event name within the category.
    pub name: Name,
    /// Track the span is drawn on (Chrome `tid`); VM id by convention.
    pub track: u32,
    /// Start instant.
    pub start: SimTime,
    /// End instant (the recording instant).
    pub end: SimTime,
    args: [(Name, f64); MAX_SPAN_ARGS],
    n_args: u8,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// The span's `(key, value)` arguments.
    pub fn args(&self) -> &[(Name, f64)] {
        &self.args[..usize::from(self.n_args)]
    }
}

/// One counter sample (a monitor column re-emitted into the trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Counter name (e.g. `vm3.vcpu`).
    pub name: Name,
    /// Sample instant.
    pub t: SimTime,
    /// Sampled value.
    pub value: f64,
}

/// Aggregate statistics of one span category.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryStats {
    /// Category name.
    pub name: String,
    /// Number of spans.
    pub count: usize,
    /// Sum of span durations.
    pub total: SimDuration,
    /// Largest single span duration.
    pub max: SimDuration,
}

/// The span + counter registry. Disabled by default: every recording call
/// is then a single branch, so an untraced run pays nothing.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    names: Vec<Cow<'static, str>>,
    spans: Vec<Span>,
    counters: Vec<CounterSample>,
}

impl Tracer {
    /// A disabled tracer (recording calls are no-ops until
    /// [`Tracer::set_enabled`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Interns a static name, returning its handle. Idempotent: the same
    /// string always yields the same handle (pointer-free linear scan — the
    /// table holds a few dozen entries at most).
    pub fn intern(&mut self, name: &'static str) -> Name {
        self.intern_cow(Cow::Borrowed(name))
    }

    /// Interns a runtime-built name (e.g. a monitor column). Allocates at
    /// most once per distinct string — call at setup time, cache the
    /// handle, and the hot path stays allocation-free.
    pub fn intern_owned(&mut self, name: String) -> Name {
        self.intern_cow(Cow::Owned(name))
    }

    fn intern_cow(&mut self, name: Cow<'static, str>) -> Name {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return Name(i as u32);
        }
        self.names.push(name);
        Name((self.names.len() - 1) as u32)
    }

    /// Resolves a handle back to its string.
    pub fn name(&self, n: Name) -> &str {
        &self.names[n.0 as usize]
    }

    /// Records a complete span. No-op while disabled. Args beyond
    /// [`MAX_SPAN_ARGS`] are dropped.
    pub fn span(
        &mut self,
        cat: &'static str,
        name: &'static str,
        track: u32,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, f64)],
    ) {
        if !self.enabled {
            return;
        }
        let cat = self.intern(cat);
        let name = self.intern(name);
        let mut stored = [(Name(0), 0.0); MAX_SPAN_ARGS];
        let n_args = args.len().min(MAX_SPAN_ARGS);
        for (slot, &(k, v)) in stored.iter_mut().zip(args.iter().take(MAX_SPAN_ARGS)) {
            *slot = (self.intern(k), v);
        }
        self.spans.push(Span { cat, name, track, start, end, args: stored, n_args: n_args as u8 });
    }

    /// Records a counter sample under a pre-interned name. No-op while
    /// disabled.
    pub fn counter(&mut self, name: Name, t: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        self.counters.push(CounterSample { name, t, value });
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded counter samples, in recording order.
    pub fn counters(&self) -> &[CounterSample] {
        &self.counters
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Drops all recorded events (the name table is kept).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.counters.clear();
    }

    /// Value of span argument `key`, if present.
    pub fn span_arg(&self, span: &Span, key: &str) -> Option<f64> {
        span.args().iter().find(|(k, _)| self.name(*k) == key).map(|&(_, v)| v)
    }

    /// Per-category aggregates over spans passing `filter`, sorted by
    /// category name.
    pub fn category_stats(&self, mut filter: impl FnMut(&Span) -> bool) -> Vec<CategoryStats> {
        let mut out: Vec<CategoryStats> = Vec::new();
        for s in self.spans.iter().filter(|s| filter(s)) {
            let cat = self.name(s.cat);
            let d = s.duration();
            match out.iter_mut().find(|c| c.name == cat) {
                Some(c) => {
                    c.count += 1;
                    c.total += d;
                    c.max = c.max.max(d);
                }
                None => {
                    out.push(CategoryStats { name: cat.to_string(), count: 1, total: d, max: d })
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Distinct span categories, sorted.
    pub fn categories(&self) -> Vec<&str> {
        let mut cats: Vec<&str> = Vec::new();
        for s in &self.spans {
            let c = self.name(s.cat);
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        cats.sort_unstable();
        cats
    }

    /// Chrome `trace_event` JSON. Timestamps are microseconds with
    /// nanosecond precision (`ns / 1000` + three decimals), formatted from
    /// integers — no floating-point rounding, so identical runs export
    /// byte-identical files.
    pub fn to_chrome_json(&self) -> String {
        fn us(ns: u64) -> String {
            format!("{}.{:03}", ns / 1_000, ns % 1_000)
        }
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}",
                esc(self.name(s.name)),
                esc(self.name(s.cat)),
                us(s.start.as_nanos()),
                us(s.duration().as_nanos()),
                s.track,
            );
            out.push_str(",\"args\":{");
            for (i, &(k, v)) in s.args().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", esc(self.name(k)));
            }
            out.push_str("}}");
        }
        for c in &self.counters {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{\"value\":{}}}}}",
                esc(self.name(c.name)),
                us(c.t.as_nanos()),
                c.value,
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Appends the full tracer state — name table, spans, counters — so a
    /// restored run keeps the prefix of events recorded before the
    /// checkpoint and its exports stay byte-identical to an uninterrupted
    /// run. Interned names decode as owned strings; later `intern` calls
    /// match them by string equality, so handles keep their indices.
    pub(crate) fn encode_state(&self, e: &mut Encoder) {
        e.bool(self.enabled);
        e.usize(self.names.len());
        for n in &self.names {
            e.str(n);
        }
        e.usize(self.spans.len());
        for s in &self.spans {
            s.cat.encode(e);
            s.name.encode(e);
            e.u32(s.track);
            s.start.encode(e);
            s.end.encode(e);
            e.u8(s.n_args);
            for &(k, v) in &s.args {
                k.encode(e);
                e.f64(v);
            }
        }
        e.usize(self.counters.len());
        for c in &self.counters {
            c.name.encode(e);
            c.t.encode(e);
            e.f64(c.value);
        }
    }

    /// Rebuilds a tracer from bytes written by [`Tracer::encode_state`].
    pub(crate) fn decode_state(d: &mut Decoder) -> Tracer {
        let enabled = d.bool();
        let n_names = d.usize();
        let names: Vec<Cow<'static, str>> = (0..n_names).map(|_| Cow::Owned(d.str())).collect();
        let n_spans = d.usize();
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            let cat = Name::decode(d);
            let name = Name::decode(d);
            let track = d.u32();
            let start = SimTime::decode(d);
            let end = SimTime::decode(d);
            let n_args = d.u8();
            let mut args = [(Name(0), 0.0); MAX_SPAN_ARGS];
            for slot in &mut args {
                let k = Name::decode(d);
                let v = d.f64();
                *slot = (k, v);
            }
            spans.push(Span { cat, name, track, start, end, args, n_args });
        }
        let n_counters = d.usize();
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let name = Name::decode(d);
            let t = SimTime::decode(d);
            let value = d.f64();
            counters.push(CounterSample { name, t, value });
        }
        Tracer { enabled, names, spans, counters }
    }

    /// Flat CSV: one row per span and per counter sample.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,cat,name,track,start_ns,end_ns,dur_ns,value,args\n");
        for s in &self.spans {
            let args = s
                .args()
                .iter()
                .map(|&(k, v)| format!("{}={v}", self.name(k)))
                .collect::<Vec<_>>()
                .join(";");
            let _ = writeln!(
                out,
                "span,{},{},{},{},{},{},,{args}",
                self.name(s.cat),
                self.name(s.name),
                s.track,
                s.start.as_nanos(),
                s.end.as_nanos(),
                s.duration().as_nanos(),
            );
        }
        for c in &self.counters {
            let _ =
                writeln!(out, "counter,,{},,{},,,{},", self.name(c.name), c.t.as_nanos(), c.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::new();
        tr.span("map", "map", 1, t(0), t(1), &[("job", 0.0)]);
        let n = tr.intern("x");
        tr.counter(n, t(1), 0.5);
        assert!(tr.is_empty());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut tr = Tracer::new();
        let a = tr.intern("map");
        let b = tr.intern("map");
        let c = tr.intern("reduce");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(tr.name(a), "map");
        assert_eq!(tr.intern_owned("map".to_string()), a);
    }

    #[test]
    fn spans_and_stats() {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        tr.span("map", "map", 1, t(0), t(2), &[("job", 0.0), ("task", 3.0)]);
        tr.span("map", "map", 2, t(1), t(2), &[]);
        tr.span("reduce", "reduce", 1, t(2), t(5), &[]);
        assert_eq!(tr.spans().len(), 3);
        assert_eq!(tr.span_arg(&tr.spans()[0], "task"), Some(3.0));
        assert_eq!(tr.categories(), vec!["map", "reduce"]);
        let stats = tr.category_stats(|_| true);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "map");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total, SimDuration::from_secs(3));
        assert_eq!(stats[1].max, SimDuration::from_secs(3));
    }

    #[test]
    fn chrome_export_is_wellformed_and_deterministic() {
        let run = || {
            let mut tr = Tracer::new();
            tr.set_enabled(true);
            tr.span("map", "map", 1, SimTime::ZERO, t(1), &[("job", 0.0)]);
            let n = tr.intern("vm1.vcpu");
            tr.counter(n, t(1), 0.25);
            tr.to_chrome_json()
        };
        let json = run();
        assert_eq!(json, run(), "export is deterministic");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"cat\":\"map\""));
        // 1 s = 1_000_000.000 µs.
        assert!(json.contains("\"dur\":1000000.000"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn csv_export_has_rows() {
        let mut tr = Tracer::new();
        tr.set_enabled(true);
        tr.span("hdfs", "write", 4, t(0), t(3), &[("bytes", 1024.0)]);
        let csv = tr.to_csv();
        assert!(csv.starts_with("kind,cat,name,track,start_ns"));
        assert!(csv.contains("span,hdfs,write,4,0,3000000000,3000000000,,bytes=1024"));
    }
}
