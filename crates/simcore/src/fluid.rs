//! Fluid resource model with progressive-filling max-min fairness.
//!
//! This is the timing substrate of the whole platform, in the style of
//! SimGrid's fluid network model. A **resource** is a server with a scalar
//! capacity (bytes/s for links and disks, cycles/s for CPUs). A **flow** is
//! an amount of *work* that drains through a weighted set of resources: a
//! flow running at rate `x` consumes `w_r · x` capacity on every resource
//! `r` it demands. At any instant the kernel assigns rates by max-min
//! fairness: rates are raised uniformly until a resource saturates, the
//! flows crossing it are frozen, and filling continues on the rest.
//!
//! One mechanism expresses every contention effect the vHadoop paper
//! measures: a vCPU cap is a flow demanding {vcpu, host-cpu}; a cross-host
//! transfer demands {src NIC, switch, dst NIC}; dom0 I/O overhead is an
//! extra CPU demand attached to an I/O flow.
//!
//! ## Incremental re-solve (DESIGN.md §13)
//!
//! Max-min fairness decomposes exactly over **connected components** of the
//! flow/resource bipartite graph: the rate of a flow depends only on flows
//! it is (transitively) coupled to through shared resources. The kernel
//! exploits this: every mutation (flow add/remove/finish, capacity change)
//! marks its resources *dirty*, and [`FluidNet::reallocate`] re-solves only
//! the connected components reachable from dirty resources — untouched
//! components keep their rates, which are byte-identical to what a global
//! solve would assign them. A lazy min-heap of projected completion
//! instants ([`FluidNet::earliest_completion`]) replaces the former
//! full-flow scan, so scheduling the next wake costs `O(log flows)` instead
//! of `O(flows)`.

use crate::ids::{FlowId, ResourceId};
use crate::persist::{Decoder, Encoder, Persist};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Rates above this are treated as "instantaneous" (flow over only
/// infinite-capacity resources).
const RATE_CAP: f64 = 1e18;
/// Absolute slack under which remaining work counts as finished.
const DONE_EPS: f64 = 1e-6;
/// Completion-heap compaction threshold: rebuild once the heap holds this
/// many entries *and* more than [`HEAP_SLACK`]× the live-flow count.
const HEAP_COMPACT_MIN: usize = 64;
/// See [`HEAP_COMPACT_MIN`].
const HEAP_SLACK: usize = 4;

/// What a resource meters; used by monitors to group utilization report rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Compute capacity, cycles per second.
    Cpu,
    /// Disk bandwidth, bytes per second.
    Disk,
    /// Network interface or link bandwidth, bytes per second.
    Net,
    /// Anything else (test fixtures, abstract tokens).
    Other,
}

/// One demand entry of a flow: `weight` units of `resource` capacity are
/// consumed per unit of flow rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// The resource consumed.
    pub resource: ResourceId,
    /// Capacity consumed per unit rate; must be finite and > 0.
    pub weight: f64,
}

impl Demand {
    /// Unit-weight demand on `resource`.
    pub fn unit(resource: ResourceId) -> Self {
        Demand { resource, weight: 1.0 }
    }

    /// Weighted demand on `resource`.
    pub fn weighted(resource: ResourceId, weight: f64) -> Self {
        Demand { resource, weight }
    }
}

#[derive(Debug, Clone)]
struct Resource {
    name: String,
    kind: ResourceKind,
    capacity: f64,
    /// Capacity currently consumed by the allocation (refreshed on each
    /// reallocation); kept for cheap utilization queries.
    used: f64,
    /// Total work served since t = 0 (integrated `used · dt`); lets
    /// clients compute exact time-averaged utilization over any window.
    cumulative: f64,
}

#[derive(Debug, Clone)]
struct FlowState {
    demands: Vec<Demand>,
    total: f64,
    remaining: f64,
    rate: f64,
}

#[derive(Debug, Default, Clone)]
struct FlowSlot {
    gen: u32,
    /// Estimate stamp: bumped whenever this slot's rate is re-assigned or
    /// the flow leaves; completion-heap entries with an older stamp are
    /// stale and dropped lazily.
    stamp: u32,
    state: Option<FlowState>,
}

/// A finished flow popped from [`FluidNet::take_finished`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishedFlow {
    /// Handle of the flow that drained.
    pub id: FlowId,
}

/// Cumulative kernel work counters (monotonic; see DESIGN.md §13). The
/// perf harness and the check.sh `perf` stage pin ceilings on these, so a
/// regression in incremental behavior fails CI machine-independently.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FluidStats {
    /// Number of [`FluidNet::reallocate`] passes that found dirty state.
    pub reallocations: u64,
    /// Total flows re-solved across all reallocations (the dirty-component
    /// closure size, summed). `flows_touched / reallocations` is the mean
    /// component size — the number the incremental solver drives down.
    pub flows_touched: u64,
    /// Total resources visited across all reallocations.
    pub resources_touched: u64,
    /// Current completion-heap length (live + stale entries).
    pub completion_heap_len: usize,
}

/// The fluid network: resources plus active flows plus the current max-min
/// allocation. Time only passes through [`FluidNet::advance_to`]; the
/// [`crate::engine::Engine`] owns the clock and drives this structure.
#[derive(Debug, Clone)]
pub struct FluidNet {
    resources: Vec<Resource>,
    slots: Vec<FlowSlot>,
    free: Vec<u32>,
    active: usize,
    last_update: SimTime,
    allocation_dirty: bool,
    /// Live flow slots crossing each resource (one entry per demand row,
    /// so duplicate demands stay balanced with [`FluidNet::detach`]).
    res_flows: Vec<Vec<u32>>,
    /// Seed resources touched since the last reallocate, deduplicated via
    /// `res_mark`.
    dirty: Vec<u32>,
    /// Per-resource dirty/visited mark (shared by seeding and the closure
    /// walk inside `reallocate`; always all-false between calls).
    res_mark: Vec<bool>,
    /// Per-slot visited mark for the closure walk (all-false between calls).
    flow_mark: Vec<bool>,
    /// Live flows with `remaining <= DONE_EPS` — the set that makes
    /// `earliest_completion` return "now" immediately.
    near_done: usize,
    /// Lazy min-heap of projected completions: `(finish_ns, slot, stamp)`.
    /// Entries whose stamp no longer matches the slot are stale.
    completions: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// Scratch buffers for the restricted progressive filling, persisted
    /// across calls so a re-solve allocates nothing proportional to the
    /// whole network. Entries are only meaningful for resources of the
    /// current closure.
    scratch_residual: Vec<f64>,
    scratch_weight: Vec<f64>,
    scratch_count: Vec<u32>,
    scratch_saturated: Vec<bool>,
    /// When true, every reallocation seeds all resources — the former
    /// global solve. Bench baseline knob; output-identical by construction.
    full_solve: bool,
    stats: FluidStats,
}

impl Default for FluidNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FluidNet {
    /// Empty network at t = 0.
    pub fn new() -> Self {
        FluidNet {
            resources: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            last_update: SimTime::ZERO,
            allocation_dirty: false,
            res_flows: Vec::new(),
            dirty: Vec::new(),
            res_mark: Vec::new(),
            flow_mark: Vec::new(),
            near_done: 0,
            completions: BinaryHeap::new(),
            scratch_residual: Vec::new(),
            scratch_weight: Vec::new(),
            scratch_count: Vec::new(),
            scratch_saturated: Vec::new(),
            full_solve: false,
            stats: FluidStats::default(),
        }
    }

    /// Registers a resource with `capacity` units/second.
    ///
    /// `f64::INFINITY` is a valid capacity for resources that never
    /// constrain (e.g. an ideal backplane in tests).
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        kind: ResourceKind,
        capacity: f64,
    ) -> ResourceId {
        assert!(capacity >= 0.0, "resource capacity must be non-negative");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            name: name.into(),
            kind,
            capacity,
            used: 0.0,
            cumulative: 0.0,
        });
        self.res_flows.push(Vec::new());
        self.res_mark.push(false);
        self.scratch_residual.push(0.0);
        self.scratch_weight.push(0.0);
        self.scratch_count.push(0);
        self.scratch_saturated.push(false);
        id
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Human-readable resource name.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.index()].name
    }

    /// The resource's kind, as registered.
    pub fn resource_kind(&self, r: ResourceId) -> ResourceKind {
        self.resources[r.index()].kind
    }

    /// Configured capacity of `r`.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].capacity
    }

    /// Changes capacity of `r`; takes effect at the next reallocation.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(capacity >= 0.0, "resource capacity must be non-negative");
        self.resources[r.index()].capacity = capacity;
        self.mark_dirty(r.index());
        self.allocation_dirty = true;
    }

    /// Capacity currently consumed on `r` under the present allocation.
    pub fn used(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].used
    }

    /// Total work served on `r` since t = 0 (as of the last `advance_to`).
    pub fn cumulative(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].cumulative
    }

    /// `used / capacity`, clamped to [0, 1]; 0 for infinite capacity.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let res = &self.resources[r.index()];
        if !res.capacity.is_finite() || res.capacity <= 0.0 {
            0.0
        } else {
            (res.used / res.capacity).clamp(0.0, 1.0)
        }
    }

    /// Number of flows currently in the system.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Cumulative kernel counters (see [`FluidStats`]).
    pub fn stats(&self) -> FluidStats {
        FluidStats { completion_heap_len: self.completions.len(), ..self.stats }
    }

    /// Forces every reallocation to re-solve the whole network (the former
    /// global algorithm). Rates are identical either way — this is the
    /// bench harness's baseline knob for counter/wall-clock comparisons.
    pub fn set_full_solve(&mut self, on: bool) {
        self.full_solve = on;
    }

    /// Whether full (global) re-solves are forced on.
    pub fn full_solve(&self) -> bool {
        self.full_solve
    }

    /// Starts a flow of `work` units over `demands`. The allocation is
    /// marked dirty; the caller must `reallocate` (the engine does).
    ///
    /// # Panics
    /// If `demands` is empty, any weight is non-positive/non-finite, any
    /// resource id is unknown, or `work` is negative/non-finite.
    pub fn add_flow(&mut self, demands: Vec<Demand>, work: f64) -> FlowId {
        assert!(!demands.is_empty(), "a flow must demand at least one resource");
        assert!(work.is_finite() && work >= 0.0, "flow work must be finite and >= 0, got {work}");
        for d in &demands {
            assert!(d.weight.is_finite() && d.weight > 0.0, "demand weight must be finite and > 0");
            assert!(d.resource.index() < self.resources.len(), "unknown resource {}", d.resource);
        }
        let state = FlowState { demands, total: work, remaining: work, rate: 0.0 };
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].state.is_none());
                self.slots[s as usize].state = Some(state);
                s
            }
            None => {
                self.slots.push(FlowSlot { gen: 0, stamp: 0, state: Some(state) });
                self.flow_mark.push(false);
                (self.slots.len() - 1) as u32
            }
        };
        let f = self.slots[slot as usize].state.as_ref().expect("just stored");
        if f.remaining <= DONE_EPS {
            self.near_done += 1;
        }
        for i in 0..self.slots[slot as usize].state.as_ref().expect("just stored").demands.len() {
            let r = self.slots[slot as usize].state.as_ref().expect("just stored").demands[i]
                .resource
                .index();
            self.res_flows[r].push(slot);
            self.mark_dirty(r);
        }
        self.active += 1;
        self.allocation_dirty = true;
        FlowId { slot, gen: self.slots[slot as usize].gen }
    }

    /// Cancels `id`, returning its remaining work, or `None` if the handle
    /// is stale (already finished/cancelled).
    pub fn remove_flow(&mut self, id: FlowId) -> Option<f64> {
        let slot = self.slots.get_mut(id.slot as usize)?;
        if slot.gen != id.gen || slot.state.is_none() {
            return None;
        }
        let state = slot.state.take().expect("checked above");
        slot.gen = slot.gen.wrapping_add(1);
        slot.stamp = slot.stamp.wrapping_add(1);
        if state.remaining <= DONE_EPS {
            self.near_done -= 1;
        }
        self.detach(id.slot, &state.demands);
        self.free.push(id.slot);
        self.active -= 1;
        self.allocation_dirty = true;
        Some(state.remaining)
    }

    /// True if `id` refers to a live flow.
    pub fn is_live(&self, id: FlowId) -> bool {
        self.slots.get(id.slot as usize).is_some_and(|s| s.gen == id.gen && s.state.is_some())
    }

    /// Current rate of `id` (0 if stale).
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.flow(id).map_or(0.0, |f| f.rate)
    }

    /// Remaining work of `id` as of the last `advance_to` (stale → `None`).
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.flow(id).map(|f| f.remaining)
    }

    fn flow(&self, id: FlowId) -> Option<&FlowState> {
        let slot = self.slots.get(id.slot as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.state.as_ref()
    }

    /// Unregisters a departing flow from the per-resource index and marks
    /// its resources dirty (its component must re-solve).
    fn detach(&mut self, slot: u32, demands: &[Demand]) {
        for d in demands {
            let r = d.resource.index();
            let list = &mut self.res_flows[r];
            let pos = list.iter().position(|&s| s == slot).expect("flow indexed on its resource");
            list.swap_remove(pos);
            self.mark_dirty(r);
        }
    }

    fn mark_dirty(&mut self, r: usize) {
        if !self.res_mark[r] {
            self.res_mark[r] = true;
            self.dirty.push(r as u32);
        }
    }

    /// Integrates flow progress from the last update instant to `now`.
    ///
    /// # Panics
    /// If `now` is before the last update (time cannot run backwards).
    pub fn advance_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "fluid time ran backwards: {} < {}",
            now,
            self.last_update
        );
        if now == self.last_update {
            return;
        }
        debug_assert!(
            !self.allocation_dirty || self.active == 0,
            "advancing fluid time with a dirty allocation"
        );
        let dt = (now - self.last_update).as_secs_f64();
        let mut crossed = 0usize;
        for slot in &mut self.slots {
            if let Some(f) = slot.state.as_mut() {
                if f.rate > 0.0 {
                    let before = f.remaining;
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                    if before > DONE_EPS && f.remaining <= DONE_EPS {
                        crossed += 1;
                    }
                    for d in &f.demands {
                        self.resources[d.resource.index()].cumulative += f.rate * d.weight * dt;
                    }
                }
            }
        }
        self.near_done += crossed;
        self.last_update = now;
    }

    /// Recomputes the max-min fair allocation over the flows whose
    /// component changed since the last call.
    ///
    /// Progressive filling restricted to the dirty closure: every unfrozen
    /// flow's rate rises uniformly; the resource with the smallest residual
    /// fair share saturates first and freezes every flow crossing it;
    /// repeat. Flows outside the closure keep their rates — max-min shares
    /// of independent components are unaffected by each other, so the
    /// result is identical to a global solve. Runs in
    /// `O(closure_resources · closure_flows)` instead of the former
    /// `O(resources · flows)`.
    pub fn reallocate(&mut self) {
        self.allocation_dirty = false;
        if self.full_solve {
            for r in 0..self.resources.len() {
                self.mark_dirty(r);
            }
        }
        if self.dirty.is_empty() {
            return;
        }
        self.stats.reallocations += 1;

        // Closure walk over the flow/resource bipartite graph: every flow
        // crossing an affected resource is affected, and drags in its other
        // resources. `res_mark`/`flow_mark` double as visited sets.
        let mut aff_res = std::mem::take(&mut self.dirty);
        let mut aff_flows: Vec<u32> = Vec::new();
        let mut qi = 0;
        while qi < aff_res.len() {
            let r = aff_res[qi] as usize;
            qi += 1;
            for k in 0..self.res_flows[r].len() {
                let s = self.res_flows[r][k] as usize;
                if !self.flow_mark[s] {
                    self.flow_mark[s] = true;
                    aff_flows.push(s as u32);
                    let f = self.slots[s].state.as_ref().expect("indexed flows are live");
                    for i in 0..f.demands.len() {
                        let ri =
                            self.slots[s].state.as_ref().expect("live").demands[i].resource.index();
                        if !self.res_mark[ri] {
                            self.res_mark[ri] = true;
                            aff_res.push(ri as u32);
                        }
                    }
                }
            }
        }
        // Solve flows in ascending slot order — the exact accumulation
        // order of the former global pass, so shares stay bit-identical.
        aff_flows.sort_unstable();
        self.stats.flows_touched += aff_flows.len() as u64;
        self.stats.resources_touched += aff_res.len() as u64;

        for &r in &aff_res {
            let ri = r as usize;
            self.res_mark[ri] = false;
            self.resources[ri].used = 0.0;
            self.scratch_residual[ri] = self.resources[ri].capacity;
            self.scratch_weight[ri] = 0.0;
            self.scratch_count[ri] = 0;
        }
        for &s in &aff_flows {
            self.flow_mark[s as usize] = false;
            let f = self.slots[s as usize].state.as_ref().expect("live");
            for d in &f.demands {
                self.scratch_weight[d.resource.index()] += d.weight;
                self.scratch_count[d.resource.index()] += 1;
            }
        }

        let mut unfrozen = aff_flows.clone();
        while !unfrozen.is_empty() {
            // Find the bottleneck share among closure resources that still
            // carry unfrozen flows (the integer count is the authoritative
            // membership test — floating-point weight subtraction can
            // leave dust).
            let mut share = f64::INFINITY;
            for &r in &aff_res {
                let ri = r as usize;
                if self.scratch_count[ri] > 0 && self.scratch_weight[ri] > 0.0 {
                    let s = self.scratch_residual[ri] / self.scratch_weight[ri];
                    if s < share {
                        share = s;
                    }
                }
            }
            let share = share.clamp(0.0, RATE_CAP);

            // Freeze flows that cross a saturating resource (or all of them
            // when nothing constrains).
            let tol = share * 1e-12 + 1e-30;
            let mut any_saturated = false;
            for &r in &aff_res {
                let ri = r as usize;
                self.scratch_saturated[ri] = false;
                if share < RATE_CAP
                    && self.scratch_count[ri] > 0
                    && self.scratch_weight[ri] > 0.0
                    && self.scratch_residual[ri] / self.scratch_weight[ri] <= share + tol
                {
                    self.scratch_saturated[ri] = true;
                    any_saturated = true;
                }
            }

            let mut still: Vec<u32> = Vec::new();
            for &slot_idx in &unfrozen {
                let f =
                    self.slots[slot_idx as usize].state.as_mut().expect("unfrozen flows are live");
                let frozen_now = !any_saturated
                    || f.demands.iter().any(|d| self.scratch_saturated[d.resource.index()]);
                if frozen_now {
                    f.rate = share;
                    for d in &f.demands {
                        let r = d.resource.index();
                        self.scratch_residual[r] =
                            (self.scratch_residual[r] - share * d.weight).max(0.0);
                        self.scratch_weight[r] -= d.weight;
                        self.scratch_count[r] -= 1;
                        if self.scratch_count[r] == 0 {
                            self.scratch_weight[r] = 0.0;
                        }
                        self.resources[r].used += share * d.weight;
                    }
                } else {
                    still.push(slot_idx);
                }
            }
            debug_assert!(
                still.len() < unfrozen.len(),
                "progressive filling must freeze at least one flow per round"
            );
            unfrozen = still;
        }

        // Re-stamp every touched flow and index its projected completion.
        for &s in &aff_flows {
            let slot = &mut self.slots[s as usize];
            slot.stamp = slot.stamp.wrapping_add(1);
            let f = slot.state.as_ref().expect("live");
            if f.rate > 0.0 {
                let d = SimDuration::from_secs_f64(f.remaining / f.rate);
                let key = self.last_update.as_nanos().saturating_add(d.as_nanos());
                self.completions.push(Reverse((key, s, slot.stamp)));
            }
        }
        self.compact_completions();

        // Recycle the seed list's allocation.
        aff_res.clear();
        self.dirty = aff_res;
    }

    /// Drops stale completion entries wholesale once they dominate the
    /// heap, bounding memory under long flow churn.
    fn compact_completions(&mut self) {
        if self.completions.len() <= HEAP_COMPACT_MIN
            || self.completions.len() <= HEAP_SLACK * self.active
        {
            return;
        }
        let mut entries = std::mem::take(&mut self.completions).into_vec();
        entries.retain(|&Reverse((_, s, stamp))| {
            let slot = &self.slots[s as usize];
            slot.stamp == stamp && slot.state.is_some()
        });
        self.completions = BinaryHeap::from(entries);
    }

    /// The next instant at which some flow drains, given current rates, or
    /// `None` if no flow is progressing. The allocation must be clean.
    ///
    /// Served from the completion index: stale heap entries are popped
    /// lazily, and the winning flow's instant is recomputed from its
    /// remaining work *now* — the same arithmetic (and therefore the same
    /// nanosecond) as the former full scan.
    pub fn earliest_completion(&mut self) -> Option<SimTime> {
        debug_assert!(!self.allocation_dirty, "earliest_completion on dirty allocation");
        if self.near_done > 0 {
            return Some(self.last_update);
        }
        while let Some(&Reverse((_, s, stamp))) = self.completions.peek() {
            let slot = &self.slots[s as usize];
            if slot.stamp == stamp && slot.state.as_ref().is_some_and(|f| f.rate > 0.0) {
                break;
            }
            self.completions.pop();
        }
        let &Reverse((_, s, _)) = self.completions.peek()?;
        let f = self.slots[s as usize].state.as_ref().expect("validated above");
        let secs = f.remaining / f.rate;
        // Round up one nanosecond so the event lands at-or-after the true
        // completion instant.
        let d = SimDuration::from_secs_f64(secs).saturating_add(SimDuration::from_nanos(1));
        Some(self.last_update + d)
    }

    /// Removes and returns every flow whose work has drained (as of the
    /// last `advance_to`). The allocation becomes dirty if any finished.
    pub fn take_finished(&mut self) -> Vec<FinishedFlow> {
        let mut done = Vec::new();
        for i in 0..self.slots.len() {
            let finished = match &self.slots[i].state {
                Some(f) => f.remaining <= DONE_EPS.max(f.total * 1e-12),
                None => false,
            };
            if finished {
                let slot = &mut self.slots[i];
                let state = slot.state.take().expect("checked above");
                let id = FlowId { slot: i as u32, gen: slot.gen };
                slot.gen = slot.gen.wrapping_add(1);
                slot.stamp = slot.stamp.wrapping_add(1);
                if state.remaining <= DONE_EPS {
                    self.near_done -= 1;
                }
                self.detach(i as u32, &state.demands);
                self.free.push(i as u32);
                self.active -= 1;
                self.allocation_dirty = true;
                done.push(FinishedFlow { id });
            }
        }
        done
    }

    /// Instant of the last `advance_to`.
    pub fn now(&self) -> SimTime {
        self.last_update
    }

    /// True when `reallocate` must run before time can advance again.
    pub fn is_dirty(&self) -> bool {
        self.allocation_dirty
    }

    /// Per-resource `(name, kind, used, capacity)` rows for monitors.
    pub fn usage_snapshot(&self) -> Vec<(ResourceId, ResourceKind, f64, f64)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i as u32), r.kind, r.used, r.capacity))
            .collect()
    }

    // ----- persistence (DESIGN.md §16) ------------------------------------

    /// Drops *every* stale completion-index entry (not just when the lazy
    /// threshold trips). Part of the canonicalize-before-encode rule: two
    /// byte-identical fluid states must produce byte-identical snapshots no
    /// matter how much lazily-deferred garbage each carries. Removing stale
    /// entries is unobservable — they are skipped on pop anyway.
    pub fn canonicalize(&mut self) {
        let mut entries = std::mem::take(&mut self.completions).into_vec();
        entries.retain(|&Reverse((_, s, stamp))| {
            let slot = &self.slots[s as usize];
            slot.stamp == stamp && slot.state.is_some()
        });
        self.completions = BinaryHeap::from(entries);
    }

    /// Appends the complete network state to `e`, canonicalizing first.
    /// The completion heap is written as a sorted vector; scratch buffers
    /// and visit marks are invariantly empty between engine calls and are
    /// rebuilt on decode rather than encoded.
    pub(crate) fn encode_state(&mut self, e: &mut Encoder) {
        self.canonicalize();
        e.usize(self.resources.len());
        for r in &self.resources {
            e.str(&r.name);
            r.kind.encode(e);
            e.f64(r.capacity);
            e.f64(r.used);
            e.f64(r.cumulative);
        }
        e.usize(self.slots.len());
        for s in &self.slots {
            e.u32(s.gen);
            e.u32(s.stamp);
            match &s.state {
                None => e.u8(0),
                Some(f) => {
                    e.u8(1);
                    f.demands.encode(e);
                    e.f64(f.total);
                    e.f64(f.remaining);
                    e.f64(f.rate);
                }
            }
        }
        self.free.encode(e);
        e.usize(self.active);
        self.last_update.encode(e);
        e.bool(self.allocation_dirty);
        self.res_flows.encode(e);
        self.dirty.encode(e);
        e.usize(self.near_done);
        let mut entries: Vec<(u64, u32, u32)> =
            self.completions.iter().map(|&Reverse(t)| t).collect();
        entries.sort_unstable();
        entries.encode(e);
        e.bool(self.full_solve);
        e.u64(self.stats.reallocations);
        e.u64(self.stats.flows_touched);
        e.u64(self.stats.resources_touched);
    }

    /// Rebuilds a network from bytes written by
    /// [`FluidNet::encode_state`].
    pub(crate) fn decode_state(d: &mut Decoder) -> FluidNet {
        let nres = d.usize();
        let mut resources = Vec::with_capacity(nres);
        for _ in 0..nres {
            let name = d.str();
            let kind = ResourceKind::decode(d);
            let capacity = d.f64();
            let used = d.f64();
            let cumulative = d.f64();
            resources.push(Resource { name, kind, capacity, used, cumulative });
        }
        let nslots = d.usize();
        let mut slots = Vec::with_capacity(nslots);
        for _ in 0..nslots {
            let gen = d.u32();
            let stamp = d.u32();
            let state = match d.u8() {
                0 => None,
                _ => {
                    let demands = Vec::<Demand>::decode(d);
                    let total = d.f64();
                    let remaining = d.f64();
                    let rate = d.f64();
                    Some(FlowState { demands, total, remaining, rate })
                }
            };
            slots.push(FlowSlot { gen, stamp, state });
        }
        let free = Vec::<u32>::decode(d);
        let active = d.usize();
        let last_update = SimTime::decode(d);
        let allocation_dirty = d.bool();
        let res_flows = Vec::<Vec<u32>>::decode(d);
        let dirty = Vec::<u32>::decode(d);
        let near_done = d.usize();
        let completion_entries = Vec::<(u64, u32, u32)>::decode(d);
        let full_solve = d.bool();
        let reallocations = d.u64();
        let flows_touched = d.u64();
        let resources_touched = d.u64();
        let mut res_mark = vec![false; resources.len()];
        for &r in &dirty {
            res_mark[r as usize] = true;
        }
        FluidNet {
            scratch_residual: vec![0.0; resources.len()],
            scratch_weight: vec![0.0; resources.len()],
            scratch_count: vec![0; resources.len()],
            scratch_saturated: vec![false; resources.len()],
            flow_mark: vec![false; slots.len()],
            completions: completion_entries.into_iter().map(Reverse).collect(),
            resources,
            slots,
            free,
            active,
            last_update,
            allocation_dirty,
            res_flows,
            dirty,
            res_mark,
            near_done,
            full_solve,
            stats: FluidStats {
                reallocations,
                flows_touched,
                resources_touched,
                completion_heap_len: 0,
            },
        }
    }
}

impl fmt::Display for FluidNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FluidNet @ {} ({} flows)", self.last_update, self.active)?;
        for (i, r) in self.resources.iter().enumerate() {
            writeln!(f, "  r{i} {:<24} {:>12.3e}/{:>12.3e}", r.name, r.used, r.capacity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net1() -> (FluidNet, ResourceId) {
        let mut net = FluidNet::new();
        let r = net.add_resource("link", ResourceKind::Net, 100.0);
        (net, r)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (mut net, r) = net1();
        let f = net.add_flow(vec![Demand::unit(r)], 1000.0);
        net.reallocate();
        assert_eq!(net.flow_rate(f), 100.0);
        assert_eq!(net.used(r), 100.0);
        assert_eq!(net.utilization(r), 1.0);
    }

    #[test]
    fn two_flows_share_equally() {
        let (mut net, r) = net1();
        let a = net.add_flow(vec![Demand::unit(r)], 1000.0);
        let b = net.add_flow(vec![Demand::unit(r)], 500.0);
        net.reallocate();
        assert_eq!(net.flow_rate(a), 50.0);
        assert_eq!(net.flow_rate(b), 50.0);
    }

    #[test]
    fn weighted_demand_consumes_more() {
        let (mut net, r) = net1();
        // Flow with weight 4 consumes 4 capacity units per rate unit.
        let a = net.add_flow(vec![Demand::weighted(r, 4.0)], 100.0);
        let b = net.add_flow(vec![Demand::unit(r)], 100.0);
        net.reallocate();
        // Equal rates x: 4x + x = 100 -> x = 20.
        assert!((net.flow_rate(a) - 20.0).abs() < 1e-9);
        assert!((net.flow_rate(b) - 20.0).abs() < 1e-9);
        assert!((net.used(r) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_across_two_resources() {
        let mut net = FluidNet::new();
        let r1 = net.add_resource("a", ResourceKind::Net, 100.0);
        let r2 = net.add_resource("b", ResourceKind::Net, 30.0);
        // f1 uses both; f2 only r1. f1 bottlenecked at r2.
        let f1 = net.add_flow(vec![Demand::unit(r1), Demand::unit(r2)], 1.0);
        let f2 = net.add_flow(vec![Demand::unit(r1)], 1.0);
        net.reallocate();
        assert!((net.flow_rate(f1) - 30.0).abs() < 1e-9);
        // f2 takes the leftovers on r1: 100 - 30 = 70.
        assert!((net.flow_rate(f2) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn advance_drains_work_and_completes() {
        let (mut net, r) = net1();
        let f = net.add_flow(vec![Demand::unit(r)], 200.0);
        net.reallocate();
        let done_at = net.earliest_completion().expect("one active flow");
        assert_eq!(done_at.as_nanos(), SimTime::from_secs(2).as_nanos() + 1);
        net.advance_to(done_at);
        let finished = net.take_finished();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].id, f);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn remove_flow_returns_remaining() {
        let (mut net, r) = net1();
        let f = net.add_flow(vec![Demand::unit(r)], 200.0);
        net.reallocate();
        net.advance_to(SimTime::from_secs(1));
        let rem = net.remove_flow(f).expect("live flow");
        assert!((rem - 100.0).abs() < 1e-6);
        assert!(net.remove_flow(f).is_none(), "stale handle rejected");
    }

    #[test]
    fn zero_work_flow_finishes_immediately() {
        let (mut net, r) = net1();
        let _f = net.add_flow(vec![Demand::unit(r)], 0.0);
        net.reallocate();
        assert_eq!(net.earliest_completion(), Some(SimTime::ZERO));
        assert_eq!(net.take_finished().len(), 1);
    }

    #[test]
    fn infinite_capacity_gives_capped_rate() {
        let mut net = FluidNet::new();
        let r = net.add_resource("inf", ResourceKind::Other, f64::INFINITY);
        let f = net.add_flow(vec![Demand::unit(r)], 1.0);
        net.reallocate();
        assert!(net.flow_rate(f) >= 1e17);
    }

    #[test]
    fn zero_capacity_stalls_flows() {
        let mut net = FluidNet::new();
        let r = net.add_resource("down", ResourceKind::Net, 0.0);
        let f = net.add_flow(vec![Demand::unit(r)], 1.0);
        net.reallocate();
        assert_eq!(net.flow_rate(f), 0.0);
        assert_eq!(net.earliest_completion(), None);
    }

    #[test]
    fn generations_detect_reuse() {
        let (mut net, r) = net1();
        let f1 = net.add_flow(vec![Demand::unit(r)], 1.0);
        net.remove_flow(f1);
        let f2 = net.add_flow(vec![Demand::unit(r)], 1.0);
        assert_eq!(f1.slot, f2.slot, "slot reused");
        assert!(!net.is_live(f1));
        assert!(net.is_live(f2));
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn time_cannot_go_backwards() {
        let (mut net, _r) = net1();
        net.reallocate();
        net.advance_to(SimTime::from_secs(5));
        net.advance_to(SimTime::from_secs(4));
    }

    #[test]
    fn three_level_maxmin() {
        // Classic example: three links, three flows.
        //   l1 cap 10, l2 cap 20, l3 cap 30
        //   fA: l1       fB: l1+l2      fC: l2+l3
        // Round 1: l1 fair share 5 saturates; fA = fB = 5.
        // Round 2: l2 residual 15, only fC: rate 15 (l3 has 30).
        let mut net = FluidNet::new();
        let l1 = net.add_resource("l1", ResourceKind::Net, 10.0);
        let l2 = net.add_resource("l2", ResourceKind::Net, 20.0);
        let l3 = net.add_resource("l3", ResourceKind::Net, 30.0);
        let fa = net.add_flow(vec![Demand::unit(l1)], 1.0);
        let fb = net.add_flow(vec![Demand::unit(l1), Demand::unit(l2)], 1.0);
        let fc = net.add_flow(vec![Demand::unit(l2), Demand::unit(l3)], 1.0);
        net.reallocate();
        assert!((net.flow_rate(fa) - 5.0).abs() < 1e-9);
        assert!((net.flow_rate(fb) - 5.0).abs() < 1e-9);
        assert!((net.flow_rate(fc) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn untouched_component_keeps_rates_and_is_not_touched() {
        // Two independent links; churn on one must not re-solve the other.
        let mut net = FluidNet::new();
        let r1 = net.add_resource("l1", ResourceKind::Net, 100.0);
        let r2 = net.add_resource("l2", ResourceKind::Net, 60.0);
        let a = net.add_flow(vec![Demand::unit(r1)], 1e6);
        let b = net.add_flow(vec![Demand::unit(r2)], 1e6);
        net.reallocate();
        assert_eq!(net.flow_rate(a), 100.0);
        assert_eq!(net.flow_rate(b), 60.0);
        let touched0 = net.stats().flows_touched;

        // Add churn on l1 only: the re-solve must touch l1's two flows and
        // leave b's rate (and touch count) alone.
        let c = net.add_flow(vec![Demand::unit(r1)], 1e6);
        net.reallocate();
        assert_eq!(net.flow_rate(a), 50.0);
        assert_eq!(net.flow_rate(c), 50.0);
        assert_eq!(net.flow_rate(b), 60.0, "independent component undisturbed");
        assert_eq!(net.stats().flows_touched - touched0, 2, "only l1's component re-solved");
    }

    #[test]
    fn full_solve_mode_matches_incremental() {
        let build = |full: bool| {
            let mut net = FluidNet::new();
            net.set_full_solve(full);
            let r1 = net.add_resource("l1", ResourceKind::Net, 100.0);
            let r2 = net.add_resource("l2", ResourceKind::Net, 40.0);
            let f1 = net.add_flow(vec![Demand::unit(r1)], 500.0);
            net.reallocate();
            let f2 = net.add_flow(vec![Demand::unit(r1), Demand::unit(r2)], 300.0);
            let f3 = net.add_flow(vec![Demand::unit(r2)], 200.0);
            net.reallocate();
            net.advance_to(SimTime::from_secs(1));
            net.remove_flow(f3);
            net.reallocate();
            let e = net.earliest_completion();
            (net.flow_rate(f1), net.flow_rate(f2), net.used(r1), net.cumulative(r2), e)
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn completion_heap_compacts_under_churn() {
        let (mut net, r) = net1();
        // One long-lived flow plus heavy add/remove churn: stale entries
        // must not accumulate past the compaction bound.
        let _keeper = net.add_flow(vec![Demand::unit(r)], 1e12);
        for _ in 0..10_000 {
            let f = net.add_flow(vec![Demand::unit(r)], 1e9);
            net.reallocate();
            net.remove_flow(f);
            net.reallocate();
        }
        let len = net.stats().completion_heap_len;
        assert!(len <= HEAP_COMPACT_MIN.max(HEAP_SLACK * net.active_flows()) + 2, "heap {len}");
    }
}
