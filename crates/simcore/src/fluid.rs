//! Fluid resource model with progressive-filling max-min fairness.
//!
//! This is the timing substrate of the whole platform, in the style of
//! SimGrid's fluid network model. A **resource** is a server with a scalar
//! capacity (bytes/s for links and disks, cycles/s for CPUs). A **flow** is
//! an amount of *work* that drains through a weighted set of resources: a
//! flow running at rate `x` consumes `w_r · x` capacity on every resource
//! `r` it demands. At any instant the kernel assigns rates by max-min
//! fairness: rates are raised uniformly until a resource saturates, the
//! flows crossing it are frozen, and filling continues on the rest.
//!
//! One mechanism expresses every contention effect the vHadoop paper
//! measures: a vCPU cap is a flow demanding {vcpu, host-cpu}; a cross-host
//! transfer demands {src NIC, switch, dst NIC}; dom0 I/O overhead is an
//! extra CPU demand attached to an I/O flow.
//!
//! ## Incremental re-solve (DESIGN.md §13)
//!
//! Max-min fairness decomposes exactly over **connected components** of the
//! flow/resource bipartite graph: the rate of a flow depends only on flows
//! it is (transitively) coupled to through shared resources. The kernel
//! exploits this: every mutation (flow add/remove/finish, capacity change)
//! marks its resources *dirty*, and [`FluidNet::reallocate`] re-solves only
//! the connected components reachable from dirty resources — untouched
//! components keep their rates, which are byte-identical to what a global
//! solve would assign them. A lazy min-heap of projected completion
//! instants ([`FluidNet::earliest_completion`]) replaces the former
//! full-flow scan, so scheduling the next wake costs `O(log flows)` instead
//! of `O(flows)`.
//!
//! ## Arena/SoA storage and parallel re-solve (DESIGN.md §18)
//!
//! Flow state lives in structure-of-arrays arenas: parallel `Vec`s for
//! generation, stamp, rate, remaining, total, plus a flat demand arena
//! (`dem_res`/`dem_w` with per-flow `(start, len)` ranges) so the solver's
//! inner loops are linear scans over dense scalar arrays rather than
//! pointer chases through per-flow heap allocations. Reallocation runs in
//! three phases: **split** the dirty closure into its connected components
//! (serial, deterministic discovery order), **solve** each component
//! independently — on a fixed-size `std::thread::scope` worker pool when
//! the closure is large enough (components are assigned to workers by
//! canonical component index, and each worker writes into its components'
//! pre-carved disjoint output slices) — then **apply** results serially in
//! component order. Because components share no state and outputs land in
//! positions fixed before any thread runs, rates are `f64::to_bits`
//! identical to the sequential pass and thread count is unobservable.

use crate::ids::{FlowId, ResourceId};
use crate::persist::{Decoder, Encoder, Persist};
use crate::stats::SizeHist;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Rates above this are treated as "instantaneous" (flow over only
/// infinite-capacity resources).
const RATE_CAP: f64 = 1e18;
/// Absolute slack under which remaining work counts as finished.
const DONE_EPS: f64 = 1e-6;
/// Completion-heap compaction threshold: rebuild once the heap holds this
/// many entries *and* more than [`HEAP_SLACK`]× the live-flow count.
const HEAP_COMPACT_MIN: usize = 64;
/// See [`HEAP_COMPACT_MIN`].
const HEAP_SLACK: usize = 4;
/// Demand-arena compaction: rebuild once the arena holds at least this many
/// rows *and* more than half of them are garbage (freed flows).
const DEM_COMPACT_MIN: usize = 4096;
/// Minimum dirty-closure flow count before the parallel solve path engages;
/// below this, spawning a worker pool costs more than it saves.
const PAR_MIN_CLOSURE_FLOWS: usize = 1024;

/// What a resource meters; used by monitors to group utilization report rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Compute capacity, cycles per second.
    Cpu,
    /// Disk bandwidth, bytes per second.
    Disk,
    /// Network interface or link bandwidth, bytes per second.
    Net,
    /// Anything else (test fixtures, abstract tokens).
    Other,
}

/// One demand entry of a flow: `weight` units of `resource` capacity are
/// consumed per unit of flow rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// The resource consumed.
    pub resource: ResourceId,
    /// Capacity consumed per unit rate; must be finite and > 0.
    pub weight: f64,
}

impl Demand {
    /// Unit-weight demand on `resource`.
    pub fn unit(resource: ResourceId) -> Self {
        Demand { resource, weight: 1.0 }
    }

    /// Weighted demand on `resource`.
    pub fn weighted(resource: ResourceId, weight: f64) -> Self {
        Demand { resource, weight }
    }
}

/// A finished flow popped from [`FluidNet::take_finished`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishedFlow {
    /// Handle of the flow that drained.
    pub id: FlowId,
}

/// Cumulative kernel work counters (monotonic; see DESIGN.md §13/§18). The
/// perf harness and the check.sh `perf` stage pin ceilings on these, so a
/// regression in incremental behavior fails CI machine-independently.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FluidStats {
    /// Number of [`FluidNet::reallocate`] passes that found dirty state.
    pub reallocations: u64,
    /// Total flows re-solved across all reallocations (the dirty-component
    /// closure size, summed). `flows_touched / reallocations` is the mean
    /// component size — the number the incremental solver drives down.
    pub flows_touched: u64,
    /// Total resources visited across all reallocations.
    pub resources_touched: u64,
    /// Total mutations (flow add/remove/finish, capacity change) absorbed
    /// by coalesced reallocation passes. `batch_applied / reallocations`
    /// is the mean batch size — how much event application amortizes.
    pub batch_applied: u64,
    /// Components solved on the scoped worker pool (thread-dependent by
    /// nature: excluded from snapshots and cross-thread equality checks).
    pub components_solved_parallel: u64,
    /// p50 of per-reallocation component flow counts (lifetime histogram).
    pub comp_size_p50: u64,
    /// p99 of per-reallocation component flow counts.
    pub comp_size_p99: u64,
    /// Largest component (in flows) ever re-solved — the parallel speedup
    /// ceiling: one component is always solved by one worker.
    pub comp_size_max: u64,
    /// Current completion-heap length (live + stale entries).
    pub completion_heap_len: usize,
}

/// One connected component of the dirty closure: ranges into the
/// `comp_flows` / `comp_res` pools.
#[derive(Debug, Clone, Copy, Default)]
struct Comp {
    flow_start: usize,
    flow_len: usize,
    res_start: usize,
    res_len: usize,
}

/// Per-worker scratch for `solve_component`, indexed by component-local
/// resource position (so each worker touches a dense, cache-resident
/// window regardless of network size).
#[derive(Debug, Default, Clone)]
struct SolveScratch {
    residual: Vec<f64>,
    weight: Vec<f64>,
    count: Vec<u32>,
    saturated: Vec<bool>,
    /// Component-local indices of flows not yet frozen this solve.
    unfrozen: Vec<u32>,
    still: Vec<u32>,
}

impl SolveScratch {
    fn ensure(&mut self, res_len: usize) {
        if self.residual.len() < res_len {
            self.residual.resize(res_len, 0.0);
            self.weight.resize(res_len, 0.0);
            self.count.resize(res_len, 0);
            self.saturated.resize(res_len, false);
        }
    }
}

/// Read-only view of everything `solve_component` needs, so component
/// solves can run on scoped worker threads while output slices are carved
/// out of the (separately owned) result pools.
struct SolveView<'a> {
    res_capacity: &'a [f64],
    dem_res: &'a [u32],
    dem_w: &'a [f64],
    f_dem_start: &'a [u32],
    f_dem_len: &'a [u32],
    comp_flows: &'a [u32],
    comp_res: &'a [u32],
    comps: &'a [Comp],
    /// Component-local index of each resource (valid only for resources of
    /// the current closure; written during the split phase).
    res_local: &'a [u32],
}

/// The fluid network: resources plus active flows plus the current max-min
/// allocation, stored as index-based SoA arenas. Time only passes through
/// [`FluidNet::advance_to`]; the [`crate::engine::Engine`] owns the clock
/// and drives this structure.
#[derive(Debug, Clone)]
pub struct FluidNet {
    // ----- resources (SoA) ------------------------------------------------
    res_name: Vec<String>,
    res_kind: Vec<ResourceKind>,
    res_capacity: Vec<f64>,
    /// Capacity currently consumed by the allocation (refreshed on each
    /// reallocation); kept for cheap utilization queries.
    res_used: Vec<f64>,
    /// Total work served since t = 0 (integrated `used · dt`); lets
    /// clients compute exact time-averaged utilization over any window.
    res_cumulative: Vec<f64>,
    /// Live flow slots crossing each resource (one entry per demand row,
    /// so duplicate demands stay balanced with [`FluidNet::detach`]).
    res_flows: Vec<Vec<u32>>,

    // ----- flows (SoA arena, parallel by slot) ----------------------------
    f_gen: Vec<u32>,
    /// Estimate stamp: bumped whenever this slot's rate is re-assigned or
    /// the flow leaves; completion-heap entries with an older stamp are
    /// stale and dropped lazily.
    f_stamp: Vec<u32>,
    f_live: Vec<bool>,
    f_total: Vec<f64>,
    f_remaining: Vec<f64>,
    f_rate: Vec<f64>,
    /// Range of this flow's rows in the flat demand arena.
    f_dem_start: Vec<u32>,
    f_dem_len: Vec<u32>,
    free: Vec<u32>,
    active: usize,

    // ----- flat demand arena ----------------------------------------------
    dem_res: Vec<u32>,
    dem_w: Vec<f64>,
    /// Arena rows owned by freed slots; triggers deterministic compaction.
    dem_garbage: usize,

    last_update: SimTime,
    allocation_dirty: bool,
    /// Seed resources touched since the last reallocate, deduplicated via
    /// `res_mark`.
    dirty: Vec<u32>,
    /// Per-resource dirty/visited mark (shared by seeding and the closure
    /// walk inside `reallocate`; always all-false between calls).
    res_mark: Vec<bool>,
    /// Per-slot visited mark for the closure walk (all-false between calls).
    flow_mark: Vec<bool>,
    /// Live flows with `remaining <= DONE_EPS` — the set that makes
    /// `earliest_completion` return "now" immediately.
    near_done: usize,
    /// Lazy min-heap of projected completions: `(finish_ns, slot, stamp)`.
    /// Entries whose stamp no longer matches the slot are stale.
    completions: BinaryHeap<Reverse<(u64, u32, u32)>>,

    // ----- component split pools (recycled across reallocations) ---------
    comp_flows: Vec<u32>,
    comp_res: Vec<u32>,
    comps: Vec<Comp>,
    comp_rates: Vec<f64>,
    comp_used: Vec<f64>,
    /// Component-local resource index, full network size; only entries for
    /// the current closure are meaningful.
    res_local: Vec<u32>,
    /// Sequential-path solver scratch.
    scratch: SolveScratch,
    /// Worker-pool scratches (lazily grown to the thread count).
    par_scratch: Vec<SolveScratch>,

    /// Worker-pool width for the parallel solve path; 1 = sequential.
    /// Execution strategy, not simulation state: never snapshotted.
    threads: usize,
    /// When true, every reallocation seeds all resources — the former
    /// global solve. Bench baseline knob; output-identical by construction.
    full_solve: bool,
    /// Mutations since the last reallocation that found dirty state.
    pending_mutations: u64,
    stats: FluidStats,
    /// Flow count of every component re-solved, over the net's lifetime.
    comp_hist: SizeHist,
}

impl Default for FluidNet {
    fn default() -> Self {
        Self::new()
    }
}

impl FluidNet {
    /// Empty network at t = 0.
    pub fn new() -> Self {
        FluidNet {
            res_name: Vec::new(),
            res_kind: Vec::new(),
            res_capacity: Vec::new(),
            res_used: Vec::new(),
            res_cumulative: Vec::new(),
            res_flows: Vec::new(),
            f_gen: Vec::new(),
            f_stamp: Vec::new(),
            f_live: Vec::new(),
            f_total: Vec::new(),
            f_remaining: Vec::new(),
            f_rate: Vec::new(),
            f_dem_start: Vec::new(),
            f_dem_len: Vec::new(),
            free: Vec::new(),
            active: 0,
            dem_res: Vec::new(),
            dem_w: Vec::new(),
            dem_garbage: 0,
            last_update: SimTime::ZERO,
            allocation_dirty: false,
            dirty: Vec::new(),
            res_mark: Vec::new(),
            flow_mark: Vec::new(),
            near_done: 0,
            completions: BinaryHeap::new(),
            comp_flows: Vec::new(),
            comp_res: Vec::new(),
            comps: Vec::new(),
            comp_rates: Vec::new(),
            comp_used: Vec::new(),
            res_local: Vec::new(),
            scratch: SolveScratch::default(),
            par_scratch: Vec::new(),
            threads: 1,
            full_solve: false,
            pending_mutations: 0,
            stats: FluidStats::default(),
            comp_hist: SizeHist::new(),
        }
    }

    /// Registers a resource with `capacity` units/second.
    ///
    /// `f64::INFINITY` is a valid capacity for resources that never
    /// constrain (e.g. an ideal backplane in tests).
    pub fn add_resource(
        &mut self,
        name: impl Into<String>,
        kind: ResourceKind,
        capacity: f64,
    ) -> ResourceId {
        assert!(capacity >= 0.0, "resource capacity must be non-negative");
        let id = ResourceId(self.res_name.len() as u32);
        self.res_name.push(name.into());
        self.res_kind.push(kind);
        self.res_capacity.push(capacity);
        self.res_used.push(0.0);
        self.res_cumulative.push(0.0);
        self.res_flows.push(Vec::new());
        self.res_mark.push(false);
        self.res_local.push(0);
        id
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.res_name.len()
    }

    /// Human-readable resource name.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.res_name[r.index()]
    }

    /// The resource's kind, as registered.
    pub fn resource_kind(&self, r: ResourceId) -> ResourceKind {
        self.res_kind[r.index()]
    }

    /// Configured capacity of `r`.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.res_capacity[r.index()]
    }

    /// Changes capacity of `r`; takes effect at the next reallocation.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(capacity >= 0.0, "resource capacity must be non-negative");
        self.res_capacity[r.index()] = capacity;
        self.mark_dirty(r.index());
        self.allocation_dirty = true;
        self.pending_mutations += 1;
    }

    /// Capacity currently consumed on `r` under the present allocation.
    pub fn used(&self, r: ResourceId) -> f64 {
        self.res_used[r.index()]
    }

    /// Total work served on `r` since t = 0 (as of the last `advance_to`).
    pub fn cumulative(&self, r: ResourceId) -> f64 {
        self.res_cumulative[r.index()]
    }

    /// `used / capacity`, clamped to [0, 1]; 0 for infinite capacity.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let cap = self.res_capacity[r.index()];
        if !cap.is_finite() || cap <= 0.0 {
            0.0
        } else {
            (self.res_used[r.index()] / cap).clamp(0.0, 1.0)
        }
    }

    /// Number of flows currently in the system.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Cumulative kernel counters (see [`FluidStats`]).
    pub fn stats(&self) -> FluidStats {
        FluidStats {
            completion_heap_len: self.completions.len(),
            comp_size_p50: self.comp_hist.percentile(0.50),
            comp_size_p99: self.comp_hist.percentile(0.99),
            comp_size_max: self.comp_hist.max(),
            ..self.stats
        }
    }

    /// Lifetime histogram of component flow counts (one sample per
    /// component re-solved, zero-flow capacity-only components excluded).
    pub fn component_hist(&self) -> &SizeHist {
        &self.comp_hist
    }

    /// Forces every reallocation to re-solve the whole network (the former
    /// global algorithm). Rates are identical either way — this is the
    /// bench harness's baseline knob for counter/wall-clock comparisons.
    pub fn set_full_solve(&mut self, on: bool) {
        self.full_solve = on;
    }

    /// Whether full (global) re-solves are forced on.
    pub fn full_solve(&self) -> bool {
        self.full_solve
    }

    /// Sets the solver worker-pool width (clamped to [1, 64]); 1 keeps the
    /// solve sequential. Rates and wakeups are bit-identical at any width,
    /// so this is purely a wall-clock knob and is never snapshotted.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.clamp(1, 64);
    }

    /// Current solver worker-pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Starts a flow of `work` units over `demands`. The allocation is
    /// marked dirty; the caller must `reallocate` (the engine does).
    ///
    /// # Panics
    /// If `demands` is empty, any weight is non-positive/non-finite, any
    /// resource id is unknown, or `work` is negative/non-finite.
    pub fn add_flow(&mut self, demands: Vec<Demand>, work: f64) -> FlowId {
        assert!(!demands.is_empty(), "a flow must demand at least one resource");
        assert!(work.is_finite() && work >= 0.0, "flow work must be finite and >= 0, got {work}");
        for d in &demands {
            assert!(d.weight.is_finite() && d.weight > 0.0, "demand weight must be finite and > 0");
            assert!(d.resource.index() < self.res_name.len(), "unknown resource {}", d.resource);
        }
        let dem_start = self.dem_res.len() as u32;
        let dem_len = demands.len() as u32;
        for d in &demands {
            self.dem_res.push(d.resource.index() as u32);
            self.dem_w.push(d.weight);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let si = s as usize;
                debug_assert!(!self.f_live[si]);
                self.f_live[si] = true;
                self.f_total[si] = work;
                self.f_remaining[si] = work;
                self.f_rate[si] = 0.0;
                self.f_dem_start[si] = dem_start;
                self.f_dem_len[si] = dem_len;
                s
            }
            None => {
                self.f_gen.push(0);
                self.f_stamp.push(0);
                self.f_live.push(true);
                self.f_total.push(work);
                self.f_remaining.push(work);
                self.f_rate.push(0.0);
                self.f_dem_start.push(dem_start);
                self.f_dem_len.push(dem_len);
                self.flow_mark.push(false);
                (self.f_gen.len() - 1) as u32
            }
        };
        if work <= DONE_EPS {
            self.near_done += 1;
        }
        for k in dem_start as usize..(dem_start + dem_len) as usize {
            let r = self.dem_res[k] as usize;
            self.res_flows[r].push(slot);
            self.mark_dirty(r);
        }
        self.active += 1;
        self.allocation_dirty = true;
        self.pending_mutations += 1;
        FlowId { slot, gen: self.f_gen[slot as usize] }
    }

    /// Cancels `id`, returning its remaining work, or `None` if the handle
    /// is stale (already finished/cancelled).
    pub fn remove_flow(&mut self, id: FlowId) -> Option<f64> {
        let si = id.slot as usize;
        if si >= self.f_gen.len() || self.f_gen[si] != id.gen || !self.f_live[si] {
            return None;
        }
        let remaining = self.f_remaining[si];
        self.f_gen[si] = self.f_gen[si].wrapping_add(1);
        self.f_stamp[si] = self.f_stamp[si].wrapping_add(1);
        if remaining <= DONE_EPS {
            self.near_done -= 1;
        }
        self.detach(id.slot);
        self.f_live[si] = false;
        self.dem_garbage += self.f_dem_len[si] as usize;
        self.free.push(id.slot);
        self.active -= 1;
        self.allocation_dirty = true;
        self.pending_mutations += 1;
        Some(remaining)
    }

    /// Flow-arena slot count (live + free): the arena footprint, which only
    /// ever grows to the high-water mark of concurrent flows.
    pub fn flow_arena_slots(&self) -> usize {
        self.f_gen.len()
    }

    /// True if `id` refers to a live flow.
    pub fn is_live(&self, id: FlowId) -> bool {
        let si = id.slot as usize;
        si < self.f_gen.len() && self.f_gen[si] == id.gen && self.f_live[si]
    }

    /// Current rate of `id` (0 if stale).
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        if self.is_live(id) {
            self.f_rate[id.slot as usize]
        } else {
            0.0
        }
    }

    /// Remaining work of `id` as of the last `advance_to` (stale → `None`).
    pub fn flow_remaining(&self, id: FlowId) -> Option<f64> {
        self.is_live(id).then(|| self.f_remaining[id.slot as usize])
    }

    /// Unregisters a departing flow from the per-resource index and marks
    /// its resources dirty (its component must re-solve).
    fn detach(&mut self, slot: u32) {
        let si = slot as usize;
        let d0 = self.f_dem_start[si] as usize;
        let d1 = d0 + self.f_dem_len[si] as usize;
        for k in d0..d1 {
            let r = self.dem_res[k] as usize;
            let list = &mut self.res_flows[r];
            let pos = list.iter().position(|&s| s == slot).expect("flow indexed on its resource");
            list.swap_remove(pos);
            self.mark_dirty(r);
        }
    }

    fn mark_dirty(&mut self, r: usize) {
        if !self.res_mark[r] {
            self.res_mark[r] = true;
            self.dirty.push(r as u32);
        }
    }

    /// Integrates flow progress from the last update instant to `now`.
    ///
    /// # Panics
    /// If `now` is before the last update (time cannot run backwards).
    pub fn advance_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "fluid time ran backwards: {} < {}",
            now,
            self.last_update
        );
        if now == self.last_update {
            return;
        }
        debug_assert!(
            !self.allocation_dirty || self.active == 0,
            "advancing fluid time with a dirty allocation"
        );
        let dt = (now - self.last_update).as_secs_f64();
        let mut crossed = 0usize;
        for si in 0..self.f_live.len() {
            if self.f_live[si] && self.f_rate[si] > 0.0 {
                let rate = self.f_rate[si];
                let before = self.f_remaining[si];
                let after = (before - rate * dt).max(0.0);
                self.f_remaining[si] = after;
                if before > DONE_EPS && after <= DONE_EPS {
                    crossed += 1;
                }
                let d0 = self.f_dem_start[si] as usize;
                let d1 = d0 + self.f_dem_len[si] as usize;
                for k in d0..d1 {
                    self.res_cumulative[self.dem_res[k] as usize] += rate * self.dem_w[k] * dt;
                }
            }
        }
        self.near_done += crossed;
        self.last_update = now;
    }

    /// Recomputes the max-min fair allocation over the flows whose
    /// component changed since the last call.
    ///
    /// Three phases (DESIGN.md §18): **split** the dirty closure into
    /// connected components (serial; discovery order is a pure function of
    /// the mutation sequence), **solve** each component's restricted
    /// progressive filling independently — on the scoped worker pool when
    /// the closure is ≥ [`PAR_MIN_CLOSURE_FLOWS`] flows and spans ≥ 2
    /// components — and **apply** rates/usage/completions serially in
    /// component order. Flows outside the closure keep their rates —
    /// max-min shares of independent components are unaffected by each
    /// other, so the result is identical to a global solve.
    pub fn reallocate(&mut self) {
        self.allocation_dirty = false;
        if self.full_solve {
            for r in 0..self.res_name.len() {
                self.mark_dirty(r);
            }
        }
        if self.dirty.is_empty() {
            return;
        }
        self.stats.reallocations += 1;
        self.stats.batch_applied += self.pending_mutations;
        self.pending_mutations = 0;
        self.compact_demands();

        self.split_components();
        self.solve_components();
        self.apply_components();
        self.compact_completions();
    }

    /// Phase 1: partition the dirty closure into connected components of
    /// the flow/resource bipartite graph. Components are discovered in
    /// dirty-seed order (deterministic: the seed list is the mutation
    /// order); within each component flows are sorted ascending by slot —
    /// the exact accumulation order of the former global pass, so shares
    /// stay bit-identical.
    fn split_components(&mut self) {
        self.comps.clear();
        self.comp_flows.clear();
        self.comp_res.clear();
        let seeds = std::mem::take(&mut self.dirty);
        // `res_mark` currently flags "is in the seed list"; clear it so it
        // can serve as the BFS visited set (a seed absorbed into an earlier
        // component must not start its own).
        for &r in &seeds {
            self.res_mark[r as usize] = false;
        }
        for &seed in &seeds {
            if self.res_mark[seed as usize] {
                continue;
            }
            let flow_start = self.comp_flows.len();
            let res_start = self.comp_res.len();
            self.res_mark[seed as usize] = true;
            self.comp_res.push(seed);
            let mut qi = res_start;
            while qi < self.comp_res.len() {
                let r = self.comp_res[qi] as usize;
                qi += 1;
                for k in 0..self.res_flows[r].len() {
                    let s = self.res_flows[r][k] as usize;
                    if !self.flow_mark[s] {
                        self.flow_mark[s] = true;
                        self.comp_flows.push(s as u32);
                        let d0 = self.f_dem_start[s] as usize;
                        let d1 = d0 + self.f_dem_len[s] as usize;
                        for k2 in d0..d1 {
                            let ri = self.dem_res[k2] as usize;
                            if !self.res_mark[ri] {
                                self.res_mark[ri] = true;
                                self.comp_res.push(ri as u32);
                            }
                        }
                    }
                }
            }
            self.comp_flows[flow_start..].sort_unstable();
            for (j, &r) in self.comp_res[res_start..].iter().enumerate() {
                self.res_local[r as usize] = j as u32;
            }
            self.comps.push(Comp {
                flow_start,
                flow_len: self.comp_flows.len() - flow_start,
                res_start,
                res_len: self.comp_res.len() - res_start,
            });
        }
        // Restore the all-false invariant on the visited marks.
        for &r in &self.comp_res {
            self.res_mark[r as usize] = false;
        }
        for &s in &self.comp_flows {
            self.flow_mark[s as usize] = false;
        }
        // Recycle the seed list's allocation.
        self.dirty = seeds;
        self.dirty.clear();
    }

    /// Phase 2: solve every component into the `comp_rates` / `comp_used`
    /// pools. Output positions are carved out of the pools *before* any
    /// worker runs, each component's slices are disjoint, and the solve
    /// reads only shared immutable state — so the parallel path writes the
    /// same bytes to the same places as the sequential one.
    fn solve_components(&mut self) {
        /// One worker's batch: (component index, rates slice, used slice).
        type WorkerBatch<'a> = Vec<(usize, &'a mut [f64], &'a mut [f64])>;
        let mut rates = std::mem::take(&mut self.comp_rates);
        let mut used = std::mem::take(&mut self.comp_used);
        rates.clear();
        rates.resize(self.comp_flows.len(), 0.0);
        used.clear();
        used.resize(self.comp_res.len(), 0.0);
        let ncomps = self.comps.len();
        let use_par =
            self.threads > 1 && ncomps >= 2 && self.comp_flows.len() >= PAR_MIN_CLOSURE_FLOWS;
        if use_par {
            let workers = self.threads.min(ncomps);
            let mut scratches = std::mem::take(&mut self.par_scratch);
            scratches.resize(workers.max(scratches.len()), SolveScratch::default());
            {
                let view = self.solve_view();
                // Carve disjoint per-component output slices, then deal
                // them round-robin: worker w owns components w, w+n, ...
                // (canonical index → worker assignment).
                let mut work: Vec<WorkerBatch> = (0..workers).map(|_| Vec::new()).collect();
                let mut rates_rest: &mut [f64] = &mut rates;
                let mut used_rest: &mut [f64] = &mut used;
                for (ci, c) in view.comps.iter().enumerate() {
                    let (rs, rr) = rates_rest.split_at_mut(c.flow_len);
                    let (us, ur) = used_rest.split_at_mut(c.res_len);
                    rates_rest = rr;
                    used_rest = ur;
                    work[ci % workers].push((ci, rs, us));
                }
                std::thread::scope(|sc| {
                    for (batch, scratch) in work.into_iter().zip(scratches.iter_mut()) {
                        let view = &view;
                        sc.spawn(move || {
                            for (ci, rs, us) in batch {
                                solve_component(view, ci, scratch, rs, us);
                            }
                        });
                    }
                });
            }
            self.par_scratch = scratches;
            self.stats.components_solved_parallel += ncomps as u64;
        } else {
            let mut scratch = std::mem::take(&mut self.scratch);
            {
                let view = self.solve_view();
                for ci in 0..ncomps {
                    let c = view.comps[ci];
                    let rs = &mut rates[c.flow_start..c.flow_start + c.flow_len];
                    let us = &mut used[c.res_start..c.res_start + c.res_len];
                    solve_component(&view, ci, &mut scratch, rs, us);
                }
            }
            self.scratch = scratch;
        }
        self.comp_rates = rates;
        self.comp_used = used;
    }

    fn solve_view(&self) -> SolveView<'_> {
        SolveView {
            res_capacity: &self.res_capacity,
            dem_res: &self.dem_res,
            dem_w: &self.dem_w,
            f_dem_start: &self.f_dem_start,
            f_dem_len: &self.f_dem_len,
            comp_flows: &self.comp_flows,
            comp_res: &self.comp_res,
            comps: &self.comps,
            res_local: &self.res_local,
        }
    }

    /// Phase 3: commit solved rates and resource usage, re-stamp every
    /// touched flow, and index projected completions — serially, in
    /// canonical component order, so the heap and counters never see the
    /// worker schedule.
    fn apply_components(&mut self) {
        for ci in 0..self.comps.len() {
            let c = self.comps[ci];
            self.stats.flows_touched += c.flow_len as u64;
            self.stats.resources_touched += c.res_len as u64;
            if c.flow_len > 0 {
                self.comp_hist.push(c.flow_len as u64);
            }
            for i in 0..c.flow_len {
                let s = self.comp_flows[c.flow_start + i];
                let si = s as usize;
                self.f_rate[si] = self.comp_rates[c.flow_start + i];
                self.f_stamp[si] = self.f_stamp[si].wrapping_add(1);
                if self.f_rate[si] > 0.0 {
                    let d = SimDuration::from_secs_f64(self.f_remaining[si] / self.f_rate[si]);
                    let key = self.last_update.as_nanos().saturating_add(d.as_nanos());
                    self.completions.push(Reverse((key, s, self.f_stamp[si])));
                }
            }
            for j in 0..c.res_len {
                let r = self.comp_res[c.res_start + j] as usize;
                self.res_used[r] = self.comp_used[c.res_start + j];
            }
        }
    }

    /// Rebuilds the flat demand arena once freed rows dominate it,
    /// repacking live flows in ascending slot order. Deterministic (a pure
    /// function of the logical state) and invisible to snapshots, which
    /// encode per-flow demand lists rather than arena offsets.
    fn compact_demands(&mut self) {
        if self.dem_res.len() < DEM_COMPACT_MIN || self.dem_garbage * 2 <= self.dem_res.len() {
            return;
        }
        let live = self.dem_res.len() - self.dem_garbage;
        let mut new_res = Vec::with_capacity(live);
        let mut new_w = Vec::with_capacity(live);
        for si in 0..self.f_live.len() {
            if !self.f_live[si] {
                continue;
            }
            let d0 = self.f_dem_start[si] as usize;
            let d1 = d0 + self.f_dem_len[si] as usize;
            self.f_dem_start[si] = new_res.len() as u32;
            new_res.extend_from_slice(&self.dem_res[d0..d1]);
            new_w.extend_from_slice(&self.dem_w[d0..d1]);
        }
        self.dem_res = new_res;
        self.dem_w = new_w;
        self.dem_garbage = 0;
    }

    /// Drops stale completion entries wholesale once they dominate the
    /// heap, bounding memory under long flow churn.
    fn compact_completions(&mut self) {
        if self.completions.len() <= HEAP_COMPACT_MIN
            || self.completions.len() <= HEAP_SLACK * self.active
        {
            return;
        }
        let mut entries = std::mem::take(&mut self.completions).into_vec();
        entries.retain(|&Reverse((_, s, stamp))| {
            self.f_stamp[s as usize] == stamp && self.f_live[s as usize]
        });
        self.completions = BinaryHeap::from(entries);
    }

    /// The next instant at which some flow drains, given current rates, or
    /// `None` if no flow is progressing. The allocation must be clean.
    ///
    /// Served from the completion index: stale heap entries are popped
    /// lazily, and the winning flow's instant is recomputed from its
    /// remaining work *now* — the same arithmetic (and therefore the same
    /// nanosecond) as the former full scan.
    pub fn earliest_completion(&mut self) -> Option<SimTime> {
        debug_assert!(!self.allocation_dirty, "earliest_completion on dirty allocation");
        if self.near_done > 0 {
            return Some(self.last_update);
        }
        while let Some(&Reverse((_, s, stamp))) = self.completions.peek() {
            let si = s as usize;
            if self.f_stamp[si] == stamp && self.f_live[si] && self.f_rate[si] > 0.0 {
                break;
            }
            self.completions.pop();
        }
        let &Reverse((_, s, _)) = self.completions.peek()?;
        let si = s as usize;
        let secs = self.f_remaining[si] / self.f_rate[si];
        // Round up one nanosecond so the event lands at-or-after the true
        // completion instant.
        let d = SimDuration::from_secs_f64(secs).saturating_add(SimDuration::from_nanos(1));
        Some(self.last_update + d)
    }

    /// Removes and returns every flow whose work has drained (as of the
    /// last `advance_to`). The allocation becomes dirty if any finished.
    pub fn take_finished(&mut self) -> Vec<FinishedFlow> {
        let mut done = Vec::new();
        for i in 0..self.f_live.len() {
            if !self.f_live[i] {
                continue;
            }
            if self.f_remaining[i] <= DONE_EPS.max(self.f_total[i] * 1e-12) {
                let id = FlowId { slot: i as u32, gen: self.f_gen[i] };
                self.f_gen[i] = self.f_gen[i].wrapping_add(1);
                self.f_stamp[i] = self.f_stamp[i].wrapping_add(1);
                if self.f_remaining[i] <= DONE_EPS {
                    self.near_done -= 1;
                }
                self.detach(i as u32);
                self.f_live[i] = false;
                self.dem_garbage += self.f_dem_len[i] as usize;
                self.free.push(i as u32);
                self.active -= 1;
                self.allocation_dirty = true;
                self.pending_mutations += 1;
                done.push(FinishedFlow { id });
            }
        }
        done
    }

    /// Instant of the last `advance_to`.
    pub fn now(&self) -> SimTime {
        self.last_update
    }

    /// True when `reallocate` must run before time can advance again.
    pub fn is_dirty(&self) -> bool {
        self.allocation_dirty
    }

    /// Per-resource `(name, kind, used, capacity)` rows for monitors.
    pub fn usage_snapshot(&self) -> Vec<(ResourceId, ResourceKind, f64, f64)> {
        (0..self.res_name.len())
            .map(|i| {
                (ResourceId(i as u32), self.res_kind[i], self.res_used[i], self.res_capacity[i])
            })
            .collect()
    }

    /// Demand list of a live slot, reconstructed from the arena (encode and
    /// debug paths only).
    fn slot_demands(&self, si: usize) -> Vec<Demand> {
        let d0 = self.f_dem_start[si] as usize;
        let d1 = d0 + self.f_dem_len[si] as usize;
        (d0..d1)
            .map(|k| Demand { resource: ResourceId(self.dem_res[k]), weight: self.dem_w[k] })
            .collect()
    }
}

/// Restricted progressive filling over one connected component: every
/// unfrozen flow's rate rises uniformly; the resource with the smallest
/// residual fair share saturates first and freezes every flow crossing it;
/// repeat. Scratch is indexed by component-local resource position (via
/// `view.res_local`); rates land in `rates` (parallel to the component's
/// flow list), per-resource usage in `used` (parallel to its resource
/// list). Pure function of `view` + the component id: safe to run on any
/// worker, bit-identical wherever it runs.
fn solve_component(
    view: &SolveView<'_>,
    ci: usize,
    scratch: &mut SolveScratch,
    rates: &mut [f64],
    used: &mut [f64],
) {
    let c = view.comps[ci];
    let flows = &view.comp_flows[c.flow_start..c.flow_start + c.flow_len];
    let res = &view.comp_res[c.res_start..c.res_start + c.res_len];
    scratch.ensure(res.len());
    for (j, &r) in res.iter().enumerate() {
        scratch.residual[j] = view.res_capacity[r as usize];
        scratch.weight[j] = 0.0;
        scratch.count[j] = 0;
        used[j] = 0.0;
    }
    for &s in flows {
        let d0 = view.f_dem_start[s as usize] as usize;
        let d1 = d0 + view.f_dem_len[s as usize] as usize;
        for k in d0..d1 {
            let j = view.res_local[view.dem_res[k] as usize] as usize;
            scratch.weight[j] += view.dem_w[k];
            scratch.count[j] += 1;
        }
    }

    scratch.unfrozen.clear();
    scratch.unfrozen.extend(0..flows.len() as u32);
    while !scratch.unfrozen.is_empty() {
        // Find the bottleneck share among component resources that still
        // carry unfrozen flows (the integer count is the authoritative
        // membership test — floating-point weight subtraction can leave
        // dust).
        let mut share = f64::INFINITY;
        for j in 0..res.len() {
            if scratch.count[j] > 0 && scratch.weight[j] > 0.0 {
                let s = scratch.residual[j] / scratch.weight[j];
                if s < share {
                    share = s;
                }
            }
        }
        let share = share.clamp(0.0, RATE_CAP);

        // Freeze flows that cross a saturating resource (or all of them
        // when nothing constrains).
        let tol = share * 1e-12 + 1e-30;
        let mut any_saturated = false;
        for j in 0..res.len() {
            scratch.saturated[j] = false;
            if share < RATE_CAP
                && scratch.count[j] > 0
                && scratch.weight[j] > 0.0
                && scratch.residual[j] / scratch.weight[j] <= share + tol
            {
                scratch.saturated[j] = true;
                any_saturated = true;
            }
        }

        scratch.still.clear();
        for ui in 0..scratch.unfrozen.len() {
            let li = scratch.unfrozen[ui];
            let s = flows[li as usize] as usize;
            let d0 = view.f_dem_start[s] as usize;
            let d1 = d0 + view.f_dem_len[s] as usize;
            let frozen_now = !any_saturated
                || (d0..d1)
                    .any(|k| scratch.saturated[view.res_local[view.dem_res[k] as usize] as usize]);
            if frozen_now {
                rates[li as usize] = share;
                for k in d0..d1 {
                    let j = view.res_local[view.dem_res[k] as usize] as usize;
                    let w = view.dem_w[k];
                    scratch.residual[j] = (scratch.residual[j] - share * w).max(0.0);
                    scratch.weight[j] -= w;
                    scratch.count[j] -= 1;
                    if scratch.count[j] == 0 {
                        scratch.weight[j] = 0.0;
                    }
                    used[j] += share * w;
                }
            } else {
                scratch.still.push(li);
            }
        }
        debug_assert!(
            scratch.still.len() < scratch.unfrozen.len(),
            "progressive filling must freeze at least one flow per round"
        );
        std::mem::swap(&mut scratch.unfrozen, &mut scratch.still);
    }
}

// ----- persistence (DESIGN.md §16/§18) ------------------------------------

impl FluidNet {
    /// Drops *every* stale completion-index entry (not just when the lazy
    /// threshold trips). Part of the canonicalize-before-encode rule: two
    /// byte-identical fluid states must produce byte-identical snapshots no
    /// matter how much lazily-deferred garbage each carries. Removing stale
    /// entries is unobservable — they are skipped on pop anyway.
    pub fn canonicalize(&mut self) {
        let mut entries = std::mem::take(&mut self.completions).into_vec();
        entries.retain(|&Reverse((_, s, stamp))| {
            self.f_stamp[s as usize] == stamp && self.f_live[s as usize]
        });
        self.completions = BinaryHeap::from(entries);
    }

    /// Appends the complete network state to `e`, canonicalizing first.
    /// The completion heap is written as a sorted vector; demand lists are
    /// written per-flow (arena offsets are layout, not state, so demand
    /// compaction never perturbs snapshot bytes); scratch buffers, visit
    /// marks, component pools, the thread knob, and the thread-dependent
    /// `components_solved_parallel` counter are rebuilt or reset on decode
    /// rather than encoded.
    pub(crate) fn encode_state(&mut self, e: &mut Encoder) {
        self.canonicalize();
        e.usize(self.res_name.len());
        for i in 0..self.res_name.len() {
            e.str(&self.res_name[i]);
            self.res_kind[i].encode(e);
            e.f64(self.res_capacity[i]);
            e.f64(self.res_used[i]);
            e.f64(self.res_cumulative[i]);
        }
        e.usize(self.f_gen.len());
        for si in 0..self.f_gen.len() {
            e.u32(self.f_gen[si]);
            e.u32(self.f_stamp[si]);
            if self.f_live[si] {
                e.u8(1);
                self.slot_demands(si).encode(e);
                e.f64(self.f_total[si]);
                e.f64(self.f_remaining[si]);
                e.f64(self.f_rate[si]);
            } else {
                e.u8(0);
            }
        }
        self.free.encode(e);
        e.usize(self.active);
        self.last_update.encode(e);
        e.bool(self.allocation_dirty);
        self.res_flows.encode(e);
        self.dirty.encode(e);
        e.usize(self.near_done);
        let mut entries: Vec<(u64, u32, u32)> =
            self.completions.iter().map(|&Reverse(t)| t).collect();
        entries.sort_unstable();
        entries.encode(e);
        e.bool(self.full_solve);
        e.u64(self.stats.reallocations);
        e.u64(self.stats.flows_touched);
        e.u64(self.stats.resources_touched);
        e.u64(self.stats.batch_applied);
        e.u64(self.pending_mutations);
        self.comp_hist.counts.encode(e);
        e.u64(self.comp_hist.overflow);
        e.u64(self.comp_hist.n);
        e.u64(self.comp_hist.max);
    }

    /// Rebuilds a network from bytes written by
    /// [`FluidNet::encode_state`].
    pub(crate) fn decode_state(d: &mut Decoder) -> FluidNet {
        let mut net = FluidNet::new();
        let nres = d.usize();
        for _ in 0..nres {
            net.res_name.push(d.str());
            net.res_kind.push(ResourceKind::decode(d));
            net.res_capacity.push(d.f64());
            net.res_used.push(d.f64());
            net.res_cumulative.push(d.f64());
        }
        let nslots = d.usize();
        for _ in 0..nslots {
            net.f_gen.push(d.u32());
            net.f_stamp.push(d.u32());
            let live = d.u8() != 0;
            net.f_live.push(live);
            if live {
                let demands = Vec::<Demand>::decode(d);
                net.f_dem_start.push(net.dem_res.len() as u32);
                net.f_dem_len.push(demands.len() as u32);
                for dem in &demands {
                    net.dem_res.push(dem.resource.index() as u32);
                    net.dem_w.push(dem.weight);
                }
                net.f_total.push(d.f64());
                net.f_remaining.push(d.f64());
                net.f_rate.push(d.f64());
            } else {
                net.f_dem_start.push(0);
                net.f_dem_len.push(0);
                net.f_total.push(0.0);
                net.f_remaining.push(0.0);
                net.f_rate.push(0.0);
            }
        }
        net.free = Vec::<u32>::decode(d);
        net.active = d.usize();
        net.last_update = SimTime::decode(d);
        net.allocation_dirty = d.bool();
        net.res_flows = Vec::<Vec<u32>>::decode(d);
        net.dirty = Vec::<u32>::decode(d);
        net.near_done = d.usize();
        let completion_entries = Vec::<(u64, u32, u32)>::decode(d);
        net.completions = completion_entries.into_iter().map(Reverse).collect();
        net.full_solve = d.bool();
        net.stats.reallocations = d.u64();
        net.stats.flows_touched = d.u64();
        net.stats.resources_touched = d.u64();
        net.stats.batch_applied = d.u64();
        net.pending_mutations = d.u64();
        net.comp_hist.counts = Vec::<u64>::decode(d);
        net.comp_hist.overflow = d.u64();
        net.comp_hist.n = d.u64();
        net.comp_hist.max = d.u64();
        net.res_mark = vec![false; net.res_name.len()];
        for &r in &net.dirty.clone() {
            net.res_mark[r as usize] = true;
        }
        net.res_local = vec![0; net.res_name.len()];
        net.flow_mark = vec![false; net.f_gen.len()];
        net
    }
}

impl fmt::Display for FluidNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FluidNet @ {} ({} flows)", self.last_update, self.active)?;
        for i in 0..self.res_name.len() {
            writeln!(
                f,
                "  r{i} {:<24} {:>12.3e}/{:>12.3e}",
                self.res_name[i], self.res_used[i], self.res_capacity[i]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net1() -> (FluidNet, ResourceId) {
        let mut net = FluidNet::new();
        let r = net.add_resource("link", ResourceKind::Net, 100.0);
        (net, r)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (mut net, r) = net1();
        let f = net.add_flow(vec![Demand::unit(r)], 1000.0);
        net.reallocate();
        assert_eq!(net.flow_rate(f), 100.0);
        assert_eq!(net.used(r), 100.0);
        assert_eq!(net.utilization(r), 1.0);
    }

    #[test]
    fn two_flows_share_equally() {
        let (mut net, r) = net1();
        let a = net.add_flow(vec![Demand::unit(r)], 1000.0);
        let b = net.add_flow(vec![Demand::unit(r)], 500.0);
        net.reallocate();
        assert_eq!(net.flow_rate(a), 50.0);
        assert_eq!(net.flow_rate(b), 50.0);
    }

    #[test]
    fn weighted_demand_consumes_more() {
        let (mut net, r) = net1();
        // Flow with weight 4 consumes 4 capacity units per rate unit.
        let a = net.add_flow(vec![Demand::weighted(r, 4.0)], 100.0);
        let b = net.add_flow(vec![Demand::unit(r)], 100.0);
        net.reallocate();
        // Equal rates x: 4x + x = 100 -> x = 20.
        assert!((net.flow_rate(a) - 20.0).abs() < 1e-9);
        assert!((net.flow_rate(b) - 20.0).abs() < 1e-9);
        assert!((net.used(r) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_across_two_resources() {
        let mut net = FluidNet::new();
        let r1 = net.add_resource("a", ResourceKind::Net, 100.0);
        let r2 = net.add_resource("b", ResourceKind::Net, 30.0);
        // f1 uses both; f2 only r1. f1 bottlenecked at r2.
        let f1 = net.add_flow(vec![Demand::unit(r1), Demand::unit(r2)], 1.0);
        let f2 = net.add_flow(vec![Demand::unit(r1)], 1.0);
        net.reallocate();
        assert!((net.flow_rate(f1) - 30.0).abs() < 1e-9);
        // f2 takes the leftovers on r1: 100 - 30 = 70.
        assert!((net.flow_rate(f2) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn advance_drains_work_and_completes() {
        let (mut net, r) = net1();
        let f = net.add_flow(vec![Demand::unit(r)], 200.0);
        net.reallocate();
        let done_at = net.earliest_completion().expect("one active flow");
        assert_eq!(done_at.as_nanos(), SimTime::from_secs(2).as_nanos() + 1);
        net.advance_to(done_at);
        let finished = net.take_finished();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].id, f);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn remove_flow_returns_remaining() {
        let (mut net, r) = net1();
        let f = net.add_flow(vec![Demand::unit(r)], 200.0);
        net.reallocate();
        net.advance_to(SimTime::from_secs(1));
        let rem = net.remove_flow(f).expect("live flow");
        assert!((rem - 100.0).abs() < 1e-6);
        assert!(net.remove_flow(f).is_none(), "stale handle rejected");
    }

    #[test]
    fn zero_work_flow_finishes_immediately() {
        let (mut net, r) = net1();
        let _f = net.add_flow(vec![Demand::unit(r)], 0.0);
        net.reallocate();
        assert_eq!(net.earliest_completion(), Some(SimTime::ZERO));
        assert_eq!(net.take_finished().len(), 1);
    }

    #[test]
    fn infinite_capacity_gives_capped_rate() {
        let mut net = FluidNet::new();
        let r = net.add_resource("inf", ResourceKind::Other, f64::INFINITY);
        let f = net.add_flow(vec![Demand::unit(r)], 1.0);
        net.reallocate();
        assert!(net.flow_rate(f) >= 1e17);
    }

    #[test]
    fn zero_capacity_stalls_flows() {
        let mut net = FluidNet::new();
        let r = net.add_resource("down", ResourceKind::Net, 0.0);
        let f = net.add_flow(vec![Demand::unit(r)], 1.0);
        net.reallocate();
        assert_eq!(net.flow_rate(f), 0.0);
        assert_eq!(net.earliest_completion(), None);
    }

    #[test]
    fn generations_detect_reuse() {
        let (mut net, r) = net1();
        let f1 = net.add_flow(vec![Demand::unit(r)], 1.0);
        net.remove_flow(f1);
        let f2 = net.add_flow(vec![Demand::unit(r)], 1.0);
        assert_eq!(f1.slot, f2.slot, "slot reused");
        assert!(!net.is_live(f1));
        assert!(net.is_live(f2));
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    fn time_cannot_go_backwards() {
        let (mut net, _r) = net1();
        net.reallocate();
        net.advance_to(SimTime::from_secs(5));
        net.advance_to(SimTime::from_secs(4));
    }

    #[test]
    fn three_level_maxmin() {
        // Classic example: three links, three flows.
        //   l1 cap 10, l2 cap 20, l3 cap 30
        //   fA: l1       fB: l1+l2      fC: l2+l3
        // Round 1: l1 fair share 5 saturates; fA = fB = 5.
        // Round 2: l2 residual 15, only fC: rate 15 (l3 has 30).
        let mut net = FluidNet::new();
        let l1 = net.add_resource("l1", ResourceKind::Net, 10.0);
        let l2 = net.add_resource("l2", ResourceKind::Net, 20.0);
        let l3 = net.add_resource("l3", ResourceKind::Net, 30.0);
        let fa = net.add_flow(vec![Demand::unit(l1)], 1.0);
        let fb = net.add_flow(vec![Demand::unit(l1), Demand::unit(l2)], 1.0);
        let fc = net.add_flow(vec![Demand::unit(l2), Demand::unit(l3)], 1.0);
        net.reallocate();
        assert!((net.flow_rate(fa) - 5.0).abs() < 1e-9);
        assert!((net.flow_rate(fb) - 5.0).abs() < 1e-9);
        assert!((net.flow_rate(fc) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn untouched_component_keeps_rates_and_is_not_touched() {
        // Two independent links; churn on one must not re-solve the other.
        let mut net = FluidNet::new();
        let r1 = net.add_resource("l1", ResourceKind::Net, 100.0);
        let r2 = net.add_resource("l2", ResourceKind::Net, 60.0);
        let a = net.add_flow(vec![Demand::unit(r1)], 1e6);
        let b = net.add_flow(vec![Demand::unit(r2)], 1e6);
        net.reallocate();
        assert_eq!(net.flow_rate(a), 100.0);
        assert_eq!(net.flow_rate(b), 60.0);
        let touched0 = net.stats().flows_touched;

        // Add churn on l1 only: the re-solve must touch l1's two flows and
        // leave b's rate (and touch count) alone.
        let c = net.add_flow(vec![Demand::unit(r1)], 1e6);
        net.reallocate();
        assert_eq!(net.flow_rate(a), 50.0);
        assert_eq!(net.flow_rate(c), 50.0);
        assert_eq!(net.flow_rate(b), 60.0, "independent component undisturbed");
        assert_eq!(net.stats().flows_touched - touched0, 2, "only l1's component re-solved");
    }

    #[test]
    fn full_solve_mode_matches_incremental() {
        let build = |full: bool| {
            let mut net = FluidNet::new();
            net.set_full_solve(full);
            let r1 = net.add_resource("l1", ResourceKind::Net, 100.0);
            let r2 = net.add_resource("l2", ResourceKind::Net, 40.0);
            let f1 = net.add_flow(vec![Demand::unit(r1)], 500.0);
            net.reallocate();
            let f2 = net.add_flow(vec![Demand::unit(r1), Demand::unit(r2)], 300.0);
            let f3 = net.add_flow(vec![Demand::unit(r2)], 200.0);
            net.reallocate();
            net.advance_to(SimTime::from_secs(1));
            net.remove_flow(f3);
            net.reallocate();
            let e = net.earliest_completion();
            (net.flow_rate(f1), net.flow_rate(f2), net.used(r1), net.cumulative(r2), e)
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn completion_heap_compacts_under_churn() {
        let (mut net, r) = net1();
        // One long-lived flow plus heavy add/remove churn: stale entries
        // must not accumulate past the compaction bound.
        let _keeper = net.add_flow(vec![Demand::unit(r)], 1e12);
        for _ in 0..10_000 {
            let f = net.add_flow(vec![Demand::unit(r)], 1e9);
            net.reallocate();
            net.remove_flow(f);
            net.reallocate();
        }
        let len = net.stats().completion_heap_len;
        assert!(len <= HEAP_COMPACT_MIN.max(HEAP_SLACK * net.active_flows()) + 2, "heap {len}");
    }

    #[test]
    fn demand_arena_compacts_under_churn() {
        let (mut net, r) = net1();
        let keeper = net.add_flow(vec![Demand::unit(r), Demand::weighted(r, 2.0)], 1e12);
        for _ in 0..10_000 {
            let f = net.add_flow(vec![Demand::unit(r), Demand::unit(r)], 1e9);
            net.reallocate();
            net.remove_flow(f);
            net.reallocate();
        }
        // Garbage from 10k freed 2-row flows must not accumulate: the
        // arena stays within the compaction bound, and the survivor's
        // demand range stays intact across every compaction.
        assert!(
            net.dem_res.len() <= DEM_COMPACT_MIN + 4,
            "demand arena grew to {}",
            net.dem_res.len()
        );
        assert_eq!(net.slot_demands(keeper.slot as usize).len(), 2);
        assert!((net.flow_rate(keeper) - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn arena_reuse_is_aba_safe() {
        // Freed slot reused by a new flow: every read through the stale
        // handle must miss, and the recycled slot's state must be fully
        // re-initialized (no leakage from the dead flow).
        let mut net = FluidNet::new();
        let r1 = net.add_resource("l1", ResourceKind::Net, 100.0);
        let r2 = net.add_resource("l2", ResourceKind::Net, 60.0);
        let dead = net.add_flow(vec![Demand::unit(r1), Demand::unit(r1)], 500.0);
        net.reallocate();
        net.remove_flow(dead);
        let reborn = net.add_flow(vec![Demand::unit(r2)], 120.0);
        net.reallocate();
        assert_eq!(dead.slot, reborn.slot, "free list must recycle the slot");
        assert!(!net.is_live(dead));
        assert_eq!(net.flow_rate(dead), 0.0);
        assert_eq!(net.flow_remaining(dead), None);
        assert!(net.remove_flow(dead).is_none(), "stale cancel must miss the reborn flow");
        assert!(net.is_live(reborn));
        assert_eq!(net.flow_rate(reborn), 60.0);
        assert_eq!(net.used(r1), 0.0, "dead flow's demands fully detached");
        // The reborn flow finishes on its own schedule — the dead flow's
        // stale completion entries must not surface it early.
        let t = net.earliest_completion().expect("reborn flow progressing");
        assert_eq!(t.as_nanos(), SimTime::from_secs(2).as_nanos() + 1);
    }

    /// Builds a many-component net (several independent links, many flows
    /// each) large enough to clear `PAR_MIN_CLOSURE_FLOWS`, solves it at
    /// the given thread count, and returns every rate's bit pattern.
    fn parallel_fixture(threads: usize) -> (Vec<u64>, FluidStats) {
        let mut net = FluidNet::new();
        net.set_threads(threads);
        let links: Vec<ResourceId> = (0..8)
            .map(|i| net.add_resource(format!("l{i}"), ResourceKind::Net, 50.0 + 25.0 * i as f64))
            .collect();
        let mut flows = Vec::new();
        for i in 0..(2 * PAR_MIN_CLOSURE_FLOWS) {
            let l = links[i % links.len()];
            let w = [0.5, 1.0, 2.0][i % 3];
            flows.push(net.add_flow(vec![Demand::weighted(l, w)], 1e9));
        }
        net.reallocate();
        let bits = flows.iter().map(|&f| net.flow_rate(f).to_bits()).collect();
        (bits, net.stats())
    }

    #[test]
    fn parallel_solve_is_bit_identical_to_sequential() {
        let (seq_bits, seq_stats) = parallel_fixture(1);
        for threads in [2, 3, 8] {
            let (par_bits, par_stats) = parallel_fixture(threads);
            assert_eq!(seq_bits, par_bits, "rates diverged at threads={threads}");
            // All counters except the thread-dependent parallel tally must
            // match the sequential run exactly.
            let scrub = |s: FluidStats| FluidStats { components_solved_parallel: 0, ..s };
            assert_eq!(scrub(seq_stats), scrub(par_stats));
        }
        // The fixture is big enough that the pool actually engaged.
        let (_, par_stats) = parallel_fixture(8);
        assert!(par_stats.components_solved_parallel >= 8, "worker pool never engaged");
        assert_eq!(seq_stats.components_solved_parallel, 0);
    }

    #[test]
    fn batch_counters_track_coalesced_mutations() {
        let (mut net, r) = net1();
        let a = net.add_flow(vec![Demand::unit(r)], 1e6);
        let b = net.add_flow(vec![Demand::unit(r)], 1e6);
        net.set_capacity(r, 80.0);
        net.remove_flow(b);
        net.reallocate();
        let s = net.stats();
        assert_eq!(s.reallocations, 1, "four mutations coalesced into one pass");
        assert_eq!(s.batch_applied, 4);
        assert_eq!(net.flow_rate(a), 80.0);
        // A clean pass applies nothing further.
        net.reallocate();
        assert_eq!(net.stats().batch_applied, 4);
    }

    #[test]
    fn component_histogram_records_sizes() {
        let mut net = FluidNet::new();
        let r1 = net.add_resource("l1", ResourceKind::Net, 100.0);
        let r2 = net.add_resource("l2", ResourceKind::Net, 60.0);
        for _ in 0..3 {
            net.add_flow(vec![Demand::unit(r1)], 1e6);
        }
        net.add_flow(vec![Demand::unit(r2)], 1e6);
        net.reallocate();
        let s = net.stats();
        assert_eq!(net.component_hist().count(), 2, "two components solved");
        assert_eq!(s.comp_size_max, 3);
        // Nearest-rank p50 of the two samples {1, 3} resolves to the upper.
        assert_eq!(s.comp_size_p50, 3);
        // Re-solving only the singleton link leaves the max untouched and
        // pulls the median down.
        net.add_flow(vec![Demand::unit(r2)], 1e6);
        net.reallocate();
        let s = net.stats();
        assert_eq!(net.component_hist().count(), 3);
        assert_eq!(s.comp_size_max, 3);
        assert_eq!(s.comp_size_p50, 2, "samples {{1, 2, 3}} -> median 2");
    }
}
