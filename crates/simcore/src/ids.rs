//! Identifier newtypes shared by the simulation kernel and its clients.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Index of a fluid resource inside a [`crate::fluid::FluidNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Raw index (dense, allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index. Only valid for indices previously
    /// produced by the same `FluidNet`.
    pub fn from_index(i: usize) -> Self {
        ResourceId(i as u32)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Generational handle to an active flow. Stale handles (flow already
/// finished or cancelled) are detected and rejected by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}.{}", self.slot, self.gen)
    }
}

/// Generational handle to a scheduled timer. Like [`FlowId`], the handle
/// pairs an arena slot with the slot's generation at allocation time, so a
/// handle kept past its timer's firing or cancellation can never reach a
/// recycled slot (ABA protection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.slot, self.gen)
    }
}

/// Handle to a running activity (a chain of steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActivityId(pub(crate) u64);

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Handle to a batch (AND-join of activities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId(pub(crate) u64);

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Routing tag attached to timers and activities.
///
/// The kernel never interprets tags; client subsystems use `owner` to route
/// a [`crate::engine::Wakeup`] to the right component and `a`/`b` as opaque
/// payload (task ids, VM ids, round numbers, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Tag {
    /// Subsystem that owns the completion.
    pub owner: u32,
    /// First payload word.
    pub a: u32,
    /// Second payload word.
    pub b: u64,
}

impl Tag {
    /// Convenience constructor.
    pub const fn new(owner: u32, a: u32, b: u64) -> Self {
        Tag { owner, a, b }
    }

    /// A tag with only the owner set.
    pub const fn owner(owner: u32) -> Self {
        Tag { owner, a: 0, b: 0 }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag({}:{}:{})", self.owner, self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_id_round_trips() {
        let r = ResourceId::from_index(7);
        assert_eq!(r.index(), 7);
        assert_eq!(format!("{r}"), "r7");
    }

    #[test]
    fn tag_constructors() {
        let t = Tag::new(1, 2, 3);
        assert_eq!((t.owner, t.a, t.b), (1, 2, 3));
        assert_eq!(Tag::owner(9).owner, 9);
        assert_eq!(Tag::owner(9).a, 0);
    }
}
