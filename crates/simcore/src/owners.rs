//! Central registry of wakeup-owner codes.
//!
//! Every subsystem stamps the [`crate::ids::Tag::owner`] field of its
//! activities and timers with its code so the platform driver can route
//! [`crate::engine::Wakeup`]s without dynamic dispatch. Codes live here, in
//! the lowest layer, so independent crates can never collide.

/// Virtual-cluster internals (boot, shutdown).
pub const CLUSTER: u32 = 1;
/// Live-migration manager (pre-copy rounds, stop-and-copy).
pub const MIGRATION: u32 = 2;
/// HDFS pipelines (block reads/writes, replication).
pub const HDFS: u32 = 3;
/// MapReduce engine (task phases, shuffle batches, heartbeats).
pub const MAPREDUCE: u32 = 4;
/// nmon-style monitor sampling timers.
pub const MONITOR: u32 = 5;
/// MapReduce tuner probes.
pub const TUNER: u32 = 6;
/// Workload drivers (DFSIO etc. when not going through MapReduce).
pub const WORKLOAD: u32 = 7;
/// Fault-injection driver timers ([`crate::faults::FaultPlan`] events).
pub const FAULT: u32 = 8;
/// Closed-loop control plane (admission ticks, job arrivals, rebalancer).
pub const CTRL: u32 = 9;
/// Reserved for tests and ad-hoc client code.
pub const USER: u32 = 100;
