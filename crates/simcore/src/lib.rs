//! # simcore — deterministic discrete-event kernel with a fluid resource model
//!
//! This crate is the timing substrate of **vHadoop-rs**. It provides:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — integer-nanosecond clock;
//! * [`fluid::FluidNet`] — resources (CPU cycles/s, disk & link bytes/s)
//!   shared by *flows* under progressive-filling max-min fairness, the same
//!   fluid abstraction SimGrid uses to model contention;
//! * [`engine::Engine`] — event queue, timers, and *activities*: chains of
//!   flow/delay steps, optionally AND-joined into batches, whose completions
//!   surface as tagged [`engine::Wakeup`]s;
//! * [`rng::RootSeed`] — labelled deterministic random streams;
//! * [`faults`] — a scriptable fault taxonomy ([`faults::FaultKind`]) and
//!   deterministic, seed-drivable schedules ([`faults::FaultPlan`]);
//! * [`stats`] — summary statistics used by monitors and benches;
//! * [`trace::Tracer`] — span + counter registry recorded against the
//!   simulation clock, with Chrome `trace_event` and CSV exporters.
//!
//! Higher layers (virtual cluster, HDFS, MapReduce) express every timed
//! action as an activity and react to wakeups; no component ever reads a
//! wall clock, so a whole platform run is a pure function of its
//! configuration and root seed.
//!
//! ## Example
//!
//! ```
//! use simcore::prelude::*;
//!
//! let mut e = Engine::new();
//! let link = e.add_resource("link", ResourceKind::Net, 125_000_000.0); // 1 Gb/s
//! // Two 125 MB transfers share the link: each runs at 62.5 MB/s.
//! e.start_flow(vec![Demand::unit(link)], 125e6, Tag::new(1, 0, 0));
//! e.start_flow(vec![Demand::unit(link)], 125e6, Tag::new(1, 1, 0));
//! let (t, _) = e.next_wakeup().unwrap();
//! assert_eq!(t.as_secs_f64().round() as u64, 2);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod fluid;
pub mod ids;
pub mod owners;
pub mod persist;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

/// One-stop imports for kernel clients.
pub mod prelude {
    pub use crate::engine::{ChainSpec, Engine, KernelStats, Step, Wakeup};
    pub use crate::faults::{FaultEvent, FaultKind, FaultPlan, FaultProfile};
    pub use crate::fluid::{Demand, FluidNet, FluidStats, ResourceKind};
    pub use crate::ids::{ActivityId, BatchId, FlowId, ResourceId, Tag, TimerId};
    pub use crate::persist::{
        validate_header, Decoder, Encoder, Persist, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
    };
    pub use crate::rng::RootSeed;
    pub use crate::stats::{OnlineStats, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{CategoryStats, CounterSample, Name, Span, Tracer};
}
