//! Small statistics helpers shared by the monitor and the bench harness.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Summary of a finished sample set, including percentiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `xs` (empty input produces an all-zero summary).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let mut acc = OnlineStats::new();
        for &x in xs {
            acc.push(x);
        }
        Summary {
            n: xs.len(),
            mean: acc.mean(),
            stddev: acc.stddev(),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Fixed-bucket histogram of small integer sizes (one bucket per value up
/// to [`SizeHist::EXACT`], a single overflow bucket above that which
/// remembers only the maximum). Used by the fluid kernel to record the
/// flow count of every connected component it re-solves, so the parallel
/// speedup ceiling (p99 / max component size) is observable.
///
/// Deterministic: state is a pure function of the pushed samples, so the
/// histogram participates in snapshot round-trips.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHist {
    /// `counts[s]` = number of samples of size `s` (lazily grown, capped
    /// at `EXACT` entries).
    pub(crate) counts: Vec<u64>,
    /// Samples with size >= `EXACT`.
    pub(crate) overflow: u64,
    /// Total samples.
    pub(crate) n: u64,
    /// Largest sample seen.
    pub(crate) max: u64,
}

impl SizeHist {
    /// Sizes below this are counted exactly; at or above, only the count
    /// and the running maximum are kept.
    pub const EXACT: u64 = 1024;

    /// Empty histogram.
    pub fn new() -> Self {
        SizeHist::default()
    }

    /// Records one sample.
    pub fn push(&mut self, size: u64) {
        self.n += 1;
        self.max = self.max.max(size);
        if size < Self::EXACT {
            let idx = size as usize;
            if self.counts.len() <= idx {
                self.counts.resize(idx + 1, 0);
            }
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Nearest-rank percentile; `p` in [0, 1]. Samples that landed in the
    /// overflow bucket resolve to the maximum. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = (p * (self.n - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (size, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return size as u64;
            }
        }
        self.max
    }
}

/// Nearest-rank percentile over a pre-sorted slice; `p` in [0, 1].
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 1.0);
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 5);
        assert!((acc.mean() - 4.0).abs() < 1e-12);
        assert_eq!(acc.min(), Some(1.0));
        assert_eq!(acc.max(), Some(10.0));
        // Population variance: mean 4, squared devs 9+4+1+0+36 = 50, /5 = 10.
        assert!((acc.variance() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let acc = OnlineStats::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), None);
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
    }

    #[test]
    fn summary_percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
    }

    #[test]
    fn size_hist_percentiles_and_overflow() {
        let mut h = SizeHist::new();
        for s in 1..=100u64 {
            h.push(s);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100);
        assert!(h.percentile(0.5).abs_diff(50) <= 1);
        assert!(h.percentile(0.99).abs_diff(99) <= 1);
        assert_eq!(h.percentile(1.0), 100);
        // Overflow samples resolve to the max.
        h.push(SizeHist::EXACT + 7);
        assert_eq!(h.max(), SizeHist::EXACT + 7);
        assert_eq!(h.percentile(1.0), SizeHist::EXACT + 7);
        // Empty histogram is all zeros.
        let e = SizeHist::new();
        assert_eq!(e.percentile(0.5), 0);
        assert_eq!(e.max(), 0);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.stddev, 0.0);
    }
}
