//! Edge-case tests of the engine: capacity changes mid-flight, same-instant
//! ordering, cancellations on every step kind, and degenerate batches.

use simcore::owners::USER;
use simcore::prelude::*;

fn engine() -> (Engine, ResourceId) {
    let mut e = Engine::new();
    let r = e.add_resource("r", ResourceKind::Net, 100.0);
    (e, r)
}

#[test]
fn capacity_change_mid_flow_reprices_completion() {
    let (mut e, r) = engine();
    e.start_flow(vec![Demand::unit(r)], 200.0, Tag::new(USER, 1, 0));
    // Halve the capacity at t=0 (before any progress): 200/50 = 4 s.
    e.set_capacity(r, 50.0);
    let (t, _) = e.next_wakeup().expect("completes");
    assert!((t.as_secs_f64() - 4.0).abs() < 1e-6, "got {t}");
}

#[test]
fn same_instant_events_fire_in_submission_order() {
    let (mut e, _r) = engine();
    for i in 0..5u32 {
        e.set_timer_at(SimTime::from_secs(1), Tag::new(USER, i, 0));
    }
    let mut order = Vec::new();
    while let Some((t, w)) = e.next_wakeup() {
        assert_eq!(t, SimTime::from_secs(1));
        order.push(w.tag().a);
    }
    assert_eq!(order, vec![0, 1, 2, 3, 4], "stable FIFO at equal timestamps");
}

#[test]
fn cancel_activity_during_delay_step() {
    let (mut e, r) = engine();
    let a = e.start_chain(
        ChainSpec::new().delay(SimDuration::from_secs(5)).on(r, 100.0),
        Tag::new(USER, 1, 0),
    );
    assert!(e.cancel_activity(a));
    assert!(!e.is_active(a));
    assert!(e.next_wakeup().is_none(), "nothing left scheduled");
}

#[test]
fn cancel_is_idempotent() {
    let (mut e, r) = engine();
    let a = e.start_flow(vec![Demand::unit(r)], 100.0, Tag::new(USER, 1, 0));
    assert!(e.cancel_activity(a));
    assert!(!e.cancel_activity(a), "second cancel reports failure");
}

#[test]
fn batch_of_empty_chains_completes_at_now() {
    let (mut e, _r) = engine();
    let members =
        vec![(ChainSpec::new(), Tag::new(USER, 1, 0)), (ChainSpec::new(), Tag::new(USER, 2, 0))];
    e.start_batch(members, Tag::new(USER, 9, 0));
    let mut saw_batch = false;
    while let Some((t, w)) = e.next_wakeup() {
        assert_eq!(t, SimTime::ZERO);
        if matches!(w, Wakeup::Batch { .. }) {
            saw_batch = true;
        }
    }
    assert!(saw_batch);
}

#[test]
fn interleaved_batches_join_independently() {
    let (mut e, r) = engine();
    let b1 = e.start_batch(
        vec![(ChainSpec::new().on(r, 100.0), Tag::new(USER, 1, 0))],
        Tag::new(USER, 101, 0),
    );
    let b2 = e.start_batch(
        vec![(ChainSpec::new().on(r, 300.0), Tag::new(USER, 2, 0))],
        Tag::new(USER, 102, 0),
    );
    let mut batches = Vec::new();
    while let Some((t, w)) = e.next_wakeup() {
        if let Wakeup::Batch { id, tag } = w {
            batches.push((id, tag.a, t.as_secs_f64()));
        }
    }
    assert_eq!(batches.len(), 2);
    assert_eq!(batches[0].0, b1);
    assert_eq!(batches[1].0, b2);
    assert!(batches[0].2 < batches[1].2);
}

#[test]
fn wakeups_drain_in_time_order_across_kinds() {
    let (mut e, r) = engine();
    e.set_timer_in(SimDuration::from_millis(1500), Tag::new(USER, 10, 0));
    e.start_flow(vec![Demand::unit(r)], 100.0, Tag::new(USER, 20, 0)); // 1 s
    e.set_timer_in(SimDuration::from_millis(500), Tag::new(USER, 30, 0));
    let mut seen = Vec::new();
    while let Some((_, w)) = e.next_wakeup() {
        seen.push(w.tag().a);
    }
    assert_eq!(seen, vec![30, 20, 10]);
}

#[test]
fn zero_capacity_then_restore_resumes_flow() {
    let (mut e, r) = engine();
    e.start_flow(vec![Demand::unit(r)], 100.0, Tag::new(USER, 1, 0));
    e.set_capacity(r, 0.0); // stall
                            // Nothing can complete; restore capacity via a timer-driven edit.
    e.set_timer_in(SimDuration::from_secs(2), Tag::new(USER, 99, 0));
    let (t, w) = e.next_wakeup().expect("timer fires");
    assert_eq!(w.tag().a, 99);
    e.set_capacity(r, 100.0);
    let (t2, w2) = e.next_wakeup().expect("flow resumes");
    assert_eq!(w2.tag().a, 1);
    // Stalled for 2 s, then 1 s of work.
    assert!((t2.as_secs_f64() - (t.as_secs_f64() + 1.0)).abs() < 1e-6);
}

#[test]
fn many_flows_on_many_resources_complete_exactly_once() {
    let mut e = Engine::new();
    let rs: Vec<ResourceId> = (0..8)
        .map(|i| e.add_resource(format!("r{i}"), ResourceKind::Other, 50.0 + f64::from(i)))
        .collect();
    let n = 200u32;
    for i in 0..n {
        let a = rs[(i % 8) as usize];
        let b = rs[((i * 3 + 1) % 8) as usize];
        let demands =
            if a == b { vec![Demand::unit(a)] } else { vec![Demand::unit(a), Demand::unit(b)] };
        e.start_flow(demands, 10.0 + f64::from(i), Tag::new(USER, i, 0));
    }
    let mut seen = vec![0u32; n as usize];
    while let Some((_, w)) = e.next_wakeup() {
        seen[w.tag().a as usize] += 1;
    }
    assert!(seen.iter().all(|&c| c == 1), "every flow exactly once");
}
