//! Property-based tests of the fluid max-min allocator and the engine.

use proptest::prelude::*;
use simcore::prelude::*;

/// Random capacity in a sane positive range.
fn cap_strategy() -> impl Strategy<Value = f64> {
    (1.0f64..1e6).prop_map(|x| x)
}

/// A flow demands 1..=3 distinct resources with weights in [0.1, 8].
#[derive(Debug, Clone)]
struct FlowSpec {
    resources: Vec<usize>,
    weights: Vec<f64>,
    work: f64,
}

fn flow_strategy(n_resources: usize) -> impl Strategy<Value = FlowSpec> {
    (
        proptest::collection::btree_set(0..n_resources, 1..=3.min(n_resources)),
        proptest::collection::vec(0.1f64..8.0, 3),
        1.0f64..1e5,
    )
        .prop_map(|(set, weights, work)| {
            let resources: Vec<usize> = set.into_iter().collect();
            FlowSpec { weights: weights[..resources.len()].to_vec(), resources, work }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After reallocation: no finite resource is over capacity, all rates
    /// are non-negative, and every flow is bottlenecked somewhere (one of
    /// its resources is saturated) — the defining property of max-min.
    #[test]
    fn maxmin_feasible_and_bottlenecked(
        caps in proptest::collection::vec(cap_strategy(), 1..6),
        flows in proptest::collection::vec(flow_strategy(6), 1..12),
    ) {
        let mut net = FluidNet::new();
        let rids: Vec<ResourceId> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_resource(format!("r{i}"), ResourceKind::Other, c))
            .collect();
        let mut fids = Vec::new();
        for f in &flows {
            let demands: Vec<Demand> = f
                .resources
                .iter()
                .zip(&f.weights)
                .filter(|(&r, _)| r < rids.len())
                .map(|(&r, &w)| Demand::weighted(rids[r], w))
                .collect();
            if demands.is_empty() {
                continue;
            }
            fids.push((net.add_flow(demands.clone(), f.work), demands));
        }
        prop_assume!(!fids.is_empty());
        net.reallocate();

        // Feasibility: used <= capacity (with slack for fp error).
        for &r in &rids {
            let cap = net.capacity(r);
            prop_assert!(net.used(r) <= cap * (1.0 + 1e-9) + 1e-9,
                "resource {} over capacity: {} > {}", r, net.used(r), cap);
        }

        // Rates non-negative; every flow bottlenecked on some resource.
        for (fid, demands) in &fids {
            let rate = net.flow_rate(*fid);
            prop_assert!(rate >= 0.0);
            let bottlenecked = demands.iter().any(|d| {
                let r = d.resource;
                net.used(r) >= net.capacity(r) * (1.0 - 1e-6)
            });
            prop_assert!(bottlenecked,
                "flow {} (rate {}) has no saturated resource", fid, rate);
        }
    }

    /// Work conservation on a single resource: total allocated rate equals
    /// capacity whenever any flow is active.
    #[test]
    fn single_resource_work_conserving(
        cap in cap_strategy(),
        works in proptest::collection::vec(1.0f64..1e4, 1..10),
    ) {
        let mut net = FluidNet::new();
        let r = net.add_resource("r", ResourceKind::Other, cap);
        for &w in &works {
            net.add_flow(vec![Demand::unit(r)], w);
        }
        net.reallocate();
        prop_assert!((net.used(r) - cap).abs() <= cap * 1e-9);
        prop_assert!((net.utilization(r) - 1.0).abs() <= 1e-9);
    }

    /// Engine completions arrive in non-decreasing time order and every
    /// started flow completes exactly once.
    #[test]
    fn engine_completes_everything_in_order(
        works in proptest::collection::vec(1.0f64..1e4, 1..20),
        cap in cap_strategy(),
    ) {
        let mut e = Engine::new();
        let r = e.add_resource("r", ResourceKind::Other, cap);
        for (i, &w) in works.iter().enumerate() {
            e.start_flow(vec![Demand::unit(r)], w, Tag::new(1, i as u32, 0));
        }
        let mut seen = vec![false; works.len()];
        let mut last = SimTime::ZERO;
        while let Some((t, w)) = e.next_wakeup() {
            prop_assert!(t >= last, "wakeup time went backwards");
            last = t;
            let i = w.tag().a as usize;
            prop_assert!(!seen[i], "double completion for flow {i}");
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "not all flows completed");
    }

    /// On one shared resource, larger flows never finish before smaller
    /// ones (equal shares => completion order follows work order).
    #[test]
    fn completion_order_follows_work(
        mut works in proptest::collection::vec(1.0f64..1e4, 2..10),
    ) {
        // Make works strictly distinct to avoid tie ambiguity.
        works.sort_by(|a, b| a.partial_cmp(b).unwrap());
        works.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        prop_assume!(works.len() >= 2);

        let mut e = Engine::new();
        let r = e.add_resource("r", ResourceKind::Other, 100.0);
        // Start in shuffled-ish order (reversed) to decouple from insert order.
        for (i, &w) in works.iter().enumerate().rev() {
            e.start_flow(vec![Demand::unit(r)], w, Tag::new(1, i as u32, 0));
        }
        let mut order = Vec::new();
        while let Some((_, w)) = e.next_wakeup() {
            order.push(w.tag().a as usize);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&order, &sorted, "completions out of work order");
    }
}
