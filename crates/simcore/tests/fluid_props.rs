//! Randomized-but-deterministic tests of the fluid max-min allocator and
//! the engine: the invariants of the old proptest suite, driven by seeded
//! loops (the offline build has no proptest).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simcore::prelude::*;

/// Random capacity in a sane positive range.
fn random_cap(rng: &mut StdRng) -> f64 {
    rng.gen_range(1.0..1e6)
}

/// A flow demanding 1..=3 distinct resources with weights in [0.1, 8].
fn random_flow(rng: &mut StdRng, n_resources: usize) -> (Vec<usize>, Vec<f64>, f64) {
    let k = rng.gen_range(1..=3usize.min(n_resources));
    let mut resources: Vec<usize> = Vec::new();
    while resources.len() < k {
        let r = rng.gen_range(0..n_resources);
        if !resources.contains(&r) {
            resources.push(r);
        }
    }
    resources.sort_unstable();
    let weights: Vec<f64> = resources.iter().map(|_| rng.gen_range(0.1..8.0)).collect();
    (resources, weights, rng.gen_range(1.0..1e5))
}

/// After reallocation: no finite resource is over capacity, all rates are
/// non-negative, and every flow is bottlenecked somewhere (one of its
/// resources is saturated) — the defining property of max-min.
#[test]
fn maxmin_feasible_and_bottlenecked() {
    let mut rng = StdRng::seed_from_u64(0xF1D0);
    for _case in 0..64 {
        let n_res = rng.gen_range(1..6usize);
        let mut net = FluidNet::new();
        let rids: Vec<ResourceId> = (0..n_res)
            .map(|i| net.add_resource(format!("r{i}"), ResourceKind::Other, random_cap(&mut rng)))
            .collect();
        let n_flows = rng.gen_range(1..12usize);
        let mut fids = Vec::new();
        for _ in 0..n_flows {
            let (resources, weights, work) = random_flow(&mut rng, n_res);
            let demands: Vec<Demand> = resources
                .iter()
                .zip(&weights)
                .map(|(&r, &w)| Demand::weighted(rids[r], w))
                .collect();
            fids.push((net.add_flow(demands.clone(), work), demands));
        }
        net.reallocate();

        // Feasibility: used <= capacity (with slack for fp error).
        for &r in &rids {
            let cap = net.capacity(r);
            assert!(
                net.used(r) <= cap * (1.0 + 1e-9) + 1e-9,
                "resource {} over capacity: {} > {}",
                r,
                net.used(r),
                cap
            );
        }

        // Rates non-negative; every flow bottlenecked on some resource.
        for (fid, demands) in &fids {
            let rate = net.flow_rate(*fid);
            assert!(rate >= 0.0);
            let bottlenecked = demands.iter().any(|d| {
                let r = d.resource;
                net.used(r) >= net.capacity(r) * (1.0 - 1e-6)
            });
            assert!(bottlenecked, "flow {fid} (rate {rate}) has no saturated resource");
        }
    }
}

/// Work conservation on a single resource: total allocated rate equals
/// capacity whenever any flow is active.
#[test]
fn single_resource_work_conserving() {
    let mut rng = StdRng::seed_from_u64(0xC0175);
    for _case in 0..64 {
        let cap = random_cap(&mut rng);
        let mut net = FluidNet::new();
        let r = net.add_resource("r", ResourceKind::Other, cap);
        for _ in 0..rng.gen_range(1..10usize) {
            net.add_flow(vec![Demand::unit(r)], rng.gen_range(1.0..1e4));
        }
        net.reallocate();
        assert!((net.used(r) - cap).abs() <= cap * 1e-9);
        assert!((net.utilization(r) - 1.0).abs() <= 1e-9);
    }
}

/// Engine completions arrive in non-decreasing time order and every
/// started flow completes exactly once.
#[test]
fn engine_completes_everything_in_order() {
    let mut rng = StdRng::seed_from_u64(0xE2E2);
    for _case in 0..48 {
        let n = rng.gen_range(1..20usize);
        let mut e = Engine::new();
        let r = e.add_resource("r", ResourceKind::Other, random_cap(&mut rng));
        for i in 0..n {
            e.start_flow(vec![Demand::unit(r)], rng.gen_range(1.0..1e4), Tag::new(1, i as u32, 0));
        }
        let mut seen = vec![false; n];
        let mut last = SimTime::ZERO;
        while let Some((t, w)) = e.next_wakeup() {
            assert!(t >= last, "wakeup time went backwards");
            last = t;
            let i = w.tag().a as usize;
            assert!(!seen[i], "double completion for flow {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all flows completed");
    }
}

/// On one shared resource, larger flows never finish before smaller ones
/// (equal shares => completion order follows work order).
#[test]
fn completion_order_follows_work() {
    let mut rng = StdRng::seed_from_u64(0x0BDE2);
    for _case in 0..48 {
        let n = rng.gen_range(2..10usize);
        let mut works: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..1e4)).collect();
        works.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        works.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        if works.len() < 2 {
            continue;
        }

        let mut e = Engine::new();
        let r = e.add_resource("r", ResourceKind::Other, 100.0);
        // Start in reversed order to decouple from insert order.
        for (i, &w) in works.iter().enumerate().rev() {
            e.start_flow(vec![Demand::unit(r)], w, Tag::new(1, i as u32, 0));
        }
        let mut order = Vec::new();
        while let Some((_, w)) = e.next_wakeup() {
            order.push(w.tag().a as usize);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "completions out of work order");
    }
}
