//! Speculative execution: a straggling map (its VM crushed by outside
//! load) gets a backup attempt, and the job finishes sooner.

use mapreduce::prelude::*;
use simcore::prelude::*;
use vcluster::prelude::{ClusterSpec, Placement};
use vhdfs::hdfs::HdfsConfig;

const MB: u64 = 1024 * 1024;

struct SlowSquare;
impl MapReduceApp for SlowSquare {
    fn name(&self) -> &str {
        "slow-square"
    }
    fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        out(k.clone(), V::Float(v.as_float() * v.as_float()));
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        out(k.clone(), vs[0].clone());
    }
    fn cost(&self) -> CostProfile {
        // CPU-heavy maps so a loaded VM really straggles.
        CostProfile { map_cpu_per_record: 1.2e8, ..Default::default() }
    }
}

/// Runs the job with a crushing background load on one tracker VM.
fn run(speculative: bool) -> JobResult {
    let spec = ClusterSpec::builder().hosts(2).vms(5).placement(Placement::SingleDomain).build();
    let mut rt = MrRuntime::new(spec, HdfsConfig { block_size: MB, replication: 2 }, RootSeed(31));
    rt.register_input("/in", 4 * MB - 1, VmId(1));

    // Crush vm1's VCPU with competing flows for a long time.
    for i in 0..8 {
        let demands = rt.cluster.cpu_demands(VmId(1));
        rt.engine.start_flow(demands, 2.4e9 * 600.0, Tag::new(simcore::owners::USER, i, 0));
    }

    let input = GeneratorInput::new(4, MB, |idx| {
        (0..40).map(|i| (K::Int((idx * 100 + i) as i64), V::Float(i as f64))).collect()
    });
    let config = JobConfig {
        speculative,
        locality_aware: false, // force round-robin so vm1 gets a map
        use_combiner: false,
        num_reduces: 1,
        ..Default::default()
    };
    let job = JobSpec::new("sq", "/in", format!("/out-{speculative}")).with_config(config);
    rt.run_job(job, Box::new(SlowSquare), Box::new(input))
}

#[test]
fn speculation_rescues_stragglers() {
    let without = run(false);
    let with = run(true);
    assert_eq!(without.counters.speculative_maps, 0);
    assert!(
        with.counters.speculative_maps >= 1,
        "a backup attempt launched, got {:?}",
        with.counters.speculative_maps
    );
    assert!(
        with.elapsed_secs() < without.elapsed_secs() * 0.9,
        "speculation helps: {:.1}s vs {:.1}s",
        with.elapsed_secs(),
        without.elapsed_secs()
    );
    // Output identical either way.
    let mut a = with.outputs.clone();
    let mut b = without.outputs.clone();
    a.sort_by(|x, y| x.0.cmp(&y.0));
    b.sort_by(|x, y| x.0.cmp(&y.0));
    assert_eq!(a, b, "speculation must not change results");
}

#[test]
fn speculation_idle_cluster_launches_no_backups() {
    // No stragglers -> no speculative attempts even when enabled.
    let spec = ClusterSpec::builder().hosts(2).vms(5).placement(Placement::SingleDomain).build();
    let mut rt = MrRuntime::new(spec, HdfsConfig { block_size: MB, replication: 2 }, RootSeed(32));
    rt.register_input("/in", 4 * MB - 1, VmId(1));
    let input = GeneratorInput::new(4, MB, |idx| {
        (0..40).map(|i| (K::Int((idx * 100 + i) as i64), V::Float(i as f64))).collect()
    });
    let config = JobConfig { speculative: true, ..Default::default() };
    let job = JobSpec::new("sq", "/in", "/out").with_config(config);
    let result = rt.run_job(job, Box::new(SlowSquare), Box::new(input));
    assert_eq!(result.counters.speculative_maps, 0, "balanced cluster needs no speculation");
}
