//! End-to-end tests of the MapReduce engine on the simulated cluster.

use mapreduce::prelude::*;
use simcore::prelude::*;
use vcluster::prelude::{ClusterSpec, Placement};
use vhdfs::hdfs::HdfsConfig;

const MB: u64 = 1024 * 1024;

/// Wordcount with a combiner — the canonical app.
struct WordCount;

impl MapReduceApp for WordCount {
    fn name(&self) -> &str {
        "wordcount"
    }
    fn map(&self, _k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
        for w in v.as_text().split_whitespace() {
            out(K::from(w), V::Int(1));
        }
    }
    fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
        out(k.clone(), V::Int(vs.iter().map(V::as_int).sum()));
    }
    fn combine(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) -> bool {
        out(k.clone(), V::Int(vs.iter().map(V::as_int).sum()));
        true
    }
}

fn runtime(placement: Placement, vms: u32) -> MrRuntime {
    let spec = ClusterSpec::builder().hosts(2).vms(vms).placement(placement).build();
    MrRuntime::new(spec, HdfsConfig { block_size: 8 * MB, replication: 2 }, RootSeed(11))
}

/// Builds a small text corpus input: `splits` splits of `lines` lines each.
fn corpus(splits: usize, lines: usize) -> VecInput {
    let text = ["the quick brown fox", "jumps over the lazy dog", "the dog barks"];
    let mut shards = Vec::new();
    for s in 0..splits {
        let mut recs: Vec<Record> = Vec::new();
        for l in 0..lines {
            recs.push((K::Int(l as i64), V::from(text[(s + l) % text.len()])));
        }
        shards.push(recs);
    }
    VecInput::new(shards)
}

fn register_and_run(rt: &mut MrRuntime, splits: usize, config: JobConfig) -> JobResult {
    // Input sized to produce exactly `splits` HDFS blocks.
    rt.register_input("/in", (splits as u64) * 8 * MB - 1, VmId(1));
    let spec = JobSpec::new("wc", "/in", "/out").with_config(config);
    rt.run_job(spec, Box::new(WordCount), Box::new(corpus(splits, 50)))
}

#[test]
fn wordcount_produces_correct_counts() {
    let mut rt = runtime(Placement::SingleDomain, 8);
    let result = register_and_run(&mut rt, 3, JobConfig::default());
    // 150 lines over 3 texts → expected totals computable.
    let get = |w: &str| -> i64 {
        result.outputs.iter().find(|(k, _)| *k == K::from(w)).map(|(_, v)| v.as_int()).unwrap_or(0)
    };
    // Lines are distributed evenly over the 3 texts: 150 lines total, 50
    // each; "the" appears once per text.
    assert_eq!(get("the"), 150);
    assert_eq!(get("dog"), 50 + 50);
    assert_eq!(get("fox"), 50);
    assert_eq!(get("zebra"), 0);
    assert!(result.elapsed_secs() > 1.0, "job takes simulated time");
    assert_eq!(result.counters.launched_maps, 3);
    assert_eq!(result.counters.launched_reduces, 1);
    assert_eq!(result.counters.map_input_records, 150);
}

#[test]
fn combiner_cuts_shuffle_traffic() {
    let with = {
        let mut rt = runtime(Placement::SingleDomain, 8);
        register_and_run(&mut rt, 3, JobConfig::default().with_combiner(true))
    };
    let without = {
        let mut rt = runtime(Placement::SingleDomain, 8);
        register_and_run(&mut rt, 3, JobConfig::default().with_combiner(false))
    };
    assert!(
        with.counters.shuffle_bytes < without.counters.shuffle_bytes / 2,
        "combiner shrinks shuffle: {} vs {}",
        with.counters.shuffle_bytes,
        without.counters.shuffle_bytes
    );
    // Results identical either way.
    let mut a = with.outputs.clone();
    let mut b = without.outputs.clone();
    a.sort_by(|x, y| x.0.cmp(&y.0));
    b.sort_by(|x, y| x.0.cmp(&y.0));
    assert_eq!(a, b);
}

#[test]
fn locality_aware_scheduling_reads_locally() {
    let mut rt = runtime(Placement::SingleDomain, 8);
    let result = register_and_run(&mut rt, 4, JobConfig::default().with_locality(true));
    assert!(
        result.counters.data_locality() > 0.7,
        "most maps data-local, got {}",
        result.counters.data_locality()
    );
}

#[test]
fn map_only_job_writes_output_directly() {
    struct Identity;
    impl MapReduceApp for Identity {
        fn name(&self) -> &str {
            "identity"
        }
        fn map(&self, k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
            out(k.clone(), v.clone());
        }
        fn reduce(&self, _k: &K, _vs: &[V], _out: &mut dyn FnMut(K, V)) {
            unreachable!("map-only job never reduces");
        }
    }
    let mut rt = runtime(Placement::SingleDomain, 8);
    let input = GeneratorInput::new(4, MB, |idx| {
        (0..100).map(|i| (K::Int((idx * 100 + i) as i64), V::Float(i as f64))).collect()
    });
    let spec = JobSpec::generated("gen", "/gen-out").with_config(JobConfig::map_only());
    let result = rt.run_job(spec, Box::new(Identity), Box::new(input));
    assert_eq!(result.outputs.len(), 400);
    assert_eq!(result.counters.launched_reduces, 0);
    assert!(rt.hdfs.stat("/gen-out/part-m-00000").is_some(), "output file exists");
    assert!(result.reduce_phase.is_zero());
}

#[test]
fn more_reduces_spread_output_partitions() {
    let mut rt = runtime(Placement::SingleDomain, 8);
    let result = register_and_run(&mut rt, 3, JobConfig::default().with_reduces(4));
    assert_eq!(result.counters.launched_reduces, 4);
    for r in 0..4 {
        assert!(rt.hdfs.stat(&format!("/out/part-r-{r:05}")).is_some(), "part-r-{r:05} written");
    }
    // All words still counted exactly once across partitions.
    let total: i64 = result.outputs.iter().map(|(_, v)| v.as_int()).sum();
    assert_eq!(total, 150 * 4, "every word occurrence counted once");
}

#[test]
fn cross_domain_is_slower_than_normal() {
    let normal = {
        let mut rt = runtime(Placement::SingleDomain, 8);
        register_and_run(&mut rt, 6, JobConfig::default().with_reduces(3))
    };
    let cross = {
        let mut rt = runtime(Placement::CrossDomain, 8);
        register_and_run(&mut rt, 6, JobConfig::default().with_reduces(3))
    };
    assert!(
        cross.elapsed_secs() >= normal.elapsed_secs() * 0.95,
        "cross-domain ({:.2}s) must not beat normal ({:.2}s) meaningfully",
        cross.elapsed_secs(),
        normal.elapsed_secs()
    );
}

#[test]
fn concurrent_jobs_share_the_cluster() {
    let mut rt = runtime(Placement::SingleDomain, 8);
    rt.register_input("/in-a", 16 * MB - 1, VmId(1));
    rt.register_input("/in-b", 16 * MB - 1, VmId(2));
    let spec_a = JobSpec::new("a", "/in-a", "/out-a");
    let spec_b = JobSpec::new("b", "/in-b", "/out-b");
    rt.submit(spec_a, Box::new(WordCount), Box::new(corpus(2, 20)));
    rt.submit(spec_b, Box::new(WordCount), Box::new(corpus(2, 20)));
    let results = rt.drive_all();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.counters.launched_maps == 2));
}

#[test]
fn deterministic_given_same_seed() {
    let run = || {
        let mut rt = runtime(Placement::CrossDomain, 8);
        let r = register_and_run(&mut rt, 4, JobConfig::default().with_reduces(2));
        (r.elapsed.as_nanos(), r.counters, r.outputs.len())
    };
    assert_eq!(run().0, run().0);
    assert_eq!(run().1, run().1);
}

#[test]
fn upload_takes_time_and_registers_file() {
    let mut rt = runtime(Placement::SingleDomain, 8);
    let d = rt.upload("/big", 64 * MB, VmId(1));
    assert!(d.as_secs_f64() > 0.5, "upload simulated, took {d}");
    assert_eq!(rt.hdfs.stat("/big").unwrap().len, 64 * MB);
}

#[test]
fn job_result_phases_sum_to_elapsed() {
    let mut rt = runtime(Placement::SingleDomain, 8);
    let r = register_and_run(&mut rt, 2, JobConfig::default());
    let total = r.map_phase + r.reduce_phase;
    assert_eq!(total.as_nanos(), r.elapsed.as_nanos());
}
