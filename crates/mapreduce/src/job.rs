//! Job descriptions, results, and progress events.

use crate::config::JobConfig;
use crate::counters::Counters;
use crate::types::Record;
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

/// What a job reads and writes plus its configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (reports, traces).
    pub name: String,
    /// HDFS input path; `None` for generator-fed jobs (TeraGen) whose maps
    /// read nothing from the file system.
    pub input_path: Option<String>,
    /// HDFS output path prefix; each reduce writes `<prefix>/part-NNNNN`.
    pub output_path: String,
    /// Per-job knobs.
    pub config: JobConfig,
}

impl JobSpec {
    /// Standard spec reading `input` and writing under `output`.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        JobSpec {
            name: name.into(),
            input_path: Some(input.into()),
            output_path: output.into(),
            config: JobConfig::default(),
        }
    }

    /// Generator-fed spec (no HDFS input).
    pub fn generated(name: impl Into<String>, output: impl Into<String>) -> Self {
        JobSpec {
            name: name.into(),
            input_path: None,
            output_path: output.into(),
            config: JobConfig::default(),
        }
    }

    /// Replaces the config, builder style.
    pub fn with_config(mut self, config: JobConfig) -> Self {
        self.config = config;
        self
    }
}

/// Final outcome of a job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Which job.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Submission instant.
    pub submitted: SimTime,
    /// Completion instant.
    pub finished: SimTime,
    /// `finished - submitted`.
    pub elapsed: SimDuration,
    /// Time from submission until the last map finished.
    pub map_phase: SimDuration,
    /// Time from the last map until job completion (zero for map-only jobs).
    pub reduce_phase: SimDuration,
    /// Aggregate counters.
    pub counters: Counters,
    /// All output records, in partition order then key order. With a
    /// total-order partitioner (TeraSort) this is the globally sorted
    /// output.
    pub outputs: Vec<Record>,
    /// Record count per output partition, in partition index order
    /// (per-map for map-only jobs); prefix sums give partition boundaries
    /// inside `outputs`.
    pub partition_sizes: Vec<usize>,
}

impl JobResult {
    /// Elapsed wall-clock seconds (the paper's "running time" metric).
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

/// Progress events surfaced to the platform driver.
#[derive(Debug)]
pub enum JobEvent {
    /// One map task completed (`job`, `map_index`).
    MapDone(JobId, usize),
    /// All maps of a job completed; shuffle begins.
    MapPhaseDone(JobId),
    /// One reduce task completed (`job`, `reduce_index`).
    ReduceDone(JobId, usize),
    /// The job finished; full result attached.
    JobDone(Box<JobResult>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let s = JobSpec::new("wc", "/in", "/out");
        assert_eq!(s.input_path.as_deref(), Some("/in"));
        let g = JobSpec::generated("teragen", "/data");
        assert!(g.input_path.is_none());
        let c = s.with_config(JobConfig::map_only());
        assert_eq!(c.config.num_reduces, 0);
    }

    #[test]
    fn job_id_formats() {
        assert_eq!(format!("{}", JobId(7)), "job_0007");
    }
}
