//! Shuffle/sort bookkeeping and the reduce-side pipeline: per-map fetch
//! flows, merge + group + real reduce execution, and the replicated HDFS
//! output write.
//!
//! Paper mechanism modelled: step 7 of the paper's execution flow — "the
//! worker who is assigned a reduce task ... reads the buffered data from
//! the local disks of the map workers, sorts it by the intermediate keys"
//! and reduces each group. Shuffle traffic crossing VM (and Xen domain)
//! boundaries is what separates the paper's normal vs. cross-domain
//! wordcount curves (Fig. 2).

use crate::app::group_by_key;
use crate::job::{JobEvent, JobId};
use crate::state::{tag, tag_full, PH_IGNORE, PH_REDUCE_COMPUTE, PH_REDUCE_WRITE, PH_SHUFFLE};
use crate::types::{records_size, Record, K, V};
use simcore::prelude::*;
use vcluster::cluster::VirtualCluster;
use vhdfs::hdfs::Hdfs;

use crate::engine::MrEngine;

impl MrEngine {
    pub(crate) fn reduce_started(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        jid: JobId,
        r: usize,
    ) {
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        let vm = job.running_reduce_vm(r);
        // Shuffle: one fetch chain per map whose partition r is non-empty.
        let mut members: Vec<(ChainSpec, Tag)> = Vec::new();
        let mut shuffle_bytes = 0u64;
        for m in 0..job.maps.len() {
            let Some(part) = job.map_outputs[m][r].as_ref() else { continue };
            if part.is_empty() {
                continue;
            }
            let bytes = records_size(part);
            shuffle_bytes += bytes;
            let map_vm = job.map_vm[m].expect("map ran somewhere");
            let chain = cluster
                .transfer(map_vm, vm, bytes as f64)
                .then(cluster.disk_write(vm, bytes as f64));
            members.push((chain, tag(jid, PH_IGNORE, m)));
        }
        job.counters.shuffle_bytes += shuffle_bytes;
        job.shuffle_started_at[r] = Some(engine.now());
        let ep = job.reduce_epoch[r];
        engine.start_batch(members, tag_full(jid, PH_SHUFFLE, 0, ep, r));
    }

    pub(crate) fn shuffle_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        jid: JobId,
        r: usize,
    ) {
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        let vm = job.running_reduce_vm(r);
        if let Some(t0) = job.shuffle_started_at[r] {
            engine.trace_span(
                "shuffle",
                "shuffle",
                vm.0,
                t0,
                &[("job", f64::from(jid.0)), ("task", r as f64)],
            );
        }
        // Merge all fetched partitions, group, and really reduce. The
        // partitions are kept (cloned, not taken) until the job finishes
        // so a failed reduce can re-run from them, as Hadoop re-fetches
        // map output that is still alive.
        let mut merged: Vec<Record> = Vec::new();
        let mut segments = 0u32;
        for m in 0..job.maps.len() {
            if let Some(part) = job.map_outputs[m][r].clone() {
                if !part.is_empty() {
                    segments += 1;
                }
                merged.extend(part);
            }
        }
        let in_records = merged.len() as u64;
        let in_bytes = records_size(&merged);
        let grouped = group_by_key(merged);
        let groups = grouped.len() as u64;

        let mut out: Vec<Record> = Vec::new();
        for (k, vals) in &grouped {
            let mut emit = |ek: K, ev: V| out.push((ek, ev));
            job.app.reduce(k, vals, &mut emit);
        }
        job.counters.reduce_input_records += in_records;
        job.counters.reduce_input_groups += groups;

        let cost = job.app.cost();
        let sort_cycles =
            cost.sort_cpu_per_byte * in_bytes as f64 * f64::from(segments.max(2)).log2();
        let cycles = cost.reduce_cpu_per_byte * in_bytes as f64
            + cost.reduce_cpu_per_record * in_records as f64
            + sort_cycles;
        job.reduce_outputs[r] = Some(out);
        let ep = job.reduce_epoch[r];
        engine.start_chain(cluster.compute(vm, cycles), tag_full(jid, PH_REDUCE_COMPUTE, 0, ep, r));
    }

    pub(crate) fn reduce_compute_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        jid: JobId,
        r: usize,
    ) {
        let (vm, bytes, path) = {
            let job = self.jobs.get(&jid.0).expect("unknown job");
            let vm = job.running_reduce_vm(r);
            let recs = job.reduce_outputs[r].as_ref().expect("reduce output present");
            (vm, records_size(recs), format!("{}/part-r-{r:05}", job.spec.output_path))
        };
        // A reduce re-run after a failure may find the partial output of
        // its killed predecessor; replace it, as Hadoop's output committer
        // discards uncommitted attempt output.
        if hdfs.stat(&path).is_some() {
            hdfs.delete(&path);
        }
        let ep = self.jobs.get(&jid.0).expect("unknown job").reduce_epoch[r];
        hdfs.write_file(
            engine,
            cluster,
            &path,
            bytes,
            vm,
            tag_full(jid, PH_REDUCE_WRITE, 0, ep, r),
        );
    }

    pub(crate) fn reduce_write_done(
        &mut self,
        engine: &mut Engine,
        jid: JobId,
        r: usize,
        events: &mut Vec<JobEvent>,
    ) {
        let (vm, finished) = {
            let job = self.jobs.get_mut(&jid.0).expect("unknown job");
            let vm = job.running_reduce_vm(r);
            job.reduces[r] = crate::state::TaskPhase::Done;
            job.completed_reduces += 1;
            let recs = job.reduce_outputs[r].as_ref().expect("reduce output present");
            job.counters.output_bytes += records_size(recs);
            job.counters.reduce_output_records += recs.len() as u64;
            if let Some(t0) = job.reduce_started_at[r] {
                engine.trace_span(
                    "reduce",
                    "reduce",
                    vm.0,
                    t0,
                    &[("job", f64::from(jid.0)), ("task", r as f64)],
                );
            }
            (vm, job.completed_reduces == job.reduces.len())
        };
        *self.used_reduce_slots.get_mut(&vm.0).expect("slot held") -= 1;
        events.push(JobEvent::ReduceDone(jid, r));
        if finished {
            let result = self.finish_job(engine, jid);
            events.push(JobEvent::JobDone(Box::new(result)));
        }
    }
}
