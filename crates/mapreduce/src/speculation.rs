//! Speculative execution: straggler detection and backup map attempts.
//!
//! Paper mechanism modelled: Hadoop's `mapred.map.tasks.speculative.
//! execution` — the fault/straggler tolerance the paper leans on when VMs
//! are slowed by consolidation or migration blackouts ("the hadoop fault
//! tolerance mechanism will re-run the job or restore from other available
//! backup data"). Detection runs on a heartbeat, as the real JobTracker
//! re-evaluates stragglers on TaskTracker heartbeats; *where* the backup
//! attempt lands is delegated to the scheduling layer
//! ([`crate::scheduler::TaskScheduler::place_speculative`]).

use crate::job::JobId;
use crate::state::{tag_full, TaskPhase, PH_MAP_STARTUP};
use simcore::prelude::*;
use vcluster::cluster::{VirtualCluster, VmId};

use crate::engine::MrEngine;

/// Interval of the straggler-detection heartbeat.
pub(crate) const SPECULATION_HEARTBEAT: SimDuration = SimDuration::from_millis(2_000);

impl MrEngine {
    /// Launches backup attempts for straggling maps (Hadoop's speculative
    /// execution): once no maps are pending, a running map that has taken
    /// over 1.5× the mean completed-map duration gets a second attempt on
    /// a different tracker; the first attempt to finish wins, the loser's
    /// results are discarded.
    pub(crate) fn maybe_speculate(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        jid: u32,
    ) {
        let candidates: Vec<(usize, VmId)> = {
            let Some(job) = self.jobs.get(&jid) else { return };
            let cfg = job.config();
            if !cfg.speculative || !job.pending_maps.is_empty() || job.map_durations.is_empty() {
                return;
            }
            let mean = job.map_durations.iter().sum::<f64>() / job.map_durations.len() as f64;
            let now = engine.now();
            (0..job.maps.len())
                .filter(|&m| {
                    matches!(job.maps[m], TaskPhase::Running(_))
                        && !job.speculated[m]
                        && job.map_started_at[m]
                            .is_some_and(|t0| now.saturating_since(t0).as_secs_f64() > 1.5 * mean)
                })
                .filter_map(|m| job.map_attempt_vm[m][0].map(|vm0| (m, vm0)))
                .collect()
        };
        for (m, vm0) in candidates {
            let cfg = self.jobs.get(&jid).expect("job present").config().clone();
            // Where the backup runs is a placement decision: ask the
            // scheduling layer for a different tracker with a free slot.
            let Some(vm) =
                self.with_view(cluster, |sched, view| sched.place_speculative(view, jid, vm0))
            else {
                continue;
            };
            *self.used_map_slots.entry(vm.0).or_insert(0) += 1;
            let job = self.jobs.get_mut(&jid).expect("job present");
            job.speculated[m] = true;
            job.map_attempt_vm[m][1] = Some(vm);
            job.attempt_active[m][1] = true;
            job.counters.launched_maps += 1;
            job.counters.speculative_maps += 1;
            let ep = job.map_epoch[m];
            engine.start_chain(
                Self::startup_chain(cluster, vm, &cfg, 0),
                tag_full(JobId(jid), PH_MAP_STARTUP, 1, ep, m),
            );
        }
    }
}
