//! Tracker-failure recovery: epoch-based attempt invalidation and task
//! re-queueing.
//!
//! Paper mechanism modelled: Hadoop's fault tolerance under VM crashes and
//! live-migration blackouts — "the hadoop fault tolerance mechanism will
//! re-run the job or restore from other available backup data" (paper,
//! conclusion iii). A failed TaskTracker's running attempts are re-queued
//! under a fresh epoch (so their in-flight events are orphaned and
//! swallowed), and completed map output stored only on the dead VM is
//! re-executed elsewhere while the map phase is still open.

use crate::job::JobId;
use crate::state::{tag_full, JobState, TaskPhase, PH_REQUEUE_MAP, PH_REQUEUE_REDUCE};
use simcore::prelude::*;
use std::collections::HashMap;
use vcluster::cluster::{VirtualCluster, VmId};

use crate::engine::MrEngine;

/// Base of the per-task retry backoff: re-execution `r` (r ≥ 2) of a task
/// waits an extra `TASK_RETRY_BACKOFF × 2^min(r−2, 4)` after detection.
pub const TASK_RETRY_BACKOFF: SimDuration = SimDuration::from_millis(250);

/// Extra wait before re-queueing a task that was already lost
/// `prior_retries` times (0 → no extra wait; capped at 16× the base).
fn retry_backoff(prior_retries: u32) -> SimDuration {
    if prior_retries == 0 {
        SimDuration::ZERO
    } else {
        TASK_RETRY_BACKOFF * (1u64 << (prior_retries - 1).min(4))
    }
}

impl MrEngine {
    /// Handles the loss of a TaskTracker VM (crash, or a migration blackout
    /// long enough that the JobTracker declares it dead): running attempts
    /// on it are re-queued, and — while the map phase is still open —
    /// completed map output stored on it is re-executed elsewhere, exactly
    /// Hadoop's recovery story.
    ///
    /// Simplification: once a job's reduce phase has begun, its shuffle is
    /// treated as already fetched, so map output loss no longer matters.
    ///
    /// Returns the number of task attempts re-queued onto other trackers.
    ///
    /// # Panics
    /// If `vm` is not a live tracker.
    pub fn fail_tracker(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        vm: VmId,
    ) -> usize {
        let pos = self
            .trackers
            .iter()
            .position(|&t| t == vm)
            .unwrap_or_else(|| panic!("{vm} is not a live TaskTracker"));
        self.trackers.remove(pos);
        self.used_map_slots.remove(&vm.0);
        self.used_reduce_slots.remove(&vm.0);

        let mut remapped = 0usize;
        let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        for jid in job_ids {
            let job = self.jobs.get_mut(&jid).expect("job present");
            for m in 0..job.maps.len() {
                let involved = job.map_attempt_vm[m].iter().flatten().any(|&a| a == vm);
                if !involved {
                    continue;
                }
                match job.maps[m] {
                    TaskPhase::Running(_) => {
                        // Kill every attempt of the task (a surviving
                        // speculative twin is re-run too — its events are
                        // orphaned by the epoch bump). Release any slot an
                        // attempt holds on a *surviving* tracker.
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        Self::requeue_map(job, m);
                        remapped += 1;
                    }
                    TaskPhase::Done
                        if job.map_vm[m] == Some(vm) && job.map_phase_done.is_none() =>
                    {
                        // Completed output lost before any reduce could
                        // fetch it: run the map again (a straggling loser
                        // attempt may still hold a slot somewhere).
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        job.completed_maps -= 1;
                        Self::requeue_map(job, m);
                        remapped += 1;
                    }
                    _ => {}
                }
            }
            for r in 0..job.reduces.len() {
                if job.reduces[r] == TaskPhase::Running(vm) {
                    Self::invalidate_reduce(job, r);
                    job.pending_reduces.push_back(r);
                    remapped += 1;
                }
            }
        }
        self.schedule(engine, cluster);
        remapped
    }

    /// Like [`MrEngine::fail_tracker`], but models the JobTracker's
    /// *detection latency*: the attempts on `vm` die right now (their
    /// in-flight events are orphaned by the epoch bump, their surviving
    /// slots are released), yet each affected task only returns to the
    /// pending queue after `detect_after` — the heartbeat timeout — plus a
    /// capped exponential backoff that grows with the task's prior losses.
    /// The deferred re-queue arrives as an ordinary engine timer
    /// (`PH_REQUEUE_*`), so runs with injected crashes stay deterministic.
    ///
    /// Returns the number of task attempts scheduled for re-execution.
    ///
    /// # Panics
    /// If `vm` is not a live tracker.
    pub fn lose_tracker(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        vm: VmId,
        detect_after: SimDuration,
    ) -> usize {
        let pos = self
            .trackers
            .iter()
            .position(|&t| t == vm)
            .unwrap_or_else(|| panic!("{vm} is not a live TaskTracker"));
        self.trackers.remove(pos);
        self.used_map_slots.remove(&vm.0);
        self.used_reduce_slots.remove(&vm.0);

        let mut requeued = 0usize;
        let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        for jid in job_ids {
            let job = self.jobs.get_mut(&jid).expect("job present");
            for m in 0..job.maps.len() {
                let involved = job.map_attempt_vm[m].iter().flatten().any(|&a| a == vm);
                if !involved {
                    continue;
                }
                match job.maps[m] {
                    TaskPhase::Running(_) => {
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        Self::invalidate_map(job, m);
                    }
                    TaskPhase::Done
                        if job.map_vm[m] == Some(vm) && job.map_phase_done.is_none() =>
                    {
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        job.completed_maps -= 1;
                        Self::invalidate_map(job, m);
                    }
                    _ => continue,
                }
                let prior = job.map_retries[m];
                job.map_retries[m] += 1;
                engine.set_timer_in(
                    detect_after + retry_backoff(prior),
                    tag_full(JobId(jid), PH_REQUEUE_MAP, 0, job.map_epoch[m], m),
                );
                requeued += 1;
            }
            for r in 0..job.reduces.len() {
                if job.reduces[r] == TaskPhase::Running(vm) {
                    Self::invalidate_reduce(job, r);
                    let prior = job.reduce_retries[r];
                    job.reduce_retries[r] += 1;
                    engine.set_timer_in(
                        detect_after + retry_backoff(prior),
                        tag_full(JobId(jid), PH_REQUEUE_REDUCE, 0, job.reduce_epoch[r], r),
                    );
                    requeued += 1;
                }
            }
        }
        let now = engine.now();
        engine.trace_span("fault", "tracker_timeout", vm.0, now, &[("requeued", requeued as f64)]);
        self.schedule(engine, cluster);
        requeued
    }

    /// Re-admits a (previously failed) VM as an idle TaskTracker; a no-op
    /// when it is already live.
    pub fn rejoin_tracker(&mut self, vm: VmId) {
        if !self.trackers.contains(&vm) {
            self.trackers.push(vm);
        }
    }

    /// Handles a `PH_REQUEUE_MAP` timer: the tracker timeout for map `m`
    /// elapsed, so it may re-enter the pending queue (the post-dispatch
    /// scheduling round places it).
    pub(crate) fn requeue_map_ready(&mut self, jid: JobId, m: usize) {
        if let Some(job) = self.jobs.get_mut(&jid.0) {
            if job.maps[m] == TaskPhase::Pending && !job.pending_maps.contains(&m) {
                job.pending_maps.push_back(m);
            }
        }
    }

    /// Handles a `PH_REQUEUE_REDUCE` timer (see `requeue_map_ready`).
    pub(crate) fn requeue_reduce_ready(&mut self, jid: JobId, r: usize) {
        if let Some(job) = self.jobs.get_mut(&jid.0) {
            if job.reduces[r] == TaskPhase::Pending && !job.pending_reduces.contains(&r) {
                job.pending_reduces.push_back(r);
            }
        }
    }

    /// Frees the slots of map `m`'s still-active attempts that run on
    /// trackers other than the failed `dead` VM.
    fn release_surviving_slots(
        job: &mut JobState,
        m: usize,
        dead: VmId,
        used_map_slots: &mut HashMap<u32, u32>,
    ) {
        for attempt in 0..2 {
            if !job.attempt_active[m][attempt] {
                continue;
            }
            job.attempt_active[m][attempt] = false;
            let Some(vm) = job.map_attempt_vm[m][attempt] else { continue };
            if vm != dead {
                if let Some(held) = used_map_slots.get_mut(&vm.0) {
                    *held -= 1;
                }
            }
        }
    }

    /// Resets map `m` to pending under a fresh epoch and re-queues it
    /// immediately.
    fn requeue_map(job: &mut JobState, m: usize) {
        Self::invalidate_map(job, m);
        job.pending_maps.push_back(m);
    }

    /// Resets map `m` to pending under a fresh epoch — orphaning every
    /// in-flight event of its attempts — without re-queueing it yet.
    fn invalidate_map(job: &mut JobState, m: usize) {
        job.map_epoch[m] = (job.map_epoch[m] + 1) & 0x7F;
        job.maps[m] = TaskPhase::Pending;
        job.map_attempt_vm[m] = [None, None];
        job.attempt_active[m] = [false, false];
        job.map_vm[m] = None;
        job.map_started_at[m] = None;
        job.speculated[m] = false;
        job.write_claimed[m] = false;
        job.counters.relaunched_tasks += 1;
    }

    /// Resets reduce `r` to pending under a fresh epoch, without
    /// re-queueing it yet.
    fn invalidate_reduce(job: &mut JobState, r: usize) {
        job.reduce_epoch[r] = (job.reduce_epoch[r] + 1) & 0x7F;
        job.reduces[r] = TaskPhase::Pending;
        job.reduce_outputs[r] = None;
        job.reduce_started_at[r] = None;
        job.shuffle_started_at[r] = None;
        job.counters.relaunched_tasks += 1;
    }
}
