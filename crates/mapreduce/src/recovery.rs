//! Tracker-failure recovery: epoch-based attempt invalidation and task
//! re-queueing.
//!
//! Paper mechanism modelled: Hadoop's fault tolerance under VM crashes and
//! live-migration blackouts — "the hadoop fault tolerance mechanism will
//! re-run the job or restore from other available backup data" (paper,
//! conclusion iii). A failed TaskTracker's running attempts are re-queued
//! under a fresh epoch (so their in-flight events are orphaned and
//! swallowed), and completed map output stored only on the dead VM is
//! re-executed elsewhere while the map phase is still open.

use crate::state::{JobState, TaskPhase};
use simcore::prelude::*;
use std::collections::HashMap;
use vcluster::cluster::{VirtualCluster, VmId};

use crate::engine::MrEngine;

impl MrEngine {
    /// Handles the loss of a TaskTracker VM (crash, or a migration blackout
    /// long enough that the JobTracker declares it dead): running attempts
    /// on it are re-queued, and — while the map phase is still open —
    /// completed map output stored on it is re-executed elsewhere, exactly
    /// Hadoop's recovery story.
    ///
    /// Simplification: once a job's reduce phase has begun, its shuffle is
    /// treated as already fetched, so map output loss no longer matters.
    ///
    /// Returns the number of task attempts re-queued onto other trackers.
    ///
    /// # Panics
    /// If `vm` is not a live tracker.
    pub fn fail_tracker(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        vm: VmId,
    ) -> usize {
        let pos = self
            .trackers
            .iter()
            .position(|&t| t == vm)
            .unwrap_or_else(|| panic!("{vm} is not a live TaskTracker"));
        self.trackers.remove(pos);
        self.used_map_slots.remove(&vm.0);
        self.used_reduce_slots.remove(&vm.0);

        let mut remapped = 0usize;
        let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        for jid in job_ids {
            let job = self.jobs.get_mut(&jid).expect("job present");
            for m in 0..job.maps.len() {
                let involved = job.map_attempt_vm[m].iter().flatten().any(|&a| a == vm);
                if !involved {
                    continue;
                }
                match job.maps[m] {
                    TaskPhase::Running(_) => {
                        // Kill every attempt of the task (a surviving
                        // speculative twin is re-run too — its events are
                        // orphaned by the epoch bump). Release any slot an
                        // attempt holds on a *surviving* tracker.
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        Self::requeue_map(job, m);
                        remapped += 1;
                    }
                    TaskPhase::Done
                        if job.map_vm[m] == Some(vm) && job.map_phase_done.is_none() =>
                    {
                        // Completed output lost before any reduce could
                        // fetch it: run the map again (a straggling loser
                        // attempt may still hold a slot somewhere).
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        job.completed_maps -= 1;
                        Self::requeue_map(job, m);
                        remapped += 1;
                    }
                    _ => {}
                }
            }
            for r in 0..job.reduces.len() {
                if job.reduces[r] == TaskPhase::Running(vm) {
                    job.reduce_epoch[r] = (job.reduce_epoch[r] + 1) & 0x7F;
                    job.reduces[r] = TaskPhase::Pending;
                    job.pending_reduces.push_back(r);
                    job.reduce_outputs[r] = None;
                    job.reduce_started_at[r] = None;
                    job.shuffle_started_at[r] = None;
                    job.counters.relaunched_tasks += 1;
                    remapped += 1;
                }
            }
        }
        self.schedule(engine, cluster);
        remapped
    }

    /// Frees the slots of map `m`'s still-active attempts that run on
    /// trackers other than the failed `dead` VM.
    fn release_surviving_slots(
        job: &mut JobState,
        m: usize,
        dead: VmId,
        used_map_slots: &mut HashMap<u32, u32>,
    ) {
        for attempt in 0..2 {
            if !job.attempt_active[m][attempt] {
                continue;
            }
            job.attempt_active[m][attempt] = false;
            let Some(vm) = job.map_attempt_vm[m][attempt] else { continue };
            if vm != dead {
                if let Some(held) = used_map_slots.get_mut(&vm.0) {
                    *held -= 1;
                }
            }
        }
    }

    /// Resets map `m` to pending under a fresh epoch.
    fn requeue_map(job: &mut JobState, m: usize) {
        job.map_epoch[m] = (job.map_epoch[m] + 1) & 0x7F;
        job.maps[m] = TaskPhase::Pending;
        job.pending_maps.push_back(m);
        job.map_attempt_vm[m] = [None, None];
        job.attempt_active[m] = [false, false];
        job.map_vm[m] = None;
        job.map_started_at[m] = None;
        job.speculated[m] = false;
        job.write_claimed[m] = false;
        job.counters.relaunched_tasks += 1;
    }
}
