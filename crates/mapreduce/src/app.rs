//! The user-code interface: map/combine/reduce functions, cost profiles,
//! and partitioners.

use crate::types::{Record, K, V};
use serde::{Deserialize, Serialize};

/// CPU cost model of an application, in guest cycles. The engine measures
/// real byte/record counts from the executed data and multiplies by these
/// coefficients to size the compute flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Map-side cycles per input byte.
    pub map_cpu_per_byte: f64,
    /// Map-side cycles per input record (function-call + object overhead).
    pub map_cpu_per_record: f64,
    /// Reduce-side cycles per shuffled byte.
    pub reduce_cpu_per_byte: f64,
    /// Reduce-side cycles per intermediate record.
    pub reduce_cpu_per_record: f64,
    /// Merge-sort cycles per byte per log2(segment) during the sort phase.
    pub sort_cpu_per_byte: f64,
}

impl Default for CostProfile {
    fn default() -> Self {
        // Calibrated to 2012-era Hadoop on Java: tens of cycles per byte,
        // thousands per record (deserialization, object churn).
        CostProfile {
            map_cpu_per_byte: 40.0,
            map_cpu_per_record: 4_000.0,
            reduce_cpu_per_byte: 30.0,
            reduce_cpu_per_record: 3_000.0,
            sort_cpu_per_byte: 12.0,
        }
    }
}

/// Decides which reduce partition a key belongs to.
pub trait Partitioner: Send + Sync {
    /// Partition index in `0..n` for `key`.
    fn partition(&self, key: &K, n: u32) -> u32;
}

/// Hadoop's default: `hash(key) mod n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &K, n: u32) -> u32 {
        (key.stable_hash() % u64::from(n.max(1))) as u32
    }
}

/// Range partitioner over byte keys (TeraSort's total-order partitioner):
/// splits the key space into `n` equal lexicographic ranges by the first
/// two bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn partition(&self, key: &K, n: u32) -> u32 {
        let n = n.max(1);
        let prefix: u32 = match key {
            K::Bytes(b) => {
                let b0 = b.first().copied().unwrap_or(0) as u32;
                let b1 = b.get(1).copied().unwrap_or(0) as u32;
                (b0 << 8) | b1
            }
            K::Int(i) => (*i as u64 % 65536) as u32,
            K::Text(s) => {
                let b = s.as_bytes();
                let b0 = b.first().copied().unwrap_or(0) as u32;
                let b1 = b.get(1).copied().unwrap_or(0) as u32;
                (b0 << 8) | b1
            }
        };
        ((u64::from(prefix) * u64::from(n)) / 65536) as u32
    }
}

/// A MapReduce application. Implementations run for real inside the
/// simulation: `map` over every input record, `reduce` over every grouped
/// key, with output sizes measured from the records actually emitted.
pub trait MapReduceApp {
    /// Human-readable job name.
    fn name(&self) -> &str;

    /// Map one input record, emitting intermediate records through `out`.
    fn map(&self, key: &K, value: &V, out: &mut dyn FnMut(K, V));

    /// Reduce all values of one key, emitting output records through `out`.
    fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V));

    /// Optional map-side combiner. Returning `None` (the default) disables
    /// combining; `Some(records)` replaces a partition's records before
    /// they are spilled and shuffled.
    fn combine(&self, _key: &K, _values: &[V], _out: &mut dyn FnMut(K, V)) -> bool {
        false
    }

    /// The partitioner to shuffle with.
    fn partitioner(&self) -> Box<dyn Partitioner> {
        Box::new(HashPartitioner)
    }

    /// CPU cost coefficients.
    fn cost(&self) -> CostProfile {
        CostProfile::default()
    }
}

/// Runs `app`'s combiner over a record set (grouped by key); used by the
/// map-side spill path. Returns `None` if the app has no combiner.
pub fn run_combiner(app: &dyn MapReduceApp, records: Vec<Record>) -> Option<Vec<Record>> {
    // Probe with an empty dry run to see whether a combiner exists.
    let mut grouped = group_by_key(records);
    let mut out: Vec<Record> = Vec::new();
    let mut any = false;
    for (k, vals) in grouped.drain(..) {
        let mut emit = |ek: K, ev: V| out.push((ek, ev));
        if app.combine(&k, &vals, &mut emit) {
            any = true;
        } else {
            // No combiner: put the group back verbatim.
            for v in vals {
                out.push((k.clone(), v));
            }
        }
    }
    any.then_some(out)
}

/// Groups records by key, sorted by key (the sort/merge the reduce side
/// sees). Values keep their arrival order within a key.
pub fn group_by_key(mut records: Vec<Record>) -> Vec<(K, Vec<V>)> {
    records.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in records {
        match out.last_mut() {
            Some((lk, vals)) if *lk == k => vals.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountApp;
    impl MapReduceApp for CountApp {
        fn name(&self) -> &str {
            "count"
        }
        fn map(&self, _k: &K, value: &V, out: &mut dyn FnMut(K, V)) {
            for w in value.as_text().split_whitespace() {
                out(K::from(w), V::Int(1));
            }
        }
        fn reduce(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) {
            out(key.clone(), V::Int(values.iter().map(V::as_int).sum()));
        }
        fn combine(&self, key: &K, values: &[V], out: &mut dyn FnMut(K, V)) -> bool {
            out(key.clone(), V::Int(values.iter().map(V::as_int).sum()));
            true
        }
    }

    #[test]
    fn group_by_key_sorts_and_groups() {
        let recs =
            vec![(K::from("b"), V::Int(1)), (K::from("a"), V::Int(2)), (K::from("b"), V::Int(3))];
        let grouped = group_by_key(recs);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, K::from("a"));
        assert_eq!(grouped[1].1, vec![V::Int(1), V::Int(3)]);
    }

    #[test]
    fn combiner_shrinks_output() {
        let recs =
            vec![(K::from("x"), V::Int(1)), (K::from("x"), V::Int(1)), (K::from("y"), V::Int(1))];
        let combined = run_combiner(&CountApp, recs).expect("has combiner");
        assert_eq!(combined.len(), 2);
        let x = combined.iter().find(|(k, _)| *k == K::from("x")).unwrap();
        assert_eq!(x.1, V::Int(2));
    }

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner;
        for i in 0..100i64 {
            let k = K::Int(i);
            let a = p.partition(&k, 7);
            assert_eq!(a, p.partition(&k, 7));
            assert!(a < 7);
        }
    }

    #[test]
    fn range_partitioner_is_monotone() {
        let p = RangePartitioner;
        let k1 = K::Bytes(vec![0, 0, 0]);
        let k2 = K::Bytes(vec![128, 0, 0]);
        let k3 = K::Bytes(vec![255, 255, 0]);
        let (a, b, c) = (p.partition(&k1, 4), p.partition(&k2, 4), p.partition(&k3, 4));
        assert!(a <= b && b <= c);
        assert_eq!(a, 0);
        assert_eq!(c, 3);
    }

    #[test]
    fn partition_zero_n_is_safe() {
        assert_eq!(HashPartitioner.partition(&K::Int(1), 0), 0);
        assert_eq!(RangePartitioner.partition(&K::Int(1), 0), 0);
    }
}
