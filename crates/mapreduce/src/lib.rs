//! # mapreduce — a Hadoop-0.20-style engine that really executes user code
//!
//! JobTracker, TaskTrackers with map/reduce slots, locality-aware
//! scheduling, combiners, custom partitioners, shuffle, merge-sort, and
//! HDFS output — all timed by the [`simcore`] fluid model while the user's
//! map/reduce functions run for real over real records.
//!
//! Quick tour:
//! * [`types::K`] / [`types::V`] — record keys and values;
//! * [`app::MapReduceApp`] — the user-code trait (+ [`app::CostProfile`]);
//! * [`input::InputFormat`] — how splits materialize into records;
//! * [`config::JobConfig`] / [`job::JobSpec`] — job knobs;
//! * [`engine::MrEngine`] — the JobTracker;
//! * [`runtime::MrRuntime`] — engine + cluster + HDFS + event loop in one.
//!
//! ```
//! use mapreduce::prelude::*;
//!
//! struct Count;
//! impl MapReduceApp for Count {
//!     fn name(&self) -> &str { "count" }
//!     fn map(&self, _k: &K, v: &V, out: &mut dyn FnMut(K, V)) {
//!         for w in v.as_text().split_whitespace() {
//!             out(K::from(w), V::Int(1));
//!         }
//!     }
//!     fn reduce(&self, k: &K, vs: &[V], out: &mut dyn FnMut(K, V)) {
//!         out(k.clone(), V::Int(vs.iter().map(V::as_int).sum()));
//!     }
//! }
//!
//! let mut rt = MrRuntime::paper_default();
//! rt.register_input("/in", 4 << 20, VmId(1));
//! let input = VecInput::new(vec![vec![(K::Int(0), V::from("a b a"))]]);
//! let spec = JobSpec::new("count", "/in", "/out");
//! let result = rt.run_job(spec, Box::new(Count), Box::new(input));
//! assert_eq!(result.outputs.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod config;
pub mod counters;
pub mod engine;
pub mod input;
pub mod job;
mod maptask;
pub mod persist;
mod recovery;
pub mod runtime;
pub mod scheduler;
mod shuffle;
mod speculation;
mod state;
pub mod types;

/// Convenience imports.
pub mod prelude {
    pub use crate::app::{
        group_by_key, run_combiner, CostProfile, HashPartitioner, MapReduceApp, Partitioner,
        RangePartitioner,
    };
    pub use crate::config::JobConfig;
    pub use crate::counters::Counters;
    pub use crate::engine::MrEngine;
    pub use crate::input::{GeneratorInput, InputFormat, VecInput};
    pub use crate::job::{JobEvent, JobId, JobResult, JobSpec};
    pub use crate::runtime::{MrRuntime, NodeRoles, PendingJob};
    pub use crate::scheduler::{Assignment, SchedulerPolicy, TaskKind, TaskScheduler};
    pub use crate::types::{records_size, Record, K, V};
    pub use vcluster::cluster::VmId;
}
