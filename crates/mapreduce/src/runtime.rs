//! A self-contained runtime: engine + cluster + HDFS + JobTracker plus the
//! event-routing loop. Workload drivers and tests use this directly; the
//! `vhadoop` facade wraps it together with monitoring, tuning, and
//! migration.

use crate::app::MapReduceApp;
use crate::engine::MrEngine;
use crate::input::InputFormat;
use crate::job::{JobEvent, JobId, JobResult, JobSpec};
use crate::scheduler::SchedulerPolicy;
use simcore::owners;
use simcore::prelude::*;
use vcluster::cluster::{VirtualCluster, VmId};
use vcluster::spec::ClusterSpec;
use vhdfs::hdfs::{Hdfs, HdfsConfig};

/// Which VMs run which Hadoop daemons. The default (`None`/`None`) is the
/// paper's colocated layout: every non-master VM runs both a datanode and
/// a TaskTracker. Disaggregated data/compute layouts (the Frankfurt
/// virtualized-Hadoop evaluation's "separated" configuration, DESIGN.md
/// §17) name disjoint VM sets instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeRoles {
    /// Datanode VMs; `None` = every VM except the master (VM 0).
    pub datanodes: Option<Vec<VmId>>,
    /// TaskTracker VMs; `None` = same set as the datanodes.
    pub trackers: Option<Vec<VmId>>,
}

impl NodeRoles {
    /// The colocated default (datanode + TaskTracker on every worker VM).
    pub fn colocated() -> Self {
        Self::default()
    }

    /// Fully separated daemons: `datanodes` store, `trackers` compute.
    pub fn separated(datanodes: Vec<VmId>, trackers: Vec<VmId>) -> Self {
        NodeRoles { datanodes: Some(datanodes), trackers: Some(trackers) }
    }

    /// True when some TaskTracker is not also a datanode (every map read
    /// and output write crosses the network).
    pub fn is_disaggregated(&self) -> bool {
        match (&self.datanodes, &self.trackers) {
            (_, None) => false,
            (None, Some(_)) => true, // trackers restricted, datanodes everywhere
            (Some(d), Some(t)) => t.iter().any(|vm| !d.contains(vm)),
        }
    }
}

/// Everything needed to run MapReduce jobs on a simulated virtual cluster.
#[derive(Debug)]
pub struct MrRuntime {
    /// The simulation kernel.
    pub engine: Engine,
    /// The virtual cluster.
    pub cluster: VirtualCluster,
    /// The file system.
    pub hdfs: Hdfs,
    /// The JobTracker.
    pub mr: MrEngine,
}

impl MrRuntime {
    /// Boots a cluster, formats HDFS, and starts the JobTracker.
    pub fn new(spec: ClusterSpec, hdfs_cfg: HdfsConfig, seed: RootSeed) -> Self {
        Self::with_roles(spec, hdfs_cfg, NodeRoles::colocated(), seed)
    }

    /// Like [`MrRuntime::new`] with explicit daemon placement: `roles`
    /// picks the datanode and TaskTracker VM sets (colocated by default).
    pub fn with_roles(
        spec: ClusterSpec,
        hdfs_cfg: HdfsConfig,
        roles: NodeRoles,
        seed: RootSeed,
    ) -> Self {
        let mut engine = Engine::new();
        let cluster = VirtualCluster::new(&mut engine, spec);
        let hdfs = match &roles.datanodes {
            Some(dns) => Hdfs::format_with(&cluster, hdfs_cfg, seed, dns),
            None => Hdfs::format(&cluster, hdfs_cfg, seed),
        };
        let mr = match &roles.trackers {
            Some(tts) => MrEngine::with_trackers(tts.clone(), SchedulerPolicy::default()),
            None => MrEngine::new(&hdfs),
        };
        MrRuntime { engine, cluster, hdfs, mr }
    }

    /// Paper-default runtime: 16 VMs, default HDFS, seed 42.
    pub fn paper_default() -> Self {
        Self::new(ClusterSpec::paper_normal(), HdfsConfig::default(), RootSeed(42))
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Registers an input file without simulating the upload.
    pub fn register_input(&mut self, path: &str, bytes: u64, writer: VmId) {
        self.hdfs.register_file(&self.cluster, path, bytes, writer);
    }

    /// Uploads `bytes` to `path` from `writer`, simulating the full
    /// pipeline; returns the elapsed upload time.
    pub fn upload(&mut self, path: &str, bytes: u64, writer: VmId) -> SimDuration {
        let start = self.engine.now();
        let marker = Tag::new(owners::USER, u32::MAX, 0xB10C);
        self.hdfs.write_file(&mut self.engine, &self.cluster, path, bytes, writer, marker);
        loop {
            let (t, w) = self
                .engine
                .next_wakeup()
                .expect("upload must complete before the simulation drains");
            if let Some(c) = self.hdfs.on_wakeup(&mut self.engine, &w) {
                if c.client_tag == marker {
                    return t.saturating_since(start);
                }
                if c.client_tag.owner == owners::MAPREDUCE {
                    self.mr.on_hdfs_done(&mut self.engine, &self.cluster, &mut self.hdfs, &c);
                }
            } else if w.tag().owner == owners::MAPREDUCE {
                self.mr.on_wakeup(&mut self.engine, &self.cluster, &mut self.hdfs, &w);
            }
        }
    }

    /// Submits a job without driving it (for concurrent-job scenarios).
    pub fn submit(
        &mut self,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
    ) -> JobId {
        self.mr.submit(&mut self.engine, &self.cluster, &mut self.hdfs, spec, app, input)
    }

    /// Submits a job and drives the simulation until it completes.
    pub fn run_job(
        &mut self,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
    ) -> JobResult {
        let id = self.submit(spec, app, input);
        self.drive_until_done(id).expect("job must finish before the simulation drains")
    }

    /// Drives the event loop until `job` finishes (or events drain).
    pub fn drive_until_done(&mut self, job: JobId) -> Option<JobResult> {
        while let Some((_, w)) = self.engine.next_wakeup() {
            for ev in self.route(&w) {
                if let JobEvent::JobDone(res) = ev {
                    if res.id == job {
                        return Some(*res);
                    }
                }
            }
        }
        None
    }

    /// Drives until every submitted job finishes; returns results in
    /// completion order.
    pub fn drive_all(&mut self) -> Vec<JobResult> {
        let mut done = Vec::new();
        while self.mr.active_jobs() > 0 {
            let Some((_, w)) = self.engine.next_wakeup() else { break };
            for ev in self.route(&w) {
                if let JobEvent::JobDone(res) = ev {
                    done.push(*res);
                }
            }
        }
        done
    }

    /// Routes one wakeup to the owning subsystem; returns job events.
    pub fn route(&mut self, w: &Wakeup) -> Vec<JobEvent> {
        self.route_full(w).job_events
    }

    /// Routes one wakeup, also surfacing HDFS completions whose client is
    /// *not* the MapReduce engine (direct HDFS users: uploads, DFSIO).
    pub fn route_full(&mut self, w: &Wakeup) -> Routed {
        let owner = w.tag().owner;
        if owner == owners::HDFS {
            if let Some(c) = self.hdfs.on_wakeup(&mut self.engine, w) {
                if c.client_tag.owner == owners::MAPREDUCE {
                    let job_events =
                        self.mr.on_hdfs_done(&mut self.engine, &self.cluster, &mut self.hdfs, &c);
                    return Routed { job_events, hdfs_completion: None };
                }
                return Routed { job_events: Vec::new(), hdfs_completion: Some(c) };
            }
            Routed::default()
        } else if owner == owners::MAPREDUCE {
            let job_events = self.mr.on_wakeup(&mut self.engine, &self.cluster, &mut self.hdfs, w);
            Routed { job_events, hdfs_completion: None }
        } else {
            Routed::default()
        }
    }
}

/// A fully-described job that has not been handed to the JobTracker yet —
/// the unit a control plane's admission queue holds. Construction captures
/// everything (spec, app, input recipe) in a deferred closure; nothing
/// touches the runtime (no HDFS registration, no scheduling) until
/// [`PendingJob::submit`] runs, so a job can wait in a queue for simulated
/// hours without perturbing the cluster.
///
/// The closure is shared (`Rc<dyn Fn>`), so a queued job can be cloned
/// into a snapshot and submitted independently by the parent and any
/// number of forks. Submission recipes must therefore be pure: each
/// invocation builds a fresh app/input and must not consume captured
/// state.
#[derive(Clone)]
pub struct PendingJob {
    name: String,
    submit: std::rc::Rc<dyn Fn(&mut MrRuntime) -> JobId>,
}

impl PendingJob {
    /// Wraps a deferred submission under a display `name`.
    pub fn new(
        name: impl Into<String>,
        submit: impl Fn(&mut MrRuntime) -> JobId + 'static,
    ) -> Self {
        PendingJob { name: name.into(), submit: std::rc::Rc::new(submit) }
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers the job's input and hands it to the JobTracker now.
    pub fn submit(self, rt: &mut MrRuntime) -> JobId {
        (self.submit)(rt)
    }
}

impl std::fmt::Debug for PendingJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingJob").field("name", &self.name).finish_non_exhaustive()
    }
}

/// Output of [`MrRuntime::route_full`].
#[derive(Debug, Default)]
pub struct Routed {
    /// MapReduce progress events.
    pub job_events: Vec<JobEvent>,
    /// A completed HDFS operation owned by a non-MapReduce client.
    pub hdfs_completion: Option<vhdfs::hdfs::HdfsCompletion>,
}
