//! The JobTracker: task scheduling, the map/shuffle/sort/reduce state
//! machine, and real execution of user code.
//!
//! Timing and data are computed together: when a map task's (simulated)
//! input read completes, the engine *actually runs* the application's map
//! function over the split's records, measures the intermediate data it
//! emitted, and sizes the subsequent compute/spill/shuffle flows from those
//! measurements. Reduce tasks likewise really merge, group, and reduce.
//! The result is a simulation whose outputs are bit-for-bit real (TeraSort
//! really sorts; k-means really converges) while elapsed time comes from
//! the fluid contention model.
//!
//! Faithfulness notes (vs. Hadoop 0.20):
//! * task launch cost (heartbeat wait + JVM spawn) is one configurable
//!   constant — the dominant small-job term the paper's MRBench probes;
//! * reduces are scheduled after the map phase completes (no shuffle
//!   overlap); this shifts absolute times but preserves every comparative
//!   shape the paper reports;
//! * map output spills once (`io.sort.mb` never overflows mid-task).

use crate::app::{group_by_key, run_combiner, MapReduceApp, Partitioner};
use crate::config::JobConfig;
use crate::counters::Counters;
use crate::input::InputFormat;
use crate::job::{JobEvent, JobId, JobResult, JobSpec};
use crate::types::{records_size, Record, K, V};
use simcore::owners;
use simcore::prelude::*;
use std::collections::{HashMap, VecDeque};
use vcluster::cluster::{VirtualCluster, VmId};
use vhdfs::hdfs::{Hdfs, HdfsCompletion};
use vhdfs::meta::BlockId;

// Phase codes stored in bits 56..64 of the tag payload.
const PH_MAP_STARTUP: u8 = 0;
const PH_MAP_READ: u8 = 1;
const PH_MAP_COMPUTE: u8 = 2;
const PH_MAP_WRITE: u8 = 3;
const PH_REDUCE_STARTUP: u8 = 4;
const PH_SHUFFLE: u8 = 5;
const PH_REDUCE_COMPUTE: u8 = 6;
const PH_REDUCE_WRITE: u8 = 7;
/// Periodic speculation heartbeat (only armed when speculative execution
/// is enabled — Hadoop's JobTracker re-evaluates stragglers on TaskTracker
/// heartbeats, not on task events).
const PH_SPECULATE: u8 = 8;
/// Batch-member completions we deliberately ignore.
const PH_IGNORE: u8 = 15;

/// Interval of the straggler-detection heartbeat.
const SPECULATION_HEARTBEAT: SimDuration = SimDuration::from_millis(2_000);

/// Attempt flag: set for the speculative (second) attempt of a task.
const ATTEMPT_BIT: u64 = 1 << 55;
/// Per-task relaunch epoch, bits 48..55 (7 bits, wrapping): events whose
/// epoch disagrees with the task's current epoch belong to an attempt
/// killed by a tracker failure and are dropped.
const EPOCH_SHIFT: u64 = 48;
const EPOCH_MASK: u64 = 0x7F << EPOCH_SHIFT;
const TASK_MASK: u64 = (1 << EPOCH_SHIFT) - 1;

fn tag(job: JobId, phase: u8, task: usize) -> Tag {
    tag_full(job, phase, 0, 0, task)
}

fn tag_full(job: JobId, phase: u8, attempt: usize, epoch: u8, task: usize) -> Tag {
    let attempt_bit = if attempt == 0 { 0 } else { ATTEMPT_BIT };
    let epoch_bits = (u64::from(epoch) << EPOCH_SHIFT) & EPOCH_MASK;
    Tag::new(
        owners::MAPREDUCE,
        job.0,
        (u64::from(phase) << 56) | attempt_bit | epoch_bits | task as u64,
    )
}

fn decode(t: Tag) -> (JobId, u8, usize, u8, usize) {
    let attempt = usize::from(t.b & ATTEMPT_BIT != 0);
    (
        JobId(t.a),
        (t.b >> 56) as u8,
        attempt,
        ((t.b & EPOCH_MASK) >> EPOCH_SHIFT) as u8,
        (t.b & TASK_MASK) as usize,
    )
}

#[derive(Debug, Clone)]
struct SplitInfo {
    block: Option<BlockId>,
    bytes: u64,
    locations: Vec<VmId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskPhase {
    Pending,
    Running(VmId),
    Done,
}

struct JobState {
    id: JobId,
    spec: JobSpec,
    app: Box<dyn MapReduceApp>,
    input: Box<dyn InputFormat>,
    partitioner: Box<dyn Partitioner>,
    splits: Vec<SplitInfo>,
    maps: Vec<TaskPhase>,
    reduces: Vec<TaskPhase>,
    /// VM the *winning* attempt of each map ran on (shuffle source).
    map_vm: Vec<Option<VmId>>,
    /// VM per map attempt (index 0 = primary, 1 = speculative).
    map_attempt_vm: Vec<[Option<VmId>; 2]>,
    /// Launch instant of each map's primary attempt.
    map_started_at: Vec<Option<SimTime>>,
    /// Durations of completed maps (drives the speculation threshold).
    map_durations: Vec<f64>,
    /// Whether a speculative attempt was already launched per map.
    speculated: Vec<bool>,
    /// Map-only jobs: whether some attempt already claimed the HDFS write.
    write_claimed: Vec<bool>,
    /// Whether each map attempt currently holds a slot.
    attempt_active: Vec<[bool; 2]>,
    /// Relaunch epoch per map task (bumped when a tracker failure kills
    /// its attempts).
    map_epoch: Vec<u8>,
    /// Relaunch epoch per reduce task.
    reduce_epoch: Vec<u8>,
    pending_maps: VecDeque<usize>,
    pending_reduces: VecDeque<usize>,
    /// Per map: per reduce partition, the (possibly combined) records.
    /// Consumed (taken) by the owning reduce during merge. Map-only jobs
    /// store the whole map output in a single pseudo-partition.
    map_outputs: Vec<Vec<Option<Vec<Record>>>>,
    /// Per reduce: output records awaiting the HDFS write.
    reduce_outputs: Vec<Option<Vec<Record>>>,
    completed_maps: usize,
    completed_reduces: usize,
    counters: Counters,
    submitted: SimTime,
    map_phase_done: Option<SimTime>,
}

impl JobState {
    fn config(&self) -> &JobConfig {
        &self.spec.config
    }

    fn num_reduces(&self) -> usize {
        self.spec.config.num_reduces as usize
    }

    fn map_only(&self) -> bool {
        self.spec.config.num_reduces == 0
    }

    fn running_reduce_vm(&self, r: usize) -> VmId {
        match self.reduces[r] {
            TaskPhase::Running(vm) => vm,
            other => panic!("reduce {r} in unexpected state {other:?}"),
        }
    }
}

impl std::fmt::Debug for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobState")
            .field("id", &self.id)
            .field("name", &self.spec.name)
            .field("completed_maps", &self.completed_maps)
            .field("completed_reduces", &self.completed_reduces)
            .finish()
    }
}

/// The MapReduce engine (JobTracker + all TaskTrackers).
pub struct MrEngine {
    trackers: Vec<VmId>,
    jobs: HashMap<u32, JobState>,
    next_job: u32,
    used_map_slots: HashMap<u32, u32>,
    used_reduce_slots: HashMap<u32, u32>,
}

impl std::fmt::Debug for MrEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrEngine")
            .field("trackers", &self.trackers.len())
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

impl MrEngine {
    /// A TaskTracker on every datanode of `hdfs` (the JobTracker shares
    /// VM 0 with the namenode, as in the paper's master VM).
    pub fn new(hdfs: &Hdfs) -> Self {
        MrEngine {
            trackers: hdfs.datanodes().to_vec(),
            jobs: HashMap::new(),
            next_job: 0,
            used_map_slots: HashMap::new(),
            used_reduce_slots: HashMap::new(),
        }
    }

    /// TaskTracker VMs.
    pub fn trackers(&self) -> &[VmId] {
        &self.trackers
    }

    /// Number of unfinished jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Submits a job. For HDFS-fed jobs, the input file must already exist
    /// and its block count must equal `input.split_count()`.
    ///
    /// Completion arrives as a [`JobEvent::JobDone`] from a later
    /// [`MrEngine::on_wakeup`] / [`MrEngine::on_hdfs_done`] call.
    pub fn submit(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
    ) -> JobId {
        let splits: Vec<SplitInfo> = match &spec.input_path {
            Some(path) => {
                let locs = hdfs
                    .block_locations(path)
                    .unwrap_or_else(|| panic!("job input not in HDFS: {path}"));
                assert_eq!(
                    locs.len(),
                    input.split_count(),
                    "input format split count must match HDFS block count for {path}"
                );
                locs.into_iter()
                    .map(|(block, bytes, locations)| SplitInfo { block: Some(block), bytes, locations })
                    .collect()
            }
            None => (0..input.split_count())
                .map(|i| SplitInfo { block: None, bytes: input.split_bytes(i), locations: Vec::new() })
                .collect(),
        };

        let id = JobId(self.next_job);
        self.next_job += 1;
        let n_maps = splits.len();
        let n_reduces = spec.config.num_reduces as usize;
        let partitioner = app.partitioner();
        let state = JobState {
            id,
            spec,
            app,
            input,
            partitioner,
            splits,
            maps: vec![TaskPhase::Pending; n_maps],
            reduces: vec![TaskPhase::Pending; n_reduces],
            map_vm: vec![None; n_maps],
            map_attempt_vm: vec![[None, None]; n_maps],
            map_started_at: vec![None; n_maps],
            map_durations: Vec::new(),
            speculated: vec![false; n_maps],
            write_claimed: vec![false; n_maps],
            attempt_active: vec![[false, false]; n_maps],
            map_epoch: vec![0; n_maps],
            reduce_epoch: vec![0; n_reduces],
            pending_maps: (0..n_maps).collect(),
            pending_reduces: (0..n_reduces).collect(),
            map_outputs: (0..n_maps).map(|_| (0..n_reduces).map(|_| None).collect()).collect(),
            reduce_outputs: vec![None; n_reduces],
            completed_maps: 0,
            completed_reduces: 0,
            counters: Counters::default(),
            submitted: engine.now(),
            map_phase_done: None,

        };
        let arm_heartbeat = state.spec.config.speculative;
        self.jobs.insert(id.0, state);
        if arm_heartbeat {
            engine.start_chain(
                ChainSpec::new().delay(SPECULATION_HEARTBEAT),
                tag(id, PH_SPECULATE, 0),
            );
        }
        self.schedule(engine, cluster);
        id
    }

    // ----- scheduling -----------------------------------------------------

    fn free_map_slots(&self, vm: VmId, cfg: &JobConfig) -> u32 {
        cfg.map_slots_per_node
            .saturating_sub(self.used_map_slots.get(&vm.0).copied().unwrap_or(0))
    }

    fn free_reduce_slots(&self, vm: VmId, cfg: &JobConfig) -> u32 {
        cfg.reduce_slots_per_node
            .saturating_sub(self.used_reduce_slots.get(&vm.0).copied().unwrap_or(0))
    }

    /// Assigns pending tasks to free slots. Deterministic: jobs in id
    /// order, the emptiest (lowest-id) tracker first, locality preferred.
    fn schedule(&mut self, engine: &mut Engine, cluster: &VirtualCluster) {
        let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        // The k-th task assigned in this wave waits k heartbeats before
        // launching (JobTracker hands out one task per TT heartbeat).
        let mut wave: u64 = 0;
        for jid in job_ids {
            // Maps.
            loop {
                let (m, cfg, locations) = {
                    let job = self.jobs.get(&jid).expect("job present");
                    let Some(&m) = job.pending_maps.front() else { break };
                    (m, job.config().clone(), job.splits[m].locations.clone())
                };
                let Some(vm) = self.pick_map_vm(cluster, &cfg, &locations, cfg.locality_aware)
                else {
                    break;
                };
                *self.used_map_slots.entry(vm.0).or_insert(0) += 1;
                let job = self.jobs.get_mut(&jid).expect("job present");
                job.pending_maps.pop_front();
                job.maps[m] = TaskPhase::Running(vm);
                job.map_attempt_vm[m][0] = Some(vm);
                job.attempt_active[m][0] = true;
                job.map_started_at[m] = Some(engine.now());
                job.counters.launched_maps += 1;
                if locations.contains(&vm) {
                    job.counters.data_local_maps += 1;
                } else if locations.iter().any(|&l| cluster.host_of(l) == cluster.host_of(vm)) {
                    job.counters.rack_local_maps += 1;
                }
                let ep = job.map_epoch[m];
                engine.start_chain(
                    Self::startup_chain(cluster, vm, &cfg, wave),
                    tag_full(JobId(jid), PH_MAP_STARTUP, 0, ep, m),
                );
                wave += 1;
            }
            // Reduces: only once the map phase finished.
            loop {
                let (r, cfg) = {
                    let job = self.jobs.get(&jid).expect("job present");
                    if job.map_phase_done.is_none() {
                        break;
                    }
                    let Some(&r) = job.pending_reduces.front() else { break };
                    (r, job.config().clone())
                };
                let Some(vm) = self.pick_reduce_vm(&cfg) else { break };
                *self.used_reduce_slots.entry(vm.0).or_insert(0) += 1;
                let job = self.jobs.get_mut(&jid).expect("job present");
                job.pending_reduces.pop_front();
                job.reduces[r] = TaskPhase::Running(vm);
                job.counters.launched_reduces += 1;
                let ep = job.reduce_epoch[r];
                engine.start_chain(
                    Self::startup_chain(cluster, vm, &cfg, wave),
                    tag_full(JobId(jid), PH_REDUCE_STARTUP, 0, ep, r),
                );
                wave += 1;
            }
            self.maybe_speculate(engine, cluster, jid);
        }
    }

    /// Launches backup attempts for straggling maps (Hadoop's speculative
    /// execution): once no maps are pending, a running map that has taken
    /// over 1.5× the mean completed-map duration gets a second attempt on
    /// a different tracker; the first attempt to finish wins, the loser's
    /// results are discarded.
    fn maybe_speculate(&mut self, engine: &mut Engine, cluster: &VirtualCluster, jid: u32) {
        let candidates: Vec<(usize, VmId)> = {
            let Some(job) = self.jobs.get(&jid) else { return };
            let cfg = job.config();
            if !cfg.speculative || !job.pending_maps.is_empty() || job.map_durations.is_empty() {
                return;
            }
            let mean = job.map_durations.iter().sum::<f64>() / job.map_durations.len() as f64;
            let now = engine.now();
            (0..job.maps.len())
                .filter(|&m| {
                    matches!(job.maps[m], TaskPhase::Running(_))
                        && !job.speculated[m]
                        && job.map_started_at[m].is_some_and(|t0| {
                            now.saturating_since(t0).as_secs_f64() > 1.5 * mean
                        })
                })
                .filter_map(|m| job.map_attempt_vm[m][0].map(|vm0| (m, vm0)))
                .collect()
        };
        for (m, vm0) in candidates {
            let cfg = self.jobs.get(&jid).expect("job present").config().clone();
            // A different tracker with a free slot.
            let Some(vm) = self
                .trackers
                .iter()
                .copied()
                .filter(|&v| v != vm0 && self.free_map_slots(v, &cfg) > 0)
                .max_by_key(|&v| (self.free_map_slots(v, &cfg), std::cmp::Reverse(v.0)))
            else {
                continue;
            };
            *self.used_map_slots.entry(vm.0).or_insert(0) += 1;
            let job = self.jobs.get_mut(&jid).expect("job present");
            job.speculated[m] = true;
            job.map_attempt_vm[m][1] = Some(vm);
            job.attempt_active[m][1] = true;
            job.counters.launched_maps += 1;
            job.counters.speculative_maps += 1;
            let ep = job.map_epoch[m];
            engine.start_chain(
                Self::startup_chain(cluster, vm, &cfg, 0),
                tag_full(JobId(jid), PH_MAP_STARTUP, 1, ep, m),
            );
        }
    }

    /// Task launch: the heartbeat/stagger wait is pure latency, but the
    /// JVM spawn half of `task_startup` burns real guest CPU — 30 task
    /// JVMs starting across a consolidated host contend, which is part of
    /// the virtualization overhead the paper measures.
    fn startup_chain(cluster: &VirtualCluster, vm: VmId, cfg: &JobConfig, wave: u64) -> ChainSpec {
        let half = cfg.task_startup / 2;
        let spawn_cycles = half.as_secs_f64() * cluster.spec().host.core_hz;
        ChainSpec::new()
            .delay(half + cfg.assignment_stagger * wave)
            .then(cluster.compute(vm, spawn_cycles))
    }

    /// Handles the loss of a TaskTracker VM (crash, or a migration blackout
    /// long enough that the JobTracker declares it dead): running attempts
    /// on it are re-queued, and — while the map phase is still open —
    /// completed map output stored on it is re-executed elsewhere, exactly
    /// Hadoop's recovery story ("the hadoop fault tolerance mechanism will
    /// re-run the job or restore from other available backup data").
    ///
    /// Simplification: once a job's reduce phase has begun, its shuffle is
    /// treated as already fetched, so map output loss no longer matters.
    ///
    /// # Panics
    /// If `vm` is not a live tracker.
    pub fn fail_tracker(&mut self, engine: &mut Engine, cluster: &VirtualCluster, vm: VmId) {
        let pos = self
            .trackers
            .iter()
            .position(|&t| t == vm)
            .unwrap_or_else(|| panic!("{vm} is not a live TaskTracker"));
        self.trackers.remove(pos);
        self.used_map_slots.remove(&vm.0);
        self.used_reduce_slots.remove(&vm.0);

        let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        for jid in job_ids {
            let job = self.jobs.get_mut(&jid).expect("job present");
            for m in 0..job.maps.len() {
                let involved = job.map_attempt_vm[m].iter().flatten().any(|&a| a == vm);
                if !involved {
                    continue;
                }
                match job.maps[m] {
                    TaskPhase::Running(_) => {
                        // Kill every attempt of the task (a surviving
                        // speculative twin is re-run too — its events are
                        // orphaned by the epoch bump). Release any slot an
                        // attempt holds on a *surviving* tracker.
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        Self::requeue_map(job, m);
                    }
                    TaskPhase::Done
                        if job.map_vm[m] == Some(vm) && job.map_phase_done.is_none() =>
                    {
                        // Completed output lost before any reduce could
                        // fetch it: run the map again (a straggling loser
                        // attempt may still hold a slot somewhere).
                        Self::release_surviving_slots(job, m, vm, &mut self.used_map_slots);
                        job.completed_maps -= 1;
                        Self::requeue_map(job, m);
                    }
                    _ => {}
                }
            }
            for r in 0..job.reduces.len() {
                if job.reduces[r] == TaskPhase::Running(vm) {
                    job.reduce_epoch[r] = (job.reduce_epoch[r] + 1) & 0x7F;
                    job.reduces[r] = TaskPhase::Pending;
                    job.pending_reduces.push_back(r);
                    job.reduce_outputs[r] = None;
                    job.counters.relaunched_tasks += 1;
                }
            }
        }
        self.schedule(engine, cluster);
    }

    /// Frees the slots of map `m`'s still-active attempts that run on
    /// trackers other than the failed `dead` VM.
    fn release_surviving_slots(
        job: &mut JobState,
        m: usize,
        dead: VmId,
        used_map_slots: &mut HashMap<u32, u32>,
    ) {
        for attempt in 0..2 {
            if !job.attempt_active[m][attempt] {
                continue;
            }
            job.attempt_active[m][attempt] = false;
            let Some(vm) = job.map_attempt_vm[m][attempt] else { continue };
            if vm != dead {
                if let Some(held) = used_map_slots.get_mut(&vm.0) {
                    *held -= 1;
                }
            }
        }
    }

    /// Resets map `m` to pending under a fresh epoch.
    fn requeue_map(job: &mut JobState, m: usize) {
        job.map_epoch[m] = (job.map_epoch[m] + 1) & 0x7F;
        job.maps[m] = TaskPhase::Pending;
        job.pending_maps.push_back(m);
        job.map_attempt_vm[m] = [None, None];
        job.attempt_active[m] = [false, false];
        job.map_vm[m] = None;
        job.map_started_at[m] = None;
        job.speculated[m] = false;
        job.write_claimed[m] = false;
        job.counters.relaunched_tasks += 1;
    }

    fn pick_map_vm(
        &self,
        cluster: &VirtualCluster,
        cfg: &JobConfig,
        locations: &[VmId],
        locality: bool,
    ) -> Option<VmId> {
        if locality {
            // Data-local first (the replica host must still be a live
            // tracker — datanodes can fail).
            if let Some(&vm) = locations
                .iter()
                .find(|&&v| self.trackers.contains(&v) && self.free_map_slots(v, cfg) > 0)
            {
                return Some(vm);
            }
            // Host-local second.
            let hosts: Vec<_> = locations.iter().map(|&l| cluster.host_of(l)).collect();
            if let Some(&vm) = self
                .trackers
                .iter()
                .find(|&&v| self.free_map_slots(v, cfg) > 0 && hosts.contains(&cluster.host_of(v)))
            {
                return Some(vm);
            }
        }
        // Emptiest tracker, lowest id.
        self.trackers
            .iter()
            .copied()
            .filter(|&v| self.free_map_slots(v, cfg) > 0)
            .max_by_key(|&v| (self.free_map_slots(v, cfg), std::cmp::Reverse(v.0)))
    }

    fn pick_reduce_vm(&self, cfg: &JobConfig) -> Option<VmId> {
        self.trackers
            .iter()
            .copied()
            .filter(|&v| self.free_reduce_slots(v, cfg) > 0)
            .max_by_key(|&v| (self.free_reduce_slots(v, cfg), std::cmp::Reverse(v.0)))
    }

    // ----- event handling ---------------------------------------------------

    /// Routes an `owners::MAPREDUCE` wakeup (startup timers, compute
    /// chains, shuffle batches). Returns any job progress events.
    pub fn on_wakeup(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        wakeup: &Wakeup,
    ) -> Vec<JobEvent> {
        match wakeup {
            Wakeup::Activity { tag: t, batch, .. } => {
                if t.owner != owners::MAPREDUCE {
                    return Vec::new();
                }
                let (_, phase, ..) = decode(*t);
                // Shuffle batch members surface individually; the batch
                // join is what we act on.
                if phase == PH_IGNORE || batch.is_some() {
                    return Vec::new();
                }
                self.dispatch(engine, cluster, hdfs, *t)
            }
            Wakeup::Batch { tag: t, .. } => {
                if t.owner != owners::MAPREDUCE {
                    return Vec::new();
                }
                self.dispatch(engine, cluster, hdfs, *t)
            }
            Wakeup::Timer { .. } => Vec::new(),
        }
    }

    /// Routes an HDFS completion whose client tag belongs to this engine.
    pub fn on_hdfs_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        completion: &HdfsCompletion,
    ) -> Vec<JobEvent> {
        debug_assert_eq!(completion.client_tag.owner, owners::MAPREDUCE);
        self.dispatch(engine, cluster, hdfs, completion.client_tag)
    }

    fn dispatch(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        t: Tag,
    ) -> Vec<JobEvent> {
        let (jid, phase, attempt, epoch, task) = decode(t);
        if !self.jobs.contains_key(&jid.0) {
            // A losing speculative attempt draining after its job finished.
            return Vec::new();
        }
        // Events from attempts killed by a tracker failure carry a stale
        // epoch: swallow them (their state was already repaired).
        {
            let job = self.jobs.get(&jid.0).expect("checked above");
            let is_map_phase =
                matches!(phase, PH_MAP_STARTUP | PH_MAP_READ | PH_MAP_COMPUTE | PH_MAP_WRITE);
            let is_reduce_phase = matches!(
                phase,
                PH_REDUCE_STARTUP | PH_SHUFFLE | PH_REDUCE_COMPUTE | PH_REDUCE_WRITE
            );
            let current = if is_map_phase {
                Some(job.map_epoch[task])
            } else if is_reduce_phase {
                Some(job.reduce_epoch[task])
            } else {
                None
            };
            if let Some(current) = current {
                if epoch != current {
                    self.schedule(engine, cluster);
                    return Vec::new();
                }
            }
        }
        let mut events = Vec::new();
        match phase {
            PH_MAP_STARTUP => self.map_started(engine, cluster, hdfs, jid, attempt, task),
            PH_MAP_READ => self.execute_map(engine, cluster, jid, attempt, task),
            PH_MAP_COMPUTE => {
                self.map_compute_done(engine, cluster, hdfs, jid, attempt, task, &mut events)
            }
            PH_MAP_WRITE => self.map_write_done(engine, jid, attempt, task, &mut events),
            PH_REDUCE_STARTUP => self.reduce_started(engine, cluster, jid, task),
            PH_SHUFFLE => self.shuffle_done(engine, cluster, jid, task),
            PH_REDUCE_COMPUTE => self.reduce_compute_done(engine, cluster, hdfs, jid, task),
            PH_REDUCE_WRITE => self.reduce_write_done(engine, jid, task, &mut events),
            PH_SPECULATE => {
                // Job still alive (checked above): re-arm and let the
                // post-dispatch schedule() run the straggler check.
                engine.start_chain(
                    ChainSpec::new().delay(SPECULATION_HEARTBEAT),
                    tag(jid, PH_SPECULATE, 0),
                );
            }
            other => panic!("unknown MapReduce phase code {other}"),
        }
        self.schedule(engine, cluster);
        events
    }

    /// Releases the map slot held by `(task, attempt)` of `jid`.
    fn release_map_slot(&mut self, jid: JobId, m: usize, attempt: usize) {
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        debug_assert!(job.attempt_active[m][attempt], "double slot release");
        job.attempt_active[m][attempt] = false;
        let vm = job.map_attempt_vm[m][attempt].expect("attempt ran somewhere");
        if let Some(held) = self.used_map_slots.get_mut(&vm.0) {
            *held -= 1;
        }
    }

    fn map_started(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        jid: JobId,
        attempt: usize,
        m: usize,
    ) {
        let (block, vm, done) = {
            let job = self.jobs.get(&jid.0).expect("unknown job");
            (
                job.splits[m].block,
                job.map_attempt_vm[m][attempt].expect("attempt ran somewhere"),
                job.maps[m] == TaskPhase::Done,
            )
        };
        if done {
            // The other attempt already won; abandon this one.
            self.release_map_slot(jid, m, attempt);
            return;
        }
        match block {
            Some(block) => {
                // Simulated HDFS read; records materialize at completion.
                let ep = self.jobs.get(&jid.0).expect("unknown job").map_epoch[m];
                hdfs.read_block(engine, cluster, block, vm, tag_full(jid, PH_MAP_READ, attempt, ep, m));
            }
            None => {
                // Generator-fed map: no input I/O, go straight to execute.
                self.execute_map(engine, cluster, jid, attempt, m);
            }
        }
    }

    /// Runs the real map function and starts the compute + spill chain.
    fn execute_map(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        jid: JobId,
        attempt: usize,
        m: usize,
    ) {
        if self.jobs.get(&jid.0).expect("unknown job").maps[m] == TaskPhase::Done {
            self.release_map_slot(jid, m, attempt);
            return;
        }
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        let vm = job.map_attempt_vm[m][attempt].expect("attempt ran somewhere");
        let records = job.input.read_split(m);
        let in_records = records.len() as u64;
        let in_bytes = if job.splits[m].bytes > 0 {
            job.splits[m].bytes
        } else {
            records_size(&records)
        };

        // Really run the user's map function.
        let mut emitted: Vec<Record> = Vec::new();
        for (k, v) in &records {
            let mut emit = |ek: K, ev: V| emitted.push((ek, ev));
            job.app.map(k, v, &mut emit);
        }
        drop(records);
        let out_records = emitted.len() as u64;
        let out_bytes = records_size(&emitted);

        job.counters.map_input_records += in_records;
        job.counters.map_input_bytes += in_bytes;
        job.counters.map_output_records += out_records;
        job.counters.map_output_bytes += out_bytes;

        let cost = job.app.cost();
        let cycles =
            cost.map_cpu_per_byte * in_bytes as f64 + cost.map_cpu_per_record * in_records as f64;

        let spill_bytes;
        if job.map_only() {
            // Map-only: emitted records ARE the output; the compute-done
            // handler writes them to HDFS.
            spill_bytes = 0.0;
            job.map_outputs[m] = vec![Some(emitted)];
        } else {
            // Partition, optionally combine, then spill to local (NFS) disk.
            let n_red = job.num_reduces();
            let mut parts: Vec<Vec<Record>> = (0..n_red).map(|_| Vec::new()).collect();
            for (k, v) in emitted {
                let p = job.partitioner.partition(&k, n_red as u32) as usize;
                parts[p.min(n_red - 1)].push((k, v));
            }
            let mut combined_records = 0u64;
            let mut total_bytes = 0u64;
            let use_combiner = job.spec.config.use_combiner;
            let app = job.app.as_ref();
            let stored: Vec<Option<Vec<Record>>> = parts
                .into_iter()
                .map(|p| {
                    let p = if use_combiner {
                        run_combiner(app, p.clone()).unwrap_or(p)
                    } else {
                        p
                    };
                    combined_records += p.len() as u64;
                    total_bytes += records_size(&p);
                    Some(p)
                })
                .collect();
            job.counters.combine_output_records += combined_records;
            spill_bytes = total_bytes as f64;
            job.map_outputs[m] = stored;
        }

        let mut chain = cluster.compute(vm, cycles);
        if spill_bytes > 0.0 {
            chain = chain.then(cluster.disk_write(vm, spill_bytes));
        }
        let ep = self.jobs.get(&jid.0).expect("unknown job").map_epoch[m];
        engine.start_chain(chain, tag_full(jid, PH_MAP_COMPUTE, attempt, ep, m));
    }

    #[allow(clippy::too_many_arguments)]
    fn map_compute_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        jid: JobId,
        attempt: usize,
        m: usize,
        events: &mut Vec<JobEvent>,
    ) {
        enum Outcome {
            Loser,
            Winner { done_all: bool },
            MapOnlyWrite { vm: VmId, bytes: u64, path: String },
        }
        let outcome = {
            let job = self.jobs.get_mut(&jid.0).expect("unknown job");
            let vm = job.map_attempt_vm[m][attempt].expect("attempt ran somewhere");
            if job.maps[m] == TaskPhase::Done || (job.map_only() && job.write_claimed[m]) {
                Outcome::Loser
            } else if job.map_only() {
                // First attempt to finish computing claims the HDFS write.
                job.write_claimed[m] = true;
                job.map_vm[m] = Some(vm);
                let recs = job.map_outputs[m][0].as_ref().expect("map output present");
                Outcome::MapOnlyWrite {
                    vm,
                    bytes: records_size(recs),
                    path: format!("{}/part-m-{m:05}", job.spec.output_path),
                }
            } else {
                job.maps[m] = TaskPhase::Done;
                job.map_vm[m] = Some(vm);
                job.completed_maps += 1;
                if let Some(t0) = job.map_started_at[m] {
                    job.map_durations
                        .push(engine.now().saturating_since(t0).as_secs_f64());
                }
                let done_all = job.completed_maps == job.maps.len();
                if done_all {
                    job.map_phase_done = Some(engine.now());
                }
                Outcome::Winner { done_all }
            }
        };
        match outcome {
            Outcome::Loser => {
                self.release_map_slot(jid, m, attempt);
            }
            Outcome::MapOnlyWrite { vm, bytes, path } => {
                // Write this map's output straight to HDFS (output
                // replication follows dfs.replication, as in Hadoop). A
                // re-run after a failure replaces the killed attempt's
                // uncommitted output.
                if hdfs.stat(&path).is_some() {
                    hdfs.delete(&path);
                }
                let ep = self.jobs.get(&jid.0).expect("unknown job").map_epoch[m];
                hdfs.write_file(engine, cluster, &path, bytes, vm, tag_full(jid, PH_MAP_WRITE, attempt, ep, m));
            }
            Outcome::Winner { done_all } => {
                self.release_map_slot(jid, m, attempt);
                events.push(JobEvent::MapDone(jid, m));
                if done_all {
                    events.push(JobEvent::MapPhaseDone(jid));
                }
            }
        }
    }

    fn map_write_done(
        &mut self,
        engine: &mut Engine,
        jid: JobId,
        attempt: usize,
        m: usize,
        events: &mut Vec<JobEvent>,
    ) {
        let finished = {
            let job = self.jobs.get_mut(&jid.0).expect("unknown job");
            debug_assert!(job.write_claimed[m], "write completion without claim");
            job.maps[m] = TaskPhase::Done;
            job.completed_maps += 1;
            if let Some(t0) = job.map_started_at[m] {
                job.map_durations
                    .push(engine.now().saturating_since(t0).as_secs_f64());
            }
            let recs = job.map_outputs[m][0].as_ref().expect("map output present");
            job.counters.output_bytes += records_size(recs);
            job.counters.reduce_output_records += recs.len() as u64;
            let finished = job.completed_maps == job.maps.len();
            if finished {
                job.map_phase_done = Some(engine.now());
            }
            finished
        };
        self.release_map_slot(jid, m, attempt);
        events.push(JobEvent::MapDone(jid, m));
        if finished {
            events.push(JobEvent::MapPhaseDone(jid));
            let result = self.finish_job(engine, jid);
            events.push(JobEvent::JobDone(Box::new(result)));
        }
    }

    fn reduce_started(&mut self, engine: &mut Engine, cluster: &VirtualCluster, jid: JobId, r: usize) {
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        let vm = job.running_reduce_vm(r);
        // Shuffle: one fetch chain per map whose partition r is non-empty.
        let mut members: Vec<(ChainSpec, Tag)> = Vec::new();
        let mut shuffle_bytes = 0u64;
        for m in 0..job.maps.len() {
            let Some(part) = job.map_outputs[m][r].as_ref() else { continue };
            if part.is_empty() {
                continue;
            }
            let bytes = records_size(part);
            shuffle_bytes += bytes;
            let map_vm = job.map_vm[m].expect("map ran somewhere");
            let chain = cluster
                .transfer(map_vm, vm, bytes as f64)
                .then(cluster.disk_write(vm, bytes as f64));
            members.push((chain, tag(jid, PH_IGNORE, m)));
        }
        job.counters.shuffle_bytes += shuffle_bytes;
        let ep = job.reduce_epoch[r];
        engine.start_batch(members, tag_full(jid, PH_SHUFFLE, 0, ep, r));
    }

    fn shuffle_done(&mut self, engine: &mut Engine, cluster: &VirtualCluster, jid: JobId, r: usize) {
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        let vm = job.running_reduce_vm(r);
        // Merge all fetched partitions, group, and really reduce. The
        // partitions are kept (cloned, not taken) until the job finishes
        // so a failed reduce can re-run from them, as Hadoop re-fetches
        // map output that is still alive.
        let mut merged: Vec<Record> = Vec::new();
        let mut segments = 0u32;
        for m in 0..job.maps.len() {
            if let Some(part) = job.map_outputs[m][r].clone() {
                if !part.is_empty() {
                    segments += 1;
                }
                merged.extend(part);
            }
        }
        let in_records = merged.len() as u64;
        let in_bytes = records_size(&merged);
        let grouped = group_by_key(merged);
        let groups = grouped.len() as u64;

        let mut out: Vec<Record> = Vec::new();
        for (k, vals) in &grouped {
            let mut emit = |ek: K, ev: V| out.push((ek, ev));
            job.app.reduce(k, vals, &mut emit);
        }
        job.counters.reduce_input_records += in_records;
        job.counters.reduce_input_groups += groups;

        let cost = job.app.cost();
        let sort_cycles =
            cost.sort_cpu_per_byte * in_bytes as f64 * f64::from(segments.max(2)).log2();
        let cycles = cost.reduce_cpu_per_byte * in_bytes as f64
            + cost.reduce_cpu_per_record * in_records as f64
            + sort_cycles;
        job.reduce_outputs[r] = Some(out);
        let ep = job.reduce_epoch[r];
        engine.start_chain(cluster.compute(vm, cycles), tag_full(jid, PH_REDUCE_COMPUTE, 0, ep, r));
    }

    fn reduce_compute_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        jid: JobId,
        r: usize,
    ) {
        let (vm, bytes, path) = {
            let job = self.jobs.get(&jid.0).expect("unknown job");
            let vm = job.running_reduce_vm(r);
            let recs = job.reduce_outputs[r].as_ref().expect("reduce output present");
            (vm, records_size(recs), format!("{}/part-r-{r:05}", job.spec.output_path))
        };
        // A reduce re-run after a failure may find the partial output of
        // its killed predecessor; replace it, as Hadoop's output committer
        // discards uncommitted attempt output.
        if hdfs.stat(&path).is_some() {
            hdfs.delete(&path);
        }
        let ep = self.jobs.get(&jid.0).expect("unknown job").reduce_epoch[r];
        hdfs.write_file(engine, cluster, &path, bytes, vm, tag_full(jid, PH_REDUCE_WRITE, 0, ep, r));
    }

    fn reduce_write_done(&mut self, engine: &mut Engine, jid: JobId, r: usize, events: &mut Vec<JobEvent>) {
        let (vm, finished) = {
            let job = self.jobs.get_mut(&jid.0).expect("unknown job");
            let vm = job.running_reduce_vm(r);
            job.reduces[r] = TaskPhase::Done;
            job.completed_reduces += 1;
            let recs = job.reduce_outputs[r].as_ref().expect("reduce output present");
            job.counters.output_bytes += records_size(recs);
            job.counters.reduce_output_records += recs.len() as u64;
            (vm, job.completed_reduces == job.reduces.len())
        };
        *self.used_reduce_slots.get_mut(&vm.0).expect("slot held") -= 1;
        events.push(JobEvent::ReduceDone(jid, r));
        if finished {
            let result = self.finish_job(engine, jid);
            events.push(JobEvent::JobDone(Box::new(result)));
        }
    }

    fn finish_job(&mut self, engine: &mut Engine, jid: JobId) -> JobResult {
        let mut job = self.jobs.remove(&jid.0).expect("unknown job");
        let finished = engine.now();
        let map_done = job.map_phase_done.unwrap_or(finished);
        // Flatten output records in task-index order: partition 0's records
        // first, then partition 1's, ... (map index order for map-only
        // jobs). With a total-order partitioner this makes `outputs`
        // globally sorted — exactly TeraValidate's contract.
        let mut outputs: Vec<Record> = Vec::new();
        let mut partition_sizes = Vec::new();
        if job.spec.config.num_reduces == 0 {
            for m in 0..job.maps.len() {
                let recs = job.map_outputs[m][0].take().expect("map output present");
                partition_sizes.push(recs.len());
                outputs.extend(recs);
            }
        } else {
            for r in 0..job.reduces.len() {
                let recs = job.reduce_outputs[r].take().expect("reduce output present");
                partition_sizes.push(recs.len());
                outputs.extend(recs);
            }
        }
        JobResult {
            id: job.id,
            name: job.spec.name,
            submitted: job.submitted,
            finished,
            elapsed: finished.saturating_since(job.submitted),
            map_phase: map_done.saturating_since(job.submitted),
            reduce_phase: finished.saturating_since(map_done),
            counters: job.counters,
            outputs,
            partition_sizes,
        }
    }
}
