//! The JobTracker: event routing, the job lifecycle state machine, and
//! slot accounting. Placement decisions live in [`crate::scheduler`]; map
//! execution in [`crate::maptask`]; the shuffle/sort/reduce pipeline in
//! [`crate::shuffle`]; straggler backup attempts in [`crate::speculation`];
//! tracker-failure recovery in [`crate::recovery`].
//!
//! Paper mechanism modelled: the Hadoop Module's master VM — JobTracker
//! plus namenode on VM 0 — driving TaskTrackers on every worker VM.
//! Timing and data are computed together: when a map task's (simulated)
//! input read completes, the engine *actually runs* the application's map
//! function over the split's records, measures the intermediate data it
//! emitted, and sizes the subsequent compute/spill/shuffle flows from those
//! measurements. The result is a simulation whose outputs are bit-for-bit
//! real (TeraSort really sorts; k-means really converges) while elapsed
//! time comes from the fluid contention model.
//!
//! Faithfulness notes (vs. Hadoop 0.20):
//! * task launch cost (heartbeat wait + JVM spawn) is one configurable
//!   constant — the dominant small-job term the paper's MRBench probes;
//! * reduces are scheduled after the map phase completes (no shuffle
//!   overlap); this shifts absolute times but preserves every comparative
//!   shape the paper reports;
//! * map output spills once (`io.sort.mb` never overflows mid-task).

use crate::app::MapReduceApp;
use crate::config::JobConfig;
use crate::counters::Counters;
use crate::input::InputFormat;
use crate::job::{JobEvent, JobId, JobResult, JobSpec};
use crate::scheduler::{
    make_scheduler, Assignment, JobView, SchedulerPolicy, SchedulerView, TaskKind, TaskScheduler,
    TrackerInfo,
};
use crate::speculation::SPECULATION_HEARTBEAT;
use crate::state::{
    decode, tag, tag_full, JobState, SplitInfo, TaskPhase, PH_IGNORE, PH_MAP_COMPUTE, PH_MAP_READ,
    PH_MAP_STARTUP, PH_MAP_WRITE, PH_REDUCE_COMPUTE, PH_REDUCE_STARTUP, PH_REDUCE_WRITE,
    PH_REQUEUE_MAP, PH_REQUEUE_REDUCE, PH_SHUFFLE, PH_SPECULATE,
};
use simcore::owners;
use simcore::prelude::*;
use std::collections::HashMap;
use std::rc::Rc;
use vcluster::cluster::{VirtualCluster, VmId};
use vhdfs::hdfs::{Hdfs, HdfsCompletion};

/// The MapReduce engine (JobTracker + all TaskTrackers).
pub struct MrEngine {
    pub(crate) trackers: Vec<VmId>,
    pub(crate) jobs: HashMap<u32, JobState>,
    pub(crate) next_job: u32,
    pub(crate) used_map_slots: HashMap<u32, u32>,
    pub(crate) used_reduce_slots: HashMap<u32, u32>,
    pub(crate) scheduler: Box<dyn TaskScheduler>,
}

impl std::fmt::Debug for MrEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MrEngine")
            .field("trackers", &self.trackers.len())
            .field("jobs", &self.jobs.len())
            .field("policy", &self.scheduler.policy())
            .finish()
    }
}

impl MrEngine {
    /// A TaskTracker on every datanode of `hdfs` (the JobTracker shares
    /// VM 0 with the namenode, as in the paper's master VM), scheduling
    /// with the default [`SchedulerPolicy::Fifo`].
    pub fn new(hdfs: &Hdfs) -> Self {
        Self::with_policy(hdfs, SchedulerPolicy::default())
    }

    /// Like [`MrEngine::new`] with an explicit scheduling policy.
    pub fn with_policy(hdfs: &Hdfs, policy: SchedulerPolicy) -> Self {
        Self::with_trackers(hdfs.datanodes().to_vec(), policy)
    }

    /// A JobTracker over an explicit TaskTracker set — disaggregated
    /// layouts run TaskTrackers on VMs that are *not* datanodes
    /// (DESIGN.md §17); the colocated default keeps trackers == datanodes.
    ///
    /// # Panics
    /// If `trackers` is empty.
    pub fn with_trackers(trackers: Vec<VmId>, policy: SchedulerPolicy) -> Self {
        assert!(!trackers.is_empty(), "cluster too small: no TaskTrackers");
        MrEngine {
            trackers,
            jobs: HashMap::new(),
            next_job: 0,
            used_map_slots: HashMap::new(),
            used_reduce_slots: HashMap::new(),
            scheduler: make_scheduler(policy),
        }
    }

    /// The active scheduling policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.scheduler.policy()
    }

    /// Switches the scheduling policy. Takes effect from the next
    /// scheduling round; already-placed tasks are unaffected.
    pub fn set_policy(&mut self, policy: SchedulerPolicy) {
        if policy != self.scheduler.policy() {
            self.scheduler = make_scheduler(policy);
        }
    }

    /// TaskTracker VMs.
    pub fn trackers(&self) -> &[VmId] {
        &self.trackers
    }

    /// Number of unfinished jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Live trackers currently holding at least one map or reduce slot,
    /// busiest first (ties to the lowest id). Useful for tests and
    /// failure-injection scenarios that need a victim that is mid-job.
    pub fn busy_trackers(&self) -> Vec<VmId> {
        let mut busy: Vec<(u32, VmId)> = self
            .trackers
            .iter()
            .map(|&vm| {
                let held = self.used_map_slots.get(&vm.0).copied().unwrap_or(0)
                    + self.used_reduce_slots.get(&vm.0).copied().unwrap_or(0);
                (held, vm)
            })
            .filter(|&(held, _)| held > 0)
            .collect();
        busy.sort_by_key(|&(held, vm)| (std::cmp::Reverse(held), vm.0));
        busy.into_iter().map(|(_, vm)| vm).collect()
    }

    /// Live counters of an unfinished job (`None` once finished/unknown).
    pub fn job_counters(&self, id: JobId) -> Option<&Counters> {
        self.jobs.get(&id.0).map(|j| &j.counters)
    }

    /// Maps of job `id` currently running both a primary and a speculative
    /// attempt, as `(map_index, primary_vm, backup_vm)`. For tests and
    /// failure-injection scenarios that must hit a task mid-speculation.
    pub fn speculating(&self, id: JobId) -> Vec<(usize, VmId, VmId)> {
        let Some(job) = self.jobs.get(&id.0) else { return Vec::new() };
        (0..job.maps.len())
            .filter(|&m| job.attempt_active[m][0] && job.attempt_active[m][1])
            .filter_map(|m| match job.map_attempt_vm[m] {
                [Some(primary), Some(backup)] => Some((m, primary, backup)),
                _ => None,
            })
            .collect()
    }

    /// Submits a job. For HDFS-fed jobs, the input file must already exist
    /// and its block count must equal `input.split_count()`.
    ///
    /// If the job's [`JobConfig::scheduler`] names a policy, the engine
    /// switches to it before scheduling (the last submission wins when
    /// jobs run concurrently).
    ///
    /// Completion arrives as a [`JobEvent::JobDone`] from a later
    /// [`MrEngine::on_wakeup`] / [`MrEngine::on_hdfs_done`] call.
    pub fn submit(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        spec: JobSpec,
        app: Box<dyn MapReduceApp>,
        input: Box<dyn InputFormat>,
    ) -> JobId {
        // Shared ownership internally (snapshots carry these into forks);
        // the public signature stays `Box` so callers build jobs as before.
        let app: std::rc::Rc<dyn MapReduceApp> = Rc::from(app);
        let input: std::rc::Rc<dyn InputFormat> = Rc::from(input);
        if let Some(policy) = spec.config.scheduler {
            self.set_policy(policy);
        }
        let splits: Vec<SplitInfo> = match &spec.input_path {
            Some(path) => {
                // An exact path is a single file; otherwise treat it as a
                // directory of parts (a previous job's `part-r-*` output).
                let locs = hdfs
                    .block_locations(path)
                    .or_else(|| hdfs.dir_block_locations(path))
                    .unwrap_or_else(|| panic!("job input not in HDFS: {path}"));
                assert_eq!(
                    locs.len(),
                    input.split_count(),
                    "input format split count must match HDFS block count for {path}"
                );
                locs.into_iter()
                    .map(|(block, bytes, locations)| SplitInfo {
                        block: Some(block),
                        bytes,
                        locations,
                    })
                    .collect()
            }
            None => (0..input.split_count())
                .map(|i| SplitInfo {
                    block: None,
                    bytes: input.split_bytes(i),
                    locations: Vec::new(),
                })
                .collect(),
        };

        let id = JobId(self.next_job);
        self.next_job += 1;
        let n_maps = splits.len();
        let n_reduces = spec.config.num_reduces as usize;
        let partitioner: Rc<dyn crate::app::Partitioner> = Rc::from(app.partitioner());
        let state = JobState {
            id,
            spec,
            app,
            input,
            partitioner,
            splits,
            maps: vec![TaskPhase::Pending; n_maps],
            reduces: vec![TaskPhase::Pending; n_reduces],
            map_vm: vec![None; n_maps],
            map_attempt_vm: vec![[None, None]; n_maps],
            map_started_at: vec![None; n_maps],
            map_durations: Vec::new(),
            speculated: vec![false; n_maps],
            write_claimed: vec![false; n_maps],
            attempt_active: vec![[false, false]; n_maps],
            map_epoch: vec![0; n_maps],
            reduce_epoch: vec![0; n_reduces],
            map_retries: vec![0; n_maps],
            reduce_retries: vec![0; n_reduces],
            pending_maps: (0..n_maps).collect(),
            pending_reduces: (0..n_reduces).collect(),
            reduce_started_at: vec![None; n_reduces],
            shuffle_started_at: vec![None; n_reduces],
            map_outputs: (0..n_maps).map(|_| (0..n_reduces).map(|_| None).collect()).collect(),
            reduce_outputs: vec![None; n_reduces],
            completed_maps: 0,
            completed_reduces: 0,
            counters: Counters::default(),
            submitted: engine.now(),
            map_phase_done: None,
        };
        let arm_heartbeat = state.spec.config.speculative;
        self.jobs.insert(id.0, state);
        if arm_heartbeat {
            engine.start_chain(
                ChainSpec::new().delay(SPECULATION_HEARTBEAT),
                tag(id, PH_SPECULATE, 0),
            );
        }
        self.schedule(engine, cluster);
        id
    }

    // ----- scheduling -----------------------------------------------------

    pub(crate) fn free_map_slots(&self, vm: VmId, cfg: &JobConfig) -> u32 {
        cfg.map_slots_per_node.saturating_sub(self.used_map_slots.get(&vm.0).copied().unwrap_or(0))
    }

    pub(crate) fn free_reduce_slots(&self, vm: VmId, cfg: &JobConfig) -> u32 {
        cfg.reduce_slots_per_node
            .saturating_sub(self.used_reduce_slots.get(&vm.0).copied().unwrap_or(0))
    }

    /// Builds the immutable [`SchedulerView`] snapshot and hands it (with
    /// the active scheduler) to `f`. All placement flows through here.
    pub(crate) fn with_view<R>(
        &mut self,
        cluster: &VirtualCluster,
        f: impl FnOnce(&mut dyn TaskScheduler, &SchedulerView) -> R,
    ) -> R {
        let trackers: Vec<TrackerInfo> = self
            .trackers
            .iter()
            .map(|&vm| TrackerInfo { vm, host: cluster.host_of(vm), rack: cluster.rack_of(vm) })
            .collect();
        let vm_hosts: Vec<vcluster::cluster::HostId> =
            cluster.vms().map(|v| cluster.host_of(v)).collect();
        let vm_racks: Vec<vcluster::topology::RackId> =
            cluster.vms().map(|v| cluster.rack_of(v)).collect();
        let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        let jobs: Vec<JobView> = job_ids
            .iter()
            .map(|jid| {
                let job = &self.jobs[jid];
                JobView {
                    id: *jid,
                    config: job.config(),
                    pending_maps: &job.pending_maps,
                    pending_reduces: &job.pending_reduces,
                    map_locations: job.splits.iter().map(|s| s.locations.as_slice()).collect(),
                    reduces_open: job.map_phase_done.is_some(),
                    partition_bytes: job.partition_bytes(),
                }
            })
            .collect();
        let view = SchedulerView {
            trackers: &trackers,
            vm_hosts: &vm_hosts,
            vm_racks: &vm_racks,
            racks: cluster.rack_count(),
            used_map_slots: &self.used_map_slots,
            used_reduce_slots: &self.used_reduce_slots,
            jobs,
        };
        f(&mut *self.scheduler, &view)
    }

    /// Asks the scheduler for placements against the current snapshot and
    /// applies them in order (the k-th assignment of a wave waits k
    /// heartbeats — the JobTracker hands out one task per TT heartbeat),
    /// then runs the straggler check per job.
    pub(crate) fn schedule(&mut self, engine: &mut Engine, cluster: &VirtualCluster) {
        let assignments = self.with_view(cluster, |sched, view| sched.assign(view));
        let mut wave: u64 = 0;
        for a in assignments {
            self.apply_assignment(engine, cluster, a, &mut wave);
        }
        let mut job_ids: Vec<u32> = self.jobs.keys().copied().collect();
        job_ids.sort_unstable();
        for jid in job_ids {
            self.maybe_speculate(engine, cluster, jid);
        }
    }

    /// Applies one placement, re-validating it against live state (the
    /// policy worked from a snapshot; a stale decision is dropped — the
    /// task stays pending for the next round).
    fn apply_assignment(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        a: Assignment,
        wave: &mut u64,
    ) {
        let Some(job) = self.jobs.get(&a.job) else { return };
        let cfg = job.config().clone();
        if !self.trackers.contains(&a.vm) {
            return;
        }
        match a.kind {
            TaskKind::Map(m) => {
                let Some(pos) = job.pending_maps.iter().position(|&x| x == m) else { return };
                if self.free_map_slots(a.vm, &cfg) == 0 {
                    return;
                }
                *self.used_map_slots.entry(a.vm.0).or_insert(0) += 1;
                let job = self.jobs.get_mut(&a.job).expect("job present");
                job.pending_maps.remove(pos);
                job.maps[m] = TaskPhase::Running(a.vm);
                job.map_attempt_vm[m][0] = Some(a.vm);
                job.attempt_active[m][0] = true;
                job.map_started_at[m] = Some(engine.now());
                job.counters.launched_maps += 1;
                let locations = &job.splits[m].locations;
                if locations.contains(&a.vm) {
                    job.counters.data_local_maps += 1;
                } else if locations.iter().any(|&l| cluster.host_of(l) == cluster.host_of(a.vm)) {
                    job.counters.rack_local_maps += 1;
                } else if cluster.rack_count() > 1
                    && locations.iter().any(|&l| cluster.rack_of(l) == cluster.rack_of(a.vm))
                {
                    // Same rack, different host: still counts as
                    // rack-local in Hadoop's ledger (the tier the flat
                    // model could never hit).
                    job.counters.rack_local_maps += 1;
                }
                let ep = job.map_epoch[m];
                engine.start_chain(
                    Self::startup_chain(cluster, a.vm, &cfg, *wave),
                    tag_full(JobId(a.job), PH_MAP_STARTUP, 0, ep, m),
                );
                *wave += 1;
            }
            TaskKind::Reduce(r) => {
                if job.map_phase_done.is_none() {
                    return;
                }
                let Some(pos) = job.pending_reduces.iter().position(|&x| x == r) else { return };
                if self.free_reduce_slots(a.vm, &cfg) == 0 {
                    return;
                }
                *self.used_reduce_slots.entry(a.vm.0).or_insert(0) += 1;
                let job = self.jobs.get_mut(&a.job).expect("job present");
                job.pending_reduces.remove(pos);
                job.reduces[r] = TaskPhase::Running(a.vm);
                job.reduce_started_at[r] = Some(engine.now());
                job.counters.launched_reduces += 1;
                let ep = job.reduce_epoch[r];
                engine.start_chain(
                    Self::startup_chain(cluster, a.vm, &cfg, *wave),
                    tag_full(JobId(a.job), PH_REDUCE_STARTUP, 0, ep, r),
                );
                *wave += 1;
            }
        }
    }

    /// Task launch: the heartbeat/stagger wait is pure latency, but the
    /// JVM spawn half of `task_startup` burns real guest CPU — 30 task
    /// JVMs starting across a consolidated host contend, which is part of
    /// the virtualization overhead the paper measures.
    pub(crate) fn startup_chain(
        cluster: &VirtualCluster,
        vm: VmId,
        cfg: &JobConfig,
        wave: u64,
    ) -> ChainSpec {
        let half = cfg.task_startup / 2;
        let spawn_cycles = half.as_secs_f64() * cluster.spec().host.core_hz;
        ChainSpec::new()
            .delay(half + cfg.assignment_stagger * wave)
            .then(cluster.compute(vm, spawn_cycles))
    }

    // ----- event handling ---------------------------------------------------

    /// Routes an `owners::MAPREDUCE` wakeup (startup timers, compute
    /// chains, shuffle batches). Returns any job progress events.
    pub fn on_wakeup(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        wakeup: &Wakeup,
    ) -> Vec<JobEvent> {
        match wakeup {
            Wakeup::Activity { tag: t, batch, .. } => {
                if t.owner != owners::MAPREDUCE {
                    return Vec::new();
                }
                let (_, phase, ..) = decode(*t);
                // Shuffle batch members surface individually; the batch
                // join is what we act on.
                if phase == PH_IGNORE || batch.is_some() {
                    return Vec::new();
                }
                self.dispatch(engine, cluster, hdfs, *t)
            }
            Wakeup::Batch { tag: t, .. } => {
                if t.owner != owners::MAPREDUCE {
                    return Vec::new();
                }
                self.dispatch(engine, cluster, hdfs, *t)
            }
            // Tracker-timeout re-queue timers (see `recovery`).
            Wakeup::Timer { tag: t, .. } => {
                if t.owner != owners::MAPREDUCE {
                    return Vec::new();
                }
                self.dispatch(engine, cluster, hdfs, *t)
            }
        }
    }

    /// Routes an HDFS completion whose client tag belongs to this engine.
    pub fn on_hdfs_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        completion: &HdfsCompletion,
    ) -> Vec<JobEvent> {
        debug_assert_eq!(completion.client_tag.owner, owners::MAPREDUCE);
        self.dispatch(engine, cluster, hdfs, completion.client_tag)
    }

    fn dispatch(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        t: Tag,
    ) -> Vec<JobEvent> {
        let (jid, phase, attempt, epoch, task) = decode(t);
        if !self.jobs.contains_key(&jid.0) {
            // A losing speculative attempt draining after its job finished.
            return Vec::new();
        }
        // Events from attempts killed by a tracker failure carry a stale
        // epoch: swallow them (their state was already repaired).
        {
            let job = self.jobs.get(&jid.0).expect("checked above");
            let is_map_phase = matches!(
                phase,
                PH_MAP_STARTUP | PH_MAP_READ | PH_MAP_COMPUTE | PH_MAP_WRITE | PH_REQUEUE_MAP
            );
            let is_reduce_phase = matches!(
                phase,
                PH_REDUCE_STARTUP
                    | PH_SHUFFLE
                    | PH_REDUCE_COMPUTE
                    | PH_REDUCE_WRITE
                    | PH_REQUEUE_REDUCE
            );
            let current = if is_map_phase {
                Some(job.map_epoch[task])
            } else if is_reduce_phase {
                Some(job.reduce_epoch[task])
            } else {
                None
            };
            if let Some(current) = current {
                if epoch != current {
                    self.schedule(engine, cluster);
                    return Vec::new();
                }
            }
        }
        let mut events = Vec::new();
        match phase {
            PH_MAP_STARTUP => self.map_started(engine, cluster, hdfs, jid, attempt, task),
            PH_MAP_READ => self.execute_map(engine, cluster, jid, attempt, task),
            PH_MAP_COMPUTE => {
                self.map_compute_done(engine, cluster, hdfs, jid, attempt, task, &mut events)
            }
            PH_MAP_WRITE => self.map_write_done(engine, jid, attempt, task, &mut events),
            PH_REDUCE_STARTUP => self.reduce_started(engine, cluster, jid, task),
            PH_SHUFFLE => self.shuffle_done(engine, cluster, jid, task),
            PH_REDUCE_COMPUTE => self.reduce_compute_done(engine, cluster, hdfs, jid, task),
            PH_REDUCE_WRITE => self.reduce_write_done(engine, jid, task, &mut events),
            PH_SPECULATE => {
                // Job still alive (checked above): re-arm and let the
                // post-dispatch schedule() run the straggler check.
                engine.start_chain(
                    ChainSpec::new().delay(SPECULATION_HEARTBEAT),
                    tag(jid, PH_SPECULATE, 0),
                );
            }
            PH_REQUEUE_MAP => self.requeue_map_ready(jid, task),
            PH_REQUEUE_REDUCE => self.requeue_reduce_ready(jid, task),
            other => panic!("unknown MapReduce phase code {other}"),
        }
        self.schedule(engine, cluster);
        events
    }

    pub(crate) fn finish_job(&mut self, engine: &mut Engine, jid: JobId) -> JobResult {
        let mut job = self.jobs.remove(&jid.0).expect("unknown job");
        // A losing speculative attempt still in flight would drain after
        // the job is gone and be swallowed without ever returning its
        // slot: release every still-active attempt now.
        for m in 0..job.maps.len() {
            for attempt in 0..2 {
                if !job.attempt_active[m][attempt] {
                    continue;
                }
                job.attempt_active[m][attempt] = false;
                if let Some(vm) = job.map_attempt_vm[m][attempt] {
                    if let Some(held) = self.used_map_slots.get_mut(&vm.0) {
                        *held -= 1;
                    }
                }
            }
        }
        let finished = engine.now();
        let map_done = job.map_phase_done.unwrap_or(finished);
        // Flatten output records in task-index order: partition 0's records
        // first, then partition 1's, ... (map index order for map-only
        // jobs). With a total-order partitioner this makes `outputs`
        // globally sorted — exactly TeraValidate's contract.
        let mut outputs: Vec<crate::types::Record> = Vec::new();
        let mut partition_sizes = Vec::new();
        if job.spec.config.num_reduces == 0 {
            for m in 0..job.maps.len() {
                let recs = job.map_outputs[m][0].take().expect("map output present");
                partition_sizes.push(recs.len());
                outputs.extend(recs);
            }
        } else {
            for r in 0..job.reduces.len() {
                let recs = job.reduce_outputs[r].take().expect("reduce output present");
                partition_sizes.push(recs.len());
                outputs.extend(recs);
            }
        }
        JobResult {
            id: job.id,
            name: job.spec.name,
            submitted: job.submitted,
            finished,
            elapsed: finished.saturating_since(job.submitted),
            map_phase: map_done.saturating_since(job.submitted),
            reduce_phase: finished.saturating_since(map_done),
            counters: job.counters,
            outputs,
            partition_sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_switch_is_idempotent_and_visible() {
        let mut e = Engine::new();
        let spec = vcluster::spec::ClusterSpec::builder().hosts(2).vms(4).build();
        let c = VirtualCluster::new(&mut e, spec);
        let h = Hdfs::format(&c, vhdfs::hdfs::HdfsConfig::default(), RootSeed(7));
        let mut mr = MrEngine::new(&h);
        assert_eq!(mr.policy(), SchedulerPolicy::Fifo);
        mr.set_policy(SchedulerPolicy::JobDriven);
        assert_eq!(mr.policy(), SchedulerPolicy::JobDriven);
        mr.set_policy(SchedulerPolicy::JobDriven);
        assert_eq!(mr.policy(), SchedulerPolicy::JobDriven);
    }
}
