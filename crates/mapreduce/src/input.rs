//! Input formats: how a job's splits materialize into records.
//!
//! A split corresponds 1:1 to an HDFS block of the job's input file (or to
//! a synthetic generator shard for input-less jobs like TeraGen). Records
//! are produced lazily when a map task reaches its execute phase and are
//! dropped right after, so large inputs never live in memory whole.

use crate::types::{records_size, Record};

/// Supplies the records of each input split.
pub trait InputFormat: Send {
    /// Number of splits. Must equal the block count of the HDFS input file
    /// when the job has one.
    fn split_count(&self) -> usize;

    /// Materializes the records of split `idx`.
    ///
    /// # Panics
    /// Implementations may panic on out-of-range `idx`.
    fn read_split(&self, idx: usize) -> Vec<Record>;

    /// Logical byte size of split `idx` (drives the HDFS read flow when
    /// the job has no real input file registered).
    fn split_bytes(&self, idx: usize) -> u64 {
        records_size(&self.read_split(idx))
    }
}

/// Fully materialized input: a vector of splits. Fine for tests and small
/// data sets.
pub struct VecInput {
    splits: Vec<Vec<Record>>,
}

impl VecInput {
    /// Wraps pre-built splits.
    pub fn new(splits: Vec<Vec<Record>>) -> Self {
        assert!(!splits.is_empty(), "input needs at least one split");
        VecInput { splits }
    }

    /// Splits `records` into `n` round-robin shards.
    pub fn sharded(records: Vec<Record>, n: usize) -> Self {
        assert!(n > 0, "need at least one shard");
        let mut splits: Vec<Vec<Record>> = (0..n).map(|_| Vec::new()).collect();
        for (i, r) in records.into_iter().enumerate() {
            splits[i % n].push(r);
        }
        VecInput { splits }
    }
}

impl InputFormat for VecInput {
    fn split_count(&self) -> usize {
        self.splits.len()
    }

    fn read_split(&self, idx: usize) -> Vec<Record> {
        self.splits[idx].clone()
    }
}

/// Lazily generated input: a closure invoked per split. The closure must
/// be deterministic in `idx` (map retries and speculative copies re-read).
pub struct GeneratorInput<F: Fn(usize) -> Vec<Record> + Send> {
    n: usize,
    bytes_per_split: u64,
    gen: F,
}

impl<F: Fn(usize) -> Vec<Record> + Send> GeneratorInput<F> {
    /// `n` splits of approximately `bytes_per_split` each, produced by `gen`.
    pub fn new(n: usize, bytes_per_split: u64, gen: F) -> Self {
        assert!(n > 0, "need at least one split");
        GeneratorInput { n, bytes_per_split, gen }
    }
}

impl<F: Fn(usize) -> Vec<Record> + Send> InputFormat for GeneratorInput<F> {
    fn split_count(&self) -> usize {
        self.n
    }

    fn read_split(&self, idx: usize) -> Vec<Record> {
        assert!(idx < self.n, "split {idx} out of range ({} splits)", self.n);
        (self.gen)(idx)
    }

    fn split_bytes(&self, _idx: usize) -> u64 {
        self.bytes_per_split
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{K, V};

    #[test]
    fn vec_input_round_trips() {
        let input = VecInput::new(vec![vec![(K::Int(1), V::Null)], vec![(K::Int(2), V::Null)]]);
        assert_eq!(input.split_count(), 2);
        assert_eq!(input.read_split(1)[0].0, K::Int(2));
        assert!(input.split_bytes(0) > 0);
    }

    #[test]
    fn sharded_distributes_round_robin() {
        let records: Vec<Record> = (0..10).map(|i| (K::Int(i), V::Null)).collect();
        let input = VecInput::sharded(records, 3);
        assert_eq!(input.split_count(), 3);
        let sizes: Vec<usize> = (0..3).map(|i| input.read_split(i).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn generator_is_deterministic() {
        let input = GeneratorInput::new(4, 1000, |idx| vec![(K::Int(idx as i64), V::Null)]);
        assert_eq!(input.read_split(2), input.read_split(2));
        assert_eq!(input.split_bytes(0), 1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn generator_bounds_checked() {
        let input = GeneratorInput::new(1, 10, |_| vec![]);
        let _ = input.read_split(1);
    }
}
