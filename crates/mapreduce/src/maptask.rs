//! Map-side task execution: split read, real map-function invocation,
//! partition/combine/spill, and the map-only direct-to-HDFS output path.
//!
//! Paper mechanism modelled: steps 5–6 of the paper's execution flow —
//! "the master will assign the map tasks ... the worker who is assigned a
//! map task reads the contents of the corresponding input split" and runs
//! the user's map function; intermediate results are partitioned (and
//! optionally combined) before spilling to the VM's (NFS-backed) disk,
//! which is where the paper's NFS-bottleneck conclusion bites.

use crate::app::run_combiner;
use crate::job::{JobEvent, JobId};
use crate::state::{tag_full, TaskPhase, PH_MAP_COMPUTE, PH_MAP_READ, PH_MAP_WRITE};
use crate::types::{records_size, Record, K, V};
use simcore::prelude::*;
use vcluster::cluster::{VirtualCluster, VmId};
use vhdfs::hdfs::Hdfs;

use crate::engine::MrEngine;

impl MrEngine {
    /// Releases the map slot held by `(task, attempt)` of `jid`.
    pub(crate) fn release_map_slot(&mut self, jid: JobId, m: usize, attempt: usize) {
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        debug_assert!(job.attempt_active[m][attempt], "double slot release");
        job.attempt_active[m][attempt] = false;
        let vm = job.map_attempt_vm[m][attempt].expect("attempt ran somewhere");
        if let Some(held) = self.used_map_slots.get_mut(&vm.0) {
            *held -= 1;
        }
    }

    pub(crate) fn map_started(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        jid: JobId,
        attempt: usize,
        m: usize,
    ) {
        let (block, vm, done) = {
            let job = self.jobs.get(&jid.0).expect("unknown job");
            (
                job.splits[m].block,
                job.map_attempt_vm[m][attempt].expect("attempt ran somewhere"),
                job.maps[m] == TaskPhase::Done,
            )
        };
        if done {
            // The other attempt already won; abandon this one.
            self.release_map_slot(jid, m, attempt);
            return;
        }
        match block {
            Some(block) => {
                // Simulated HDFS read; records materialize at completion.
                let ep = self.jobs.get(&jid.0).expect("unknown job").map_epoch[m];
                hdfs.read_block(
                    engine,
                    cluster,
                    block,
                    vm,
                    tag_full(jid, PH_MAP_READ, attempt, ep, m),
                );
            }
            None => {
                // Generator-fed map: no input I/O, go straight to execute.
                self.execute_map(engine, cluster, jid, attempt, m);
            }
        }
    }

    /// Runs the real map function and starts the compute + spill chain.
    pub(crate) fn execute_map(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        jid: JobId,
        attempt: usize,
        m: usize,
    ) {
        if self.jobs.get(&jid.0).expect("unknown job").maps[m] == TaskPhase::Done {
            self.release_map_slot(jid, m, attempt);
            return;
        }
        let job = self.jobs.get_mut(&jid.0).expect("unknown job");
        let vm = job.map_attempt_vm[m][attempt].expect("attempt ran somewhere");
        let records = job.input.read_split(m);
        let in_records = records.len() as u64;
        let in_bytes =
            if job.splits[m].bytes > 0 { job.splits[m].bytes } else { records_size(&records) };

        // Really run the user's map function.
        let mut emitted: Vec<Record> = Vec::new();
        for (k, v) in &records {
            let mut emit = |ek: K, ev: V| emitted.push((ek, ev));
            job.app.map(k, v, &mut emit);
        }
        drop(records);
        let out_records = emitted.len() as u64;
        let out_bytes = records_size(&emitted);

        job.counters.map_input_records += in_records;
        job.counters.map_input_bytes += in_bytes;
        job.counters.map_output_records += out_records;
        job.counters.map_output_bytes += out_bytes;

        let cost = job.app.cost();
        let cycles =
            cost.map_cpu_per_byte * in_bytes as f64 + cost.map_cpu_per_record * in_records as f64;

        let spill_bytes;
        if job.map_only() {
            // Map-only: emitted records ARE the output; the compute-done
            // handler writes them to HDFS.
            spill_bytes = 0.0;
            job.map_outputs[m] = vec![Some(emitted)];
        } else {
            // Partition, optionally combine, then spill to local (NFS) disk.
            let n_red = job.num_reduces();
            let mut parts: Vec<Vec<Record>> = (0..n_red).map(|_| Vec::new()).collect();
            for (k, v) in emitted {
                let p = job.partitioner.partition(&k, n_red as u32) as usize;
                parts[p.min(n_red - 1)].push((k, v));
            }
            let mut combined_records = 0u64;
            let mut total_bytes = 0u64;
            let use_combiner = job.spec.config.use_combiner;
            let app = job.app.as_ref();
            let stored: Vec<Option<Vec<Record>>> = parts
                .into_iter()
                .map(|p| {
                    let p =
                        if use_combiner { run_combiner(app, p.clone()).unwrap_or(p) } else { p };
                    combined_records += p.len() as u64;
                    total_bytes += records_size(&p);
                    Some(p)
                })
                .collect();
            job.counters.combine_output_records += combined_records;
            spill_bytes = total_bytes as f64;
            job.map_outputs[m] = stored;
        }

        let mut chain = cluster.compute(vm, cycles);
        if spill_bytes > 0.0 {
            chain = chain.then(cluster.disk_write(vm, spill_bytes));
        }
        let ep = self.jobs.get(&jid.0).expect("unknown job").map_epoch[m];
        engine.start_chain(chain, tag_full(jid, PH_MAP_COMPUTE, attempt, ep, m));
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn map_compute_done(
        &mut self,
        engine: &mut Engine,
        cluster: &VirtualCluster,
        hdfs: &mut Hdfs,
        jid: JobId,
        attempt: usize,
        m: usize,
        events: &mut Vec<JobEvent>,
    ) {
        enum Outcome {
            Loser,
            Winner { done_all: bool, vm: VmId, started: Option<SimTime> },
            MapOnlyWrite { vm: VmId, bytes: u64, path: String },
        }
        let outcome = {
            let job = self.jobs.get_mut(&jid.0).expect("unknown job");
            let vm = job.map_attempt_vm[m][attempt].expect("attempt ran somewhere");
            if job.maps[m] == TaskPhase::Done || (job.map_only() && job.write_claimed[m]) {
                Outcome::Loser
            } else if job.map_only() {
                // First attempt to finish computing claims the HDFS write.
                job.write_claimed[m] = true;
                job.map_vm[m] = Some(vm);
                let recs = job.map_outputs[m][0].as_ref().expect("map output present");
                Outcome::MapOnlyWrite {
                    vm,
                    bytes: records_size(recs),
                    path: format!("{}/part-m-{m:05}", job.spec.output_path),
                }
            } else {
                job.maps[m] = TaskPhase::Done;
                job.map_vm[m] = Some(vm);
                job.completed_maps += 1;
                if let Some(t0) = job.map_started_at[m] {
                    job.map_durations.push(engine.now().saturating_since(t0).as_secs_f64());
                }
                let done_all = job.completed_maps == job.maps.len();
                if done_all {
                    job.map_phase_done = Some(engine.now());
                }
                Outcome::Winner { done_all, vm, started: job.map_started_at[m] }
            }
        };
        match outcome {
            Outcome::Loser => {
                self.release_map_slot(jid, m, attempt);
            }
            Outcome::MapOnlyWrite { vm, bytes, path } => {
                // Write this map's output straight to HDFS (output
                // replication follows dfs.replication, as in Hadoop). A
                // re-run after a failure replaces the killed attempt's
                // uncommitted output.
                if hdfs.stat(&path).is_some() {
                    hdfs.delete(&path);
                }
                let ep = self.jobs.get(&jid.0).expect("unknown job").map_epoch[m];
                hdfs.write_file(
                    engine,
                    cluster,
                    &path,
                    bytes,
                    vm,
                    tag_full(jid, PH_MAP_WRITE, attempt, ep, m),
                );
            }
            Outcome::Winner { done_all, vm, started } => {
                if let Some(t0) = started {
                    engine.trace_span(
                        "map",
                        "map",
                        vm.0,
                        t0,
                        &[("job", f64::from(jid.0)), ("task", m as f64)],
                    );
                }
                self.release_map_slot(jid, m, attempt);
                events.push(JobEvent::MapDone(jid, m));
                if done_all {
                    events.push(JobEvent::MapPhaseDone(jid));
                }
            }
        }
    }

    pub(crate) fn map_write_done(
        &mut self,
        engine: &mut Engine,
        jid: JobId,
        attempt: usize,
        m: usize,
        events: &mut Vec<JobEvent>,
    ) {
        let finished = {
            let job = self.jobs.get_mut(&jid.0).expect("unknown job");
            debug_assert!(job.write_claimed[m], "write completion without claim");
            job.maps[m] = TaskPhase::Done;
            job.completed_maps += 1;
            let vm = job.map_vm[m].expect("winning attempt recorded");
            if let Some(t0) = job.map_started_at[m] {
                job.map_durations.push(engine.now().saturating_since(t0).as_secs_f64());
            }
            if let Some(t0) = job.map_started_at[m] {
                engine.trace_span(
                    "map",
                    "map",
                    vm.0,
                    t0,
                    &[("job", f64::from(jid.0)), ("task", m as f64)],
                );
            }
            let recs = job.map_outputs[m][0].as_ref().expect("map output present");
            job.counters.output_bytes += records_size(recs);
            job.counters.reduce_output_records += recs.len() as u64;
            let finished = job.completed_maps == job.maps.len();
            if finished {
                job.map_phase_done = Some(engine.now());
            }
            finished
        };
        self.release_map_slot(jid, m, attempt);
        events.push(JobEvent::MapDone(jid, m));
        if finished {
            events.push(JobEvent::MapPhaseDone(jid));
            let result = self.finish_job(engine, jid);
            events.push(JobEvent::JobDone(Box::new(result)));
        }
    }
}
