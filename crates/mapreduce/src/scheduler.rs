//! The pluggable task-scheduler layer: every task-placement decision the
//! JobTracker makes goes through the [`TaskScheduler`] trait.
//!
//! Paper mechanism modelled: the Hadoop Module's task-assignment loop —
//! the JobTracker answering TaskTracker heartbeats with task assignments.
//! The paper runs stock Hadoop 0.20 FIFO scheduling; [`Fifo`] reproduces
//! that byte-for-byte (verified by a golden determinism test). [`Fair`]
//! models the fair-scheduler contrib (round-robin slot sharing across
//! concurrent jobs), and [`JobDriven`] follows Lee & Lin's job-driven
//! scheduling: locality-first map matching plus partition-size-aware (LPT)
//! reduce placement.
//!
//! Policies are pure functions of an immutable [`SchedulerView`] snapshot:
//! they never touch engine state, never consult wall-clock time or
//! ambient randomness, and return [`Assignment`]s in a deterministic
//! order (the order fixes heartbeat-stagger waves, so it is part of the
//! contract, not a cosmetic detail).

use crate::config::JobConfig;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{HashMap, VecDeque};
use vcluster::cluster::{HostId, VmId};
use vcluster::topology::RackId;

/// Which placement policy drives the JobTracker. Selected engine-wide via
/// `PlatformConfig::scheduler` or per submission via
/// [`JobConfig::with_scheduler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Hadoop 0.20 stock behavior: jobs in submission order, each job
    /// greedily fills free slots (locality-preferring for maps).
    #[default]
    Fifo,
    /// Round-robin slot sharing across active jobs: each scheduling round
    /// hands every job at most one map and one reduce before any job gets
    /// a second, so concurrent jobs split the cluster evenly.
    Fair,
    /// Lee & Lin's job-driven scheduling: maps are matched to replicas
    /// first (data-local, then host-local, then anywhere); reduces are
    /// placed largest-partition-first on the least-loaded trackers.
    JobDriven,
}

impl SchedulerPolicy {
    /// Stable lowercase name (CLI flags, CSV series).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::Fair => "fair",
            SchedulerPolicy::JobDriven => "job-driven",
        }
    }

    /// All policies, in ablation-sweep order.
    pub fn all() -> [SchedulerPolicy; 3] {
        [SchedulerPolicy::Fifo, SchedulerPolicy::Fair, SchedulerPolicy::JobDriven]
    }
}

impl std::fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchedulerPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(SchedulerPolicy::Fifo),
            "fair" => Ok(SchedulerPolicy::Fair),
            "job-driven" | "jobdriven" => Ok(SchedulerPolicy::JobDriven),
            other => Err(format!("unknown scheduler policy '{other}' (fifo|fair|job-driven)")),
        }
    }
}

/// One live TaskTracker as the scheduler sees it.
#[derive(Debug, Clone, Copy)]
pub struct TrackerInfo {
    /// The tracker VM.
    pub vm: VmId,
    /// The physical host currently running it (for host-local placement).
    pub host: HostId,
    /// The rack that host sits in (for rack-local placement).
    pub rack: RackId,
}

/// One unfinished job as the scheduler sees it. Jobs appear in ascending
/// id (submission) order.
#[derive(Debug)]
pub struct JobView<'a> {
    /// Job id.
    pub id: u32,
    /// The job's configuration (slot capacities, locality flag, ...).
    pub config: &'a JobConfig,
    /// Map task indices awaiting assignment, FIFO order.
    pub pending_maps: &'a VecDeque<usize>,
    /// Reduce task indices awaiting assignment, FIFO order.
    pub pending_reduces: &'a VecDeque<usize>,
    /// Per map task: the VMs holding a replica of its input split.
    pub map_locations: Vec<&'a [VmId]>,
    /// True once the map phase finished — reduces may only be placed then
    /// (the engine models no shuffle/map overlap).
    pub reduces_open: bool,
    /// Bytes of map output per reduce partition; empty until reduces are
    /// schedulable. Drives [`SchedulerPolicy::JobDriven`] LPT placement.
    pub partition_bytes: Vec<u64>,
}

/// Immutable snapshot of everything a policy may consult.
#[derive(Debug)]
pub struct SchedulerView<'a> {
    /// Live TaskTrackers, engine order (ascending VM id).
    pub trackers: &'a [TrackerInfo],
    /// Physical host of every VM, indexed by `VmId.0` (covers replica VMs
    /// that are not live trackers, e.g. a failed datanode whose host still
    /// counts as "near" for host-local placement).
    pub vm_hosts: &'a [HostId],
    /// Rack of every VM, indexed by `VmId.0` (same coverage note).
    pub vm_racks: &'a [RackId],
    /// Number of racks in the cluster fabric. Rack-local scheduling
    /// passes only run when this exceeds 1 — on a flat single-rack
    /// cluster "rack-local" would match every tracker and shadow the
    /// emptiest-tracker fallback.
    pub racks: u32,
    /// Map slots currently held, by tracker VM id.
    pub used_map_slots: &'a HashMap<u32, u32>,
    /// Reduce slots currently held, by tracker VM id.
    pub used_reduce_slots: &'a HashMap<u32, u32>,
    /// Unfinished jobs, ascending id.
    pub jobs: Vec<JobView<'a>>,
}

/// What kind of task an [`Assignment`] places.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Map task with this index.
    Map(usize),
    /// Reduce task with this index.
    Reduce(usize),
}

/// One placement decision: run `kind` of job `job` on tracker `vm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Owning job id.
    pub job: u32,
    /// Which task.
    pub kind: TaskKind,
    /// Where it runs.
    pub vm: VmId,
}

/// A placement policy. Implementations must be deterministic: the same
/// view must always yield the same assignments in the same order.
pub trait TaskScheduler: std::fmt::Debug + Send {
    /// The policy this scheduler implements.
    fn policy(&self) -> SchedulerPolicy;

    /// Decides every placement possible against `view`'s free slots. The
    /// engine applies the assignments in the returned order (the k-th one
    /// launches after k heartbeat staggers) and re-validates each against
    /// live state, so a stale assignment is dropped, never misapplied.
    fn assign(&mut self, view: &SchedulerView) -> Vec<Assignment>;

    /// Places a speculative (backup) map attempt for `job`, avoiding
    /// `avoid` (the tracker running the straggling primary). Default:
    /// the emptiest other tracker, ties to the lowest id — stock Hadoop.
    fn place_speculative(&mut self, view: &SchedulerView, job: u32, avoid: VmId) -> Option<VmId> {
        let cfg = view.jobs.iter().find(|j| j.id == job)?.config;
        let slots = Slots::snapshot(view);
        view.trackers
            .iter()
            .map(|t| t.vm)
            .filter(|&v| v != avoid && slots.free_map(v, cfg) > 0)
            .max_by_key(|&v| (slots.free_map(v, cfg), Reverse(v.0)))
    }
}

/// Builds the scheduler implementing `policy`.
pub fn make_scheduler(policy: SchedulerPolicy) -> Box<dyn TaskScheduler> {
    match policy {
        SchedulerPolicy::Fifo => Box::new(Fifo),
        SchedulerPolicy::Fair => Box::new(Fair),
        SchedulerPolicy::JobDriven => Box::new(JobDriven),
    }
}

/// Scratch slot ledger: policies charge tentative assignments against a
/// copy of the engine's slot tables so one `assign` round never
/// over-commits a tracker.
#[derive(Debug, Clone)]
struct Slots {
    used_map: HashMap<u32, u32>,
    used_reduce: HashMap<u32, u32>,
}

impl Slots {
    fn snapshot(view: &SchedulerView) -> Self {
        Slots { used_map: view.used_map_slots.clone(), used_reduce: view.used_reduce_slots.clone() }
    }

    fn free_map(&self, vm: VmId, cfg: &JobConfig) -> u32 {
        cfg.map_slots_per_node.saturating_sub(self.used_map.get(&vm.0).copied().unwrap_or(0))
    }

    fn free_reduce(&self, vm: VmId, cfg: &JobConfig) -> u32 {
        cfg.reduce_slots_per_node.saturating_sub(self.used_reduce.get(&vm.0).copied().unwrap_or(0))
    }

    /// Map + reduce slots held on `vm` — total tracker load.
    fn total_used(&self, vm: VmId) -> u32 {
        self.used_map.get(&vm.0).copied().unwrap_or(0)
            + self.used_reduce.get(&vm.0).copied().unwrap_or(0)
    }

    fn take_map(&mut self, vm: VmId) {
        *self.used_map.entry(vm.0).or_insert(0) += 1;
    }

    fn take_reduce(&mut self, vm: VmId) {
        *self.used_reduce.entry(vm.0).or_insert(0) += 1;
    }
}

/// Stock Hadoop map placement over the locality tiers: data-local replica
/// first, host-local second, rack-local third (multi-rack fabrics only),
/// otherwise the emptiest tracker (ties to the lowest id).
fn pick_map_vm(
    view: &SchedulerView,
    slots: &Slots,
    cfg: &JobConfig,
    locations: &[VmId],
    locality: bool,
) -> Option<VmId> {
    if locality {
        // Data-local first (the replica host must still be a live
        // tracker — datanodes can fail).
        if let Some(&vm) = locations
            .iter()
            .find(|&&v| view.trackers.iter().any(|t| t.vm == v) && slots.free_map(v, cfg) > 0)
        {
            return Some(vm);
        }
        // Host-local second.
        let hosts: Vec<HostId> = locations.iter().map(|&l| view.vm_hosts[l.0 as usize]).collect();
        if let Some(t) =
            view.trackers.iter().find(|t| slots.free_map(t.vm, cfg) > 0 && hosts.contains(&t.host))
        {
            return Some(t.vm);
        }
        // Rack-local third — only meaningful (and only run) when the
        // fabric actually has more than one rack.
        if view.racks > 1 {
            let racks: Vec<RackId> =
                locations.iter().map(|&l| view.vm_racks[l.0 as usize]).collect();
            if let Some(t) = view
                .trackers
                .iter()
                .find(|t| slots.free_map(t.vm, cfg) > 0 && racks.contains(&t.rack))
            {
                return Some(t.vm);
            }
        }
    }
    // Emptiest tracker, lowest id.
    view.trackers
        .iter()
        .map(|t| t.vm)
        .filter(|&v| slots.free_map(v, cfg) > 0)
        .max_by_key(|&v| (slots.free_map(v, cfg), Reverse(v.0)))
}

/// Reduce placement: the tracker with the most free reduce slots, ties
/// broken toward the *least loaded* tracker overall (map + reduce slots
/// held), then the lowest id. The total-load tie-break fixes the seed
/// engine's bug of ignoring map load: under 2-job contention a tracker
/// still churning through job A's maps no longer ties with an idle one
/// for job B's reduces.
fn pick_reduce_vm(view: &SchedulerView, slots: &Slots, cfg: &JobConfig) -> Option<VmId> {
    view.trackers
        .iter()
        .map(|t| t.vm)
        .filter(|&v| slots.free_reduce(v, cfg) > 0)
        .max_by_key(|&v| (slots.free_reduce(v, cfg), Reverse(slots.total_used(v)), Reverse(v.0)))
}

/// Hadoop 0.20 stock scheduling (the paper's configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl TaskScheduler for Fifo {
    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::Fifo
    }

    fn assign(&mut self, view: &SchedulerView) -> Vec<Assignment> {
        let mut slots = Slots::snapshot(view);
        let mut out = Vec::new();
        for job in &view.jobs {
            let cfg = job.config;
            for &m in job.pending_maps {
                let Some(vm) =
                    pick_map_vm(view, &slots, cfg, job.map_locations[m], cfg.locality_aware)
                else {
                    break;
                };
                slots.take_map(vm);
                out.push(Assignment { job: job.id, kind: TaskKind::Map(m), vm });
            }
            if job.reduces_open {
                for &r in job.pending_reduces {
                    let Some(vm) = pick_reduce_vm(view, &slots, cfg) else { break };
                    slots.take_reduce(vm);
                    out.push(Assignment { job: job.id, kind: TaskKind::Reduce(r), vm });
                }
            }
        }
        out
    }
}

/// Round-robin slot sharing across active jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fair;

impl TaskScheduler for Fair {
    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::Fair
    }

    fn assign(&mut self, view: &SchedulerView) -> Vec<Assignment> {
        let mut slots = Slots::snapshot(view);
        let mut out = Vec::new();
        // Cursors into each job's pending queues: one task per job per
        // round, so slots split evenly among jobs that still want them.
        let mut map_cursor = vec![0usize; view.jobs.len()];
        let mut red_cursor = vec![0usize; view.jobs.len()];
        loop {
            let mut progress = false;
            for (ji, job) in view.jobs.iter().enumerate() {
                let cfg = job.config;
                if let Some(&m) = job.pending_maps.get(map_cursor[ji]) {
                    if let Some(vm) =
                        pick_map_vm(view, &slots, cfg, job.map_locations[m], cfg.locality_aware)
                    {
                        slots.take_map(vm);
                        out.push(Assignment { job: job.id, kind: TaskKind::Map(m), vm });
                        map_cursor[ji] += 1;
                        progress = true;
                    }
                }
                if job.reduces_open {
                    if let Some(&r) = job.pending_reduces.get(red_cursor[ji]) {
                        if let Some(vm) = pick_reduce_vm(view, &slots, cfg) {
                            slots.take_reduce(vm);
                            out.push(Assignment { job: job.id, kind: TaskKind::Reduce(r), vm });
                            red_cursor[ji] += 1;
                            progress = true;
                        }
                    }
                }
            }
            if !progress {
                break;
            }
        }
        out
    }
}

/// Lee & Lin's job-driven scheduling: per job, place every data-local map
/// pairing first, then host-local, then rack-local (when the fabric has
/// racks), then the remainder; reduces go largest-partition-first (LPT)
/// onto the least-loaded trackers.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobDriven;

impl TaskScheduler for JobDriven {
    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::JobDriven
    }

    fn assign(&mut self, view: &SchedulerView) -> Vec<Assignment> {
        let mut slots = Slots::snapshot(view);
        let mut out = Vec::new();
        for job in &view.jobs {
            let cfg = job.config;
            // Maps: three passes. Unlike FIFO, a map deep in the queue may
            // jump ahead if its replica tracker has a free slot — that is
            // the locality-first matching.
            let mut remaining: Vec<usize> = job.pending_maps.iter().copied().collect();
            // Pass 1: data-local.
            remaining.retain(|&m| {
                let local = job.map_locations[m].iter().copied().find(|&v| {
                    view.trackers.iter().any(|t| t.vm == v) && slots.free_map(v, cfg) > 0
                });
                match local {
                    Some(vm) => {
                        slots.take_map(vm);
                        out.push(Assignment { job: job.id, kind: TaskKind::Map(m), vm });
                        false
                    }
                    None => true,
                }
            });
            // Pass 2: host-local.
            remaining.retain(|&m| {
                let hosts: Vec<HostId> =
                    job.map_locations[m].iter().map(|&l| view.vm_hosts[l.0 as usize]).collect();
                let near = view
                    .trackers
                    .iter()
                    .find(|t| slots.free_map(t.vm, cfg) > 0 && hosts.contains(&t.host));
                match near {
                    Some(t) => {
                        let vm = t.vm;
                        slots.take_map(vm);
                        out.push(Assignment { job: job.id, kind: TaskKind::Map(m), vm });
                        false
                    }
                    None => true,
                }
            });
            // Pass 3: rack-local (multi-rack fabrics only; on one rack
            // this tier is every tracker and would shadow the emptiest-
            // tracker balancing below).
            if view.racks > 1 {
                remaining.retain(|&m| {
                    let racks: Vec<RackId> =
                        job.map_locations[m].iter().map(|&l| view.vm_racks[l.0 as usize]).collect();
                    let near = view
                        .trackers
                        .iter()
                        .find(|t| slots.free_map(t.vm, cfg) > 0 && racks.contains(&t.rack));
                    match near {
                        Some(t) => {
                            let vm = t.vm;
                            slots.take_map(vm);
                            out.push(Assignment { job: job.id, kind: TaskKind::Map(m), vm });
                            false
                        }
                        None => true,
                    }
                });
            }
            // Pass 4: whatever is left goes to the emptiest trackers.
            for m in remaining {
                let Some(vm) = view
                    .trackers
                    .iter()
                    .map(|t| t.vm)
                    .filter(|&v| slots.free_map(v, cfg) > 0)
                    .max_by_key(|&v| (slots.free_map(v, cfg), Reverse(v.0)))
                else {
                    break;
                };
                slots.take_map(vm);
                out.push(Assignment { job: job.id, kind: TaskKind::Map(m), vm });
            }
            // Reduces: largest partition first, least-loaded tracker first
            // — classic LPT makespan balancing over reduce inputs.
            if job.reduces_open {
                let mut by_size: Vec<usize> = job.pending_reduces.iter().copied().collect();
                by_size.sort_by_key(|&r| {
                    (Reverse(job.partition_bytes.get(r).copied().unwrap_or(0)), r)
                });
                for r in by_size {
                    let Some(vm) = view
                        .trackers
                        .iter()
                        .map(|t| t.vm)
                        .filter(|&v| slots.free_reduce(v, cfg) > 0)
                        .max_by_key(|&v| {
                            (slots.free_reduce(v, cfg), Reverse(slots.total_used(v)), Reverse(v.0))
                        })
                    else {
                        break;
                    };
                    slots.take_reduce(vm);
                    out.push(Assignment { job: job.id, kind: TaskKind::Reduce(r), vm });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trackers(n: u32) -> Vec<TrackerInfo> {
        // Two hosts on one rack, round-robin placement, VM 0 excluded
        // (master).
        (1..=n).map(|i| TrackerInfo { vm: VmId(i), host: HostId(i % 2), rack: RackId(0) }).collect()
    }

    struct ViewFixture {
        trackers: Vec<TrackerInfo>,
        vm_hosts: Vec<HostId>,
        vm_racks: Vec<RackId>,
        racks: u32,
        used_map: HashMap<u32, u32>,
        used_reduce: HashMap<u32, u32>,
        configs: Vec<JobConfig>,
        pending_maps: Vec<VecDeque<usize>>,
        pending_reduces: Vec<VecDeque<usize>>,
        locations: Vec<Vec<Vec<VmId>>>,
        reduces_open: Vec<bool>,
        partition_bytes: Vec<Vec<u64>>,
    }

    impl ViewFixture {
        fn new(n_trackers: u32) -> Self {
            ViewFixture {
                trackers: trackers(n_trackers),
                vm_hosts: (0..=n_trackers).map(|i| HostId(i % 2)).collect(),
                vm_racks: vec![RackId(0); n_trackers as usize + 1],
                racks: 1,
                used_map: HashMap::new(),
                used_reduce: HashMap::new(),
                configs: Vec::new(),
                pending_maps: Vec::new(),
                pending_reduces: Vec::new(),
                locations: Vec::new(),
                reduces_open: Vec::new(),
                partition_bytes: Vec::new(),
            }
        }

        fn job(
            &mut self,
            cfg: JobConfig,
            maps: usize,
            locations: Vec<Vec<VmId>>,
            reduces_open: bool,
            partition_bytes: Vec<u64>,
        ) -> &mut Self {
            assert_eq!(locations.len(), maps);
            self.configs.push(cfg.clone());
            self.pending_maps.push((0..maps).collect());
            self.pending_reduces.push((0..cfg.num_reduces as usize).collect());
            self.locations.push(locations);
            self.reduces_open.push(reduces_open);
            self.partition_bytes.push(partition_bytes);
            self
        }

        fn view(&self) -> SchedulerView<'_> {
            SchedulerView {
                trackers: &self.trackers,
                vm_hosts: &self.vm_hosts,
                vm_racks: &self.vm_racks,
                racks: self.racks,
                used_map_slots: &self.used_map,
                used_reduce_slots: &self.used_reduce,
                jobs: (0..self.configs.len())
                    .map(|j| JobView {
                        id: j as u32,
                        config: &self.configs[j],
                        pending_maps: &self.pending_maps[j],
                        pending_reduces: &self.pending_reduces[j],
                        map_locations: self.locations[j].iter().map(Vec::as_slice).collect(),
                        reduces_open: self.reduces_open[j],
                        partition_bytes: self.partition_bytes[j].clone(),
                    })
                    .collect(),
            }
        }
    }

    fn count_for_job(assignments: &[Assignment], job: u32) -> usize {
        assignments.iter().filter(|a| a.job == job).count()
    }

    #[test]
    fn fifo_drains_first_job_before_second() {
        let mut fx = ViewFixture::new(2); // 2 trackers × 2 map slots = 4 slots
        let cfg = JobConfig::default().with_locality(false);
        fx.job(cfg.clone(), 4, vec![vec![]; 4], false, vec![]);
        fx.job(cfg, 4, vec![vec![]; 4], false, vec![]);
        let a = Fifo.assign(&fx.view());
        assert_eq!(a.len(), 4, "all four slots filled");
        assert_eq!(count_for_job(&a, 0), 4, "FIFO gives job 0 everything");
        assert_eq!(count_for_job(&a, 1), 0);
    }

    #[test]
    fn fair_splits_slots_across_jobs() {
        let mut fx = ViewFixture::new(3); // 6 map slots
        let cfg = JobConfig::default().with_locality(false);
        fx.job(cfg.clone(), 6, vec![vec![]; 6], false, vec![]);
        fx.job(cfg, 6, vec![vec![]; 6], false, vec![]);
        let a = Fair.assign(&fx.view());
        assert_eq!(a.len(), 6, "all six slots filled");
        let (j0, j1) = (count_for_job(&a, 0), count_for_job(&a, 1));
        assert_eq!(j0 + j1, 6);
        assert!(j0.abs_diff(j1) <= 1, "even split, got {j0} vs {j1}");
        // Interleaved hand-out: the first two assignments serve different
        // jobs (that ordering drives the heartbeat stagger).
        assert_ne!(a[0].job, a[1].job, "round-robin interleaves jobs");
    }

    #[test]
    fn fair_never_overcommits_slots() {
        let mut fx = ViewFixture::new(2);
        let cfg = JobConfig::default().with_locality(false);
        fx.job(cfg.clone(), 10, vec![vec![]; 10], false, vec![]);
        fx.job(cfg.clone(), 10, vec![vec![]; 10], false, vec![]);
        fx.job(cfg.clone(), 10, vec![vec![]; 10], false, vec![]);
        let a = Fair.assign(&fx.view());
        let mut per_vm: HashMap<u32, u32> = HashMap::new();
        for x in &a {
            *per_vm.entry(x.vm.0).or_insert(0) += 1;
        }
        for (&vm, &n) in &per_vm {
            assert!(
                n <= cfg.map_slots_per_node,
                "vm {vm} got {n} tasks for {} slots",
                cfg.map_slots_per_node
            );
        }
        assert_eq!(a.len(), 4, "exactly the free slot count");
    }

    #[test]
    fn job_driven_prefers_locality_over_queue_order() {
        // One free slot situation: tracker 1 full, tracker 2 free. Map 0
        // (queue front) has its replica on the full tracker; map 1 lives
        // on the free one. FIFO would give the slot to map 0 (remote);
        // JobDriven matches map 1 to its replica first.
        let mut fx = ViewFixture::new(2);
        fx.used_map.insert(1, 2); // tracker 1 full
        let cfg = JobConfig::default();
        fx.job(cfg, 2, vec![vec![VmId(1)], vec![VmId(2)]], false, vec![]);
        let a = JobDriven.assign(&fx.view());
        let first = a.first().expect("an assignment");
        assert_eq!(first.kind, TaskKind::Map(1), "local map jumps the queue");
        assert_eq!(first.vm, VmId(2));
        // FIFO on the same view places the queue head remotely.
        let f = Fifo.assign(&fx.view());
        assert_eq!(f.first().expect("an assignment").kind, TaskKind::Map(0));
    }

    #[test]
    fn job_driven_places_largest_partition_first() {
        let mut fx = ViewFixture::new(2);
        let cfg = JobConfig::default().with_reduces(3);
        fx.job(cfg, 0, vec![], true, vec![10, 5000, 70]);
        let a = JobDriven.assign(&fx.view());
        let order: Vec<usize> = a
            .iter()
            .filter_map(|x| match x.kind {
                TaskKind::Reduce(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![1, 2, 0], "LPT: biggest reduce partition placed first");
    }

    /// Regression for the seed engine's reduce-placement bug: the picker
    /// compared free *reduce* slots only, so a tracker buried in another
    /// job's maps tied with an idle one and won on id. The total-load
    /// tie-break must send the reduce to the idle tracker.
    #[test]
    fn reduce_placement_avoids_map_loaded_tracker() {
        let mut fx = ViewFixture::new(2);
        fx.used_map.insert(1, 2); // tracker 1 busy with maps; reduce slots equal
        let cfg = JobConfig::default().with_reduces(1);
        fx.job(cfg, 0, vec![], true, vec![100]);
        for a in Fifo.assign(&fx.view()) {
            assert_eq!(a.vm, VmId(2), "reduce avoids the map-loaded tracker");
        }
        assert_eq!(Fifo.assign(&fx.view()).len(), 1);
    }

    /// The rack-local tier sits between host-local and anywhere: when the
    /// replica node and every tracker on its host are full, a same-rack
    /// tracker wins over an off-rack one — but only on a multi-rack
    /// fabric; flat clusters keep the emptiest-tracker fallback.
    #[test]
    fn rack_local_beats_off_rack() {
        // Hosts alternate (vm1/vm3 on host 1, vm2/vm4 on host 0) while
        // racks split differently: vm1/vm2 in rack 0, vm3/vm4 in rack 1.
        // Replica on vm1; vm1 and vm3 (vm1's host peer) are full, so both
        // the data-local and host-local passes fail. vm2 carries one task
        // (1 free slot), vm4 is idle (2 free).
        let setup = || {
            let mut fx = ViewFixture::new(4);
            fx.used_map.insert(1, 2);
            fx.used_map.insert(3, 2);
            fx.used_map.insert(2, 1);
            fx.job(JobConfig::default(), 1, vec![vec![VmId(1)]], false, vec![]);
            fx
        };
        let mut racked = setup();
        racked.racks = 2;
        racked.vm_racks = vec![RackId(0), RackId(0), RackId(0), RackId(1), RackId(1)];
        for t in &mut racked.trackers {
            t.rack = racked.vm_racks[t.vm.0 as usize];
        }
        for a in [Fifo.assign(&racked.view()), JobDriven.assign(&racked.view())] {
            assert_eq!(
                a.first().expect("placed").vm,
                VmId(2),
                "same-rack vm2 preferred over the emptier off-rack vm4"
            );
        }
        // Flat fabric, identical slots: the emptiest tracker (vm4) wins —
        // the rack pass must not fire with one rack.
        let flat = setup();
        let a = Fifo.assign(&flat.view());
        assert_eq!(a.first().expect("placed").vm, VmId(4), "flat fallback is the emptiest");
    }

    #[test]
    fn speculative_placement_avoids_straggler_host() {
        let mut fx = ViewFixture::new(3);
        let cfg = JobConfig::default();
        fx.job(cfg, 1, vec![vec![]], false, vec![]);
        let vm = Fifo.place_speculative(&fx.view(), 0, VmId(1)).expect("free slot exists");
        assert_ne!(vm, VmId(1), "backup attempt runs elsewhere");
    }

    #[test]
    fn policy_names_round_trip() {
        for p in SchedulerPolicy::all() {
            assert_eq!(p.name().parse::<SchedulerPolicy>(), Ok(p));
        }
        assert!("nonsense".parse::<SchedulerPolicy>().is_err());
    }
}
