//! Job configuration — the knobs the paper's Hadoop Module and MapReduce
//! Tuner turn.

use crate::scheduler::SchedulerPolicy;
use serde::{Deserialize, Serialize};
use simcore::time::SimDuration;

/// Per-job configuration (Hadoop 0.20 parameter names in the doc comments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Number of reduce tasks (`mapred.reduce.tasks`). Zero makes a
    /// map-only job whose maps write output directly (TeraGen, DFSIO).
    pub num_reduces: u32,
    /// Concurrent map tasks per node (`mapred.tasktracker.map.tasks.maximum`).
    pub map_slots_per_node: u32,
    /// Concurrent reduce tasks per node (`mapred.tasktracker.reduce.tasks.maximum`).
    pub reduce_slots_per_node: u32,
    /// Run the application's combiner on map output before spilling.
    pub use_combiner: bool,
    /// Prefer scheduling a map where one of its split's replicas lives.
    pub locality_aware: bool,
    /// Per-task launch overhead: heartbeat wait + JVM spawn + setup. The
    /// dominant term for small jobs (MRBench) on 2012 Hadoop.
    pub task_startup: SimDuration,
    /// Launch serialization: the JobTracker hands out one task per
    /// TaskTracker heartbeat, so the k-th task assigned in the same wave
    /// starts ≈ `k × assignment_stagger` later. This is what makes tiny
    /// jobs slow down as map/reduce counts grow (the paper's Fig. 3).
    pub assignment_stagger: SimDuration,
    /// Output replication (`dfs.replication` for job output files).
    pub output_replication: u32,
    /// Launch backup attempts for straggling maps
    /// (`mapred.map.tasks.speculative.execution`). The first attempt to
    /// finish wins; the loser's work is discarded.
    pub speculative: bool,
    /// Task-scheduler policy this submission asks for. `None` inherits the
    /// engine-wide policy (from `PlatformConfig::scheduler`, default FIFO);
    /// `Some(p)` switches the engine to `p` at submit time.
    pub scheduler: Option<SchedulerPolicy>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            num_reduces: 1,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            use_combiner: true,
            locality_aware: true,
            task_startup: SimDuration::from_millis(1_500),
            assignment_stagger: SimDuration::from_millis(400),
            output_replication: 3,
            speculative: false,
            scheduler: None,
        }
    }
}

impl JobConfig {
    /// Map-only configuration (writes map output directly to HDFS).
    pub fn map_only() -> Self {
        JobConfig { num_reduces: 0, ..Default::default() }
    }

    /// Sets the reduce count, builder style.
    pub fn with_reduces(mut self, n: u32) -> Self {
        self.num_reduces = n;
        self
    }

    /// Toggles the combiner, builder style.
    pub fn with_combiner(mut self, on: bool) -> Self {
        self.use_combiner = on;
        self
    }

    /// Toggles locality-aware scheduling, builder style.
    pub fn with_locality(mut self, on: bool) -> Self {
        self.locality_aware = on;
        self
    }

    /// Toggles speculative execution, builder style.
    pub fn with_speculative(mut self, on: bool) -> Self {
        self.speculative = on;
        self
    }

    /// Selects the task-scheduler policy, builder style.
    pub fn with_scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = Some(policy);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_hadoop_020_flavoured() {
        let c = JobConfig::default();
        assert_eq!(c.map_slots_per_node, 2);
        assert_eq!(c.reduce_slots_per_node, 2);
        assert_eq!(c.output_replication, 3);
        assert!(c.locality_aware);
    }

    #[test]
    fn builders_compose() {
        let c = JobConfig::default().with_reduces(6).with_combiner(false).with_locality(false);
        assert_eq!(c.num_reduces, 6);
        assert!(!c.use_combiner);
        assert!(!c.locality_aware);
        assert_eq!(JobConfig::map_only().num_reduces, 0);
    }
}
