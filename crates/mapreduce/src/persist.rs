//! Snapshot capture of the JobTracker's dynamic state.
//!
//! Everything the engine mutates while jobs run is encoded here in a
//! canonical order (maps sorted by key, ids ascending) so byte-identical
//! engine states produce byte-identical snapshots. The three user-code
//! trait objects per job (`app`, `input`, `partitioner`) are *not*
//! serialized — user code is arbitrary Rust — instead they travel out of
//! band as [`JobResidue`] `Rc` clones that the platform's `Snapshot`
//! carries and hands back at restore time. Sharing is sound because the
//! traits are `&self`-only, immutable, and deterministic.

use crate::app::{MapReduceApp, Partitioner};
use crate::config::JobConfig;
use crate::counters::Counters;
use crate::engine::MrEngine;
use crate::input::InputFormat;
use crate::job::{JobId, JobSpec};
use crate::scheduler::SchedulerPolicy;
use crate::state::{JobState, SplitInfo, TaskPhase};
use crate::types::{K, V};
use simcore::persist::{Decoder, Encoder, Persist};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use vcluster::cluster::VmId;
use vhdfs::meta::BlockId;

impl Persist for JobId {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.0);
    }
    fn decode(d: &mut Decoder) -> Self {
        JobId(d.u32())
    }
}

impl Persist for SchedulerPolicy {
    fn encode(&self, e: &mut Encoder) {
        e.u8(match self {
            SchedulerPolicy::Fifo => 0,
            SchedulerPolicy::Fair => 1,
            SchedulerPolicy::JobDriven => 2,
        });
    }
    fn decode(d: &mut Decoder) -> Self {
        match d.u8() {
            0 => SchedulerPolicy::Fifo,
            1 => SchedulerPolicy::Fair,
            2 => SchedulerPolicy::JobDriven,
            other => panic!("snapshot: unknown scheduler policy code {other}"),
        }
    }
}

impl Persist for K {
    fn encode(&self, e: &mut Encoder) {
        match self {
            K::Int(i) => {
                e.u8(0);
                e.u64(*i as u64);
            }
            K::Text(s) => {
                e.u8(1);
                e.str(s);
            }
            K::Bytes(b) => {
                e.u8(2);
                b.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        match d.u8() {
            0 => K::Int(d.u64() as i64),
            1 => K::Text(d.str()),
            2 => K::Bytes(Vec::<u8>::decode(d)),
            other => panic!("snapshot: unknown key variant {other}"),
        }
    }
}

impl Persist for V {
    fn encode(&self, e: &mut Encoder) {
        match self {
            V::Null => e.u8(0),
            V::Int(i) => {
                e.u8(1);
                e.u64(*i as u64);
            }
            V::Float(f) => {
                e.u8(2);
                e.f64(*f);
            }
            V::Text(s) => {
                e.u8(3);
                e.str(s);
            }
            V::Bytes(b) => {
                e.u8(4);
                b.encode(e);
            }
            V::Vector(v) => {
                e.u8(5);
                v.encode(e);
            }
            V::Tuple(t) => {
                e.u8(6);
                t.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        match d.u8() {
            0 => V::Null,
            1 => V::Int(d.u64() as i64),
            2 => V::Float(d.f64()),
            3 => V::Text(d.str()),
            4 => V::Bytes(Vec::<u8>::decode(d)),
            5 => V::Vector(Vec::<f64>::decode(d)),
            6 => V::Tuple(Vec::<V>::decode(d)),
            other => panic!("snapshot: unknown value variant {other}"),
        }
    }
}

impl Persist for Counters {
    fn encode(&self, e: &mut Encoder) {
        for v in [
            self.map_input_records,
            self.map_input_bytes,
            self.map_output_records,
            self.map_output_bytes,
            self.combine_output_records,
            self.shuffle_bytes,
            self.reduce_input_records,
            self.reduce_input_groups,
            self.reduce_output_records,
            self.output_bytes,
            self.data_local_maps,
            self.rack_local_maps,
            self.launched_maps,
            self.launched_reduces,
            self.speculative_maps,
            self.relaunched_tasks,
        ] {
            e.u64(v);
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        Counters {
            map_input_records: d.u64(),
            map_input_bytes: d.u64(),
            map_output_records: d.u64(),
            map_output_bytes: d.u64(),
            combine_output_records: d.u64(),
            shuffle_bytes: d.u64(),
            reduce_input_records: d.u64(),
            reduce_input_groups: d.u64(),
            reduce_output_records: d.u64(),
            output_bytes: d.u64(),
            data_local_maps: d.u64(),
            rack_local_maps: d.u64(),
            launched_maps: d.u64(),
            launched_reduces: d.u64(),
            speculative_maps: d.u64(),
            relaunched_tasks: d.u64(),
        }
    }
}

impl Persist for JobConfig {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.num_reduces);
        e.u32(self.map_slots_per_node);
        e.u32(self.reduce_slots_per_node);
        e.bool(self.use_combiner);
        e.bool(self.locality_aware);
        self.task_startup.encode(e);
        self.assignment_stagger.encode(e);
        e.u32(self.output_replication);
        e.bool(self.speculative);
        self.scheduler.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        JobConfig {
            num_reduces: d.u32(),
            map_slots_per_node: d.u32(),
            reduce_slots_per_node: d.u32(),
            use_combiner: d.bool(),
            locality_aware: d.bool(),
            task_startup: Persist::decode(d),
            assignment_stagger: Persist::decode(d),
            output_replication: d.u32(),
            speculative: d.bool(),
            scheduler: Persist::decode(d),
        }
    }
}

impl Persist for JobSpec {
    fn encode(&self, e: &mut Encoder) {
        e.str(&self.name);
        self.input_path.encode(e);
        e.str(&self.output_path);
        self.config.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        JobSpec {
            name: d.str(),
            input_path: Persist::decode(d),
            output_path: d.str(),
            config: Persist::decode(d),
        }
    }
}

impl Persist for SplitInfo {
    fn encode(&self, e: &mut Encoder) {
        self.block.encode(e);
        e.u64(self.bytes);
        self.locations.encode(e);
    }
    fn decode(d: &mut Decoder) -> Self {
        SplitInfo {
            block: Option::<BlockId>::decode(d),
            bytes: d.u64(),
            locations: Vec::<VmId>::decode(d),
        }
    }
}

impl Persist for TaskPhase {
    fn encode(&self, e: &mut Encoder) {
        match self {
            TaskPhase::Pending => e.u8(0),
            TaskPhase::Running(vm) => {
                e.u8(1);
                vm.encode(e);
            }
            TaskPhase::Done => e.u8(2),
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        match d.u8() {
            0 => TaskPhase::Pending,
            1 => TaskPhase::Running(VmId::decode(d)),
            2 => TaskPhase::Done,
            other => panic!("snapshot: unknown task phase {other}"),
        }
    }
}

/// The shareable user-code parts of one in-flight job. These ride inside
/// the platform `Snapshot` as live `Rc`s (never as bytes) and are rejoined
/// with the decoded [`JobState`] at restore.
#[derive(Clone)]
pub struct JobResidue {
    /// Job id this residue belongs to.
    pub id: u32,
    /// The application's map/reduce/combine code.
    pub app: Rc<dyn MapReduceApp>,
    /// The job's input format.
    pub input: Rc<dyn InputFormat>,
    /// The job's partitioner.
    pub partitioner: Rc<dyn Partitioner>,
}

impl std::fmt::Debug for JobResidue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobResidue").field("id", &self.id).field("app", &self.app.name()).finish()
    }
}

impl JobState {
    fn encode_state(&self, e: &mut Encoder) {
        self.spec.encode(e);
        self.splits.encode(e);
        self.maps.encode(e);
        self.reduces.encode(e);
        self.map_vm.encode(e);
        e.usize(self.map_attempt_vm.len());
        for pair in &self.map_attempt_vm {
            pair[0].encode(e);
            pair[1].encode(e);
        }
        self.map_started_at.encode(e);
        self.map_durations.encode(e);
        self.speculated.encode(e);
        self.write_claimed.encode(e);
        e.usize(self.attempt_active.len());
        for pair in &self.attempt_active {
            e.bool(pair[0]);
            e.bool(pair[1]);
        }
        self.map_epoch.encode(e);
        self.reduce_epoch.encode(e);
        self.map_retries.encode(e);
        self.reduce_retries.encode(e);
        self.reduce_started_at.encode(e);
        self.shuffle_started_at.encode(e);
        self.pending_maps.encode(e);
        self.pending_reduces.encode(e);
        self.map_outputs.encode(e);
        self.reduce_outputs.encode(e);
        e.usize(self.completed_maps);
        e.usize(self.completed_reduces);
        self.counters.encode(e);
        self.submitted.encode(e);
        self.map_phase_done.encode(e);
    }

    fn decode_state(
        d: &mut Decoder,
        id: JobId,
        app: Rc<dyn MapReduceApp>,
        input: Rc<dyn InputFormat>,
        partitioner: Rc<dyn Partitioner>,
    ) -> Self {
        let spec = JobSpec::decode(d);
        let splits = Vec::<SplitInfo>::decode(d);
        let maps = Vec::<TaskPhase>::decode(d);
        let reduces = Vec::<TaskPhase>::decode(d);
        let map_vm = Vec::<Option<VmId>>::decode(d);
        let n = d.usize();
        let map_attempt_vm =
            (0..n).map(|_| [Option::<VmId>::decode(d), Option::<VmId>::decode(d)]).collect();
        let map_started_at = Persist::decode(d);
        let map_durations = Persist::decode(d);
        let speculated = Persist::decode(d);
        let write_claimed = Persist::decode(d);
        let n = d.usize();
        let attempt_active = (0..n).map(|_| [d.bool(), d.bool()]).collect();
        JobState {
            id,
            spec,
            app,
            input,
            partitioner,
            splits,
            maps,
            reduces,
            map_vm,
            map_attempt_vm,
            map_started_at,
            map_durations,
            speculated,
            write_claimed,
            attempt_active,
            map_epoch: Persist::decode(d),
            reduce_epoch: Persist::decode(d),
            map_retries: Persist::decode(d),
            reduce_retries: Persist::decode(d),
            reduce_started_at: Persist::decode(d),
            shuffle_started_at: Persist::decode(d),
            pending_maps: VecDeque::<usize>::decode(d),
            pending_reduces: VecDeque::<usize>::decode(d),
            map_outputs: Persist::decode(d),
            reduce_outputs: Persist::decode(d),
            completed_maps: d.usize(),
            completed_reduces: d.usize(),
            counters: Counters::decode(d),
            submitted: Persist::decode(d),
            map_phase_done: Persist::decode(d),
        }
    }
}

impl MrEngine {
    /// `Rc` clones of every unfinished job's user-code trait objects,
    /// ascending job id — the out-of-band half of a snapshot.
    pub fn residue(&self) -> Vec<JobResidue> {
        let mut ids: Vec<u32> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                let j = &self.jobs[&id];
                JobResidue {
                    id,
                    app: Rc::clone(&j.app),
                    input: Rc::clone(&j.input),
                    partitioner: Rc::clone(&j.partitioner),
                }
            })
            .collect()
    }

    /// Encodes all dynamic JobTracker state (jobs ascending id, slot
    /// tables sorted by key).
    pub fn encode_state(&self, e: &mut Encoder) {
        self.trackers.encode(e);
        e.u32(self.next_job);
        self.used_map_slots.encode(e);
        self.used_reduce_slots.encode(e);
        self.scheduler.policy().encode(e);
        let mut ids: Vec<u32> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        e.usize(ids.len());
        for id in ids {
            e.u32(id);
            self.jobs[&id].encode_state(e);
        }
    }

    /// Overwrites this engine's dynamic state from a snapshot, rejoining
    /// each decoded job with its [`JobResidue`] user code.
    ///
    /// # Panics
    /// If a decoded job has no matching residue entry.
    pub fn restore_state(&mut self, d: &mut Decoder, residue: &[JobResidue]) {
        self.trackers = Vec::<VmId>::decode(d);
        self.next_job = d.u32();
        self.used_map_slots = HashMap::<u32, u32>::decode(d);
        self.used_reduce_slots = HashMap::<u32, u32>::decode(d);
        self.set_policy(SchedulerPolicy::decode(d));
        let n = d.usize();
        self.jobs = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = d.u32();
            let r = residue
                .iter()
                .find(|r| r.id == id)
                .unwrap_or_else(|| panic!("snapshot residue missing job {id}"));
            let state = JobState::decode_state(
                d,
                JobId(id),
                Rc::clone(&r.app),
                Rc::clone(&r.input),
                Rc::clone(&r.partitioner),
            );
            self.jobs.insert(id, state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::persist::{Decoder, Encoder};

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let mut e = Encoder::new();
        v.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(T::decode(&mut d), v);
        assert!(d.is_exhausted());
    }

    #[test]
    fn records_round_trip() {
        round_trip(K::Int(-7));
        round_trip(K::Text("word".into()));
        round_trip(K::Bytes(vec![0, 255, 3]));
        round_trip(V::Null);
        round_trip(V::Int(-1));
        round_trip(V::Float(-0.5));
        round_trip(V::Vector(vec![1.0, 2.5]));
        round_trip(V::Tuple(vec![V::Int(1), V::Text("x".into())]));
        round_trip(vec![(K::Int(1), V::Null), (K::from("a"), V::from(2.0))]);
    }

    #[test]
    fn specs_round_trip() {
        round_trip(JobSpec::new("wc", "/in", "/out"));
        round_trip(JobSpec::generated("gen", "/g").with_config(
            JobConfig::map_only().with_scheduler(SchedulerPolicy::JobDriven).with_speculative(true),
        ));
        round_trip(Counters { shuffle_bytes: 42, launched_maps: 3, ..Default::default() });
        round_trip(TaskPhase::Running(VmId(4)));
        round_trip(vec![TaskPhase::Pending, TaskPhase::Done]);
    }
}
