//! Job counters, mirroring Hadoop's built-in counter groups.

use serde::{Deserialize, Serialize};

/// Aggregate counters of one job run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Records read by all maps.
    pub map_input_records: u64,
    /// Bytes read by all maps (HDFS).
    pub map_input_bytes: u64,
    /// Records emitted by all maps (before the combiner).
    pub map_output_records: u64,
    /// Bytes emitted by all maps (before the combiner).
    pub map_output_bytes: u64,
    /// Records after the combiner (equals map output when disabled).
    pub combine_output_records: u64,
    /// Bytes moved map→reduce over the network.
    pub shuffle_bytes: u64,
    /// Records fed to all reduces.
    pub reduce_input_records: u64,
    /// Distinct keys reduced.
    pub reduce_input_groups: u64,
    /// Records emitted by all reduces.
    pub reduce_output_records: u64,
    /// Bytes written to HDFS output (pre-replication).
    pub output_bytes: u64,
    /// Map tasks that ran with a data-local split.
    pub data_local_maps: u64,
    /// Map tasks that ran near a replica without holding one: on the same
    /// physical machine, or (multi-rack fabrics) in the same rack.
    pub rack_local_maps: u64,
    /// Map tasks launched (including speculative attempts).
    pub launched_maps: u64,
    /// Reduce tasks launched.
    pub launched_reduces: u64,
    /// Speculative map attempts launched.
    pub speculative_maps: u64,
    /// Tasks re-queued after a TaskTracker failure.
    pub relaunched_tasks: u64,
}

impl Counters {
    /// Combiner selectivity: combined/raw map output records (1.0 when no
    /// combining happened or nothing was emitted).
    pub fn combine_ratio(&self) -> f64 {
        if self.map_output_records == 0 {
            1.0
        } else {
            self.combine_output_records as f64 / self.map_output_records as f64
        }
    }

    /// Fraction of maps that read a local replica.
    pub fn data_locality(&self) -> f64 {
        if self.launched_maps == 0 {
            0.0
        } else {
            self.data_local_maps as f64 / self.launched_maps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let c = Counters::default();
        assert_eq!(c.combine_ratio(), 1.0);
        assert_eq!(c.data_locality(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let c = Counters {
            map_output_records: 100,
            combine_output_records: 25,
            launched_maps: 10,
            data_local_maps: 8,
            ..Default::default()
        };
        assert_eq!(c.combine_ratio(), 0.25);
        assert_eq!(c.data_locality(), 0.8);
    }
}
