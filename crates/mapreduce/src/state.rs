//! Per-job bookkeeping and event-tag encoding shared by the engine's
//! lifecycle modules.
//!
//! Paper mechanism modelled: the JobTracker's in-memory job/task tables —
//! split metadata (from the HDFS namenode), per-task attempt state, the
//! map-output index that feeds the shuffle, and the counters the paper's
//! nmon Monitor and MapReduce Tuner consume.

use crate::app::{MapReduceApp, Partitioner};
use crate::config::JobConfig;
use crate::counters::Counters;
use crate::input::InputFormat;
use crate::job::{JobId, JobSpec};
use crate::types::{records_size, Record};
use simcore::owners;
use simcore::prelude::*;
use std::collections::VecDeque;
use std::rc::Rc;
use vcluster::cluster::VmId;
use vhdfs::meta::BlockId;

// Phase codes stored in bits 56..64 of the tag payload.
pub(crate) const PH_MAP_STARTUP: u8 = 0;
pub(crate) const PH_MAP_READ: u8 = 1;
pub(crate) const PH_MAP_COMPUTE: u8 = 2;
pub(crate) const PH_MAP_WRITE: u8 = 3;
pub(crate) const PH_REDUCE_STARTUP: u8 = 4;
pub(crate) const PH_SHUFFLE: u8 = 5;
pub(crate) const PH_REDUCE_COMPUTE: u8 = 6;
pub(crate) const PH_REDUCE_WRITE: u8 = 7;
/// Periodic speculation heartbeat (only armed when speculative execution
/// is enabled — Hadoop's JobTracker re-evaluates stragglers on TaskTracker
/// heartbeats, not on task events).
pub(crate) const PH_SPECULATE: u8 = 8;
/// Deferred re-queue of a map after a tracker timeout (the JobTracker's
/// detection latency + per-task retry backoff, armed as an engine timer).
pub(crate) const PH_REQUEUE_MAP: u8 = 9;
/// Deferred re-queue of a reduce after a tracker timeout.
pub(crate) const PH_REQUEUE_REDUCE: u8 = 10;
/// Batch-member completions we deliberately ignore.
pub(crate) const PH_IGNORE: u8 = 15;

/// Attempt flag: set for the speculative (second) attempt of a task.
const ATTEMPT_BIT: u64 = 1 << 55;
/// Per-task relaunch epoch, bits 48..55 (7 bits, wrapping): events whose
/// epoch disagrees with the task's current epoch belong to an attempt
/// killed by a tracker failure and are dropped.
const EPOCH_SHIFT: u64 = 48;
const EPOCH_MASK: u64 = 0x7F << EPOCH_SHIFT;
const TASK_MASK: u64 = (1 << EPOCH_SHIFT) - 1;

pub(crate) fn tag(job: JobId, phase: u8, task: usize) -> Tag {
    tag_full(job, phase, 0, 0, task)
}

pub(crate) fn tag_full(job: JobId, phase: u8, attempt: usize, epoch: u8, task: usize) -> Tag {
    let attempt_bit = if attempt == 0 { 0 } else { ATTEMPT_BIT };
    let epoch_bits = (u64::from(epoch) << EPOCH_SHIFT) & EPOCH_MASK;
    Tag::new(
        owners::MAPREDUCE,
        job.0,
        (u64::from(phase) << 56) | attempt_bit | epoch_bits | task as u64,
    )
}

pub(crate) fn decode(t: Tag) -> (JobId, u8, usize, u8, usize) {
    let attempt = usize::from(t.b & ATTEMPT_BIT != 0);
    (
        JobId(t.a),
        (t.b >> 56) as u8,
        attempt,
        ((t.b & EPOCH_MASK) >> EPOCH_SHIFT) as u8,
        (t.b & TASK_MASK) as usize,
    )
}

#[derive(Debug, Clone)]
pub(crate) struct SplitInfo {
    pub(crate) block: Option<BlockId>,
    pub(crate) bytes: u64,
    pub(crate) locations: Vec<VmId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskPhase {
    Pending,
    Running(VmId),
    Done,
}

pub(crate) struct JobState {
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    // Shared (not owned) so a snapshot can carry them into forks: user
    // code is immutable and deterministic, so parent and fork may safely
    // invoke the same instance.
    pub(crate) app: Rc<dyn MapReduceApp>,
    pub(crate) input: Rc<dyn InputFormat>,
    pub(crate) partitioner: Rc<dyn Partitioner>,
    pub(crate) splits: Vec<SplitInfo>,
    pub(crate) maps: Vec<TaskPhase>,
    pub(crate) reduces: Vec<TaskPhase>,
    /// VM the *winning* attempt of each map ran on (shuffle source).
    pub(crate) map_vm: Vec<Option<VmId>>,
    /// VM per map attempt (index 0 = primary, 1 = speculative).
    pub(crate) map_attempt_vm: Vec<[Option<VmId>; 2]>,
    /// Launch instant of each map's primary attempt.
    pub(crate) map_started_at: Vec<Option<SimTime>>,
    /// Durations of completed maps (drives the speculation threshold).
    pub(crate) map_durations: Vec<f64>,
    /// Whether a speculative attempt was already launched per map.
    pub(crate) speculated: Vec<bool>,
    /// Map-only jobs: whether some attempt already claimed the HDFS write.
    pub(crate) write_claimed: Vec<bool>,
    /// Whether each map attempt currently holds a slot.
    pub(crate) attempt_active: Vec<[bool; 2]>,
    /// Relaunch epoch per map task (bumped when a tracker failure kills
    /// its attempts).
    pub(crate) map_epoch: Vec<u8>,
    /// Relaunch epoch per reduce task.
    pub(crate) reduce_epoch: Vec<u8>,
    /// How often each map was lost to a tracker timeout (drives the
    /// re-queue backoff).
    pub(crate) map_retries: Vec<u32>,
    /// How often each reduce was lost to a tracker timeout.
    pub(crate) reduce_retries: Vec<u32>,
    /// Launch instant of each reduce task (trace span start).
    pub(crate) reduce_started_at: Vec<Option<SimTime>>,
    /// Instant each reduce's shuffle batch was issued (trace span start).
    pub(crate) shuffle_started_at: Vec<Option<SimTime>>,
    pub(crate) pending_maps: VecDeque<usize>,
    pub(crate) pending_reduces: VecDeque<usize>,
    /// Per map: per reduce partition, the (possibly combined) records.
    /// Consumed (taken) by the owning reduce during merge. Map-only jobs
    /// store the whole map output in a single pseudo-partition.
    pub(crate) map_outputs: Vec<Vec<Option<Vec<Record>>>>,
    /// Per reduce: output records awaiting the HDFS write.
    pub(crate) reduce_outputs: Vec<Option<Vec<Record>>>,
    pub(crate) completed_maps: usize,
    pub(crate) completed_reduces: usize,
    pub(crate) counters: Counters,
    pub(crate) submitted: SimTime,
    pub(crate) map_phase_done: Option<SimTime>,
}

impl JobState {
    pub(crate) fn config(&self) -> &JobConfig {
        &self.spec.config
    }

    pub(crate) fn num_reduces(&self) -> usize {
        self.spec.config.num_reduces as usize
    }

    pub(crate) fn map_only(&self) -> bool {
        self.spec.config.num_reduces == 0
    }

    pub(crate) fn running_reduce_vm(&self, r: usize) -> VmId {
        match self.reduces[r] {
            TaskPhase::Running(vm) => vm,
            other => panic!("reduce {r} in unexpected state {other:?}"),
        }
    }

    /// Bytes of map output per reduce partition, for partition-size-aware
    /// reduce placement. Only materialized once reduces are schedulable
    /// (map phase done, reduces still pending) — empty otherwise, so the
    /// per-event scheduling path never pays for it.
    pub(crate) fn partition_bytes(&self) -> Vec<u64> {
        if self.map_phase_done.is_none() || self.pending_reduces.is_empty() {
            return Vec::new();
        }
        (0..self.num_reduces())
            .map(|r| {
                self.map_outputs
                    .iter()
                    .map(|parts| parts[r].as_ref().map_or(0, |p| records_size(p)))
                    .sum()
            })
            .collect()
    }
}

impl std::fmt::Debug for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobState")
            .field("id", &self.id)
            .field("name", &self.spec.name)
            .field("completed_maps", &self.completed_maps)
            .field("completed_reduces", &self.completed_reduces)
            .finish()
    }
}
