//! Keys and values flowing through MapReduce jobs.
//!
//! The engine *really executes* user map/reduce code, so records carry real
//! data. Keys ([`K`]) are the orderable/hashable subset (grouping and
//! sorting need `Ord + Hash`); values ([`V`]) additionally carry numeric
//! vectors and tuples for the machine-learning jobs. [`K::size_bytes`] /
//! [`V::size_bytes`] estimate serialized size, which drives the fluid flow
//! sizes (spill, shuffle, output) of the simulation.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A record key. Orderable, hashable, cheap to clone for small payloads.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum K {
    /// Integer key (cluster ids, offsets).
    Int(i64),
    /// Text key (words, paths).
    Text(String),
    /// Raw bytes (TeraSort keys, hash signatures).
    Bytes(Vec<u8>),
}

impl K {
    /// Estimated serialized size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            K::Int(_) => 8,
            K::Text(s) => s.len() as u64 + 4,
            K::Bytes(b) => b.len() as u64 + 4,
        }
    }

    /// Stable hash used by the default partitioner.
    pub fn stable_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Borrow as text.
    ///
    /// # Panics
    /// If the key is not [`K::Text`].
    pub fn as_text(&self) -> &str {
        match self {
            K::Text(s) => s,
            other => panic!("expected text key, got {other:?}"),
        }
    }

    /// Borrow as integer.
    ///
    /// # Panics
    /// If the key is not [`K::Int`].
    pub fn as_int(&self) -> i64 {
        match self {
            K::Int(i) => *i,
            other => panic!("expected int key, got {other:?}"),
        }
    }

    /// Borrow as bytes.
    ///
    /// # Panics
    /// If the key is not [`K::Bytes`].
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            K::Bytes(b) => b,
            other => panic!("expected bytes key, got {other:?}"),
        }
    }
}

impl From<&str> for K {
    fn from(s: &str) -> K {
        K::Text(s.to_string())
    }
}

impl From<i64> for K {
    fn from(i: i64) -> K {
        K::Int(i)
    }
}

/// A record value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum V {
    /// Absent value (counting-style jobs use the key only).
    Null,
    /// Integer (counts).
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// Text payload (lines of input).
    Text(String),
    /// Raw bytes (TeraSort payloads).
    Bytes(Vec<u8>),
    /// Dense numeric vector (ML feature vectors).
    Vector(Vec<f64>),
    /// Heterogeneous tuple (partial sums, model fragments).
    Tuple(Vec<V>),
}

impl V {
    /// Estimated serialized size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            V::Null => 1,
            V::Int(_) => 8,
            V::Float(_) => 8,
            V::Text(s) => s.len() as u64 + 4,
            V::Bytes(b) => b.len() as u64 + 4,
            V::Vector(v) => v.len() as u64 * 8 + 4,
            V::Tuple(t) => t.iter().map(V::size_bytes).sum::<u64>() + 4,
        }
    }

    /// Borrow as integer.
    ///
    /// # Panics
    /// If not [`V::Int`].
    pub fn as_int(&self) -> i64 {
        match self {
            V::Int(i) => *i,
            other => panic!("expected int value, got {other:?}"),
        }
    }

    /// Borrow as float.
    ///
    /// # Panics
    /// If not [`V::Float`].
    pub fn as_float(&self) -> f64 {
        match self {
            V::Float(f) => *f,
            other => panic!("expected float value, got {other:?}"),
        }
    }

    /// Borrow as text.
    ///
    /// # Panics
    /// If not [`V::Text`].
    pub fn as_text(&self) -> &str {
        match self {
            V::Text(s) => s,
            other => panic!("expected text value, got {other:?}"),
        }
    }

    /// Borrow as vector.
    ///
    /// # Panics
    /// If not [`V::Vector`].
    pub fn as_vector(&self) -> &[f64] {
        match self {
            V::Vector(v) => v,
            other => panic!("expected vector value, got {other:?}"),
        }
    }

    /// Borrow as tuple.
    ///
    /// # Panics
    /// If not [`V::Tuple`].
    pub fn as_tuple(&self) -> &[V] {
        match self {
            V::Tuple(t) => t,
            other => panic!("expected tuple value, got {other:?}"),
        }
    }
}

impl From<i64> for V {
    fn from(i: i64) -> V {
        V::Int(i)
    }
}

impl From<f64> for V {
    fn from(f: f64) -> V {
        V::Float(f)
    }
}

impl From<&str> for V {
    fn from(s: &str) -> V {
        V::Text(s.to_string())
    }
}

impl From<Vec<f64>> for V {
    fn from(v: Vec<f64>) -> V {
        V::Vector(v)
    }
}

/// One key/value record.
pub type Record = (K, V);

/// Total estimated size of a record set in bytes.
pub fn records_size(records: &[Record]) -> u64 {
    records.iter().map(|(k, v)| k.size_bytes() + v.size_bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ordering_and_hash() {
        assert!(K::Int(1) < K::Int(2));
        assert!(K::Text("a".into()) < K::Text("b".into()));
        assert_eq!(K::from("x").stable_hash(), K::from("x").stable_hash());
        assert_ne!(K::from("x").stable_hash(), K::from("y").stable_hash());
    }

    #[test]
    fn size_estimates() {
        assert_eq!(K::Int(5).size_bytes(), 8);
        assert_eq!(K::Text("abcd".into()).size_bytes(), 8);
        assert_eq!(V::Vector(vec![0.0; 10]).size_bytes(), 84);
        assert_eq!(V::Tuple(vec![V::Int(1), V::Float(2.0)]).size_bytes(), 20);
        let recs: Vec<Record> = vec![(K::Int(1), V::Int(2)), (K::Int(3), V::Null)];
        assert_eq!(records_size(&recs), 16 + 9);
    }

    #[test]
    fn accessors_round_trip() {
        assert_eq!(K::from(7i64).as_int(), 7);
        assert_eq!(K::from("w").as_text(), "w");
        assert_eq!(V::from(3.5).as_float(), 3.5);
        assert_eq!(V::from(vec![1.0, 2.0]).as_vector(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn wrong_accessor_panics() {
        let _ = K::from("text").as_int();
    }
}
