//! # vsched — closed-loop cluster control plane
//!
//! The seed platform runs one pre-placed job at a time; this crate closes
//! the loop around it, in three layers:
//!
//! * [`queue`] — open-loop job arrivals feed a **bounded admission queue**
//!   with a pluggable start order (FIFO, shortest-expected-first,
//!   per-tenant fair share) and per-job SLO tracking (queue wait,
//!   makespan, slowdown);
//! * [`placement`] — a [`placement::PlacementPolicy`] rewrites the VM→host
//!   map before the cluster boots: pack (the paper's "normal" layout),
//!   spread (cross-domain), or an adaptive pick priced by a first-order
//!   makespan model;
//! * [`model`] — every decision that prices a candidate VM layout goes
//!   through a [`model::MakespanModel`]: the analytic
//!   [`model::HandPriced`] baseline or a [`model::Learned`] regression
//!   tree fitted on `vchar` characterization sweeps;
//! * [`rebalance`] — a periodic controller samples per-host CPU/NIC load
//!   from the fluid kernel's cumulative counters and plans bounded live
//!   migrations (hysteresis + cooldown + move budget) through the
//!   existing migration session API, including idle-time consolidation
//!   for the energy report.
//!
//! [`controller::Controller`] glues the layers together and is driven by
//! the `vhadoop` platform's event loop. Everything reacts to simulated
//! wakeups only and draws no randomness, so controlled runs remain pure
//! functions of (config, seed); with the controller disabled (the
//! default) the platform is byte-identical to a controller-free build.

#![warn(missing_docs)]

pub mod controller;
pub mod model;
pub mod placement;
pub mod queue;
pub mod rebalance;

/// Convenience imports.
pub mod prelude {
    pub use crate::controller::{
        Controller, ControllerConfig, ControllerCounters, WhatIfCandidate, WhatIfOutcome,
        WhatIfRequest,
    };
    pub use crate::model::{
        decision_features, HandPriced, Learned, MakespanKind, MakespanModel, RegressionTree,
        TreeConfig, FEATURE_NAMES,
    };
    pub use crate::placement::{
        apply_placement, assign_adaptive, estimate_makespan, AdaptivePlacement, PackPlacement,
        PlacementKind, PlacementPolicy, SpecPlacement, SpreadPlacement, WorkloadHint,
    };
    pub use crate::queue::{
        AdmissionQueue, JobSlo, QueueConfig, QueuePolicy, QueuedJob, SloConfig, SloReport,
        SloTracker,
    };
    pub use crate::rebalance::{
        HostLoad, RebalanceConfig, RebalanceMode, RebalancePlan, Rebalancer,
    };
}
