//! Periodic migration-driven rebalancing.
//!
//! The rebalancer samples each host's CPU and NIC utilization over the
//! controller's tick window (cumulative fluid counters differenced between
//! ticks — the same window-average trick `vmonitor` uses), and plans live
//! migrations when a host stays hot for `hysteresis_ticks` consecutive
//! windows while another host has headroom. Plans are bounded by
//! `max_moves` per session and a post-plan `cooldown`, so one skewed
//! window can't trigger a migration storm. When every host is cold it can
//! optionally plan a consolidation (pack onto the fullest host) to expose
//! energy savings.

use crate::placement::WorkloadHint;
use simcore::prelude::*;
use vcluster::cluster::{HostId, VirtualCluster, VmId};

/// How the controller chooses among candidate migration plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RebalanceMode {
    /// Commit the heuristic plan directly (the seed behavior).
    #[default]
    Estimate,
    /// Fork the simulation once per candidate plan, drive each fork to
    /// completion, and commit the plan with the best *measured* makespan.
    /// The forks also grade `estimate_makespan` against ground truth.
    WhatIf,
}

/// Rebalancer tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Controller tick period (load-sampling window).
    pub interval: SimDuration,
    /// CPU utilization above which a host counts as hot.
    pub hot_cpu: f64,
    /// NIC utilization above which a host counts as hot.
    pub hot_nic: f64,
    /// CPU utilization below which a host counts as cold (consolidation
    /// candidate).
    pub cold_cpu: f64,
    /// Consecutive hot windows required before a plan fires.
    pub hysteresis_ticks: u32,
    /// Most VMs moved per planned session.
    pub max_moves: usize,
    /// Quiet period after a plan before the next one may fire.
    pub cooldown: SimDuration,
    /// Plan pack-style consolidations when the whole cluster is cold.
    pub consolidate: bool,
    /// How a fired plan is chosen: trust the heuristic, or fork-and-measure.
    pub mode: RebalanceMode,
    /// Workload description the estimator prices candidate layouts with
    /// (read only in [`RebalanceMode::WhatIf`]).
    pub hint: WorkloadHint,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            interval: SimDuration::from_secs(2),
            hot_cpu: 0.85,
            hot_nic: 0.85,
            cold_cpu: 0.25,
            hysteresis_ticks: 3,
            max_moves: 2,
            cooldown: SimDuration::from_secs(10),
            consolidate: false,
            mode: RebalanceMode::Estimate,
            hint: WorkloadHint::default(),
        }
    }
}

/// One host's window-averaged load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostLoad {
    /// CPU utilization in `[0, 1]` over the last window.
    pub cpu: f64,
    /// NIC utilization in `[0, 1]` over the last window.
    pub nic: f64,
}

/// What a tick decided.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RebalancePlan {
    /// Per-VM moves to hand to [`vcluster::migration::MigrationManager::start_moves`].
    pub moves: Vec<(VmId, HostId)>,
    /// True when the plan is a whole-cluster consolidation rather than a
    /// hot-spot relief.
    pub consolidation: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Mark {
    at: SimTime,
    cpu_cum: f64,
    nic_cum: f64,
}

/// Stateful load watcher + planner; one per controller.
#[derive(Debug)]
pub struct Rebalancer {
    cfg: RebalanceConfig,
    marks: Vec<Mark>,
    hot_streak: Vec<u32>,
    last_plan: Option<SimTime>,
}

impl Rebalancer {
    /// New rebalancer for a cluster with `hosts` hosts.
    pub fn new(cfg: RebalanceConfig, hosts: u32) -> Self {
        Rebalancer {
            cfg,
            marks: vec![Mark::default(); hosts as usize],
            hot_streak: vec![0; hosts as usize],
            last_plan: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RebalanceConfig {
        &self.cfg
    }

    /// Differences the fluid cumulative counters against the previous tick
    /// to get each host's window-average CPU and NIC utilization. The
    /// first call after construction spans from t = 0.
    pub fn sample(&mut self, engine: &Engine, cluster: &VirtualCluster) -> Vec<HostLoad> {
        let now = engine.now();
        let mut loads = Vec::with_capacity(self.marks.len());
        for h in 0..self.marks.len() {
            let host = HostId(h as u32);
            let cpu_r = cluster.host_cpu_resource(host);
            let nic_r = cluster.host_nic_resource(host);
            let cpu_cum = engine.fluid().cumulative(cpu_r);
            let nic_cum = engine.fluid().cumulative(nic_r);
            let mark = &mut self.marks[h];
            let dt = now.saturating_since(mark.at).as_secs_f64();
            let load = if dt > 0.0 {
                HostLoad {
                    cpu: ((cpu_cum - mark.cpu_cum) / (engine.fluid().capacity(cpu_r) * dt))
                        .clamp(0.0, 1.0),
                    nic: ((nic_cum - mark.nic_cum) / (engine.fluid().capacity(nic_r) * dt))
                        .clamp(0.0, 1.0),
                }
            } else {
                HostLoad { cpu: 0.0, nic: 0.0 }
            };
            *mark = Mark { at: now, cpu_cum, nic_cum };
            loads.push(load);
        }
        loads
    }

    /// Updates hysteresis streaks with this window's loads and returns a
    /// plan when one is due. Returns an empty plan otherwise.
    pub fn plan(
        &mut self,
        now: SimTime,
        cluster: &VirtualCluster,
        loads: &[HostLoad],
    ) -> RebalancePlan {
        for (h, l) in loads.iter().enumerate() {
            if l.cpu >= self.cfg.hot_cpu || l.nic >= self.cfg.hot_nic {
                self.hot_streak[h] += 1;
            } else {
                self.hot_streak[h] = 0;
            }
        }
        if let Some(t) = self.last_plan {
            if now.saturating_since(t) < self.cfg.cooldown {
                return RebalancePlan::default();
            }
        }

        // Hottest host with a full streak, coldest host as the target.
        let hot = (0..loads.len())
            .filter(|&h| self.hot_streak[h] >= self.cfg.hysteresis_ticks)
            .max_by(|&a, &b| loads[a].cpu.total_cmp(&loads[b].cpu));
        if let Some(src) = hot {
            let dst = (0..loads.len())
                .filter(|&h| h != src)
                .min_by(|&a, &b| loads[a].cpu.total_cmp(&loads[b].cpu));
            if let Some(dst) = dst {
                // Only shed load toward real headroom.
                if loads[src].cpu - loads[dst].cpu > 0.2 {
                    let moves = self.pick_moves(cluster, HostId(src as u32), HostId(dst as u32));
                    if !moves.is_empty() {
                        self.last_plan = Some(now);
                        self.hot_streak[src] = 0;
                        return RebalancePlan { moves, consolidation: false };
                    }
                }
            }
            return RebalancePlan::default();
        }

        // Everyone idle → optionally consolidate for energy.
        if self.cfg.consolidate
            && loads.iter().all(|l| l.cpu < self.cfg.cold_cpu)
            && loads.len() > 1
        {
            let moves = self.consolidation_moves(cluster);
            if !moves.is_empty() {
                self.last_plan = Some(now);
                return RebalancePlan { moves, consolidation: true };
            }
        }
        RebalancePlan::default()
    }

    /// Every viable single-destination relief plan off `src` — one per
    /// destination host with CPU headroom — for what-if evaluation. The
    /// heuristic plan's destination (the coldest host) is always among
    /// them, so measuring can only match or beat the heuristic.
    pub fn candidate_plans(
        &self,
        cluster: &VirtualCluster,
        src: HostId,
        loads: &[HostLoad],
    ) -> Vec<RebalancePlan> {
        (0..loads.len())
            .filter(|&h| HostId(h as u32) != src && loads[h].cpu < loads[src.0 as usize].cpu)
            .filter_map(|h| {
                let moves = self.pick_moves(cluster, src, HostId(h as u32));
                (!moves.is_empty()).then_some(RebalancePlan { moves, consolidation: false })
            })
            .collect()
    }

    /// Encodes the load-watcher state (the config is not encoded; a
    /// restored controller is rebuilt from the same config).
    pub fn encode_state(&self, e: &mut Encoder) {
        self.marks.len().encode(e);
        for m in &self.marks {
            m.at.encode(e);
            m.cpu_cum.encode(e);
            m.nic_cum.encode(e);
        }
        self.hot_streak.encode(e);
        self.last_plan.encode(e);
    }

    /// Restores the load-watcher state.
    pub fn restore_state(&mut self, d: &mut Decoder) {
        let n = usize::decode(d);
        self.marks = (0..n)
            .map(|_| Mark {
                at: SimTime::decode(d),
                cpu_cum: f64::decode(d),
                nic_cum: f64::decode(d),
            })
            .collect();
        self.hot_streak = Vec::decode(d);
        self.last_plan = Option::decode(d);
    }

    /// Up to `max_moves` VMs off `src` onto `dst`, lowest VM ids first,
    /// never the namenode (VM 0), respecting `dst`'s DRAM.
    fn pick_moves(
        &self,
        cluster: &VirtualCluster,
        src: HostId,
        dst: HostId,
    ) -> Vec<(VmId, HostId)> {
        let mut free = dst_free_dram(cluster, dst);
        let mut moves = Vec::new();
        for vm in cluster.vms() {
            if moves.len() >= self.cfg.max_moves {
                break;
            }
            if vm == VmId(0) || cluster.host_of(vm) != src {
                continue;
            }
            let mem = cluster.vm_mem(vm);
            if mem <= free {
                free -= mem;
                moves.push((vm, dst));
            }
        }
        moves
    }

    /// Packs VMs from the least-occupied hosts into the most-occupied one.
    fn consolidation_moves(&self, cluster: &VirtualCluster) -> Vec<(VmId, HostId)> {
        let hosts = cluster.host_count();
        let occupancy = |h: u32| cluster.vms().filter(|&v| cluster.host_of(v) == HostId(h)).count();
        let target = (0..hosts)
            .max_by_key(|&h| (occupancy(h), std::cmp::Reverse(h)))
            .map(HostId)
            .expect("at least one host");
        let mut free = dst_free_dram(cluster, target);
        let mut moves = Vec::new();
        for vm in cluster.vms() {
            if moves.len() >= self.cfg.max_moves {
                break;
            }
            if vm == VmId(0) || cluster.host_of(vm) == target {
                continue;
            }
            let mem = cluster.vm_mem(vm);
            if mem <= free {
                free -= mem;
                moves.push((vm, target));
            }
        }
        moves
    }
}

/// DRAM still unclaimed on `host` given current VM residency.
fn dst_free_dram(cluster: &VirtualCluster, host: HostId) -> u64 {
    let used: u64 =
        cluster.vms().filter(|&v| cluster.host_of(v) == host).map(|v| cluster.vm_mem(v)).sum();
    cluster.spec().host.dram.saturating_sub(used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcluster::spec::{ClusterSpec, Placement};

    fn cluster(engine: &mut Engine) -> VirtualCluster {
        let spec =
            ClusterSpec::builder().hosts(2).vms(8).placement(Placement::SingleDomain).build();
        VirtualCluster::new(engine, spec)
    }

    fn hot(cpu: f64) -> HostLoad {
        HostLoad { cpu, nic: 0.0 }
    }

    #[test]
    fn hysteresis_delays_the_plan() {
        let mut e = Engine::new();
        let c = cluster(&mut e);
        let mut r =
            Rebalancer::new(RebalanceConfig { hysteresis_ticks: 3, ..Default::default() }, 2);
        let loads = [hot(0.95), hot(0.05)];
        for tick in 1..=2 {
            let p = r.plan(SimTime::from_secs(tick), &c, &loads);
            assert!(p.moves.is_empty(), "tick {tick} below the hysteresis threshold");
        }
        let p = r.plan(SimTime::from_secs(3), &c, &loads);
        assert!(!p.moves.is_empty(), "third hot window fires");
        assert!(!p.consolidation);
        assert!(p.moves.len() <= 2, "bounded by max_moves");
        assert!(p.moves.iter().all(|&(vm, dst)| vm != VmId(0) && dst == HostId(1)));
    }

    #[test]
    fn cooldown_spaces_consecutive_plans() {
        let mut e = Engine::new();
        let c = cluster(&mut e);
        let mut r = Rebalancer::new(
            RebalanceConfig {
                hysteresis_ticks: 1,
                cooldown: SimDuration::from_secs(10),
                ..Default::default()
            },
            2,
        );
        let loads = [hot(0.95), hot(0.05)];
        assert!(!r.plan(SimTime::from_secs(1), &c, &loads).moves.is_empty());
        assert!(
            r.plan(SimTime::from_secs(5), &c, &loads).moves.is_empty(),
            "inside the cooldown window"
        );
        assert!(!r.plan(SimTime::from_secs(12), &c, &loads).moves.is_empty(), "cooldown expired");
    }

    #[test]
    fn a_cool_window_resets_the_streak() {
        let mut e = Engine::new();
        let c = cluster(&mut e);
        let mut r =
            Rebalancer::new(RebalanceConfig { hysteresis_ticks: 2, ..Default::default() }, 2);
        let hot_loads = [hot(0.95), hot(0.05)];
        let cool_loads = [hot(0.10), hot(0.05)];
        assert!(r.plan(SimTime::from_secs(1), &c, &hot_loads).moves.is_empty());
        assert!(r.plan(SimTime::from_secs(2), &c, &cool_loads).moves.is_empty());
        assert!(
            r.plan(SimTime::from_secs(3), &c, &hot_loads).moves.is_empty(),
            "streak restarted after the cool window"
        );
    }

    #[test]
    fn no_plan_without_a_load_gap() {
        let mut e = Engine::new();
        let c = cluster(&mut e);
        let mut r =
            Rebalancer::new(RebalanceConfig { hysteresis_ticks: 1, ..Default::default() }, 2);
        // Both hosts hot: migrating just trades one hot host for another.
        let loads = [hot(0.95), hot(0.90)];
        assert!(r.plan(SimTime::from_secs(1), &c, &loads).moves.is_empty());
    }

    #[test]
    fn consolidation_packs_toward_the_fullest_host() {
        let mut e = Engine::new();
        let spec = ClusterSpec::builder()
            .hosts(2)
            .vms(8)
            .placement(Placement::Custom(vec![0, 0, 0, 0, 0, 1, 1, 1]))
            .build();
        let c = VirtualCluster::new(&mut e, spec);
        let mut r = Rebalancer::new(
            RebalanceConfig { consolidate: true, max_moves: 8, ..Default::default() },
            2,
        );
        let loads = [hot(0.01), hot(0.01)];
        let p = r.plan(SimTime::from_secs(1), &c, &loads);
        assert!(p.consolidation);
        assert_eq!(
            p.moves,
            vec![(VmId(5), HostId(0)), (VmId(6), HostId(0)), (VmId(7), HostId(0))],
            "host-1 residents pack into the fuller host 0"
        );
    }

    #[test]
    fn sample_reads_window_averages() {
        let mut e = Engine::new();
        let c = cluster(&mut e);
        let mut r = Rebalancer::new(RebalanceConfig::default(), 2);
        // An idle cluster shows zero load over any window.
        e.set_timer_in(SimDuration::from_secs(2), Tag::new(simcore::owners::USER, 0, 0));
        while e.next_wakeup().is_some() {}
        let loads = r.sample(&e, &c);
        assert_eq!(loads.len(), 2);
        assert!(loads.iter().all(|l| l.cpu == 0.0 && l.nic == 0.0));
    }
}
