//! Makespan cost models: the hand-priced baseline and a learned
//! regression tree (DESIGN.md §19).
//!
//! Every control-plane decision that prices a candidate VM layout —
//! adaptive placement, what-if rebalance candidate scoring, tuner knob
//! search — goes through a [`MakespanModel`]. Two implementations exist:
//!
//! * [`HandPriced`] — the first-order analytic
//!   [`estimate_makespan`](crate::placement::estimate_makespan) the
//!   control plane shipped with (kept as the baseline);
//! * [`Learned`] — an in-repo CART-style [`RegressionTree`] fitted on a
//!   characterization dataset (the `vchar` crate's sweep output), fed the
//!   same decision-time inputs through [`decision_features`].
//!
//! The tree is deliberately minimal: axis-aligned splits chosen by
//! exhaustive SSE-minimizing search, constant leaf predictions, no
//! pruning beyond depth/leaf-size knobs. Fitting is **deterministic** —
//! candidate splits are enumerated in (feature index, threshold) order
//! and ties keep the first candidate, sample orderings are made total by
//! breaking value ties on sample index, and all float accumulation
//! happens in one fixed order — so the same dataset always yields the
//! same tree, bit for bit. Trees serialize through the snapshot
//! [`Encoder`]/[`Decoder`] and round-trip to identical predictions
//! (`f64::to_bits`-equal).

use crate::placement::{estimate_makespan, WorkloadHint};
use simcore::persist::{Decoder, Encoder, Persist};
use vcluster::spec::ClusterSpec;

/// Names of the decision-time feature vector [`decision_features`]
/// produces, in column order. Index 0 is the hand-priced estimate itself:
/// the learned model sees its baseline and can recalibrate it, the
/// stacking trick that lets a shallow tree beat the analytic model
/// without relearning cluster physics from scratch.
pub const FEATURE_NAMES: [&str; 17] = [
    "hand_estimate_s",
    "tasks",
    "cpu_secs_per_task",
    "shuffle_mb_per_task",
    "total_workers",
    "busy_hosts",
    "max_workers_per_host",
    "p_same_host",
    "p_same_rack",
    "hosts",
    "racks",
    "cores_per_host",
    "bridge_gbps",
    "nic_gbps",
    "core_gbps",
    "load_mean",
    "load_max",
];

/// The decision-time feature vector for pricing `map` on `spec` under
/// `hint` and `host_load` — exactly the inputs
/// [`estimate_makespan`](crate::placement::estimate_makespan) consumes,
/// so a [`Learned`] model is a drop-in replacement anywhere the
/// hand-priced one fits. Column order matches [`FEATURE_NAMES`].
pub fn decision_features(
    spec: &ClusterSpec,
    map: &[u32],
    hint: &WorkloadHint,
    host_load: &[f64],
) -> Vec<f64> {
    assert_eq!(map.len(), spec.vms as usize);
    let hosts = spec.hosts as usize;
    let mut workers = vec![0u32; hosts];
    for (vm, &h) in map.iter().enumerate() {
        if vm != 0 {
            // VM 0 hosts the namenode/jobtracker and takes no tasks.
            workers[h as usize] += 1;
        }
    }
    let total_workers: u32 = workers.iter().sum();
    let busy_hosts = workers.iter().filter(|&&w| w > 0).count();
    let max_workers = workers.iter().copied().max().unwrap_or(0);
    let p_same: f64 = if total_workers == 0 {
        1.0
    } else {
        workers
            .iter()
            .map(|&w| {
                let f = f64::from(w) / f64::from(total_workers);
                f * f
            })
            .sum()
    };
    let mut rack_workers = vec![0u32; spec.topology.racks as usize];
    for (h, &w) in workers.iter().enumerate() {
        rack_workers[spec.rack_of_host(h as u32) as usize] += w;
    }
    let p_same_rack: f64 = if total_workers == 0 {
        1.0
    } else {
        rack_workers
            .iter()
            .map(|&w| {
                let f = f64::from(w) / f64::from(total_workers);
                f * f
            })
            .sum()
    };
    let core_bw = if spec.topology.core_bw > 0.0 { spec.topology.core_bw } else { spec.switch_bw };
    let n_load = host_load.len().max(1) as f64;
    let load_mean = host_load.iter().sum::<f64>() / n_load;
    let load_max = host_load.iter().copied().fold(0.0, f64::max);
    vec![
        estimate_makespan(spec, map, hint, host_load),
        f64::from(hint.tasks),
        hint.cpu_secs_per_task,
        hint.shuffle_bytes_per_task as f64 / (1 << 20) as f64,
        f64::from(total_workers),
        busy_hosts as f64,
        f64::from(max_workers),
        p_same,
        p_same_rack,
        f64::from(spec.hosts),
        f64::from(spec.topology.racks),
        f64::from(spec.host.cores),
        spec.host.bridge_bw / 1e9,
        spec.host.nic_bw / 1e9,
        core_bw / 1e9,
        load_mean,
        load_max,
    ]
}

/// Depth/leaf-size knobs of [`RegressionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum split depth (0 = a single leaf).
    pub max_depth: usize,
    /// Minimum samples on each side of a split.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 8, min_leaf: 3 }
    }
}

/// Sentinel `feature` value marking a leaf node.
const LEAF: u32 = u32::MAX;

/// One node of a [`RegressionTree`], stored flat. Internal nodes route
/// `x[feature] <= threshold` left; leaves carry the prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    /// Split feature index, or [`LEAF`].
    feature: u32,
    /// Split threshold (the largest left-side training value, so the
    /// training partition is reproduced exactly at prediction time).
    threshold: f64,
    /// Index of the left child (`x[feature] <= threshold`).
    left: u32,
    /// Index of the right child.
    right: u32,
    /// Leaf prediction (mean training label); unused on internal nodes.
    value: f64,
}

/// A CART-style regression tree over [`decision_features`] vectors.
///
/// See the module docs for the determinism argument; the format is a flat
/// preorder `Vec` of nodes serialized field-by-field via [`Persist`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: u32,
}

impl RegressionTree {
    /// Fits a tree to `rows` (one feature vector per sample) and
    /// `labels`. Deterministic: the same inputs always produce the same
    /// tree.
    ///
    /// # Panics
    /// If `rows` is empty, lengths mismatch, or rows have uneven widths.
    pub fn fit(rows: &[Vec<f64>], labels: &[f64], cfg: &TreeConfig) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree to zero samples");
        assert_eq!(rows.len(), labels.len(), "one label per row");
        let n_features = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == n_features), "rows must have equal width");
        let mut tree = RegressionTree { nodes: Vec::new(), n_features: n_features as u32 };
        let idx: Vec<usize> = (0..rows.len()).collect();
        tree.grow(rows, labels, &idx, cfg, 0);
        tree
    }

    /// Recursively grows the subtree over `idx`, returning its root index.
    fn grow(
        &mut self,
        rows: &[Vec<f64>],
        labels: &[f64],
        idx: &[usize],
        cfg: &TreeConfig,
        depth: usize,
    ) -> u32 {
        let sum: f64 = idx.iter().map(|&i| labels[i]).sum();
        let mean = sum / idx.len() as f64;
        let leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node { feature: LEAF, threshold: 0.0, left: 0, right: 0, value: mean });
            (nodes.len() - 1) as u32
        };
        if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_leaf {
            return leaf(&mut self.nodes);
        }
        let Some((feature, threshold)) = best_split(rows, labels, idx, cfg.min_leaf) else {
            return leaf(&mut self.nodes);
        };
        let (l_idx, r_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| rows[i][feature] <= threshold);
        // Reserve this node's slot before the children claim theirs.
        let me = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: feature as u32,
            threshold,
            left: 0,
            right: 0,
            value: mean,
        });
        let left = self.grow(rows, labels, &l_idx, cfg, depth + 1);
        let right = self.grow(rows, labels, &r_idx, cfg, depth + 1);
        self.nodes[me as usize].left = left;
        self.nodes[me as usize].right = right;
        me
    }

    /// Predicts the label of one feature vector.
    ///
    /// # Panics
    /// If `x` is narrower than the training features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert!(
            x.len() >= self.n_features as usize,
            "feature vector too short: {} < {}",
            x.len(),
            self.n_features
        );
        let mut n = &self.nodes[0];
        while n.feature != LEAF {
            n = if x[n.feature as usize] <= n.threshold {
                &self.nodes[n.left as usize]
            } else {
                &self.nodes[n.right as usize]
            };
        }
        n.value
    }

    /// Number of nodes (internal + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.feature == LEAF).count()
    }

    /// Maximum root-to-leaf depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: u32) -> usize {
            let n = &nodes[i as usize];
            if n.feature == LEAF {
                0
            } else {
                1 + walk(nodes, n.left).max(walk(nodes, n.right))
            }
        }
        walk(&self.nodes, 0)
    }

    /// Width of the feature vectors this tree was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features as usize
    }
}

/// Exhaustive deterministic split search: for every feature (ascending)
/// and every boundary between distinct sorted values (ascending), score
/// the SSE of the two sides and keep the strictly best candidate — ties
/// keep the earliest, so the search order is part of the format.
fn best_split(
    rows: &[Vec<f64>],
    labels: &[f64],
    idx: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let n = idx.len();
    let n_features = rows[idx[0]].len();
    let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
    let mut order: Vec<usize> = Vec::with_capacity(n);
    // `feature` indexes the inner per-sample vectors, not `rows` itself.
    #[allow(clippy::needless_range_loop)]
    for feature in 0..n_features {
        order.clear();
        order.extend_from_slice(idx);
        // Total order: value, then sample index — equal values keep a
        // deterministic accumulation order for the prefix sums below.
        order.sort_unstable_by(|&a, &b| {
            rows[a][feature].total_cmp(&rows[b][feature]).then(a.cmp(&b))
        });
        let mut l_sum = 0.0f64;
        let mut l_sq = 0.0f64;
        let mut r_sum: f64 = order.iter().map(|&i| labels[i]).sum();
        let mut r_sq: f64 = order.iter().map(|&i| labels[i] * labels[i]).sum();
        for k in 1..n {
            let y = labels[order[k - 1]];
            l_sum += y;
            l_sq += y * y;
            r_sum -= y;
            r_sq -= y * y;
            if k < min_leaf || n - k < min_leaf {
                continue;
            }
            let lo = rows[order[k - 1]][feature];
            let hi = rows[order[k]][feature];
            if lo >= hi {
                continue; // can't separate equal values
            }
            let sse = (l_sq - l_sum * l_sum / k as f64) + (r_sq - r_sum * r_sum / (n - k) as f64);
            if best.is_none_or(|(b, _, _)| sse < b) {
                // Threshold = the largest left value, so prediction-time
                // routing reproduces the training partition exactly.
                best = Some((sse, feature, lo));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

impl Persist for RegressionTree {
    fn encode(&self, e: &mut Encoder) {
        e.u32(self.n_features);
        e.usize(self.nodes.len());
        for n in &self.nodes {
            e.u32(n.feature);
            e.f64(n.threshold);
            e.u32(n.left);
            e.u32(n.right);
            e.f64(n.value);
        }
    }
    fn decode(d: &mut Decoder) -> Self {
        let n_features = d.u32();
        let n = d.usize();
        let nodes = (0..n)
            .map(|_| {
                let feature = d.u32();
                let threshold = d.f64();
                let left = d.u32();
                let right = d.u32();
                let value = d.f64();
                Node { feature, threshold, left, right, value }
            })
            .collect();
        RegressionTree { nodes, n_features }
    }
}

/// Prices a candidate VM layout in seconds. The control plane is generic
/// over this: swap the estimator, keep the decision logic.
pub trait MakespanModel {
    /// Stable display name (CSV column, what-if attribution).
    fn name(&self) -> &'static str;
    /// Estimated makespan of one task wave of `hint` under `map`.
    fn estimate(
        &self,
        spec: &ClusterSpec,
        map: &[u32],
        hint: &WorkloadHint,
        host_load: &[f64],
    ) -> f64;
}

/// The analytic baseline:
/// [`estimate_makespan`](crate::placement::estimate_makespan) unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HandPriced;

impl MakespanModel for HandPriced {
    fn name(&self) -> &'static str {
        "hand-priced"
    }
    fn estimate(
        &self,
        spec: &ClusterSpec,
        map: &[u32],
        hint: &WorkloadHint,
        host_load: &[f64],
    ) -> f64 {
        estimate_makespan(spec, map, hint, host_load)
    }
}

/// A fitted [`RegressionTree`] applied to [`decision_features`].
#[derive(Debug, Clone, PartialEq)]
pub struct Learned(pub RegressionTree);

impl MakespanModel for Learned {
    fn name(&self) -> &'static str {
        "learned"
    }
    fn estimate(
        &self,
        spec: &ClusterSpec,
        map: &[u32],
        hint: &WorkloadHint,
        host_load: &[f64],
    ) -> f64 {
        self.0.predict(&decision_features(spec, map, hint, host_load))
    }
}

/// Selects a makespan model by value (config-friendly, like
/// [`PlacementKind`](crate::placement::PlacementKind)).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum MakespanKind {
    /// The analytic baseline ([`HandPriced`]).
    #[default]
    HandPriced,
    /// A fitted tree ([`Learned`]).
    Learned(RegressionTree),
}

impl MakespanKind {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            MakespanKind::HandPriced => HandPriced.name(),
            MakespanKind::Learned(t) => Learned(t.clone()).name(),
        }
    }
}

impl MakespanModel for MakespanKind {
    fn name(&self) -> &'static str {
        MakespanKind::name(self)
    }
    fn estimate(
        &self,
        spec: &ClusterSpec,
        map: &[u32],
        hint: &WorkloadHint,
        host_load: &[f64],
    ) -> f64 {
        match self {
            MakespanKind::HandPriced => HandPriced.estimate(spec, map, hint, host_load),
            MakespanKind::Learned(t) => t.predict(&decision_features(spec, map, hint, host_load)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PackPlacement, PlacementPolicy, SpreadPlacement};

    fn grid() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = step on x0, refined by x1 — a shape a depth-2 tree nails.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..32 {
            let x0 = f64::from(i % 8);
            let x1 = f64::from(i / 8);
            rows.push(vec![x0, x1]);
            labels.push(if x0 < 4.0 { 10.0 + x1 } else { 50.0 + 2.0 * x1 });
        }
        (rows, labels)
    }

    #[test]
    fn tree_fits_a_step_function() {
        let (rows, labels) = grid();
        let t = RegressionTree::fit(&rows, &labels, &TreeConfig::default());
        let mae: f64 =
            rows.iter().zip(&labels).map(|(r, &y)| (t.predict(r) - y).abs()).sum::<f64>()
                / rows.len() as f64;
        assert!(mae < 0.75, "tree should fit the grid closely, mae={mae}");
        assert!(t.depth() <= 8);
        assert!(t.leaf_count() >= 2);
    }

    #[test]
    fn fitting_is_deterministic() {
        let (rows, labels) = grid();
        let a = RegressionTree::fit(&rows, &labels, &TreeConfig::default());
        let b = RegressionTree::fit(&rows, &labels, &TreeConfig::default());
        assert_eq!(a, b, "same data must fit the same tree");
    }

    #[test]
    fn depth_and_leaf_knobs_bound_the_tree() {
        let (rows, labels) = grid();
        let stump = RegressionTree::fit(&rows, &labels, &TreeConfig { max_depth: 1, min_leaf: 1 });
        assert!(stump.depth() <= 1);
        assert!(stump.leaf_count() <= 2);
        let wide = RegressionTree::fit(&rows, &labels, &TreeConfig { max_depth: 8, min_leaf: 16 });
        assert!(wide.leaf_count() <= 2, "min_leaf=16 on 32 samples allows one split");
    }

    #[test]
    fn tree_round_trips_to_identical_predictions() {
        let (rows, labels) = grid();
        let t = RegressionTree::fit(&rows, &labels, &TreeConfig::default());
        let mut e = Encoder::new();
        t.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let t2 = RegressionTree::decode(&mut d);
        assert!(d.is_exhausted());
        assert_eq!(t, t2);
        for r in &rows {
            assert_eq!(t.predict(r).to_bits(), t2.predict(r).to_bits());
        }
    }

    #[test]
    fn decision_features_match_the_dictionary() {
        let spec = ClusterSpec::default();
        let map = PackPlacement.assign(&spec).unwrap();
        let hint = WorkloadHint::default();
        let f = decision_features(&spec, &map, &hint, &[]);
        assert_eq!(f.len(), FEATURE_NAMES.len());
        assert_eq!(f[0], estimate_makespan(&spec, &map, &hint, &[]), "feature 0 is the baseline");
        assert_eq!(f[1], f64::from(hint.tasks));
        // Packed onto one host: everything is same-host, one busy host.
        assert_eq!(f[5], 1.0);
        assert_eq!(f[7], 1.0);
    }

    #[test]
    fn hand_priced_model_matches_the_free_function() {
        let spec = ClusterSpec::default();
        let map = SpreadPlacement.assign(&spec).unwrap();
        let hint = WorkloadHint::default();
        assert_eq!(
            HandPriced.estimate(&spec, &map, &hint, &[]),
            estimate_makespan(&spec, &map, &hint, &[])
        );
        assert_eq!(MakespanKind::default().name(), "hand-priced");
    }

    #[test]
    fn learned_model_recalibrates_the_baseline() {
        // Train y = 2 * hand_estimate on a few synthetic layouts: the tree
        // must learn to correct a consistent bias through feature 0.
        let spec = ClusterSpec::default();
        let hint = WorkloadHint::default();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for tasks in 1..=12u32 {
            let h = WorkloadHint { tasks, ..hint };
            for map in
                [PackPlacement.assign(&spec).unwrap(), SpreadPlacement.assign(&spec).unwrap()]
            {
                let f = decision_features(&spec, &map, &h, &[]);
                labels.push(2.0 * f[0]);
                rows.push(f);
            }
        }
        let t = RegressionTree::fit(&rows, &labels, &TreeConfig { max_depth: 6, min_leaf: 1 });
        let learned = Learned(t);
        let map = PackPlacement.assign(&spec).unwrap();
        let h = WorkloadHint { tasks: 6, ..hint };
        let hand = HandPriced.estimate(&spec, &map, &h, &[]);
        let est = learned.estimate(&spec, &map, &h, &[]);
        assert!(
            (est - 2.0 * hand).abs() < 0.5 * hand,
            "learned should track the doubled baseline: est={est} hand={hand}"
        );
    }
}
